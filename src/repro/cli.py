"""``repro-mcast`` — command-line front end to the reproduction.

Subcommands map one-to-one onto the experiment drivers:

* ``repro-mcast table1`` — the Table-1 topology statistics.
* ``repro-mcast figure N`` — reproduce paper figure N (1–9).
* ``repro-mcast topo NAME`` — build a topology and print its stats.
* ``repro-mcast sweep NAME`` — run an L(m) sweep and fit the exponent.
* ``repro-mcast ablation WHICH`` — run one of the DESIGN.md ablations.
* ``repro-mcast serve`` — the asyncio estimation service (repro.serve).
* ``repro-mcast lint [PATHS]`` — the repro.lint static invariant checks.
* ``repro-mcast obs ARTIFACT`` — inspect a ``--obs`` run artifact
  (Prometheus metrics document + trace span table).

Every experiment subcommand accepts ``--obs PATH`` to record such an
artifact (process-wide metrics plus a trace of the run's spans).

All stochastic commands take ``--seed`` and are fully reproducible.
``--paper`` switches the Monte-Carlo sample counts to the paper's
100×100 methodology (slow); the default is the quick configuration.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.exceptions import ReproError

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro-mcast",
        description=(
            "Reproduction of 'Scaling of Multicast Trees: Comments on the "
            "Chuang-Sirbu Scaling Law' (SIGCOMM 1999)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser, scale_default: float = 0.25) -> None:
        p.add_argument("--seed", type=int, default=0, help="base RNG seed")
        p.add_argument(
            "--scale",
            type=float,
            default=scale_default,
            help="topology size relative to the paper (1.0 = paper scale)",
        )
        p.add_argument(
            "--paper",
            action="store_true",
            help="use the paper's 100x100 Monte-Carlo settings (slow)",
        )
        p.add_argument(
            "--no-plot",
            action="store_true",
            help="print data tables only, no ASCII plots",
        )
        p.add_argument(
            "--workers",
            type=int,
            default=1,
            metavar="N",
            help=(
                "worker processes for the Monte-Carlo sweeps; 0 = auto "
                "(one per CPU).  Workers persist across sweeps and "
                "results are bit-identical for any N"
            ),
        )
        p.add_argument(
            "--obs",
            metavar="PATH",
            default=None,
            help=(
                "record an observability artifact (metrics + trace "
                "spans) for this run to PATH; inspect it with "
                "'repro-mcast obs PATH'"
            ),
        )

    p_table1 = sub.add_parser("table1", help="reproduce Table 1")
    add_common(p_table1, scale_default=1.0)

    p_figure = sub.add_parser("figure", help="reproduce a paper figure")
    p_figure.add_argument(
        "number", type=int, choices=range(1, 10), help="figure number (1-9)"
    )
    add_common(p_figure)

    p_topo = sub.add_parser("topo", help="build a topology, print stats")
    p_topo.add_argument("name", help="topology name (see 'table1')")
    add_common(p_topo, scale_default=1.0)

    p_sweep = sub.add_parser("sweep", help="run an L(m) sweep + exponent fit")
    p_sweep.add_argument("name", help="topology name")
    p_sweep.add_argument(
        "--mode",
        choices=("distinct", "replacement"),
        default="distinct",
        help="receiver convention (L(m) vs Lhat(n))",
    )
    p_sweep.add_argument(
        "--points", type=int, default=10, help="number of swept group sizes"
    )
    p_sweep.add_argument(
        "--algorithm",
        default="spt",
        help=(
            "tree-construction discipline (repro.multicast.builders "
            "registry key: spt, steiner-tm, dst-approx, kdisjoint)"
        ),
    )
    p_sweep.add_argument(
        "--save", metavar="PATH", help="write the measurement as JSON"
    )
    add_common(p_sweep)

    p_abl = sub.add_parser("ablation", help="run a DESIGN.md ablation")
    p_abl.add_argument(
        "which",
        choices=("tiebreak", "sampling", "source", "weighted"),
        help="which ablation to run",
    )
    add_common(p_abl)

    p_study = sub.add_parser(
        "study", help="run an extension study (beyond the paper)"
    )
    p_study.add_argument(
        "which",
        choices=(
            "shared-tree",
            "popularity",
            "churn",
            "steiner",
            "algorithm-ratio",
            "kdisjoint-overhead",
        ),
        help="which study to run",
    )
    add_common(p_study)

    p_metrics = sub.add_parser(
        "metrics", help="structural-regime metrics for a topology"
    )
    p_metrics.add_argument("name", help="topology name")
    add_common(p_metrics, scale_default=1.0)

    p_all = sub.add_parser(
        "all", help="reproduce every table and figure into a directory"
    )
    p_all.add_argument(
        "--outdir", default="reproduction", help="output directory"
    )
    add_common(p_all)

    p_serve = sub.add_parser(
        "serve", help="run the asyncio estimation service (repro.serve)"
    )
    p_serve.add_argument("--host", default="127.0.0.1", help="bind address")
    p_serve.add_argument(
        "--port", type=int, default=8321, help="TCP port (0 = ephemeral)"
    )
    p_serve.add_argument(
        "--topologies",
        default="arpa,r100",
        help="comma-separated registry names to pre-warm tables for",
    )
    p_serve.add_argument(
        "--algorithms",
        default="spt",
        help=(
            "comma-separated tree-builder names to pre-warm tables for "
            "(spt, steiner-tm, dst-approx, kdisjoint); other registered "
            "builders stay servable via lazy table builds"
        ),
    )
    p_serve.add_argument(
        "--deadline-ms",
        type=float,
        default=5000.0,
        help="simulate deadline before degrading to table/closed form",
    )
    p_serve.add_argument(
        "--scale", type=float, default=1.0, help="topology scale (1.0 = paper)"
    )
    p_serve.add_argument("--seed", type=int, default=0, help="base RNG seed")
    p_serve.add_argument(
        "--sources", type=int, default=20, help="Monte-Carlo sources per run"
    )
    p_serve.add_argument(
        "--receiver-sets",
        type=int,
        default=20,
        help="Monte-Carlo receiver sets per source",
    )
    p_serve.add_argument(
        "--selftest",
        action="store_true",
        help=(
            "boot on an ephemeral port, issue one request per endpoint, "
            "exit nonzero on any mismatch"
        ),
    )
    p_serve.add_argument(
        "--fault-plan",
        default=None,
        metavar="JSON_OR_PATH",
        help=(
            "activate a fault-injection plan while the selftest probes "
            "run: inline JSON (starts with '{') or a path to a JSON "
            "file; see docs/fault-injection.md for the schema "
            "(requires --selftest)"
        ),
    )
    p_serve.add_argument(
        "--fleet-workers",
        type=int,
        default=0,
        metavar="N",
        help=(
            "run a supervised fleet of N worker processes on one port "
            "(SO_REUSEPORT, shared table store, per-worker load "
            "shedding) instead of a single in-process server; see "
            "docs/fleet.md"
        ),
    )
    p_serve.add_argument(
        "--fleet-admin-port",
        type=int,
        default=0,
        metavar="PORT",
        help=(
            "admin port for the fleet's aggregated /metrics, /healthz, "
            "and POST /v1/fleet/reload (0 = ephemeral; fleet mode only)"
        ),
    )
    p_serve.add_argument(
        "--max-inflight",
        type=int,
        default=None,
        metavar="N",
        help=(
            "per-worker load-shedding threshold: above N concurrent "
            "requests, simulate answers degrade immediately "
            "('shed': true) instead of queueing past their deadline"
        ),
    )

    p_obs = sub.add_parser(
        "obs", help="inspect an observability artifact (--obs output)"
    )
    p_obs.add_argument(
        "artifact", help="artifact path written by a run's --obs PATH"
    )
    p_obs.add_argument(
        "--metrics",
        action="store_true",
        help="print only the Prometheus metrics document",
    )
    p_obs.add_argument(
        "--trace",
        action="store_true",
        help="print only the trace span table",
    )
    p_obs.add_argument(
        "--json",
        action="store_true",
        help="dump the raw artifact JSON (pretty-printed)",
    )

    p_lint = sub.add_parser(
        "lint", help="run the repro.lint static invariant checks"
    )
    p_lint.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src/, else .)",
    )
    p_lint.add_argument(
        "--json",
        action="store_true",
        help="emit the JSON report (findings + rule docs + counts)",
    )
    p_lint.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default=None,
        help="report format (default text; sarif targets SARIF 2.1.0)",
    )
    p_lint.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="fan file analysis across N pool workers",
    )
    p_lint.add_argument(
        "--cache",
        metavar="PATH",
        default=None,
        help="incremental cache file keyed by content hash",
    )
    p_lint.add_argument(
        "--no-project",
        action="store_true",
        help="per-file rules only (skip cross-file RR011-RR014)",
    )

    return parser


def _mc_config(args):
    from dataclasses import replace

    from repro.experiments.config import PAPER_MONTE_CARLO, QUICK_MONTE_CARLO

    config = PAPER_MONTE_CARLO if args.paper else QUICK_MONTE_CARLO
    workers = getattr(args, "workers", 1)
    if workers != config.num_workers:
        config = replace(config, num_workers=workers)
    return config


def _print_results(results, no_plot: bool) -> None:
    if hasattr(results, "render"):
        results = {"": results}
    for result in results.values():
        print(result.render(include_plot=not no_plot))
        print()


def _cmd_table1(args) -> int:
    from repro.experiments.figures import run_table1

    result = run_table1(scale=args.scale, rng=args.seed)
    print(result.render())
    lo, hi = result.degree_range()
    print(f"\naverage degrees span {lo:.2f} .. {hi:.2f} (paper: 2.7 .. 7.5)")
    return 0


def _quick_affinity():
    from repro.experiments.config import AffinityConfig

    return AffinityConfig(num_samples=16, burn_in_sweeps=10, thin_sweeps=1)


def _cmd_figure(args) -> int:
    from repro.experiments import figures

    number = args.number
    config = _mc_config(args)
    if number == 1:
        results = figures.run_figure1(scale=args.scale, config=config, rng=args.seed)
    elif number == 2:
        results = figures.run_figure2()
    elif number == 3:
        results = figures.run_figure3()
    elif number == 4:
        results = figures.run_figure4()
    elif number == 5:
        results = figures.run_figure5()
    elif number == 6:
        results = figures.run_figure6(scale=args.scale, config=config, rng=args.seed)
    elif number == 7:
        results = figures.run_figure7(scale=args.scale, rng=args.seed)
    elif number == 8:
        results = figures.run_figure8()
    else:
        if args.paper:
            results = figures.run_figure9(depths=(10, 12), rng=args.seed)
        else:
            results = figures.run_figure9(
                depths=(7, 9),
                config=_quick_affinity(),
                n_values=(1, 4, 16, 64, 256, 1024),
                rng=args.seed,
            )
    _print_results(results, args.no_plot)
    return 0


def _cmd_topo(args) -> int:
    from repro.graph.ops import graph_stats
    from repro.graph.reachability import average_profile, classify_growth
    from repro.topology.registry import build_topology, topology_spec

    spec = topology_spec(args.name)
    graph = build_topology(args.name, scale=args.scale, rng=args.seed)
    stats = graph_stats(graph, name=args.name, rng=args.seed)
    print(f"{args.name}: {spec.description} [{spec.kind}]")
    print(f"  nodes          : {stats.num_nodes}")
    print(f"  links          : {stats.num_edges}")
    print(f"  average degree : {stats.average_degree:.3f}")
    print(f"  degree range   : {stats.min_degree} .. {stats.max_degree}")
    print(f"  diameter       : {stats.diameter}")
    print(f"  avg path length: {stats.average_path_length:.3f}")
    profile = average_profile(graph, num_sources=20, rng=args.seed)
    print(f"  T(r) growth    : {classify_growth(profile)}")
    return 0


def _cmd_sweep(args) -> int:
    from repro.experiments.config import SweepConfig
    from repro.experiments.results import save_measurements
    from repro.experiments.runner import measure_sweep
    from repro.topology.registry import build_topology
    from repro.utils.tables import format_table

    graph = build_topology(args.name, scale=args.scale, rng=args.seed)
    limit = (
        graph.num_nodes - 1
        if args.mode == "distinct"
        else 4 * graph.num_nodes
    )
    sizes = SweepConfig(points=args.points).sizes(max(2, limit // 4))
    measurement = measure_sweep(
        graph,
        sizes,
        mode=args.mode,
        config=_mc_config(args),
        topology=args.name,
        rng=args.seed,
        algorithm=args.algorithm,
    )
    rows = list(
        zip(
            measurement.sizes,
            measurement.mean_tree_size,
            measurement.mean_unicast_path,
            measurement.normalized_tree_size,
            measurement.per_receiver_series,
        )
    )
    print(
        format_table(
            ["size", "L", "u", "L/u", "L/(size*u)"],
            rows,
            title=(
                f"{args.name} ({args.mode}, {graph.num_nodes} nodes"
                + (
                    f", {args.algorithm} trees)"
                    if args.algorithm != "spt"
                    else ")"
                )
            ),
        )
    )
    fit = measurement.fit_exponent()
    print(
        f"\nfitted exponent: {fit.slope:.3f} "
        f"(Chuang-Sirbu law: 0.8, r^2={fit.r_squared:.3f})"
    )
    if args.save:
        save_measurements([measurement], args.save)
        print(f"saved measurement to {args.save}")
    return 0


def _cmd_ablation(args) -> int:
    from repro.experiments import figures

    runner = {
        "tiebreak": figures.run_tiebreak_ablation,
        "sampling": figures.run_sampling_ablation,
        "source": figures.run_source_placement_ablation,
        "weighted": figures.run_weighted_links_ablation,
    }[args.which]
    if args.which in ("source", "weighted"):
        result = runner(scale=args.scale, rng=args.seed)
    else:
        result = runner(scale=args.scale, config=_mc_config(args), rng=args.seed)
    _print_results(result, args.no_plot)
    return 0


def _cmd_study(args) -> int:
    from repro.experiments import figures

    if args.which == "shared-tree":
        result = figures.run_shared_tree_study(
            scale=args.scale, config=_mc_config(args), rng=args.seed
        )
    elif args.which == "popularity":
        result = figures.run_popularity_study(scale=args.scale, rng=args.seed)
    elif args.which == "steiner":
        result = figures.run_steiner_study(scale=args.scale, rng=args.seed)
    elif args.which == "algorithm-ratio":
        result = figures.run_algorithm_ratio_study(
            scale=args.scale, config=_mc_config(args), rng=args.seed
        )
    elif args.which == "kdisjoint-overhead":
        result = figures.run_kdisjoint_overhead_study(
            scale=args.scale, rng=args.seed
        )
    else:
        depth = 10 if args.paper else 8
        result = figures.run_churn_study(depth=depth, rng=args.seed)
    _print_results(result, args.no_plot)
    return 0


def _cmd_metrics(args) -> int:
    from repro.graph.metrics import topology_metrics
    from repro.topology.registry import build_topology

    graph = build_topology(args.name, scale=args.scale, rng=args.seed)
    metrics = topology_metrics(graph, name=args.name)
    print(f"{args.name} ({graph.num_nodes} nodes, {graph.num_edges} links)")
    print(f"  clustering coefficient : {metrics.clustering:.4f}")
    print(f"  degree assortativity   : {metrics.assortativity:+.4f}")
    print(f"  max degree             : {metrics.max_degree}")
    if metrics.degree_tail_slope is not None:
        print(
            f"  degree CCDF tail       : slope {metrics.degree_tail_slope:.2f} "
            f"(r^2 {metrics.degree_tail_r2:.3f})"
        )
        print(f"  power-law regime       : {metrics.looks_power_law()}")
    else:
        print("  degree CCDF tail       : too narrow to fit")
    return 0


def _cmd_all(args) -> int:
    import os

    from repro.experiments import figures
    from repro.experiments.report import ReproductionReport

    os.makedirs(args.outdir, exist_ok=True)
    config = _mc_config(args)
    report = ReproductionReport(
        title="Chuang-Sirbu scaling-law reproduction"
    )
    report.add_parameter("topology scale", args.scale)
    report.add_parameter("seed", args.seed)
    report.add_parameter(
        "Monte Carlo",
        f"{config.num_sources} sources x {config.num_receiver_sets} "
        "receiver sets",
    )

    def write(name: str, rendered: str) -> None:
        path = os.path.join(args.outdir, f"{name}.txt")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
        print(f"wrote {path}")

    table1 = figures.run_table1(scale=args.scale, rng=args.seed)
    write("table1", table1.render())
    report.add_text_section("table-1", table1.render())

    multi = {
        "figure1": figures.run_figure1(
            scale=args.scale, config=config, rng=args.seed
        ),
        "figure2": figures.run_figure2(),
        "figure3": figures.run_figure3(),
        "figure4": figures.run_figure4(),
        "figure5": figures.run_figure5(),
        "figure6": figures.run_figure6(
            scale=args.scale, config=config, rng=args.seed
        ),
        "figure7": figures.run_figure7(scale=args.scale, rng=args.seed),
        "figure9": figures.run_figure9(
            depths=(10, 12) if args.paper else (7, 9),
            config=None if args.paper else _quick_affinity(),
            n_values=None if args.paper else (1, 4, 16, 64, 256),
            rng=args.seed,
        ),
    }
    for name, panels in multi.items():
        write(
            name,
            "\n\n".join(
                panel.render(include_plot=not args.no_plot)
                for panel in panels.values()
            ),
        )
        for panel in panels.values():
            report.add_result(panel)
    figure8 = figures.run_figure8()
    write("figure8", figure8.render(include_plot=not args.no_plot))
    report.add_result(figure8)

    report_path = os.path.join(args.outdir, "REPORT.md")
    report.write(report_path)
    print(f"wrote {report_path}")
    print(f"\nreproduction complete under {args.outdir}/")
    return 0


def _load_fault_plan(spec: str):
    """``--fault-plan`` value → FaultPlan (inline JSON or a file path)."""
    import json

    from repro.faults import FaultPlan

    text = spec.strip()
    if not text.startswith("{"):
        with open(spec, "r", encoding="utf-8") as handle:
            text = handle.read()
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SystemExit(f"--fault-plan is not valid JSON: {exc}")
    try:
        return FaultPlan.from_dict(payload)
    except ValueError as exc:
        raise SystemExit(f"--fault-plan rejected: {exc}")


def _cmd_serve(args) -> int:
    import asyncio

    from repro.serve.app import ServerApp, run_selftest
    from repro.serve.handlers import EstimationService, ServiceConfig

    names = tuple(
        name.strip().lower()
        for name in args.topologies.split(",")
        if name.strip()
    )
    algorithms = tuple(
        name.strip().lower()
        for name in args.algorithms.split(",")
        if name.strip()
    ) or ("spt",)
    config = ServiceConfig(
        topologies=names,
        algorithms=algorithms,
        scale=args.scale,
        seed=args.seed,
        num_sources=args.sources,
        num_receiver_sets=args.receiver_sets,
        deadline_seconds=args.deadline_ms / 1000.0,
        max_inflight=args.max_inflight,
    )
    plan = None
    if args.fault_plan is not None:
        if not args.selftest:
            raise SystemExit(
                "--fault-plan only applies to --selftest runs; a "
                "long-running server under a standing fault plan is not "
                "a supported configuration"
            )
        plan = _load_fault_plan(args.fault_plan)
    if args.selftest:
        return asyncio.run(run_selftest(config, plan=plan))
    if args.fleet_workers > 0:
        from repro.serve.fleet import FleetConfig, FleetSupervisor

        fleet_config = FleetConfig(
            workers=args.fleet_workers,
            host=args.host,
            port=args.port,
            admin_port=args.fleet_admin_port,
            service=config,
            seed=args.seed,
        )
        try:
            asyncio.run(FleetSupervisor(fleet_config).serve_forever())
        except KeyboardInterrupt:
            pass
        return 0
    app = ServerApp(EstimationService(config))
    try:
        asyncio.run(app.serve_forever(args.host, args.port))
    except KeyboardInterrupt:
        # Platforms without loop signal handlers skip the drain; the
        # normal path returns after serve_forever's graceful stop.
        pass
    return 0


def _cmd_lint(args) -> int:
    from repro.lint import run_lint

    return run_lint(
        args.paths,
        json_output=args.json,
        output_format=args.format,
        jobs=args.jobs,
        cache=args.cache,
        project=not args.no_project,
    )


def _write_obs_artifact(path: str, command: str, collector) -> None:
    import json

    from repro import obs

    payload = {
        "version": 1,
        "command": command,
        "metrics": obs.default_registry().to_dict(),
        "trace": collector.export(),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote observability artifact to {path}")


def _cmd_obs(args) -> int:
    import json

    from repro.obs import MetricsRegistry

    with open(args.artifact, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("version") != 1:
        raise ReproError(
            f"unsupported artifact version {payload.get('version')!r}"
        )
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    show_metrics = args.metrics or not args.trace
    show_trace = args.trace or not args.metrics
    if show_metrics:
        document = MetricsRegistry.from_dict(payload["metrics"]).render()
        print(f"# metrics recorded by 'repro-mcast {payload['command']}'")
        print(document, end="")
    if show_trace:
        spans = payload.get("trace", [])
        if show_metrics:
            print()
        print(f"trace: {len(spans)} spans")
        for span in spans:
            duration = span.get("duration")
            timing = f"{duration * 1e3:10.3f} ms" if duration is not None else "          --"
            attrs = " ".join(
                f"{key}={value}" for key, value in sorted(span["attrs"].items())
            )
            parent = span.get("parent_id")
            nested = "  " if parent is not None else ""
            print(f"  {timing}  {nested}{span['name']}  {attrs}".rstrip())
    return 0


_COMMANDS = {
    "table1": _cmd_table1,
    "figure": _cmd_figure,
    "topo": _cmd_topo,
    "sweep": _cmd_sweep,
    "ablation": _cmd_ablation,
    "study": _cmd_study,
    "metrics": _cmd_metrics,
    "all": _cmd_all,
    "serve": _cmd_serve,
    "lint": _cmd_lint,
    "obs": _cmd_obs,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    record_to = getattr(args, "obs", None)
    collector = None
    if record_to:
        from repro.obs import start_tracing

        collector = start_tracing()
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        if collector is not None:
            from repro.obs import stop_tracing

            stop_tracing()
            _write_obs_artifact(record_to, args.command, collector)


if __name__ == "__main__":
    sys.exit(main())
