"""Injectable clocks: real monotonic time, or deterministic virtual time.

Every timing decision in the serving layer — TTL expiry in
:class:`~repro.serve.coalesce.TTLCache`, estimator-table staleness,
deadline waits around backend computations, and the latency histograms
behind ``/metrics`` — flows through a single injected clock object
instead of raw ``time.monotonic()`` reads (lint rule RR008 enforces
this on ``repro/serve/``).  That one seam is what makes the chaos and
timing tests instant and deterministic: swap :class:`SystemClock` for a
:class:`VirtualClock` and "five seconds pass" becomes a method call.

A clock is three things:

* a callable returning monotonic seconds (``now = clock()``) — the
  drop-in for the ``clock=`` hook ``TTLCache`` already takes;
* ``await clock.sleep(seconds)`` — an async sleep on that timeline;
* ``await clock.wait_for(awaitable, timeout)`` — ``asyncio.wait_for``
  semantics on that timeline (raises :class:`asyncio.TimeoutError`,
  cancels only the wrapped awaitable, never the underlying shielded
  computation).

:class:`VirtualClock` only moves when :meth:`VirtualClock.advance` is
called.  Timers registered by ``sleep``/``wait_for`` fire during the
advance; ``advance`` may be called from any thread (a fault plan's
``delay`` action advances from executor threads), so timer wake-ups are
marshalled onto the registering event loop with
``call_soon_threadsafe``.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
import threading
import time
from typing import Any, Awaitable, List, Optional, Tuple

__all__ = ["SystemClock", "VirtualClock"]


class SystemClock:
    """The real monotonic clock (production default).

    ``SystemClock()()`` is ``time.monotonic()``; the async helpers
    delegate to :mod:`asyncio`, so services constructed without an
    explicit clock behave exactly as before the clock seam existed.
    """

    def __call__(self) -> float:
        return time.monotonic()

    async def sleep(self, seconds: float) -> None:
        await asyncio.sleep(seconds)

    async def wait_for(self, awaitable: Awaitable, timeout: Optional[float]) -> Any:
        if timeout is None:
            return await awaitable
        return await asyncio.wait_for(awaitable, timeout)

    def __repr__(self) -> str:
        return "SystemClock()"


class _Timer:
    """One virtual-time wake-up: an event set when the clock passes it."""

    __slots__ = ("deadline", "event", "loop", "cancelled")

    def __init__(
        self,
        deadline: float,
        event: asyncio.Event,
        loop: asyncio.AbstractEventLoop,
    ) -> None:
        self.deadline = deadline
        self.event = event
        self.loop = loop
        self.cancelled = False


class VirtualClock:
    """A manually-advanced monotonic clock for deterministic tests.

    ``clock()`` returns the current virtual time; :meth:`advance` moves
    it forward and wakes every ``sleep``/``wait_for`` timer whose
    deadline has been reached.  Nothing ever moves on its own, so a
    test (or a fault plan's ``delay`` action) controls exactly when a
    TTL expires or a deadline fires — no real waiting, no flakiness.

    Thread safety: ``advance`` and ``__call__`` may be called from any
    thread.  Timer events are set via ``call_soon_threadsafe`` on the
    loop that registered them, so an executor thread advancing the
    clock correctly wakes coroutines on the serving loop.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._lock = threading.Lock()
        self._timers: List[Tuple[float, int, _Timer]] = []
        self._counter = itertools.count()

    def __call__(self) -> float:
        with self._lock:
            return self._now

    @property
    def pending_timers(self) -> int:
        """Live ``sleep``/``wait_for`` timers (tests poll this to know a
        deadline wait has actually been registered before advancing)."""
        with self._lock:
            return sum(1 for _, _, t in self._timers if not t.cancelled)

    def advance(self, seconds: float) -> float:
        """Move time forward and fire every timer that comes due."""
        if seconds < 0:
            raise ValueError(f"cannot advance time backwards ({seconds})")
        due: List[_Timer] = []
        with self._lock:
            self._now += float(seconds)
            while self._timers and self._timers[0][0] <= self._now:
                _, _, timer = heapq.heappop(self._timers)
                if not timer.cancelled:
                    due.append(timer)
            now = self._now
        for timer in due:
            try:
                timer.loop.call_soon_threadsafe(timer.event.set)
            except RuntimeError:
                # The registering loop already closed; nobody is waiting.
                pass
        return now

    def _register(self, delay: float) -> _Timer:
        timer = _Timer(
            deadline=self(), event=asyncio.Event(),
            loop=asyncio.get_running_loop(),
        )
        with self._lock:
            timer.deadline = self._now + float(delay)
            if timer.deadline <= self._now:
                timer.event.set()
            else:
                heapq.heappush(
                    self._timers, (timer.deadline, next(self._counter), timer)
                )
        return timer

    def _cancel(self, timer: _Timer) -> None:
        with self._lock:
            timer.cancelled = True

    async def sleep(self, seconds: float) -> None:
        """Block until :meth:`advance` moves past ``now + seconds``."""
        timer = self._register(seconds)
        try:
            await timer.event.wait()
        finally:
            self._cancel(timer)

    async def wait_for(self, awaitable: Awaitable, timeout: Optional[float]) -> Any:
        """``asyncio.wait_for`` semantics against virtual time.

        The timeout fires when :meth:`advance` crosses the deadline —
        never from wall-clock passage.  On (virtual) timeout the
        wrapped awaitable is cancelled, matching ``asyncio.wait_for``;
        callers protecting a shared computation pass a shielded
        awaitable, exactly as with the real clock.
        """
        future = asyncio.ensure_future(awaitable)
        if timeout is None:
            return await future
        timer = self._register(timeout)
        expiry = asyncio.ensure_future(timer.event.wait())
        try:
            done, _pending = await asyncio.wait(
                {future, expiry}, return_when=asyncio.FIRST_COMPLETED
            )
            if future in done:
                return future.result()
            future.cancel()
            # Let the cancellation propagate before reporting timeout.
            try:
                await future
            except asyncio.CancelledError:
                pass
            raise asyncio.TimeoutError()
        finally:
            self._cancel(timer)
            if not expiry.done():
                expiry.cancel()

    def __repr__(self) -> str:
        return f"VirtualClock(now={self():.6f}, timers={self.pending_timers})"
