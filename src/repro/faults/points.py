"""Named fault points and the process-global active plan.

A *fault point* is a named seam in production code where a fault plan
may inject failure: ``_FP = faults.point("forest_cache.compute", ...)``
at module import, then ``_FP.fire()`` on the hot path.  With no active
plan, ``fire()`` is a single module-global load and an ``is None``
test — cheap enough to leave in the hottest loops (the chaos smoke
benchmark asserts the no-op overhead stays under a microsecond per
call).  Under an active :class:`~repro.faults.plan.FaultPlan`, the
plan's seeded schedule decides whether this particular firing raises,
times out, delays virtual time, or passes through.

Points are registered in a process-wide catalog so documentation,
``--fault-plan`` validation, and the chaos generators can enumerate
every seam that exists (:func:`catalog`).  Registration is idempotent
for an identical description and rejects silent redefinition.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional

__all__ = ["FaultPoint", "point", "catalog", "active_plan"]

#: The active plan, or None.  Read on every ``fire()``; written only by
#: FaultPlan activation under ``_ACTIVATION_LOCK``.
_ACTIVE = None
_ACTIVATION_LOCK = threading.Lock()

_CATALOG: Dict[str, "FaultPoint"] = {}


class FaultPoint:
    """One named injection seam.  Create via :func:`point`."""

    __slots__ = ("name", "description")

    def __init__(self, name: str, description: str) -> None:
        self.name = name
        self.description = description

    def fire(self, **context) -> None:
        """Give the active plan (if any) a chance to inject a fault here.

        The injected behavior is whatever the plan's matching specs
        prescribe — typically raising (``FaultInjected``,
        ``asyncio.TimeoutError``, ``ConnectionResetError``, ...) or
        advancing a virtual clock.  With no active plan this returns
        immediately.
        """
        plan = _ACTIVE
        if plan is None:
            return
        plan.trigger(self.name, **context)

    def __repr__(self) -> str:
        return f"FaultPoint({self.name!r})"


def point(name: str, description: str) -> FaultPoint:
    """Register (or look up) the fault point called ``name``.

    Instrumented modules call this at import time and keep the returned
    object; registering the same name twice with a different
    description raises — a point's meaning must not silently drift.
    """
    if not name or any(ch.isspace() for ch in name):
        raise ValueError(f"fault point names must be non-empty tokens, got {name!r}")
    existing = _CATALOG.get(name)
    if existing is not None:
        if existing.description != description:
            raise ValueError(
                f"fault point {name!r} already registered with a different "
                "description"
            )
        return existing
    created = FaultPoint(name, description)
    _CATALOG[name] = created
    return created


def catalog() -> List[FaultPoint]:
    """Every registered fault point, sorted by name."""
    return [_CATALOG[name] for name in sorted(_CATALOG)]


def active_plan():
    """The currently active :class:`FaultPlan`, or None."""
    return _ACTIVE


def _set_active(plan) -> None:
    """Install/clear the active plan (called by FaultPlan.activate)."""
    global _ACTIVE
    with _ACTIVATION_LOCK:
        if plan is not None and _ACTIVE is not None:
            raise RuntimeError(
                "a fault plan is already active; deactivate it before "
                "activating another (plans do not nest)"
            )
        _ACTIVE = plan
