"""Seeded chaos rounds against the estimation service.

One *round* = build a small :class:`~repro.serve.EstimationService` on a
:class:`~repro.faults.clock.VirtualClock`, derive a random
:class:`~repro.faults.plan.FaultPlan` from the round's seed, fire a
deterministic batch of requests (sequential and concurrent) while the
plan is active, then check the system invariants the serving layer
documents:

* **no-500-with-healthy-fallback** — every valid request is answered
  with HTTP 200 even while the backend is failing, because the table /
  closed-form fallback tiers stay healthy;
* **degraded-flag correctness** — ``degraded: true`` iff a fallback
  tier produced the answer (and the ``/metrics`` degraded counter
  agrees with the responses);
* **degraded answers are real answers** — a degraded table answer
  matches the table's own interpolation (the documented
  ``rel_error_bound`` contract is checked against exact Eq. 4 by the
  chaos test suite using a closed-form table);
* **no hung waiters** — the whole round completes under a wall-clock
  backstop even when coalesced leaders are killed mid-flight;
* **recovery** — once the plan deactivates, the next exact request is
  served non-degraded.

Both ``tests/test_chaos_serve.py`` and ``benchmarks/chaos_smoke.py``
drive rounds through :func:`run_serve_rounds`; a failing round reports
its seed so the schedule can be replayed exactly
(``run_serve_round(seed=<N>)``).
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.faults.clock import VirtualClock
from repro.faults.plan import FaultPlan, FaultSpec

__all__ = [
    "CHAOS_SERVE_POINTS",
    "ChaosReport",
    "random_serve_plan",
    "run_serve_round",
    "run_serve_rounds",
]

#: The serve-side seams a random schedule may target, with the actions
#: that make sense there.  ``serve.app.*`` points are exercised by the
#: dedicated socket tests instead — injecting resets below the HTTP
#: framing layer would make per-request invariants unobservable here.
CHAOS_SERVE_POINTS: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("serve.backend.simulate", ("raise", "timeout", "delay")),
    ("serve.table.build", ("raise", "timeout")),
    ("serve.graph.build", ("raise",)),
    ("forest_cache.compute", ("raise",)),
    ("forest_cache.evict_race", ("raise",)),
)

#: Wall-clock ceiling for one round; tripping it means waiters hung.
ROUND_WALL_TIMEOUT_SECONDS = 20.0


@dataclass
class ChaosReport:
    """What one chaos round did and whether the invariants held."""

    seed: int
    plan: Dict[str, Any]
    injected: int
    responses: List[Dict[str, Any]] = field(default_factory=list)
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        state = "ok" if self.ok else "FAILED"
        head = (
            f"chaos seed {self.seed}: {state} "
            f"({len(self.responses)} responses, {self.injected} faults injected)"
        )
        if self.ok:
            return head
        lines = [head] + [f"  - {violation}" for violation in self.violations]
        lines.append(f"  replay: run_serve_round(seed={self.seed})")
        return "\n".join(lines)


def random_serve_plan(seed: int, clock: VirtualClock) -> FaultPlan:
    """A seeded random schedule over :data:`CHAOS_SERVE_POINTS`."""
    from repro.utils.rng import ensure_rng

    rng = ensure_rng(seed)
    specs: List[FaultSpec] = []
    for name, actions in CHAOS_SERVE_POINTS:
        if float(rng.random()) < 0.3:
            continue  # leave this seam healthy for this round
        action = actions[int(rng.integers(len(actions)))]
        specs.append(
            FaultSpec(
                point=name,
                action=action,
                probability=float(rng.uniform(0.3, 1.0)),
                max_fires=int(rng.integers(1, 5)),
                delay_seconds=(
                    float(rng.uniform(0.5, 12.0)) if action == "delay" else 0.0
                ),
            )
        )
    if not specs:  # a round must inject *something* to be interesting
        specs.append(FaultSpec(point="serve.backend.simulate", action="raise"))
    return FaultPlan(specs, seed=seed, clock=clock, name=f"chaos-{seed}")


def _round_payloads(seed: int, m_max: int) -> List[Dict[str, Any]]:
    """The deterministic request batch for one round."""
    from repro.utils.rng import ensure_rng

    rng = ensure_rng(seed + 1_000_003)
    sizes = [int(rng.integers(1, max(2, m_max + 1))) for _ in range(4)]
    payloads: List[Dict[str, Any]] = [
        {"topology": "arpa", "m": sizes[0]},
        {"topology": "arpa", "m": sizes[1], "exact": True},
        {"topology": "arpa", "m": sizes[2], "mode": "replacement", "exact": True},
        {"topology": "arpa", "m": sizes[3], "exact": True},
    ]
    return payloads


async def _post_simulate(service, payload: Dict[str, Any]) -> Dict[str, Any]:
    response = await service.dispatch(
        "POST", "/v1/simulate", json.dumps(payload).encode()
    )
    return {
        "payload": payload,
        "status": response.status,
        "body": json.loads(response.body.decode()),
    }


def check_serve_invariants(
    responses: Sequence[Dict[str, Any]], service
) -> List[str]:
    """Violation strings for the documented serving invariants."""
    violations: List[str] = []
    degraded_seen = 0
    for entry in responses:
        payload, status, body = entry["payload"], entry["status"], entry["body"]
        label = f"{payload} -> {status}"
        if status != 200:
            violations.append(
                f"no-500-with-healthy-fallback broken: {label}: {body}"
            )
            continue
        degraded = body.get("degraded")
        source = body.get("source")
        if degraded:
            degraded_seen += 1
            if source not in ("table", "closed-form"):
                violations.append(
                    f"degraded-flag correctness broken: degraded answer from "
                    f"non-fallback source {source!r}: {label}"
                )
        elif source not in ("table", "cache", "simulation"):
            violations.append(
                f"degraded-flag correctness broken: non-degraded answer from "
                f"fallback-only source {source!r}: {label}"
            )
        if degraded and source == "table":
            table = service.tables.get(
                (payload["topology"], payload.get("mode", "distinct"))
            )
            if table is None or not table.covers(payload["m"]):
                violations.append(
                    f"degraded table answer without a covering table: {label}"
                )
            else:
                tree, _path = table.lookup(payload["m"])
                got = body.get("tree_size")
                if got is None or abs(got - tree) > 1e-9 * max(tree, 1.0):
                    violations.append(
                        "error-bound under degradation broken: degraded "
                        f"tree_size {got} != table interpolation {tree}: {label}"
                    )
    if service.metrics.degraded_total != degraded_seen:
        violations.append(
            "metrics drift: degraded_total="
            f"{service.metrics.degraded_total} but {degraded_seen} degraded "
            "responses observed"
        )
    return violations


async def run_serve_round(
    seed: int, config: Optional[Any] = None
) -> ChaosReport:
    """Execute one seeded chaos round and check every invariant."""
    from repro.serve.handlers import EstimationService, ServiceConfig

    clock = VirtualClock()
    config = config or ServiceConfig(
        topologies=("arpa",),
        num_sources=2,
        num_receiver_sets=2,
        deadline_seconds=5.0,
        executor_threads=2,
    )
    service = EstimationService(config, clock=clock)
    await service.startup()
    plan = random_serve_plan(seed, clock)
    report = ChaosReport(seed=seed, plan=plan.to_dict(), injected=0)

    async def drive() -> None:
        payloads = _round_payloads(seed, service.tables[("arpa", "distinct")].m_max)
        with plan.activate():
            # Sequential half: each request sees the schedule alone.
            for payload in payloads[:2]:
                report.responses.append(await _post_simulate(service, payload))
            # Concurrent half: identical exact queries coalesce onto one
            # leader; if the schedule kills the leader, every waiter must
            # still come back with an answer (degraded is fine, hung is
            # not).
            burst = [dict(payloads[2]) for _ in range(3)] + [payloads[3]]
            report.responses.extend(
                await asyncio.gather(
                    *(_post_simulate(service, payload) for payload in burst)
                )
            )
        report.injected = plan.injected_count
        # Recovery: with the plan gone, an exact query must be served
        # fresh (drain the in-flight backend runs the schedule orphaned
        # first so the coalescer cannot hand us a poisoned flight).
        while len(service._flight):
            await asyncio.sleep(0)
        recovery = await _post_simulate(
            service, {"topology": "arpa", "m": 2, "exact": True}
        )
        if recovery["status"] != 200 or recovery["body"].get("degraded"):
            report.violations.append(
                f"recovery broken: post-plan exact request got "
                f"{recovery['status']} {recovery['body']}"
            )

    try:
        # Real-time backstop: a hung coalesce waiter fails the round
        # instead of hanging the suite.
        await asyncio.wait_for(drive(), timeout=ROUND_WALL_TIMEOUT_SECONDS)
    except asyncio.TimeoutError:
        report.violations.append(
            "no-hung-waiters broken: round did not complete within "
            f"{ROUND_WALL_TIMEOUT_SECONDS}s wall-clock"
        )
    finally:
        await service.shutdown()
    report.violations.extend(check_serve_invariants(report.responses, service))
    return report


def run_serve_rounds(seeds: Sequence[int]) -> List[ChaosReport]:
    """Run many rounds (fresh event loop each) and collect reports."""
    return [asyncio.run(run_serve_round(seed)) for seed in seeds]
