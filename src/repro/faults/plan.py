"""Seed-scripted fault plans: what to inject, where, and when.

A :class:`FaultPlan` is a deterministic schedule over the registered
fault points.  It is built from :class:`FaultSpec` entries — "at point
``serve.backend.simulate``, raise with probability 0.3, at most twice"
— plus a seed; every probabilistic decision comes from one seeded
generator (via :func:`repro.utils.rng.ensure_rng`), so the same plan
replayed against the same sequence of ``fire()`` calls injects the
identical fault sequence.  The plan records every trigger in
:attr:`FaultPlan.events`, which is both the chaos suites' replay
evidence and the determinism regression anchor.

Actions
-------
``raise``
    Raise :class:`FaultInjected` (an infrastructure failure — it is
    deliberately *not* a :class:`~repro.exceptions.ReproError`, so the
    serving layer treats it as a backend fault to degrade around, never
    as a caller error to 400 on).
``timeout``
    Raise :class:`asyncio.TimeoutError` — the deadline fired.
``reset``
    Raise :class:`ConnectionResetError` — the peer vanished
    (socket-layer points).
``crash``
    Raise :class:`WorkerCrash` — a worker process died (the runner's
    fan-out points).
``delay``
    Advance the plan's :class:`~repro.faults.clock.VirtualClock` by
    ``delay_seconds`` — time passes without anybody sleeping.
``call``
    Invoke ``spec.callback()`` — the escape hatch chaos tests use to
    script precise interleavings (not expressible in JSON plans).

Activation installs the plan as the process-global plan consulted by
every :meth:`FaultPoint.fire`:

>>> plan = FaultPlan([FaultSpec("serve.backend.simulate", "raise")])
>>> with plan.activate():
...     pass  # instrumented code now fails per the schedule

JSON round-trip (:meth:`FaultPlan.from_dict` / :meth:`FaultPlan.to_dict`)
backs the CLI ``--fault-plan`` flag; see ``docs/fault-injection.md``
for the schema.
"""

from __future__ import annotations

import asyncio
import contextlib
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.faults.clock import VirtualClock
from repro.faults.points import _set_active

__all__ = [
    "FaultInjected",
    "WorkerCrash",
    "FaultSpec",
    "FaultEvent",
    "FaultPlan",
]

_ACTIONS = ("raise", "timeout", "reset", "crash", "delay", "call")


class FaultInjected(RuntimeError):
    """An injected infrastructure failure.

    Deliberately rooted at :class:`RuntimeError` rather than
    ``ReproError``: the serving layer maps ``ReproError`` to HTTP 400
    (caller mistakes), while injected faults must exercise the
    *backend-failure* paths — degradation, retries, waiter wake-ups.
    """


class WorkerCrash(FaultInjected):
    """An injected worker-process death (the runner retries the chunk)."""


@dataclass(frozen=True)
class FaultSpec:
    """One injection rule: where, what, how often.

    Attributes
    ----------
    point:
        Fault-point name the rule matches (exact match).
    action:
        One of ``raise`` / ``timeout`` / ``reset`` / ``crash`` /
        ``delay`` / ``call`` (see the module docstring).
    probability:
        Chance an eligible firing injects, decided by the plan's seeded
        generator.  1.0 (the default) injects on every eligible firing
        without consuming randomness.
    max_fires:
        Stop injecting after this many injections (None = unlimited).
    skip_first:
        Let this many matching firings pass before becoming eligible
        (e.g. "the second table build fails").
    delay_seconds:
        Virtual-time advance for ``delay`` actions.
    message:
        Text carried by the injected exception.
    callback:
        Callable for ``call`` actions (test-only; not serializable).
    """

    point: str
    action: str = "raise"
    probability: float = 1.0
    max_fires: Optional[int] = None
    skip_first: int = 0
    delay_seconds: float = 0.0
    message: str = ""
    callback: Optional[Callable[[], None]] = None

    def validate(self) -> None:
        if self.action not in _ACTIONS:
            raise ValueError(
                f"action must be one of {_ACTIONS}, got {self.action!r}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability must be in [0, 1], got {self.probability}"
            )
        if self.max_fires is not None and self.max_fires < 0:
            raise ValueError(f"max_fires must be >= 0, got {self.max_fires}")
        if self.skip_first < 0:
            raise ValueError(f"skip_first must be >= 0, got {self.skip_first}")
        if self.action == "delay" and self.delay_seconds < 0:
            raise ValueError(
                f"delay_seconds must be >= 0, got {self.delay_seconds}"
            )
        if self.action == "call" and self.callback is None:
            raise ValueError("a 'call' spec needs a callback")

    def to_dict(self) -> Dict[str, Any]:
        if self.callback is not None:
            raise ValueError("'call' specs with callbacks are not serializable")
        out: Dict[str, Any] = {"point": self.point, "action": self.action}
        if self.probability != 1.0:
            out["probability"] = self.probability
        if self.max_fires is not None:
            out["max_fires"] = self.max_fires
        if self.skip_first:
            out["skip_first"] = self.skip_first
        if self.action == "delay":
            out["delay_seconds"] = self.delay_seconds
        if self.message:
            out["message"] = self.message
        return out


@dataclass(frozen=True)
class FaultEvent:
    """One entry of a plan's replay log."""

    sequence: int  #: 0-based index of the ``fire()`` call under this plan
    point: str
    action: Optional[str]  #: the injected action, or None (passed through)
    context: Tuple[Tuple[str, Any], ...] = field(default=())

    def injected(self) -> bool:
        return self.action is not None


class FaultPlan:
    """A deterministic, seeded fault schedule over the point catalog."""

    def __init__(
        self,
        specs: Sequence[FaultSpec],
        seed: int = 0,
        clock: Optional[VirtualClock] = None,
        name: str = "",
    ) -> None:
        from repro.utils.rng import ensure_rng

        for spec in specs:
            spec.validate()
            if spec.action == "delay" and clock is None:
                raise ValueError(
                    f"spec for {spec.point!r} uses a 'delay' action but the "
                    "plan has no VirtualClock to advance"
                )
        self.specs: Tuple[FaultSpec, ...] = tuple(specs)
        self.seed = int(seed)
        self.clock = clock
        self.name = name or f"plan-{self.seed}"
        self._rng = ensure_rng(self.seed)
        self._lock = threading.Lock()
        self._by_point: Dict[str, List[int]] = {}
        for index, spec in enumerate(self.specs):
            self._by_point.setdefault(spec.point, []).append(index)
        self._seen: List[int] = [0] * len(self.specs)  # matching firings
        self._fired: List[int] = [0] * len(self.specs)  # injections done
        self._sequence = 0
        self.events: List[FaultEvent] = []

    # -- schedule evaluation --------------------------------------------

    def trigger(self, point_name: str, **context) -> None:
        """Decide and perform the injection (if any) for one firing.

        Called from :meth:`FaultPoint.fire` — potentially from several
        threads at once; the decision (counters + RNG draw) is taken
        under a lock, the injection itself (raise / clock advance /
        callback) happens outside it.
        """
        with self._lock:
            sequence = self._sequence
            self._sequence += 1
            chosen: Optional[FaultSpec] = None
            for index in self._by_point.get(point_name, ()):
                spec = self.specs[index]
                self._seen[index] += 1
                if chosen is not None:
                    continue  # keep counting later specs' seen totals
                if self._seen[index] <= spec.skip_first:
                    continue
                if spec.max_fires is not None and (
                    self._fired[index] >= spec.max_fires
                ):
                    continue
                if spec.probability < 1.0 and (
                    float(self._rng.random()) >= spec.probability
                ):
                    continue
                self._fired[index] += 1
                chosen = spec
            self.events.append(
                FaultEvent(
                    sequence=sequence,
                    point=point_name,
                    action=None if chosen is None else chosen.action,
                    context=tuple(sorted(context.items())),
                )
            )
        if chosen is None:
            return
        self._inject(chosen)

    def _inject(self, spec: FaultSpec) -> None:
        message = spec.message or f"injected fault at {spec.point}"
        if spec.action == "raise":
            raise FaultInjected(message)
        if spec.action == "timeout":
            raise asyncio.TimeoutError(message)
        if spec.action == "reset":
            raise ConnectionResetError(message)
        if spec.action == "crash":
            raise WorkerCrash(message)
        if spec.action == "delay":
            assert self.clock is not None  # enforced at construction
            self.clock.advance(spec.delay_seconds)
            return
        spec.callback()  # "call" (validated at construction)

    # -- bookkeeping -----------------------------------------------------

    @property
    def injected_count(self) -> int:
        with self._lock:
            return sum(self._fired)

    def fired_events(self) -> List[FaultEvent]:
        """The injections only (the replay-determinism fingerprint)."""
        with self._lock:
            return [event for event in self.events if event.injected()]

    # -- activation ------------------------------------------------------

    @contextlib.contextmanager
    def activate(self):
        """Install this plan as the process-global active plan."""
        _set_active(self)
        try:
            yield self
        finally:
            _set_active(None)

    # -- (de)serialization ----------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "seed": self.seed,
            "faults": [spec.to_dict() for spec in self.specs],
        }

    @classmethod
    def from_dict(
        cls, payload: Dict[str, Any], clock: Optional[VirtualClock] = None
    ) -> "FaultPlan":
        if not isinstance(payload, dict):
            raise ValueError("a fault plan must be a JSON object")
        raw_specs = payload.get("faults")
        if not isinstance(raw_specs, list) or not raw_specs:
            raise ValueError("fault plan needs a non-empty 'faults' array")
        allowed = {
            "point", "action", "probability", "max_fires",
            "skip_first", "delay_seconds", "message",
        }
        specs = []
        for raw in raw_specs:
            if not isinstance(raw, dict) or "point" not in raw:
                raise ValueError(f"each fault needs a 'point': {raw!r}")
            unknown = set(raw) - allowed
            if unknown:
                raise ValueError(
                    f"unknown fault spec fields {sorted(unknown)} in {raw!r}"
                )
            specs.append(FaultSpec(**raw))
        return cls(
            specs,
            seed=int(payload.get("seed", 0)),
            clock=clock,
            name=str(payload.get("name", "")),
        )

    def __repr__(self) -> str:
        return (
            f"FaultPlan(name={self.name!r}, seed={self.seed}, "
            f"specs={len(self.specs)}, injected={self.injected_count})"
        )
