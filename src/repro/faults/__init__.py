"""Deterministic fault injection and virtual time (``repro.faults``).

The package has three layers:

* :mod:`repro.faults.points` — named fault-point seams instrumented
  into production code (``faults.point(...)`` / ``fire()``), a
  zero-cost no-op unless a plan is active;
* :mod:`repro.faults.plan` — seed-scripted :class:`FaultPlan`
  schedules deciding which firings inject which failures;
* :mod:`repro.faults.clock` — the injectable :class:`SystemClock` /
  :class:`VirtualClock` pair behind every timing decision in the
  serving layer.

:mod:`repro.faults.chaos` builds on all three to run seeded chaos
rounds against the estimation service; see ``docs/fault-injection.md``.
"""

from repro.faults.clock import SystemClock, VirtualClock
from repro.faults.plan import (
    FaultEvent,
    FaultInjected,
    FaultPlan,
    FaultSpec,
    WorkerCrash,
)
from repro.faults.points import FaultPoint, active_plan, catalog, point

__all__ = [
    "FaultPoint",
    "point",
    "catalog",
    "active_plan",
    "FaultPlan",
    "FaultSpec",
    "FaultEvent",
    "FaultInjected",
    "WorkerCrash",
    "SystemClock",
    "VirtualClock",
]
