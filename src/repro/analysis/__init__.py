"""Analytical layer: exact, asymptotic, and model-based tree-size theory."""

from repro.analysis.affinity_theory import (
    affinity_marginal,
    affinity_tree_size,
    affinity_tree_size_with_replacement,
    disaffinity_marginal,
    disaffinity_tree_size,
    disaffinity_tree_size_with_replacement,
)
from repro.analysis.general import (
    delta2_from_rings,
    lhat_from_rings_leaf,
    lhat_from_rings_throughout,
    mean_distance_from_rings,
    normalized_series,
)
from repro.analysis.kary_asymptotic import (
    delta2_asymptotic,
    h_exact,
    h_predicted,
    lhat_asymptotic,
    lhat_per_receiver_predicted,
    lm_asymptotic,
    lm_exact_via_conversion,
)
from repro.analysis.kary_exact import (
    delta2_lhat,
    delta_lhat,
    lhat_leaf,
    lhat_throughout,
    num_interior_sites,
    num_leaf_sites,
)
from repro.analysis.kary_distinct import conversion_error, lm_leaf_distinct_exact
from repro.analysis.law_range import LawRange, law_validity_range
from repro.analysis.kary_variance import (
    coefficient_of_variation,
    lhat_leaf_std,
    lhat_leaf_variance,
)
from repro.analysis.pricing import ScalingLawTariff, TariffAudit, audit_tariff
from repro.analysis.reachability_models import (
    exponential_rings,
    figure8_families,
    power_law_rings,
    super_exponential_rings,
)
from repro.analysis.scaling import (
    CHUANG_SIRBU_EXPONENT,
    chuang_sirbu_prediction,
    draws_for_expected_distinct,
    expected_distinct,
    fit_scaling_exponent,
    multicast_efficiency,
)

__all__ = [
    "affinity_marginal",
    "affinity_tree_size",
    "affinity_tree_size_with_replacement",
    "disaffinity_marginal",
    "disaffinity_tree_size",
    "disaffinity_tree_size_with_replacement",
    "delta2_from_rings",
    "lhat_from_rings_leaf",
    "lhat_from_rings_throughout",
    "mean_distance_from_rings",
    "normalized_series",
    "delta2_asymptotic",
    "h_exact",
    "h_predicted",
    "lhat_asymptotic",
    "lhat_per_receiver_predicted",
    "lm_asymptotic",
    "lm_exact_via_conversion",
    "delta2_lhat",
    "delta_lhat",
    "lhat_leaf",
    "lhat_throughout",
    "num_interior_sites",
    "num_leaf_sites",
    "exponential_rings",
    "figure8_families",
    "power_law_rings",
    "super_exponential_rings",
    "conversion_error",
    "lm_leaf_distinct_exact",
    "coefficient_of_variation",
    "lhat_leaf_std",
    "lhat_leaf_variance",
    "LawRange",
    "law_validity_range",
    "ScalingLawTariff",
    "TariffAudit",
    "audit_tariff",
    "CHUANG_SIRBU_EXPONENT",
    "chuang_sirbu_prediction",
    "draws_for_expected_distinct",
    "expected_distinct",
    "fit_scaling_exponent",
    "multicast_efficiency",
]
