"""Exact ``L(m)`` for *distinct* receivers on k-ary trees.

The paper computes the with-replacement ``L̂(n)`` (Eq. 4) because it "is
easier to analyze than L(m)", then reaches ``L(m)`` through the Eq. 1
conversion.  For integer ``k`` the distinct-receiver expectation is in
fact also exact — it is hypergeometric rather than binomial:

A level-``l`` link subtends ``k^{D−l}`` of the ``M = k^D`` leaves.
Choosing ``m`` distinct leaves uniformly, the link is *unused* iff all
``m`` choices avoid its subtree:

    P(unused) = C(M − k^{D−l}, m) / C(M, m)

so

    L(m) = Σ_{l=1..D} k^l · (1 − C(M − k^{D−l}, m)/C(M, m))

This module evaluates that sum with log-gamma arithmetic (stable for
``M`` up to the paper's 131072 and beyond) and provides the resulting
*exact* error of the paper's Eq. 1 conversion — a quantitative bound the
paper itself never states.
"""

from __future__ import annotations

from math import lgamma
from typing import Union

import numpy as np

from repro.analysis.kary_asymptotic import lm_exact_via_conversion
from repro.exceptions import AnalysisError

__all__ = ["lm_leaf_distinct_exact", "conversion_error"]

ArrayLike = Union[int, float, np.ndarray]


def _log_comb(n: float, k: np.ndarray) -> np.ndarray:
    """``ln C(n, k)`` elementwise via log-gamma (requires 0 <= k <= n)."""
    n_arr = np.broadcast_to(np.asarray(n, dtype=float), np.shape(k)).astype(float)
    k_arr = np.asarray(k, dtype=float)
    out = np.empty(k_arr.shape, dtype=float)
    flat_n = n_arr.ravel()
    flat_k = k_arr.ravel()
    flat_out = out.ravel()
    for i in range(flat_k.size):
        flat_out[i] = (
            lgamma(flat_n[i] + 1.0)
            - lgamma(flat_k[i] + 1.0)
            - lgamma(flat_n[i] - flat_k[i] + 1.0)
        )
    return out


def lm_leaf_distinct_exact(k: int, depth: int, m: ArrayLike) -> np.ndarray:
    """Exact expected tree size for ``m`` distinct leaf receivers.

    Parameters
    ----------
    k:
        Integer tree degree >= 2 (the hypergeometric argument needs an
        integer leaf count, unlike the Eq. 4 sum).
    depth:
        Tree depth ``D``.
    m:
        Number of distinct receivers, ``1 <= m <= k^D`` (integer-valued;
        arrays allowed).

    Returns
    -------
    numpy.ndarray
        ``E[L(m)]``, exactly (up to float rounding).
    """
    if not isinstance(k, (int, np.integer)) or k < 2:
        raise AnalysisError(f"k must be an integer >= 2, got {k!r}")
    if depth < 1:
        raise AnalysisError(f"depth must be >= 1, got {depth}")
    m_arr = np.asarray(m, dtype=float)
    if np.any(m_arr < 1) or np.any(m_arr != np.rint(m_arr)):
        raise AnalysisError("m must be positive integers")
    big_m = float(k**depth)
    if np.any(m_arr > big_m):
        raise AnalysisError(f"m must be at most M = {int(big_m)}")

    log_total = _log_comb(big_m, m_arr)
    result = np.zeros(m_arr.shape, dtype=float)
    for level in range(1, depth + 1):
        subtree_leaves = float(k ** (depth - level))
        avoid = big_m - subtree_leaves
        # C(avoid, m) is zero once m > avoid: the link is then certain.
        feasible = m_arr <= avoid
        p_unused = np.zeros(m_arr.shape, dtype=float)
        if np.any(feasible):
            log_hit = _log_comb(avoid, m_arr[feasible])
            p_unused[feasible] = np.exp(log_hit - log_total[feasible])
        result += float(k**level) * (1.0 - p_unused)
    return result


def conversion_error(k: int, depth: int, m: ArrayLike) -> np.ndarray:
    """Relative error of the paper's Eq. 1 conversion at each ``m``.

    ``(L̂(n(m)) − L(m)) / L(m)`` where the first term is Eq. 4 evaluated
    at the converted ``n`` (the paper's route to ``L(m)``) and the
    second is the exact hypergeometric value.  Positive values mean the
    conversion *overestimates* the tree.

    The paper argues the conversion is exact in the large-``M`` limit;
    this function shows how fast: errors are already below 1% for
    ``D >= 10`` trees away from saturation.
    """
    exact = lm_leaf_distinct_exact(k, depth, m)
    m_arr = np.asarray(m, dtype=float)
    big_m = float(k**depth)
    converted = np.empty(m_arr.shape, dtype=float)
    interior = m_arr < big_m
    converted[interior] = lm_exact_via_conversion(k, depth, m_arr[interior])
    # m = M has no finite n; the tree is certainly full.
    converted[~interior] = sum(k**l for l in range(1, depth + 1))
    return (converted - exact) / exact
