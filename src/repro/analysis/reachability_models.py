"""Synthetic reachability-function families (Sections 4.2–4.3, Figure 8).

The paper contrasts three growth regimes for ``S(r)``:

* **exponential** — ``S(r) = b^r`` (random graphs, k-ary trees; the regime
  where the Section-3 asymptotics hold),
* **power-law** — ``S(r) ∝ r^λ`` (slower than exponential; geographic /
  mesh-like networks),
* **super-exponential** — ``S(r) ∝ e^{λ·r²}`` (faster than exponential).

For Figure 8 the three are normalized to agree at the horizon:
``S(D)`` identical for all three families (the paper's normalization),
which :func:`figure8_families` arranges.  Feed the resulting rings into
:func:`repro.analysis.general.lhat_from_rings_leaf` to reproduce the
figure's three curves.
"""

from __future__ import annotations

import math
from typing import Dict

import numpy as np

from repro.exceptions import AnalysisError

__all__ = [
    "exponential_rings",
    "power_law_rings",
    "super_exponential_rings",
    "figure8_families",
]


def _radii(depth: int) -> np.ndarray:
    if depth < 1:
        raise AnalysisError(f"depth must be >= 1, got {depth}")
    return np.arange(1, depth + 1, dtype=float)


def exponential_rings(depth: int, base: float = 2.0) -> np.ndarray:
    """``S(r) = base^r`` for r = 1..D (with ``S(0) = 1``)."""
    if base <= 1.0:
        raise AnalysisError(f"base must be > 1, got {base}")
    r = _radii(depth)
    return np.concatenate([[1.0], base**r])


def power_law_rings(
    depth: int, exponent: float, horizon_size: float
) -> np.ndarray:
    """``S(r) = c·r^exponent`` scaled so that ``S(D) = horizon_size``."""
    if exponent <= 0:
        raise AnalysisError(f"exponent must be positive, got {exponent}")
    if horizon_size < 1:
        raise AnalysisError(f"horizon_size must be >= 1, got {horizon_size}")
    r = _radii(depth)
    scale = horizon_size / depth**exponent
    return np.concatenate([[1.0], scale * r**exponent])


def super_exponential_rings(depth: int, horizon_size: float) -> np.ndarray:
    """``S(r) = e^{λ·r²}`` with λ chosen so ``S(D) = horizon_size``."""
    if horizon_size <= 1:
        raise AnalysisError(f"horizon_size must be > 1, got {horizon_size}")
    r = _radii(depth)
    lam = math.log(horizon_size) / depth**2
    return np.concatenate([[1.0], np.exp(lam * r**2)])


def figure8_families(
    depth: int = 20, base: float = 2.0, power_exponent: float | None = None
) -> Dict[str, np.ndarray]:
    """The three Figure-8 reachability families, normalized at ``S(D)``.

    Parameters
    ----------
    depth:
        Network horizon ``D``.
    base:
        Exponential growth base (the paper draws ``S(r) = 2^r``).
    power_exponent:
        λ of the power-law family; defaults to ``D·ln b / ln D`` so the
        un-scaled power law would also hit ``b^D`` at ``r = D`` (making
        ``c = 1``), matching the paper's "constants were normalized so
        that S(D) is the same for all three networks".

    Returns
    -------
    dict
        ``{"exponential": rings, "power_law": rings,
        "super_exponential": rings}``.
    """
    horizon = base**depth
    if power_exponent is None:
        power_exponent = depth * math.log(base) / math.log(depth)
    return {
        "exponential": exponential_rings(depth, base),
        "power_law": power_law_rings(depth, power_exponent, horizon),
        "super_exponential": super_exponential_rings(depth, horizon),
    }
