"""Exact variance of the k-ary tree size — one moment beyond the paper.

Section 3 computes only the *mean* ``L̂(n)``.  The variance is equally
closed-form and decides how many Monte-Carlo samples any measurement of
the law actually needs (and how tight the concentration behind Eq. 1's
"tightly centered" claim is).

With leaf receivers, the tree size is a sum of link-usage indicators
``L = Σ_a X_a``.  For links ``a, b`` with subtree-hit probabilities
``p_a = k^{−l_a}``, ``p_b = k^{−l_b}``:

* ``P(X_a = 0) = (1 − p_a)^n``;
* ``P(X_a = 0, X_b = 0) = (1 − p_a − p_b + p_ab)^n`` where ``p_ab`` is
  the probability one receiver hits *both* subtrees: 0 for unrelated
  links, ``p_deeper`` when one link is an ancestor of the other (the
  deeper subtree is inside the shallower one).

Counting pairs by level is enough, because probabilities only depend on
levels and the ancestor relation: at levels ``i < j`` there are
``k^j`` ancestor-related pairs (each level-j link has exactly one
level-i ancestor) and ``k^{i+j} − k^j`` unrelated ones; at equal levels
``i = j`` there are ``k^i`` identical pairs and ``k^{2i} − k^i``
distinct (necessarily unrelated) ones.  The whole computation is
O(D²) per ``n``.

Everything extends verbatim to any radius profile with
``S(r)``-independent subtrees, but the exact pair accounting above is a
tree property, so the module stays k-ary (matching the paper's setting).
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.analysis.kary_exact import _check_kd, lhat_leaf
from repro.exceptions import AnalysisError

__all__ = [
    "lhat_leaf_variance",
    "lhat_leaf_std",
    "coefficient_of_variation",
]

ArrayLike = Union[int, float, np.ndarray]


def lhat_leaf_variance(k: float, depth: int, n: ArrayLike) -> np.ndarray:
    """Exact ``Var[L̂(n)]`` for leaf receivers on a k-ary tree.

    Parameters
    ----------
    k:
        Tree degree (> 1; real values allowed, as in Eq. 4).
    depth:
        Tree depth ``D``.
    n:
        Number of receivers drawn with replacement (scalar or array).

    Returns
    -------
    numpy.ndarray
        The variance, with the same shape as ``n``.
    """
    _check_kd(k, depth)
    n_arr = np.asarray(n, dtype=float)
    if np.any(n_arr < 0):
        raise AnalysisError("n must be non-negative")
    k = float(k)

    levels = np.arange(1, depth + 1, dtype=float)
    p = k**-levels  # hit probability per level
    counts = k**levels  # links per level
    miss = np.exp(np.multiply.outer(np.log1p(-p), n_arr))  # (1-p_l)^n

    def both_miss(prob: float) -> np.ndarray:
        """``(1 − prob)^n`` robust to prob = 1 (e.g. the two level-1
        links of a binary tree exhaust the probability space)."""
        with np.errstate(divide="ignore", invalid="ignore"):
            out = np.exp(n_arr * np.log1p(-prob))
        return np.nan_to_num(out, nan=1.0)  # the n = 0 corner

    variance = np.zeros(n_arr.shape, dtype=float)

    # Diagonal terms: Var[X_a] = (1-p)^n (1 - (1-p)^n), k^l links each.
    for li in range(depth):
        variance += counts[li] * miss[li] * (1.0 - miss[li])

    # Off-diagonal terms: Cov[X_a, X_b] = P(a,b both unused) − P(a
    # unused)P(b unused), since Cov of indicators equals Cov of their
    # complements.
    for li in range(depth):
        for lj in range(li, depth):
            p_i, p_j = p[li], p[lj]
            if lj == li:
                # Distinct same-level links are disjoint: p_ab = 0.
                num_pairs = counts[li] * counts[li] - counts[li]
                if num_pairs <= 0:
                    continue
                variance += num_pairs * (
                    both_miss(p_i + p_j) - miss[li] * miss[lj]
                )
                continue
            # Ancestor pairs: the level-j link's subtree lies inside its
            # level-i ancestor's, so p_ab = p_j and
            # 1 − p_i − p_j + p_j = 1 − p_i.
            ancestor_pairs = counts[lj]
            both_related = miss[li]
            # Unrelated pairs: disjoint subtrees, p_ab = 0.
            unrelated_pairs = counts[li] * counts[lj] - counts[lj]
            both_unrelated = both_miss(p_i + p_j)
            # Factor 2: ordered pairs (a, b) and (b, a).
            variance += 2.0 * ancestor_pairs * (
                both_related - miss[li] * miss[lj]
            )
            variance += 2.0 * unrelated_pairs * (
                both_unrelated - miss[li] * miss[lj]
            )
    return np.maximum(variance, 0.0)


def lhat_leaf_std(k: float, depth: int, n: ArrayLike) -> np.ndarray:
    """Exact standard deviation of the tree size, ``√Var[L̂(n)]``."""
    return np.sqrt(lhat_leaf_variance(k, depth, n))


def coefficient_of_variation(k: float, depth: int, n: ArrayLike) -> np.ndarray:
    """``σ/μ`` of the tree size — the concentration behind Eq. 1.

    The paper's conversion between ``n`` and ``m`` leans on the tree
    size (and distinct-site count) concentrating "tightly" around the
    mean for large ``M``.  This ratio quantifies it: it decays roughly
    like ``M^{−1/2}`` at fixed ``x = n/M``.
    """
    n_arr = np.asarray(n, dtype=float)
    if np.any(n_arr < 1):
        raise AnalysisError("coefficient of variation needs n >= 1")
    mean = lhat_leaf(k, depth, n_arr)
    return lhat_leaf_std(k, depth, n_arr) / mean
