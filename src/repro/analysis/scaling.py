"""The Chuang-Sirbu scaling law and the n ↔ m conversion (Eqs. 1–2).

Chuang & Sirbu fit ``L(m) ∝ m^0.8`` across topologies.  This module holds
the law itself, the exponent estimator used to test it, and the paper's
conversion between the two receiver-count conventions:

* ``m`` — distinct receiver sites (what Chuang-Sirbu measure),
* ``n`` — draws with replacement (what the k-ary analysis computes).

Drawing ``n`` times with replacement from ``M`` sites hits on average
``m̂ = M·(1 − (1 − 1/M)^n)`` distinct sites, and in the large-``M`` limit
the distribution of ``m`` concentrates, justifying
``L(m) ≈ L̂(n(m))`` with ``n(m) = ln(1 − m/M)/ln(1 − 1/M)`` (Eq. 1).
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from repro.exceptions import AnalysisError
from repro.utils.stats import LinearFit, power_law_fit

__all__ = [
    "CHUANG_SIRBU_EXPONENT",
    "expected_distinct",
    "draws_for_expected_distinct",
    "chuang_sirbu_prediction",
    "fit_scaling_exponent",
    "multicast_efficiency",
]

ArrayLike = Union[float, int, np.ndarray]

#: The empirical exponent of the Chuang-Sirbu law, ``L(m) ∝ m^0.8``.
CHUANG_SIRBU_EXPONENT = 0.8


def expected_distinct(n: ArrayLike, population: float) -> np.ndarray:
    """Expected number of distinct sites after ``n`` uniform draws.

    ``m̂ = M·(1 − (1 − 1/M)^n)`` — the paper's relation between ``n`` and
    ``m̂``; in the large-``M``, fixed ``x = n/M`` limit this is the
    ``y = 1 − e^{−x}`` of Section 3.
    """
    if population < 1:
        raise AnalysisError(f"population must be >= 1, got {population}")
    n_arr = np.asarray(n, dtype=float)
    if np.any(n_arr < 0):
        raise AnalysisError("n must be non-negative")
    if population == 1:
        return np.where(n_arr > 0, 1.0, 0.0)
    return population * -np.expm1(n_arr * np.log1p(-1.0 / population))


def draws_for_expected_distinct(m: ArrayLike, population: float) -> np.ndarray:
    """Inverse of :func:`expected_distinct`: Eq. 1's ``n(m)``.

    ``n = ln(1 − m/M) / ln(1 − 1/M)``.  Requires ``0 <= m < M``; ``m``
    may be real (the conversion is used on continuous sweeps).
    """
    if population <= 1:
        raise AnalysisError(f"population must be > 1, got {population}")
    m_arr = np.asarray(m, dtype=float)
    if np.any(m_arr < 0):
        raise AnalysisError("m must be non-negative")
    if np.any(m_arr >= population):
        raise AnalysisError(
            f"m must be below the population {population} (got max "
            f"{float(np.max(m_arr))}); all-sites groups have no finite n"
        )
    return np.log1p(-m_arr / population) / np.log1p(-1.0 / population)


def chuang_sirbu_prediction(
    m: ArrayLike, exponent: float = CHUANG_SIRBU_EXPONENT
) -> np.ndarray:
    """The law's normalized tree size: ``L(m)/ū = m^exponent``.

    Normalizing by the average unicast path length makes the law's
    constant exactly 1: a single receiver's "tree" is one average unicast
    path (``L(1)/ū = 1``), and the paper's Figure 1 draws this very line.
    """
    m_arr = np.asarray(m, dtype=float)
    if np.any(m_arr < 0):
        raise AnalysisError("m must be non-negative")
    return m_arr**exponent


def fit_scaling_exponent(
    m: Sequence[float], normalized_tree_size: Sequence[float]
) -> LinearFit:
    """Estimate the scaling exponent from measured ``L(m)/ū`` data.

    Ordinary least squares on the log-log series; the returned fit's
    ``slope`` is the exponent the Chuang-Sirbu law claims is ≈ 0.8.
    Points with ``m <= 1`` are dropped (m = 1 is the anchor, not part of
    the slope).
    """
    m_arr = np.asarray(m, dtype=float)
    y_arr = np.asarray(normalized_tree_size, dtype=float)
    if m_arr.shape != y_arr.shape:
        raise AnalysisError(
            f"m and series shapes differ: {m_arr.shape} vs {y_arr.shape}"
        )
    keep = m_arr > 1.0
    if np.count_nonzero(keep) < 2:
        raise AnalysisError("need at least two points with m > 1 to fit")
    return power_law_fit(m_arr[keep], y_arr[keep])


def multicast_efficiency(tree_size: ArrayLike, m: ArrayLike, mean_path: ArrayLike) -> np.ndarray:
    """Multicast-to-unicast cost ratio ``δ = L(m)/(m·ū)``.

    1.0 means multicast saves nothing; under the Chuang-Sirbu law
    ``δ ≈ m^{−0.2}``.
    """
    tree = np.asarray(tree_size, dtype=float)
    m_arr = np.asarray(m, dtype=float)
    path = np.asarray(mean_path, dtype=float)
    if np.any(m_arr <= 0) or np.any(path <= 0):
        raise AnalysisError("m and mean path length must be positive")
    return tree / (m_arr * path)
