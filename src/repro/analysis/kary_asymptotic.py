"""Asymptotic k-ary forms (Section 3.2–3.3, Eqs. 7–18).

The chain of approximations the paper derives from the exact sums:

1. Approximating ``Δ²L̂``'s sum by an integral and taking the large-``n``,
   large-``M``, fixed ``x = n/M`` limit gives (Eq. 9)

       Δ²L̂(n) ≈ −e^{−x·k^{−1/2}} / ((n + 1)·ln k)

2. Normalizing by ``ū = D`` and wrapping in a log defines (Eq. 11)

       h(x) ≡ −ln( −x·(M·ln M)·Δ²L̂(xM)/ū )

   whose predicted form is simply ``h(x) ≈ x·k^{−1/2}`` (Eq. 12): the tree
   degree only rescales ``h`` — the paper's candidate explanation for the
   law's universality.  Figure 2 checks Eq. 12 against the exact Eq. 6.

3. Integrating back up with the crude split of Eq. 13 yields (Eqs. 14–16)

       L̂(n)/n ≈ 1/ln k − ln(n/M)/ln k        (5 < n < M)

   — linear growth with a logarithmic correction, *not* a power law.
   Figure 3 (leaf receivers) and Figure 5 (receivers throughout) check it.

4. Converting ``n → m`` via Eq. 1 gives the paper's alternative to the
   Chuang-Sirbu law (Eq. 18), which Figure 4 shows is numerically close
   to ``m^0.8`` anyway.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.analysis.kary_exact import (
    _as_n,
    _check_kd,
    delta2_lhat,
    num_leaf_sites,
)
from repro.analysis.scaling import draws_for_expected_distinct
from repro.exceptions import AnalysisError

__all__ = [
    "h_exact",
    "h_predicted",
    "delta2_asymptotic",
    "lhat_per_receiver_predicted",
    "lhat_asymptotic",
    "lm_exact_via_conversion",
    "lm_asymptotic",
]

ArrayLike = Union[float, int, np.ndarray]


def delta2_asymptotic(k: float, depth: int, n: ArrayLike) -> np.ndarray:
    """Equation 9: the asymptotic form of ``Δ²L̂(n)``."""
    _check_kd(k, depth)
    n_arr = _as_n(n)
    big_m = num_leaf_sites(k, depth)
    x = n_arr / big_m
    return -np.exp(-x * float(k) ** -0.5) / ((n_arr + 1.0) * np.log(k))


def h_exact(k: float, depth: int, x: ArrayLike) -> np.ndarray:
    """Equation 11 evaluated with the exact ``Δ²L̂`` of Equation 6.

    ``h(x) = −ln(−x·(M ln M)·Δ²L̂(xM)/ū)`` with ``ū = D``.  This is the
    quantity plotted in Figure 2; its definition deliberately contains no
    explicit reference to the tree degree.

    Parameters
    ----------
    k / depth:
        Tree degree and depth.
    x:
        The receiver fraction ``n/M``; must be positive (``x < 1/M``
        means "less than one receiver" and makes ``h`` diverge, as the
        paper notes).
    """
    _check_kd(k, depth)
    x_arr = np.asarray(x, dtype=float)
    if np.any(x_arr <= 0):
        raise AnalysisError("x must be positive (x = n/M with n >= 1)")
    big_m = num_leaf_sites(k, depth)
    n = x_arr * big_m
    d2 = delta2_lhat(k, depth, n)
    inner = -x_arr * (big_m * np.log(big_m)) * d2 / float(depth)
    if np.any(inner <= 0):
        raise AnalysisError(
            "h(x) undefined: the inner expression must be positive "
            "(x is likely far outside (0, 1])"
        )
    return -np.log(inner)


def h_predicted(k: float, x: ArrayLike) -> np.ndarray:
    """Equation 12: the predicted straight line ``h(x) = x·k^{−1/2}``."""
    if not k > 1.0:
        raise AnalysisError(f"k must be > 1, got {k}")
    x_arr = np.asarray(x, dtype=float)
    return x_arr * float(k) ** -0.5


def lhat_per_receiver_predicted(k: float, n_over_m: ArrayLike) -> np.ndarray:
    """Equation 16's straight line: ``L̂(n)/n = 1/ln k − ln(n/M)/ln k``.

    The line drawn through Figures 3 and 5; valid in ``5 < n < M``.
    """
    if not k > 1.0:
        raise AnalysisError(f"k must be > 1, got {k}")
    ratio = np.asarray(n_over_m, dtype=float)
    if np.any(ratio <= 0):
        raise AnalysisError("n/M must be positive")
    log_k = np.log(k)
    return 1.0 / log_k - np.log(ratio) / log_k


def lhat_asymptotic(k: float, depth: int, n: ArrayLike) -> np.ndarray:
    """Equation 14: the integrated asymptotic form of ``L̂(n)``.

    ``L̂(n) ≈ n·D − ((n+1)·ln(n+1) − (n+1)) / ln k`` — boundary conditions
    ``L̂(0) = 0``, ``L̂(1) = D``.
    """
    _check_kd(k, depth)
    n_arr = _as_n(n)
    log_k = np.log(k)
    n1 = n_arr + 1.0
    return n_arr * depth - (n1 * np.log(n1) - n1) / log_k


def lm_exact_via_conversion(k: float, depth: int, m: ArrayLike) -> np.ndarray:
    """``L(m)`` from the exact ``L̂`` and the Eq. 1 conversion.

    ``L(m) ≈ L̂(n(m))`` with ``n(m) = ln(1 − m/M)/ln(1 − 1/M)`` — the
    construction behind Figure 4.  ``m`` must satisfy ``0 <= m < M``.
    """
    from repro.analysis.kary_exact import lhat_leaf

    _check_kd(k, depth)
    big_m = num_leaf_sites(k, depth)
    n = draws_for_expected_distinct(m, big_m)
    return lhat_leaf(k, depth, n)


def lm_asymptotic(k: float, depth: int, m: ArrayLike) -> np.ndarray:
    """Equation 18: the closed asymptotic form of ``L(m)``.

    Substituting ``n = −M·ln(1 − m/M)`` (the large-``M`` limit of Eq. 1)
    into the Eq. 17 form ``L̂(n) ≈ n·(c − ln(n/M)/ln k)`` with
    ``c = D + 1/ln k − ln M/ln k = 1/ln k`` gives

        L(m) ≈ −M·ln(1 − m/M) · (1 − ln(−ln(1 − m/M))) / ln k

    — "most decidedly not of the form L(m) ∝ m^0.8", yet numerically
    close to it (Figure 4).
    """
    _check_kd(k, depth)
    m_arr = np.asarray(m, dtype=float)
    if np.any(m_arr <= 0):
        raise AnalysisError("m must be positive")
    big_m = num_leaf_sites(k, depth)
    if np.any(m_arr >= big_m):
        raise AnalysisError(f"m must be below M = {big_m}")
    log_k = np.log(k)
    neg_log = -np.log1p(-m_arr / big_m)  # -ln(1 - m/M) > 0
    n_eff = big_m * neg_log
    return n_eff * (1.0 - np.log(neg_log)) / log_k
