"""General-network tree-size predictor from ``S(r)`` (Section 4, Eqs. 22–30).

For an arbitrary graph with reachability function ``S(r)``, approximate
the links at radius ``r`` by the ``S(r)`` "uplinks" of the sites there and
assume receivers are equally likely downstream of any of them:

* leaf-style receivers (Eq. 22–23):

      L̂(n) = Σ_{r=1..D} S(r)·(1 − (1 − 1/S(r))^n)

* receivers throughout the network (Eq. 30):

      L̂(n) = Σ_{l=1..D} S(l)·(1 − (1 − (T(D) − T(l−1))/(S(l)·T(D)))^n)

  where ``T(r) = Σ_{j=1..r} S(j)`` counts the (non-source) sites within
  ``r`` hops: a receiver crosses a particular level-``l`` link iff it is
  at or beyond level ``l`` (probability ``(T(D) − T(l−1))/T(D)``) and
  below that specific link (conditional probability ``1/S(l)``).

On a k-ary tree ``S(r) = k^r`` makes both formulas collapse to the exact
Section-3 sums, which the tests verify.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.exceptions import AnalysisError

__all__ = [
    "lhat_from_rings_leaf",
    "lhat_from_rings_throughout",
    "delta2_from_rings",
    "mean_distance_from_rings",
    "normalized_series",
    "variance_from_rings_leaf",
]

ArrayLike = Union[float, int, np.ndarray]


def _check_rings(ring_sizes: np.ndarray) -> np.ndarray:
    rings = np.asarray(ring_sizes, dtype=float)
    if rings.ndim != 1 or rings.shape[0] < 2:
        raise AnalysisError(
            "ring_sizes must be a 1-D array [S(0), S(1), ..., S(D)] with "
            "D >= 1 (index 0 is the source itself)"
        )
    if np.any(rings < 0):
        raise AnalysisError("ring sizes must be non-negative")
    if np.any(rings[1:] <= 0):
        raise AnalysisError(
            "S(r) must be positive for r = 1..D (trim trailing empty rings)"
        )
    return rings


def _as_n(n: ArrayLike) -> np.ndarray:
    arr = np.asarray(n, dtype=float)
    if np.any(arr < 0):
        raise AnalysisError("n must be non-negative")
    return arr


def _miss_matrix(use_prob: np.ndarray, n: np.ndarray) -> np.ndarray:
    """``(1 − p)^n`` per (ring, n) pair, robust to ``p = 1``.

    A ring with ``S(r) = 1`` has use probability 1, whose log-miss is
    ``−inf``; the ``−inf × 0`` corner (n = 0) must come out as 1 (an
    empty receiver set uses no links).
    """
    with np.errstate(divide="ignore", invalid="ignore"):
        log_miss = np.log1p(-use_prob)
        out = np.exp(np.multiply.outer(log_miss, n))
    return np.nan_to_num(out, nan=1.0)


def lhat_from_rings_leaf(ring_sizes: np.ndarray, n: ArrayLike) -> np.ndarray:
    """Equation 23: the leaf-receiver predictor from ``S(r)``.

    Parameters
    ----------
    ring_sizes:
        ``[S(0), S(1), ..., S(D)]`` with ``S(0) = 1`` the source.  Ring
        sizes may be fractional (averaged profiles, synthetic models).
    n:
        Receivers drawn with replacement (scalar or array).
    """
    rings = _check_rings(ring_sizes)
    n_arr = _as_n(n)
    s = rings[1:]
    miss = _miss_matrix(1.0 / s, n_arr)
    return np.tensordot(s, 1.0 - miss, axes=(0, 0))


def lhat_from_rings_throughout(
    ring_sizes: np.ndarray, n: ArrayLike
) -> np.ndarray:
    """Equation 30: the receivers-anywhere predictor from ``S(r)``."""
    rings = _check_rings(ring_sizes)
    n_arr = _as_n(n)
    s = rings[1:]
    t = np.cumsum(s)  # T(r) for r = 1..D, source excluded
    total = t[-1]
    t_before = np.concatenate([[0.0], t[:-1]])  # T(l-1)
    use_prob = (total - t_before) / (s * total)
    if np.any(use_prob > 1.0 + 1e-12):
        raise AnalysisError(
            "inconsistent rings: a link's use probability exceeds 1 "
            "(S(l) smaller than its downstream share)"
        )
    use_prob = np.minimum(use_prob, 1.0)
    miss = _miss_matrix(use_prob, n_arr)
    return np.tensordot(s, 1.0 - miss, axes=(0, 0))


def delta2_from_rings(ring_sizes: np.ndarray, n: ArrayLike) -> np.ndarray:
    """Equation 24: ``Δ²L̂(n) = −Σ_r (1/S(r))·(1 − 1/S(r))^n``."""
    rings = _check_rings(ring_sizes)
    n_arr = _as_n(n)
    s = rings[1:]
    inv = 1.0 / s
    miss = _miss_matrix(inv, n_arr)
    return -np.tensordot(inv, miss, axes=(0, 0))


def mean_distance_from_rings(ring_sizes: np.ndarray) -> float:
    """Average hop distance ``ū`` from the source implied by ``S(r)``."""
    rings = _check_rings(ring_sizes)
    s = rings[1:]
    radii = np.arange(1, rings.shape[0], dtype=float)
    return float(np.dot(radii, s) / s.sum())


def normalized_series(
    ring_sizes: np.ndarray,
    n_values: ArrayLike,
    receivers: str = "throughout",
) -> np.ndarray:
    """``L̂(n)/(n·ū)`` — the y axis of Figures 6 and 8.

    Parameters
    ----------
    ring_sizes:
        The reachability profile.
    n_values:
        Receiver counts.
    receivers:
        ``"leaf"`` (Eq. 23; Figure 8) or ``"throughout"`` (Eq. 30;
        Figure 6's semi-analytic overlay).
    """
    if receivers == "leaf":
        lhat = lhat_from_rings_leaf(ring_sizes, n_values)
        # All receivers at distance D: the unicast path is D hops.
        u_bar = float(len(np.asarray(ring_sizes)) - 1)
    elif receivers == "throughout":
        lhat = lhat_from_rings_throughout(ring_sizes, n_values)
        u_bar = mean_distance_from_rings(ring_sizes)
    else:
        raise AnalysisError(
            f'receivers must be "leaf" or "throughout", got {receivers!r}'
        )
    n_arr = _as_n(n_values)
    if np.any(n_arr <= 0):
        raise AnalysisError("n must be positive when normalizing by n")
    return lhat / (n_arr * u_bar)


def variance_from_rings_leaf(
    ring_sizes: np.ndarray, n: ArrayLike
) -> np.ndarray:
    """Approximate ``Var[L̂(n)]`` from ``S(r)`` under link independence.

    The Eq. 22–23 predictor treats link usages as independent; under the
    same assumption the variance is just the sum of Bernoulli variances,

        Var[L̂(n)] ≈ Σ_r S(r) · (1 − 1/S(r))^n · (1 − (1 − 1/S(r))^n)

    On trees this *overestimates* the exact value: disjoint subtrees
    compete for a fixed pool of receivers, a negative correlation that
    outweighs the positive ancestor-descendant one (compare
    :func:`repro.analysis.kary_variance.lhat_leaf_variance`).  It is a
    conservative order-of-magnitude figure for sizing Monte-Carlo sample
    counts on general networks, which is all it is for.
    """
    rings = _check_rings(ring_sizes)
    n_arr = _as_n(n)
    s = rings[1:]
    miss = _miss_matrix(1.0 / s, n_arr)
    return np.tensordot(s, miss * (1.0 - miss), axes=(0, 0))
