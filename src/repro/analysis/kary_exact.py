"""Exact k-ary-tree expressions (Section 3, Eqs. 4–6 and 21).

For a complete k-ary tree of depth ``D`` with the source at the root and
``n`` receivers drawn uniformly *with replacement*, the expected delivery
tree size has a closed form.  A link at level ``l`` (there are ``k^l`` of
them) is on the tree unless all ``n`` draws miss its subtree, so with
leaf-only receivers (Eq. 3/4):

    L̂(n) = Σ_{l=1..D} k^l · (1 − (1 − k^{−l})^n)

With receivers spread over all non-root sites, a receiver uses a level-l
link iff it lands in that link's subtree, which holds ``s_l`` of the
``N`` eligible sites (Eq. 19/21).

The discrete derivatives (Eqs. 5–6)

    ΔL̂(n)  = Σ_l (1 − k^{−l})^n
    Δ²L̂(n) = −Σ_l k^{−l} (1 − k^{−l})^n

drive the asymptotic analysis in :mod:`repro.analysis.kary_asymptotic`.

``k`` may be any real > 1: the paper treats ``k`` as a continuous
parameter ("we can vary it continuously towards the limit of k = 1").
All functions broadcast over numpy arrays of ``n``, and use ``log1p`` /
``expm1`` so that the ``(1 − k^{−l})^n`` terms stay accurate for the
enormous ``n`` and tiny ``k^{−l}`` the paper's D = 17 cases need.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.exceptions import AnalysisError

__all__ = [
    "lhat_leaf",
    "lhat_throughout",
    "delta_lhat",
    "delta2_lhat",
    "num_leaf_sites",
    "num_interior_sites",
]

ArrayLike = Union[float, int, np.ndarray]


def _check_kd(k: float, depth: int) -> None:
    if not k > 1.0:
        raise AnalysisError(
            f"the closed forms need tree degree k > 1, got {k} "
            "(k -> 1 is a limit, not a value)"
        )
    if depth < 1:
        raise AnalysisError(f"tree depth must be >= 1, got {depth}")


def _as_n(n: ArrayLike) -> np.ndarray:
    arr = np.asarray(n, dtype=float)
    if np.any(arr < 0):
        raise AnalysisError("n must be non-negative")
    return arr


def num_leaf_sites(k: float, depth: int) -> float:
    """``M = k^D`` — the leaf receiver population (real-valued in k)."""
    _check_kd(k, depth)
    return float(k) ** depth


def num_interior_sites(k: float, depth: int) -> float:
    """All non-root sites: ``(k^{D+1} − k)/(k − 1)``."""
    _check_kd(k, depth)
    k = float(k)
    return (k ** (depth + 1) - k) / (k - 1.0)


def _miss_powers(k: float, depth: int, n: np.ndarray) -> np.ndarray:
    """``(1 − k^{−l})^n`` for l = 1..D, shape ``(D,) + n.shape``."""
    levels = np.arange(1, depth + 1, dtype=float)
    log_miss = np.log1p(-float(k) ** (-levels))  # ln(1 - k^-l), negative
    return np.exp(np.multiply.outer(log_miss, n))


def lhat_leaf(k: float, depth: int, n: ArrayLike) -> np.ndarray:
    """Equation 4: expected tree size, receivers at the leaves.

    Parameters
    ----------
    k:
        Tree degree (> 1, real-valued allowed).
    depth:
        Tree depth ``D``.
    n:
        Number of receivers drawn with replacement (scalar or array;
        real values are allowed — the expression is analytic in ``n``).

    Returns
    -------
    numpy.ndarray
        ``L̂(n)`` with the same shape as ``n``.
    """
    _check_kd(k, depth)
    n_arr = _as_n(n)
    levels = np.arange(1, depth + 1, dtype=float)
    k_pow = float(k) ** levels
    miss = _miss_powers(k, depth, n_arr)
    return np.tensordot(k_pow, 1.0 - miss, axes=(0, 0))


def lhat_throughout(k: float, depth: int, n: ArrayLike) -> np.ndarray:
    """Equation 21: expected tree size, receivers throughout the tree.

    A receiver (uniform over all non-root sites) uses a particular level-l
    link with probability ``s_l / N`` where ``s_l = (k^{D−l+1} − 1)/(k−1)``
    is the size of the subtree hanging below the link and ``N`` the number
    of non-root sites.
    """
    _check_kd(k, depth)
    n_arr = _as_n(n)
    k = float(k)
    levels = np.arange(1, depth + 1, dtype=float)
    k_pow = k**levels
    subtree = (k ** (depth - levels + 1) - 1.0) / (k - 1.0)
    total = num_interior_sites(k, depth)
    log_miss = np.log1p(-subtree / total)
    miss = np.exp(np.multiply.outer(log_miss, n_arr))
    return np.tensordot(k_pow, 1.0 - miss, axes=(0, 0))


def delta_lhat(k: float, depth: int, n: ArrayLike) -> np.ndarray:
    """Equation 5: ``ΔL̂(n) = L̂(n+1) − L̂(n) = Σ_l (1 − k^{−l})^n``."""
    _check_kd(k, depth)
    return _miss_powers(k, depth, _as_n(n)).sum(axis=0)


def delta2_lhat(k: float, depth: int, n: ArrayLike) -> np.ndarray:
    """Equation 6: ``Δ²L̂(n) = −Σ_l k^{−l} (1 − k^{−l})^n``."""
    _check_kd(k, depth)
    n_arr = _as_n(n)
    levels = np.arange(1, depth + 1, dtype=float)
    k_neg = float(k) ** (-levels)
    miss = _miss_powers(k, depth, n_arr)
    return -np.tensordot(k_neg, miss, axes=(0, 0))
