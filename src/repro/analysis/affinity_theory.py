"""Closed forms for extreme affinity/disaffinity (Sections 5.2–5.3).

On a k-ary tree of depth ``D`` with receivers restricted to the leaves:

**Extreme disaffinity (β = −∞).**  Receivers spread out maximally, which
is equivalent to adding them in the order that maximizes the links added
at each step.  The marginal cost sequence is

    ΔL_{−∞}(m) = D − l   for  k^l <= m < k^{l+1}   (and D for m = 0)

giving, at ``m = k^l`` exactly (Eq. 36):

    L_{−∞}(k^l) = D·k^l − (k^l·(l·k − k − l)/k... )    -- see code

(we implement the telescoped sum directly, which equals the paper's
Eq. 36/37 and is verified against the greedy placement in the tests).

**Extreme affinity (β = +∞).**  Receivers pack together; the marginal
sequence for a k-ary tree is ``ΔL_∞(m) = ν_k(m) + 1`` where ``ν_k(m)``
is the number of trailing zeros of ``m`` in base ``k`` — the classic
ruler sequence (1, 2, 1, 3, 1, 2, 1, ... for k = 2).  At ``m = k^l``
(Eq. 38):

    L_∞(k^l) = D − l + (k^{l+1} − k)/(k − 1)

With replacement (the ``n`` convention), ``L_∞(n) = D`` for every n (all
receivers at one leaf) and ``L_{−∞}(n) = L_{−∞}(min(n, M))``.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.exceptions import AnalysisError

__all__ = [
    "disaffinity_marginal",
    "disaffinity_tree_size",
    "affinity_marginal",
    "affinity_tree_size",
    "affinity_tree_size_with_replacement",
    "disaffinity_tree_size_with_replacement",
]

ArrayLike = Union[int, np.ndarray]


def _check_kd(k: int, depth: int) -> None:
    if k < 2:
        raise AnalysisError(f"closed forms need integer degree k >= 2, got {k}")
    if depth < 1:
        raise AnalysisError(f"depth must be >= 1, got {depth}")


def _as_m(m: ArrayLike, maximum: int) -> np.ndarray:
    arr = np.asarray(m, dtype=np.int64)
    if np.any(arr < 1):
        raise AnalysisError("m must be >= 1")
    if np.any(arr > maximum):
        raise AnalysisError(
            f"m must be at most the number of leaves M = {maximum}"
        )
    return arr


def disaffinity_marginal(k: int, depth: int, m: ArrayLike) -> np.ndarray:
    """``ΔL_{−∞}(m)``: links added by the (m+1)-th maximally-spread receiver.

    ``m`` here counts receivers **already placed** (the paper's Section
    5.2 indexing): ``ΔL(0) = D`` and ``ΔL(m) = D − floor(log_k m) − 1``…
    no — precisely ``ΔL(m) = D − l`` for ``k^l <= m+...``; concretely the
    first ``k`` receivers each cost ``D``, the next ``k² − k`` cost
    ``D − 1``, and so on.
    """
    _check_kd(k, depth)
    arr = np.asarray(m, dtype=np.int64)
    if np.any(arr < 0):
        raise AnalysisError("m must be >= 0")
    if np.any(arr >= k**depth):
        raise AnalysisError("the tree is full beyond m = M − 1 placements")
    # level(m) = 0 for m in [0, k), l for m in [k^l, k^(l+1)).
    boundary = np.full_like(arr, k)
    level = np.zeros_like(arr)
    while np.any(arr >= boundary):
        grow = arr >= boundary
        level[grow] += 1
        boundary[grow] *= k
    return depth - level


def disaffinity_tree_size(k: int, depth: int, m: ArrayLike) -> np.ndarray:
    """``L_{−∞}(m)``: tree size with ``m`` maximally-spread leaf receivers.

    Computed by telescoping the marginal sequence: with ``l = floor(log_k
    m)`` (so ``k^l <= m < k^{l+1}``),

        L_{−∞}(m) = Σ_{i<l} k^i·(k − 1)·(D − i) + D  [first receiver]
                    … = L_{−∞}(k^l) + (m − k^l)·(D − l)

    and ``L_{−∞}(k^l)`` matches the paper's Eq. 36.
    """
    _check_kd(k, depth)
    big_m = k**depth
    m_arr = _as_m(m, big_m)
    out = np.empty(m_arr.shape, dtype=np.int64)
    flat = m_arr.ravel()
    flat_out = out.ravel()
    for idx, m_val in enumerate(flat):
        m_val = int(m_val)
        total = 0
        placed = 0
        level = 0
        # Cohorts: the first k receivers cost D each, the next k² − k cost
        # D − 1, then k³ − k² cost D − 2, and so on.
        while placed < m_val:
            cohort = k if level == 0 else k ** (level + 1) - k**level
            take = min(cohort, m_val - placed)
            total += take * (depth - level)
            placed += take
            level += 1
        flat_out[idx] = total
    return out


def affinity_marginal(k: int, depth: int, m: ArrayLike) -> np.ndarray:
    """``ΔL_∞(m)``: links added by the (m+1)-th maximally-packed receiver.

    ``ΔL(0) = D`` (the first receiver pays its full path); for ``m >= 1``
    the cost is the ruler function ``ν_k(m) + 1`` — receivers fill leaves
    subtree-by-subtree, and the m-th new leaf branches off at the lowest
    ancestor where ``m`` (in base k) has its last nonzero digit.
    """
    _check_kd(k, depth)
    arr = np.asarray(m, dtype=np.int64)
    if np.any(arr < 0):
        raise AnalysisError("m must be >= 0")
    if np.any(arr >= k**depth):
        raise AnalysisError("the tree is full beyond m = M − 1 placements")
    out = np.empty(arr.shape, dtype=np.int64)
    flat = arr.ravel()
    flat_out = out.ravel()
    for idx, m_val in enumerate(flat):
        m_val = int(m_val)
        if m_val == 0:
            flat_out[idx] = depth
            continue
        trailing = 0
        while m_val % k == 0:
            trailing += 1
            m_val //= k
        flat_out[idx] = trailing + 1
    return out


def affinity_tree_size(k: int, depth: int, m: ArrayLike) -> np.ndarray:
    """``L_∞(m)``: tree size with ``m`` maximally-packed leaf receivers.

    At powers of ``k`` this is the paper's Eq. 38,
    ``L_∞(k^l) = D − l + (k^{l+1} − k)/(k − 1)``; general ``m`` telescopes
    the ruler sequence.
    """
    _check_kd(k, depth)
    big_m = k**depth
    m_arr = _as_m(m, big_m)
    out = np.empty(m_arr.shape, dtype=np.int64)
    flat = m_arr.ravel()
    flat_out = out.ravel()
    for idx, m_val in enumerate(flat):
        m_val = int(m_val)
        # Digit-sum identity: sum of (nu_k(j) + 1) for j = 1..m-1 equals
        # (m - 1) + sum over i >= 1 of floor((m - 1)/k^i); plus D for the
        # first receiver.
        remaining = m_val - 1
        total = depth + remaining
        power = k
        while power <= remaining:
            total += remaining // power
            power *= k
        flat_out[idx] = total
    return out


def affinity_tree_size_with_replacement(depth: int, n: ArrayLike) -> np.ndarray:
    """β = +∞ in the ``n`` convention: all receivers share one leaf — D."""
    if depth < 1:
        raise AnalysisError(f"depth must be >= 1, got {depth}")
    arr = np.asarray(n, dtype=np.int64)
    if np.any(arr < 1):
        raise AnalysisError("n must be >= 1")
    return np.full(arr.shape, depth, dtype=np.int64)


def disaffinity_tree_size_with_replacement(
    k: int, depth: int, n: ArrayLike
) -> np.ndarray:
    """β = −∞ in the ``n`` convention: ``L_{−∞}(min(n, M))``.

    Receivers avoid sharing sites until every leaf is taken, after which
    extra receivers add nothing (Section 5.2's closing remark).
    """
    _check_kd(k, depth)
    arr = np.asarray(n, dtype=np.int64)
    if np.any(arr < 1):
        raise AnalysisError("n must be >= 1")
    clipped = np.minimum(arr, k**depth)
    return disaffinity_tree_size(k, depth, clipped)
