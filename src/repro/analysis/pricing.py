"""Multicast pricing built on the scaling law.

Chuang & Sirbu's purpose for ``L(m)`` was a *cost-based multicast
tariff*: charge a group of size ``m`` in proportion to its predicted
tree cost ``ū·m^k`` instead of metering the actual tree.  The paper
under reproduction vouches that the 0.8 law is "certainly sufficiently
accurate for the practical purpose … for which it was originally
intended"; this module makes that claim executable.

:class:`ScalingLawTariff` prices groups from two calibration constants
(the network's mean unicast path and an exponent); :func:`audit_tariff`
scores any tariff against measured tree costs, reporting the error
statistics a provider would care about (mean absolute error,
worst over/under-charge).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.analysis.scaling import CHUANG_SIRBU_EXPONENT
from repro.exceptions import AnalysisError

__all__ = ["ScalingLawTariff", "TariffAudit", "audit_tariff"]


@dataclass(frozen=True)
class ScalingLawTariff:
    """A group-size-based multicast tariff ``price(m) = rate·ū·m^k``.

    Attributes
    ----------
    mean_path_length:
        The network's average unicast path length ``ū`` (hops).
    exponent:
        The scaling exponent ``k``; default 0.8 (the Chuang-Sirbu law),
        1.0 prices multicast like unicast.
    rate_per_link:
        Currency per link-hop per unit traffic.
    """

    mean_path_length: float
    exponent: float = CHUANG_SIRBU_EXPONENT
    rate_per_link: float = 1.0

    def __post_init__(self) -> None:
        if self.mean_path_length <= 0:
            raise AnalysisError(
                f"mean_path_length must be positive, got {self.mean_path_length}"
            )
        if not 0.0 < self.exponent <= 1.0:
            raise AnalysisError(
                f"exponent must be in (0, 1], got {self.exponent}"
            )
        if self.rate_per_link <= 0:
            raise AnalysisError(
                f"rate_per_link must be positive, got {self.rate_per_link}"
            )

    def price(self, group_size) -> np.ndarray:
        """Tariff for groups of ``group_size`` receivers."""
        m = np.asarray(group_size, dtype=float)
        if np.any(m < 1):
            raise AnalysisError("group sizes must be >= 1")
        return self.rate_per_link * self.mean_path_length * m**self.exponent

    def predicted_tree_links(self, group_size) -> np.ndarray:
        """The tree size the tariff implicitly assumes: ``ū·m^k``."""
        m = np.asarray(group_size, dtype=float)
        if np.any(m < 1):
            raise AnalysisError("group sizes must be >= 1")
        return self.mean_path_length * m**self.exponent


@dataclass(frozen=True)
class TariffAudit:
    """How a tariff compares with measured tree costs.

    All errors are relative: ``(price − true cost)/true cost`` with
    prices expressed in link-hops (``rate_per_link`` divided out).
    """

    mean_absolute_error: float
    worst_overcharge: float
    worst_undercharge: float
    revenue_ratio: float

    @property
    def is_revenue_neutral(self, tolerance: float = 0.15) -> bool:
        """Whether total revenue is within ``tolerance`` of total cost."""
        return abs(self.revenue_ratio - 1.0) <= tolerance


def audit_tariff(
    tariff: ScalingLawTariff,
    group_sizes: Sequence[int],
    measured_tree_links: Sequence[float],
) -> TariffAudit:
    """Score ``tariff`` against measured mean tree sizes.

    Parameters
    ----------
    tariff:
        The tariff under audit.
    group_sizes:
        The group sizes measured.
    measured_tree_links:
        Mean delivery-tree size at each group size (e.g. from
        :func:`repro.experiments.runner.measure_sweep`).
    """
    m = np.asarray(group_sizes, dtype=float)
    cost = np.asarray(measured_tree_links, dtype=float)
    if m.shape != cost.shape:
        raise AnalysisError(
            f"group_sizes and measurements misaligned: {m.shape} vs {cost.shape}"
        )
    if m.size == 0:
        raise AnalysisError("cannot audit an empty measurement")
    if np.any(cost <= 0):
        raise AnalysisError("measured tree sizes must be positive")
    implied = tariff.predicted_tree_links(m)
    rel = (implied - cost) / cost
    return TariffAudit(
        mean_absolute_error=float(np.mean(np.abs(rel))),
        worst_overcharge=float(np.max(rel)),
        worst_undercharge=float(np.min(rel)),
        revenue_ratio=float(implied.sum() / cost.sum()),
    )
