"""Where does the Chuang-Sirbu law actually hold?

The paper says the ``m^0.8`` fit is "by no means exact" but good over a
wide range.  This module makes the range precise on k-ary trees, where
``L(m)`` is exactly computable: given a tolerance band (a multiplicative
factor around the law), it finds the contiguous interval of group sizes
over which the normalized exact tree size stays inside the band, after
anchoring the law's constant by least squares (the paper's figures
likewise place the line through the data, not through a fixed
intercept).

Findings this module lets you reproduce instantly (binary trees):

* once the constant is anchored, a ±25% band covers essentially the
  whole range — 84% of M at D = 10 rising to all of it at D = 17 —
  which is exactly why the law looks so universal on any single plot;
* but the anchored constant itself drifts with network size (C ≈ 1.11
  at M = 2¹⁰ up to ≈ 1.58 at M = 2¹⁷): the fingerprint of the true
  ``n·(c − ln(n/M))`` form hiding inside the power-law costume.  A
  tariff calibrated on one network size silently over- or
  under-charges on another — the practical content of the paper's
  "not exactly a power law".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.analysis.kary_asymptotic import lm_exact_via_conversion
from repro.analysis.kary_exact import num_leaf_sites
from repro.analysis.scaling import CHUANG_SIRBU_EXPONENT
from repro.exceptions import AnalysisError

__all__ = ["LawRange", "law_validity_range"]


@dataclass(frozen=True)
class LawRange:
    """Validity interval of the scaling law on one tree family.

    Attributes
    ----------
    k / depth:
        The tree.
    m_low / m_high:
        Largest contiguous group-size interval (containing the
        geometric middle of the sweep) where the anchored law stays
        within tolerance.
    tolerance:
        The multiplicative band, e.g. 0.25 for ±25%.
    max_fraction_of_sites:
        ``m_high / M`` — how far toward saturation the law survives.
    anchored_constant:
        The fitted constant ``C`` in ``L(m)/ū ≈ C·m^0.8``.
    worst_ratio_inside:
        Max multiplicative deviation inside the reported interval.
    """

    k: int
    depth: int
    m_low: float
    m_high: float
    tolerance: float
    max_fraction_of_sites: float
    anchored_constant: float
    worst_ratio_inside: float


def law_validity_range(
    k: int,
    depth: int,
    tolerance: float = 0.25,
    exponent: float = CHUANG_SIRBU_EXPONENT,
    grid_points: int = 200,
) -> LawRange:
    """Find the group-size interval where ``C·m^exponent`` fits ``L(m)``.

    Parameters
    ----------
    k / depth:
        Tree family (the exact ``L(m)`` comes from Eq. 4 + Eq. 1).
    tolerance:
        Allowed multiplicative deviation (0.25 = within ×/÷ 1.25).
    exponent:
        The law's exponent (0.8 by default).
    grid_points:
        Geometric m-grid resolution.
    """
    if not 0.0 < tolerance < 1.0:
        raise AnalysisError(f"tolerance must be in (0, 1), got {tolerance}")
    big_m = num_leaf_sites(k, depth)
    m = np.geomspace(1.0, 0.999 * big_m, grid_points)
    normalized = lm_exact_via_conversion(k, depth, m) / depth

    # Anchor the law's constant by least squares in log space.
    log_c = float(np.mean(np.log(normalized) - exponent * np.log(m)))
    law = np.exp(log_c) * m**exponent
    ratio = normalized / law
    inside = np.abs(np.log(ratio)) <= -np.log1p(-tolerance)

    if not inside.any():
        raise AnalysisError(
            "no grid point within tolerance; the anchor failed "
            f"(k={k}, depth={depth}, tolerance={tolerance})"
        )
    # The largest contiguous run containing the sweep's middle.
    middle = grid_points // 2
    if not inside[middle]:
        middle = int(np.flatnonzero(inside)[np.argmin(
            np.abs(np.flatnonzero(inside) - middle)
        )])
    lo = middle
    while lo > 0 and inside[lo - 1]:
        lo -= 1
    hi = middle
    while hi < grid_points - 1 and inside[hi + 1]:
        hi += 1

    worst = float(np.max(np.abs(np.log(ratio[lo : hi + 1]))))
    return LawRange(
        k=int(k),
        depth=int(depth),
        m_low=float(m[lo]),
        m_high=float(m[hi]),
        tolerance=float(tolerance),
        max_fraction_of_sites=float(m[hi] / big_m),
        anchored_constant=float(np.exp(log_c)),
        worst_ratio_inside=float(np.exp(worst)),
    )
