"""Steiner-tree heuristic multicast — how much does SPT routing waste?

The paper (and IP multicast generally) builds *shortest-path trees*:
every receiver gets its unicast-shortest path from the source.  The
cheapest possible delivery tree is instead a *Steiner minimal tree*,
which is NP-hard; Waxman's multipoint-routing work (the paper's refs
[10, 11]) and Wei & Estrin's comparisons [12] both frame multicast
efficiency against that optimum.

This module implements the classic Takahashi–Matsuyama heuristic — grow
the tree by repeatedly attaching the receiver currently *closest to the
tree* via its shortest path — which is a 2-approximation of the Steiner
optimum on unweighted graphs and typically within a few percent of it
in practice.  Comparing ``L_SPT(m)`` against ``L_TM(m)`` measures the
price of shortest-path (i.e. deployable) multicast routing, and whether
the Chuang-Sirbu exponent survives at the (near-)optimal tree — it
does, which strengthens the law's claim to be about network structure
rather than about a routing algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Set, Tuple

import numpy as np

from repro.exceptions import GraphError, SamplingError
from repro.graph.core import Graph
from repro.graph.paths import multi_source_bfs

__all__ = ["SteinerTree", "takahashi_matsuyama_tree", "multi_source_distances"]


def multi_source_distances(
    graph: Graph, sources: Sequence[int]
) -> Tuple[np.ndarray, np.ndarray]:
    """BFS from a *set* of sources simultaneously.

    Returns ``(dist, parent)`` where ``dist[v]`` is the hop distance
    from ``v`` to the nearest source and following ``parent`` pointers
    from any reachable node terminates at some source (whose parent is
    −1).

    Thin wrapper over :func:`repro.graph.paths.multi_source_bfs` — the
    batched frontier machinery the distance store builds from — kept
    for the sampling-layer error contract (an empty source set is a
    :class:`SamplingError` here) and for backward compatibility.
    """
    seed = np.unique(np.asarray(list(sources), dtype=np.int64))
    if seed.size == 0:
        raise SamplingError("multi-source BFS needs at least one source")
    return multi_source_bfs(graph, seed)


@dataclass(frozen=True)
class SteinerTree:
    """A heuristic Steiner tree for one multicast group.

    Attributes
    ----------
    source:
        The multicast source (always in the tree).
    nodes:
        All tree nodes, sorted.
    edges:
        Tree links as ``(u, v)`` pairs; ``len(edges) == len(nodes) − 1``.
    """

    source: int
    nodes: np.ndarray
    edges: np.ndarray

    @property
    def num_links(self) -> int:
        """Number of links in the tree."""
        return self.edges.shape[0]

    def covers(self, node: int) -> bool:
        """Whether ``node`` is in the tree."""
        pos = int(np.searchsorted(self.nodes, node))
        return pos < self.nodes.shape[0] and int(self.nodes[pos]) == node


def takahashi_matsuyama_tree(
    graph: Graph,
    source: int,
    receivers: Sequence[int],
) -> SteinerTree:
    """Grow a near-optimal delivery tree by nearest-receiver attachment.

    At each step, a multi-source BFS from the current tree finds the
    closest not-yet-connected receiver, whose shortest path to the tree
    is then grafted.  Runs ``O(groups · E)``; the guarantee is cost at
    most twice the Steiner optimum.

    Parameters
    ----------
    graph:
        A connected graph.
    source:
        The multicast source.
    receivers:
        Receiver sites (duplicates and the source itself are fine).
    """
    source = graph.check_node(source)
    wanted: Set[int] = {graph.check_node(int(r)) for r in receivers}
    wanted.discard(source)

    in_tree: Set[int] = {source}
    edges: List[Tuple[int, int]] = []
    remaining = set(wanted)
    while remaining:
        dist, parent = multi_source_distances(graph, sorted(in_tree))
        reachable = [(int(dist[r]), r) for r in remaining if dist[r] >= 0]
        if not reachable:
            missing = sorted(remaining)[0]
            raise GraphError(
                f"receiver {missing} is unreachable from the tree"
            )
        _, target = min(reachable)
        # Graft the shortest path from the tree out to the target.
        node = target
        while node not in in_tree:
            up = int(parent[node])
            edges.append((up, node))
            in_tree.add(node)
            node = up
        remaining -= in_tree
    nodes = np.asarray(sorted(in_tree), dtype=np.int64)
    return SteinerTree(
        source=source,
        nodes=nodes,
        edges=np.asarray(edges, dtype=np.int64).reshape(-1, 2),
    )
