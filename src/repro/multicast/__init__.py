"""Multicast engine: delivery trees, unicast baseline, sampling, affinity."""

from repro.multicast.affinity import (
    AffinityEstimate,
    AffinitySampler,
    DistanceOracle,
    KaryDistanceOracle,
    MatrixDistanceOracle,
    extreme_placement,
    sample_weighted_tree_size,
)
from repro.multicast.dynamics import ChurnStats, DynamicGroup
from repro.multicast.popularity import (
    effective_sites,
    sample_popular_receivers,
    zipf_site_weights,
)
from repro.multicast.sampling import (
    eligible_sites,
    sample_distinct_receivers,
    sample_distinct_receivers_batch,
    sample_distinct_receivers_sweep,
    sample_receivers_with_replacement,
    sample_receivers_with_replacement_batch,
    sample_receivers_with_replacement_sweep,
)
from repro.multicast.builders import (
    BUILDER_NAMES,
    BuilderSpec,
    RedundantTreeSet,
    build_redundant_set,
    build_tree,
    builder_spec,
    count_tree_links,
    register_builder,
)
from repro.multicast.steiner import (
    SteinerTree,
    multi_source_distances,
    takahashi_matsuyama_tree,
)
from repro.multicast.shared_tree import (
    SharedTreeCost,
    select_core,
    shared_tree_cost,
)
from repro.multicast.tree import DeliveryTree, MulticastTreeCounter, build_delivery_tree
from repro.multicast.unicast import UnicastCost, unicast_cost
from repro.multicast.weighted import WeightedTreeCost, weighted_tree_cost

__all__ = [
    "AffinityEstimate",
    "AffinitySampler",
    "DistanceOracle",
    "KaryDistanceOracle",
    "MatrixDistanceOracle",
    "extreme_placement",
    "sample_weighted_tree_size",
    "eligible_sites",
    "sample_distinct_receivers",
    "sample_distinct_receivers_batch",
    "sample_distinct_receivers_sweep",
    "sample_receivers_with_replacement",
    "sample_receivers_with_replacement_batch",
    "sample_receivers_with_replacement_sweep",
    "DeliveryTree",
    "MulticastTreeCounter",
    "build_delivery_tree",
    "UnicastCost",
    "unicast_cost",
    "SharedTreeCost",
    "select_core",
    "shared_tree_cost",
    "WeightedTreeCost",
    "weighted_tree_cost",
    "ChurnStats",
    "DynamicGroup",
    "effective_sites",
    "sample_popular_receivers",
    "zipf_site_weights",
    "SteinerTree",
    "multi_source_distances",
    "takahashi_matsuyama_tree",
    "BUILDER_NAMES",
    "BuilderSpec",
    "RedundantTreeSet",
    "build_redundant_set",
    "build_tree",
    "builder_spec",
    "count_tree_links",
    "register_builder",
]
