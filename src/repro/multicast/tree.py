"""Multicast delivery-tree construction and link counting.

The paper's central measured quantity is ``L(m)``: the number of links in
the source-specific shortest-path multicast tree reaching ``m`` receiver
sites.  The delivery tree is the union, over receivers, of the shortest
path from the source to that receiver — packets "traverse the shortest
path between source and receiver" and multicast routing ensures "no more
than one copy of each packet will traverse each link".

Given a shortest-path forest (BFS parents) for a source, the tree for any
receiver set follows by walking each receiver's parent chain and counting
the distinct non-source nodes touched: in a tree rooted at the source,
links and non-source nodes are in bijection (each contributes its parent
link).  :class:`MulticastTreeCounter` amortizes the per-source BFS across
the thousands of receiver sets the Monte-Carlo methodology draws from it,
using an epoch-stamped visited array so successive queries cost only the
size of the tree they count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.exceptions import GraphError
from repro.graph.core import Graph
from repro.graph.paths import ShortestPathForest, bfs
from repro.utils.rng import RandomState

__all__ = ["MulticastTreeCounter", "DeliveryTree", "build_delivery_tree"]


class MulticastTreeCounter:
    """Counts multicast delivery-tree links for many receiver sets.

    Parameters
    ----------
    forest:
        Shortest-path forest from the multicast source (from
        :func:`repro.graph.paths.bfs`).

    Notes
    -----
    Receivers placed *at the source* contribute nothing (their path is
    empty); unreachable receivers raise :class:`GraphError` — the
    experiment layer guarantees connectivity so this is a programming
    error, not a data condition.
    """

    def __init__(self, forest: ShortestPathForest) -> None:
        self._forest = forest
        self._parent = forest.parent
        self._dist = forest.dist
        self._source = forest.source
        self._stamp = np.zeros(forest.num_nodes, dtype=np.int64)
        self._epoch = 0
        # Per-set stamps for the batched walk, lazily sized to the largest
        # (num_sets x num_nodes) request seen so far; claim is the
        # same-shaped scratch electing one walker per (set, node).  Both
        # are int32, as is the parent copy the walk gathers from — the
        # batched walk is memory-bound, so half-width state is a real win.
        self._parent32 = forest.parent.astype(np.int32)
        self._dist32 = forest.dist.astype(np.int32)
        self._batch_stamp: np.ndarray = np.empty(0, dtype=np.int32)
        self._batch_claim: np.ndarray = np.empty(0, dtype=np.int32)
        self._batch_epoch = 0
        # Walk keys pack (row, node) as ``row << shift | node`` so the
        # row/node splits in the hot loop are shifts and masks, not
        # division; span is the padded per-row key range.
        self._key_shift = max(forest.num_nodes - 1, 0).bit_length()
        self._key_span = 1 << self._key_shift

    @property
    def forest(self) -> ShortestPathForest:
        """The underlying shortest-path forest."""
        return self._forest

    @property
    def source(self) -> int:
        """The multicast source."""
        return self._source

    def tree_size(self, receivers: Sequence[int]) -> int:
        """Number of links in the delivery tree for ``receivers``.

        Duplicate receivers are fine (the with-replacement ``L̂(n)``
        methodology relies on it) and cost nothing extra: the walk from a
        duplicate stops at its first already-visited node.
        """
        self._epoch += 1
        epoch = self._epoch
        stamp = self._stamp
        parent = self._parent
        dist = self._dist
        source = self._source
        links = 0
        for receiver in np.asarray(receivers, dtype=np.int64).ravel():
            node = int(receiver)
            if dist[node] < 0:
                raise GraphError(
                    f"receiver {node} is unreachable from source {source}"
                )
            while node != source and stamp[node] != epoch:
                stamp[node] = epoch
                links += 1
                node = int(parent[node])
        return links

    def tree_nodes(self, receivers: Sequence[int]) -> np.ndarray:
        """All nodes of the delivery tree (including the source), sorted."""
        self._epoch += 1
        epoch = self._epoch
        stamp = self._stamp
        parent = self._parent
        dist = self._dist
        source = self._source
        members: List[int] = [source]
        for receiver in np.asarray(receivers, dtype=np.int64).ravel():
            node = int(receiver)
            if dist[node] < 0:
                raise GraphError(
                    f"receiver {node} is unreachable from source {source}"
                )
            while node != source and stamp[node] != epoch:
                stamp[node] = epoch
                members.append(node)
                node = int(parent[node])
        return np.asarray(sorted(members), dtype=np.int64)

    def tree_sizes_batch(self, receiver_matrix: Sequence[Sequence[int]]) -> np.ndarray:
        """Delivery-tree link counts for many receiver sets at once.

        Parameters
        ----------
        receiver_matrix:
            ``(num_sets, size)`` integer matrix; each row is one receiver
            set (duplicates within a row are fine, exactly as in
            :meth:`tree_size`).

        Returns
        -------
        numpy.ndarray
            ``(num_sets,)`` int64 array, ``out[r] == tree_size(row r)``.

        Notes
        -----
        All rows are walked simultaneously: each iteration advances every
        still-active (set, node) walker one parent step, stamps the newly
        visited nodes of each set, and retires walkers that reach the
        source or an already-stamped node.  The loop runs at most
        ``eccentricity(source)`` times, with O(active walkers) vector
        work per iteration — the per-receiver Python loop of
        :meth:`tree_size` disappears entirely.
        """
        matrix = self._as_receiver_matrix(receiver_matrix)
        self._check_reachable(matrix)
        return self._walk_blocks([matrix])[0]

    def count_trees_and_unicast(
        self, matrices: Sequence[Sequence[Sequence[int]]]
    ) -> Tuple[List[np.ndarray], List[np.ndarray]]:
        """Link counts and unicast totals for several receiver matrices.

        Equivalent to calling :meth:`tree_sizes_batch` and
        :meth:`unicast_totals_batch` on each matrix, but all matrices
        share one flat walk (one level loop instead of one per matrix)
        and one distance gather serves both the reachability check and
        the unicast totals.  This is the Monte-Carlo engine's fast path:
        a whole per-source sweep — every group size, every receiver set —
        costs a single walk over the forest.
        """
        blocks = []
        totals = []
        for receiver_matrix in matrices:
            matrix = self._as_receiver_matrix(receiver_matrix)
            d = self._check_reachable(matrix)
            totals.append(
                d.sum(axis=1, dtype=np.int64)
                if matrix.size
                else np.zeros(matrix.shape[0], dtype=np.int64)
            )
            blocks.append(matrix)
        return self._walk_blocks(blocks), totals

    # Rows walked together are capped so the stamp/claim scratch stays
    # cache-resident: random gathers into a buffer that spills out of L2
    # cost several times more per walker step than the per-chunk loop
    # overhead they would save.
    _WALK_SCRATCH_BYTES = 1 << 20

    def _walk_blocks(self, blocks: List[np.ndarray]) -> List[np.ndarray]:
        """Level-synchronous walk over the rows of all ``blocks``.

        Returns one ``(num_sets,)`` link-count array per block; row ``r``
        of block ``b`` behaves exactly like an independent
        :meth:`tree_size` call on that row.  Rows are regrouped into
        cache-sized chunks — many small matrices cost one walk, and an
        oversized matrix is split rather than spilling the scratch.
        """
        row_counts = [block.shape[0] for block in blocks]
        total_rows = sum(row_counts)
        links = np.zeros(total_rows, dtype=np.int64)
        rows_cap = max(1, self._WALK_SCRATCH_BYTES // (4 * self._key_span))
        chunk: List[np.ndarray] = []
        chunk_rows = 0
        links_offset = 0
        for block in blocks:
            taken = 0
            rows = block.shape[0]
            while taken < rows:
                take = min(rows - taken, rows_cap - chunk_rows)
                chunk.append(block[taken:taken + take])
                chunk_rows += take
                taken += take
                if chunk_rows == rows_cap:
                    self._walk_chunk(chunk, chunk_rows, links, links_offset)
                    links_offset += chunk_rows
                    chunk, chunk_rows = [], 0
        if chunk_rows:
            self._walk_chunk(chunk, chunk_rows, links, links_offset)
        out = []
        offset = 0
        for rows in row_counts:
            out.append(links[offset:offset + rows])
            offset += rows
        return out

    def _walk_chunk(
        self,
        blocks: List[np.ndarray],
        num_rows: int,
        links: np.ndarray,
        links_offset: int,
    ) -> None:
        """Walk ``num_rows`` receiver rows; add counts into ``links``.

        Walker state is one packed ``row << shift | node`` int32 key per
        (row, node) pair (the chunk cap keeps ``num_rows << shift`` far
        below 2**31).
        """
        shift = self._key_shift
        span = self._key_span
        needed = num_rows * span
        if self._batch_stamp.size < needed:
            self._batch_stamp = np.zeros(needed, dtype=np.int32)
            self._batch_claim = np.zeros(needed, dtype=np.int32)
            self._batch_epoch = 0
        if self._batch_epoch >= np.iinfo(np.int32).max - 1:
            self._batch_stamp[:] = 0
            self._batch_epoch = 0
        self._batch_epoch += 1
        epoch = self._batch_epoch
        stamp = self._batch_stamp
        claim = self._batch_claim
        parent = self._parent32
        mask = np.int32(span - 1)
        key_parts = []
        row = 0
        for block in blocks:
            rows, size = block.shape
            if rows and size:
                row_ids = np.repeat(
                    np.arange(row, row + rows, dtype=np.int32) << shift, size
                )
                flat = np.asarray(block.ravel(), dtype=np.int32)
                key_parts.append(row_ids | flat)
            row += rows
        if not key_parts:
            return
        keys = np.concatenate(key_parts)
        # Pre-stamping the source cell of every row retires walkers the
        # moment they arrive there, so the level loop needs no separate
        # source test.
        stamp[
            (np.arange(num_rows, dtype=np.int32) << shift) | self._source
        ] = epoch
        claimed = []
        while keys.size:
            fresh = stamp[keys] != epoch
            keys = keys[fresh]
            if keys.size == 0:
                break
            # Two walkers of one row may reach the same node in the same
            # step (duplicate receivers, merging paths): keep one each.
            # Last write to claim[key] wins, electing one walker per key
            # without a sort.
            order = np.arange(keys.size, dtype=np.int32)
            claim[keys] = order
            winner = claim[keys] == order
            keys = keys[winner]
            stamp[keys] = epoch
            claimed.append(keys)
            nodes = keys & mask
            keys = keys + (parent[nodes] - nodes)
        if claimed:
            stamped = np.concatenate(claimed)
            links[links_offset:links_offset + num_rows] += np.bincount(
                stamped >> shift, minlength=num_rows
            )[:num_rows]

    def unicast_total(self, receivers: Sequence[int]) -> int:
        """Total link traversals if each receiver were reached by unicast.

        This is the quantity whose mean over receivers is the paper's
        ``ū(m)``; multicast's efficiency is the gap between
        :meth:`tree_size` and this sum.
        """
        idx = np.asarray(receivers, dtype=np.int64).ravel()
        d = self._dist[idx]
        if np.any(d < 0):
            bad = int(idx[int(np.argmax(d < 0))])
            raise GraphError(
                f"receiver {bad} is unreachable from source {self._source}"
            )
        return int(d.sum())

    def unicast_totals_batch(
        self, receiver_matrix: Sequence[Sequence[int]]
    ) -> np.ndarray:
        """Per-row unicast totals for a ``(num_sets, size)`` receiver matrix.

        ``out[r] == unicast_total(row r)``; the whole matrix is gathered
        and reduced in two vector operations.
        """
        matrix = self._as_receiver_matrix(receiver_matrix)
        if matrix.size == 0:
            return np.zeros(matrix.shape[0], dtype=np.int64)
        d = self._check_reachable(matrix)
        return d.sum(axis=1, dtype=np.int64)

    @staticmethod
    def _as_receiver_matrix(receiver_matrix) -> np.ndarray:
        matrix = np.asarray(receiver_matrix)
        if matrix.dtype not in (np.int32, np.int64):
            matrix = matrix.astype(np.int64)
        if matrix.ndim != 2:
            raise GraphError(
                f"receiver_matrix must be 2-D (num_sets, size), "
                f"got shape {matrix.shape}"
            )
        return matrix

    def _check_reachable(self, matrix: np.ndarray) -> np.ndarray:
        """Gathered distances for ``matrix``; raises on the first (in
        row-major order) unreachable receiver."""
        d = self._dist32[matrix]
        if np.any(d < 0):
            flat = matrix.ravel()
            bad = int(flat[int(np.argmax(d.ravel() < 0))])
            raise GraphError(
                f"receiver {bad} is unreachable from source {self._source}"
            )
        return d


@dataclass(frozen=True)
class DeliveryTree:
    """An explicit multicast delivery tree.

    Attributes
    ----------
    source:
        The multicast source.
    receivers:
        The receiver set the tree was built for.
    nodes:
        All tree nodes (source included), sorted.
    edges:
        The tree's links as ``(parent, child)`` pairs, one per non-source
        node.
    algorithm:
        Name of the builder that produced the tree (a
        :mod:`repro.multicast.builders` registry key; ``"spt"`` for the
        paper's shortest-path trees).
    """

    source: int
    receivers: Tuple[int, ...]
    nodes: np.ndarray
    edges: np.ndarray
    algorithm: str = "spt"

    @property
    def num_links(self) -> int:
        """Number of links — the paper's ``L``."""
        return self.edges.shape[0]

    def covers(self, node: int) -> bool:
        """Whether ``node`` is part of the tree."""
        pos = int(np.searchsorted(self.nodes, node))
        return pos < self.nodes.shape[0] and int(self.nodes[pos]) == node

    def _node_depths(self) -> Dict[int, int]:
        """Depth of every tree node, walking each parent chain once."""
        parent_of = {int(c): int(p) for p, c in self.edges}
        depth = {int(self.source): 0}
        for start in parent_of:
            chain: List[int] = []
            node = start
            while node not in depth:
                chain.append(node)
                if node not in parent_of:
                    raise GraphError(
                        f"tree node {node} has no parent chain to the "
                        f"source {self.source}"
                    )
                node = parent_of[node]
            base = depth[node]
            for offset, member in enumerate(reversed(chain), start=1):
                depth[member] = base + offset
        return depth

    def depth_profile(self) -> np.ndarray:
        """Node counts per tree depth (entry 0 is the source itself).

        The depth of a node is its hop count from the source *along tree
        edges* — for shortest-path trees this equals the BFS distance,
        while Steiner-style trees may route receivers through longer
        detours (the latency price of link efficiency).
        """
        depths = self._node_depths()
        profile = np.zeros(max(depths.values()) + 1, dtype=np.int64)
        for level in depths.values():
            profile[level] += 1
        return profile

    def receiver_path_costs(self) -> np.ndarray:
        """Hops from the source to each receiver within the tree.

        Aligned with :attr:`receivers`; a receiver placed at the source
        costs 0.  Together with :meth:`depth_profile` this is the
        per-algorithm latency ledger the efficiency figures report
        alongside link counts.
        """
        depths = self._node_depths()
        try:
            return np.asarray(
                [depths[int(r)] for r in self.receivers], dtype=np.int64
            )
        except KeyError as exc:
            raise GraphError(
                f"receiver {exc.args[0]} is not covered by the tree"
            ) from None


def build_delivery_tree(
    graph: Graph,
    source: int,
    receivers: Sequence[int],
    tie_break: str = "first",
    rng: RandomState = None,
) -> DeliveryTree:
    """Construct the explicit shortest-path delivery tree.

    Convenience wrapper for examples and one-off queries; hot loops should
    create one :func:`~repro.graph.paths.bfs` forest per source and a
    :class:`MulticastTreeCounter` over it instead.
    """
    forest = bfs(graph, source, tie_break=tie_break, rng=rng)
    counter = MulticastTreeCounter(forest)
    nodes = counter.tree_nodes(receivers)
    non_source = nodes[nodes != forest.source]
    edges = np.column_stack([forest.parent[non_source], non_source])
    return DeliveryTree(
        source=int(source),
        receivers=tuple(int(r) for r in receivers),
        nodes=nodes,
        edges=edges,
    )
