"""Multicast delivery-tree construction and link counting.

The paper's central measured quantity is ``L(m)``: the number of links in
the source-specific shortest-path multicast tree reaching ``m`` receiver
sites.  The delivery tree is the union, over receivers, of the shortest
path from the source to that receiver — packets "traverse the shortest
path between source and receiver" and multicast routing ensures "no more
than one copy of each packet will traverse each link".

Given a shortest-path forest (BFS parents) for a source, the tree for any
receiver set follows by walking each receiver's parent chain and counting
the distinct non-source nodes touched: in a tree rooted at the source,
links and non-source nodes are in bijection (each contributes its parent
link).  :class:`MulticastTreeCounter` amortizes the per-source BFS across
the thousands of receiver sets the Monte-Carlo methodology draws from it,
using an epoch-stamped visited array so successive queries cost only the
size of the tree they count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.exceptions import GraphError
from repro.graph.core import Graph
from repro.graph.paths import ShortestPathForest, bfs
from repro.utils.rng import RandomState

__all__ = ["MulticastTreeCounter", "DeliveryTree", "build_delivery_tree"]


class MulticastTreeCounter:
    """Counts multicast delivery-tree links for many receiver sets.

    Parameters
    ----------
    forest:
        Shortest-path forest from the multicast source (from
        :func:`repro.graph.paths.bfs`).

    Notes
    -----
    Receivers placed *at the source* contribute nothing (their path is
    empty); unreachable receivers raise :class:`GraphError` — the
    experiment layer guarantees connectivity so this is a programming
    error, not a data condition.
    """

    def __init__(self, forest: ShortestPathForest) -> None:
        self._forest = forest
        self._parent = forest.parent
        self._dist = forest.dist
        self._source = forest.source
        self._stamp = np.zeros(forest.num_nodes, dtype=np.int64)
        self._epoch = 0

    @property
    def forest(self) -> ShortestPathForest:
        """The underlying shortest-path forest."""
        return self._forest

    @property
    def source(self) -> int:
        """The multicast source."""
        return self._source

    def tree_size(self, receivers: Sequence[int]) -> int:
        """Number of links in the delivery tree for ``receivers``.

        Duplicate receivers are fine (the with-replacement ``L̂(n)``
        methodology relies on it) and cost nothing extra: the walk from a
        duplicate stops at its first already-visited node.
        """
        self._epoch += 1
        epoch = self._epoch
        stamp = self._stamp
        parent = self._parent
        dist = self._dist
        source = self._source
        links = 0
        for receiver in np.asarray(receivers, dtype=np.int64).ravel():
            node = int(receiver)
            if dist[node] < 0:
                raise GraphError(
                    f"receiver {node} is unreachable from source {source}"
                )
            while node != source and stamp[node] != epoch:
                stamp[node] = epoch
                links += 1
                node = int(parent[node])
        return links

    def tree_nodes(self, receivers: Sequence[int]) -> np.ndarray:
        """All nodes of the delivery tree (including the source), sorted."""
        self._epoch += 1
        epoch = self._epoch
        stamp = self._stamp
        parent = self._parent
        dist = self._dist
        source = self._source
        members: List[int] = [source]
        for receiver in np.asarray(receivers, dtype=np.int64).ravel():
            node = int(receiver)
            if dist[node] < 0:
                raise GraphError(
                    f"receiver {node} is unreachable from source {source}"
                )
            while node != source and stamp[node] != epoch:
                stamp[node] = epoch
                members.append(node)
                node = int(parent[node])
        return np.asarray(sorted(members), dtype=np.int64)

    def unicast_total(self, receivers: Sequence[int]) -> int:
        """Total link traversals if each receiver were reached by unicast.

        This is the quantity whose mean over receivers is the paper's
        ``ū(m)``; multicast's efficiency is the gap between
        :meth:`tree_size` and this sum.
        """
        idx = np.asarray(receivers, dtype=np.int64).ravel()
        d = self._dist[idx]
        if np.any(d < 0):
            bad = int(idx[np.argmax(self._dist[idx] < 0)])
            raise GraphError(
                f"receiver {bad} is unreachable from source {self._source}"
            )
        return int(d.sum())


@dataclass(frozen=True)
class DeliveryTree:
    """An explicit multicast delivery tree.

    Attributes
    ----------
    source:
        The multicast source.
    receivers:
        The receiver set the tree was built for.
    nodes:
        All tree nodes (source included), sorted.
    edges:
        The tree's links as ``(parent, child)`` pairs, one per non-source
        node.
    """

    source: int
    receivers: Tuple[int, ...]
    nodes: np.ndarray
    edges: np.ndarray

    @property
    def num_links(self) -> int:
        """Number of links — the paper's ``L``."""
        return self.edges.shape[0]

    def covers(self, node: int) -> bool:
        """Whether ``node`` is part of the tree."""
        pos = int(np.searchsorted(self.nodes, node))
        return pos < self.nodes.shape[0] and int(self.nodes[pos]) == node


def build_delivery_tree(
    graph: Graph,
    source: int,
    receivers: Sequence[int],
    tie_break: str = "first",
    rng: RandomState = None,
) -> DeliveryTree:
    """Construct the explicit shortest-path delivery tree.

    Convenience wrapper for examples and one-off queries; hot loops should
    create one :func:`~repro.graph.paths.bfs` forest per source and a
    :class:`MulticastTreeCounter` over it instead.
    """
    forest = bfs(graph, source, tie_break=tie_break, rng=rng)
    counter = MulticastTreeCounter(forest)
    nodes = counter.tree_nodes(receivers)
    non_source = nodes[nodes != forest.source]
    edges = np.column_stack([forest.parent[non_source], non_source])
    return DeliveryTree(
        source=int(source),
        receivers=tuple(int(r) for r in receivers),
        nodes=nodes,
        edges=edges,
    )
