"""Pluggable multicast tree builders: the ``algorithm`` axis.

The paper measures shortest-path trees only.  Whether the Chuang-Sirbu
``L(m) ∝ m^0.8`` exponent is a property of *network structure* or of
*SPT routing* is ROADMAP item 3, and answering it needs every other
tree-construction discipline to flow through the same measurement
pipeline.  This module is that seam: a registry of named tree builders
(mirroring :mod:`repro.topology.registry`), each producing the uniform
:class:`~repro.multicast.tree.DeliveryTree` — link count, depth
profile, per-receiver path cost — so sweeps, estimator tables, the
serving tier, and the figure drivers can switch algorithm by name.

Registered builders
-------------------
``spt``
    The paper's shortest-path tree: union of BFS-first paths from the
    source.  Wraps :class:`~repro.multicast.tree.MulticastTreeCounter`,
    so its link counts are bit-identical to the Monte-Carlo engine's.
``steiner-tm``
    Takahashi–Matsuyama nearest-receiver grafting (2-approximation of
    the Steiner optimum), refactored from :mod:`repro.multicast.steiner`
    onto this interface.  Guarded to never exceed the SPT tree: the
    raw heuristic has no such guarantee on tie-heavy unit-cost graphs,
    and a *routing* comparison should charge the heuristic only when it
    actually wins, so the builder returns whichever of {TM, SPT} is
    smaller.
``dst-approx``
    Dynamic Steiner join semantics (the greedy online heuristic used by
    resilient-multicast designs): each receiver, **in arrival order**,
    attaches via its shortest path to the *current* tree.  Identical to
    ``steiner-tm`` except for the attachment order — arrival order
    instead of nearest-first — which makes it order-sensitive, exactly
    like real join protocols.
``kdisjoint``
    ``k`` maximally-edge-disjoint redundant trees (k = 2..3): the
    primary is the SPT tree; each backup re-runs BFS on the graph with
    all previously used links pruned, falling back to the primary path
    for receivers the pruned graph can no longer reach (those links
    stay *unprotected* and are reported as such).  ``build_tree``
    returns the primary; the full set with per-link protection
    accounting comes from :func:`build_redundant_set`, and sweep counts
    measure the set's distinct-link total (installed forwarding state).

Hot loops should pass the source's ``forest=`` (one BFS per source);
the sweep engine does, via :func:`count_tree_links`, which counts a
whole receiver matrix per call — batched for ``spt``, per-set builder
fallback otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.exceptions import ExperimentError, GraphError
from repro.graph.core import Graph
from repro.graph.paths import ShortestPathForest, bfs, multi_source_bfs
from repro.multicast.steiner import takahashi_matsuyama_tree
from repro.multicast.tree import DeliveryTree, MulticastTreeCounter

__all__ = [
    "BuilderSpec",
    "BUILDER_NAMES",
    "DEFAULT_REDUNDANCY",
    "MAX_REDUNDANCY",
    "RedundantTreeSet",
    "build_redundant_set",
    "build_tree",
    "builder_spec",
    "count_tree_links",
    "register_builder",
]

#: Redundant-set sizes the ``kdisjoint`` builder supports.
DEFAULT_REDUNDANCY = 2
MAX_REDUNDANCY = 3


@dataclass(frozen=True)
class BuilderSpec:
    """A named tree-construction discipline.

    Attributes
    ----------
    name:
        Registry key (the ``algorithm`` value everywhere downstream).
    description:
        One-line human summary.
    redundancy:
        Trees per build: 1 for single-tree builders, the default ``k``
        for ``kdisjoint``.
    build:
        ``build(graph, source, receivers, forest=None) -> DeliveryTree``.
    count:
        ``count(graph, source, receiver_matrix, forest=None)`` returning
        per-row int64 link counts for a ``(num_sets, size)`` matrix —
        what the sweep engine calls.
    """

    name: str
    description: str
    redundancy: int
    build: Callable[..., DeliveryTree]
    count: Callable[..., np.ndarray]


_SPECS: Dict[str, BuilderSpec] = {}


def register_builder(spec: BuilderSpec) -> BuilderSpec:
    """Add a builder to the registry (name must be unused)."""
    if spec.name in _SPECS:
        raise ExperimentError(
            f"tree builder {spec.name!r} is already registered"
        )
    if spec.redundancy < 1:
        raise ExperimentError(
            f"builder redundancy must be >= 1, got {spec.redundancy}"
        )
    _SPECS[spec.name] = spec
    return spec


def builder_spec(name: str) -> BuilderSpec:
    """Look up a registered builder; raises on unknown names."""
    spec = _SPECS.get(name)
    if spec is None:
        raise ExperimentError(
            f"unknown tree algorithm {name!r}; available: "
            f"{', '.join(sorted(_SPECS))}"
        )
    return spec


def build_tree(
    algorithm: str,
    graph: Graph,
    source: int,
    receivers: Sequence[int],
    forest: Optional[ShortestPathForest] = None,
) -> DeliveryTree:
    """Build one delivery tree with the named algorithm.

    For ``kdisjoint`` this returns the redundant set's *primary* tree
    (tagged with the algorithm); use :func:`build_redundant_set` for
    the full set and its protection accounting.
    """
    return builder_spec(algorithm).build(graph, source, receivers, forest=forest)


def count_tree_links(
    algorithm: str,
    graph: Graph,
    source: int,
    receiver_matrix: Sequence[Sequence[int]],
    forest: Optional[ShortestPathForest] = None,
) -> np.ndarray:
    """Per-row delivery-tree link counts for a receiver matrix.

    The sweep engine's entry point: ``spt`` runs the batched counter
    walk (bit-identical to :class:`MulticastTreeCounter`), the other
    algorithms build one tree per row.  ``kdisjoint`` rows count the
    default-``k`` set's distinct links (redundancy overhead).
    """
    return builder_spec(algorithm).count(
        graph, source, receiver_matrix, forest=forest
    )


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------


def _resolve_forest(
    graph: Graph, source: int, forest: Optional[ShortestPathForest]
) -> ShortestPathForest:
    if forest is None:
        return bfs(graph, source, tie_break="first")
    if forest.source != source:
        raise GraphError(
            f"forest is rooted at {forest.source}, not at source {source}"
        )
    if forest.num_nodes != graph.num_nodes:
        raise GraphError(
            f"forest covers {forest.num_nodes} nodes but the graph has "
            f"{graph.num_nodes}"
        )
    return forest


def _as_matrix(receiver_matrix) -> np.ndarray:
    matrix = np.asarray(receiver_matrix, dtype=np.int64)
    if matrix.ndim != 2:
        raise GraphError(
            f"receiver_matrix must be 2-D (num_sets, size), "
            f"got shape {matrix.shape}"
        )
    return matrix


def _count_by_rows(
    build: Callable[..., DeliveryTree],
    graph: Graph,
    source: int,
    receiver_matrix,
    forest: Optional[ShortestPathForest],
) -> np.ndarray:
    """Per-set fallback: one tree build per matrix row."""
    matrix = _as_matrix(receiver_matrix)
    forest = _resolve_forest(graph, graph.check_node(source), forest)
    out = np.empty(matrix.shape[0], dtype=np.int64)
    for i, row in enumerate(matrix):
        out[i] = build(graph, source, row, forest=forest).num_links
    return out


def _graft_chain(
    in_tree: Set[int],
    edges: List[Tuple[int, int]],
    parent: np.ndarray,
    target: int,
) -> None:
    """Attach ``target``'s parent-chain path to the growing tree."""
    node = target
    while node not in in_tree:
        up = int(parent[node])
        edges.append((up, node))
        in_tree.add(node)
        node = up


# ----------------------------------------------------------------------
# spt — the paper's shortest-path tree
# ----------------------------------------------------------------------


def _build_spt(
    graph: Graph,
    source: int,
    receivers: Sequence[int],
    forest: Optional[ShortestPathForest] = None,
) -> DeliveryTree:
    source = graph.check_node(source)
    forest = _resolve_forest(graph, source, forest)
    counter = MulticastTreeCounter(forest)
    nodes = counter.tree_nodes(receivers)
    non_source = nodes[nodes != source]
    edges = np.column_stack(
        [forest.parent[non_source], non_source]
    ).astype(np.int64)
    return DeliveryTree(
        source=source,
        receivers=tuple(int(r) for r in receivers),
        nodes=nodes,
        edges=edges,
        algorithm="spt",
    )


def _count_spt(
    graph: Graph,
    source: int,
    receiver_matrix,
    forest: Optional[ShortestPathForest] = None,
) -> np.ndarray:
    forest = _resolve_forest(graph, graph.check_node(source), forest)
    return MulticastTreeCounter(forest).tree_sizes_batch(
        _as_matrix(receiver_matrix)
    )


# ----------------------------------------------------------------------
# steiner-tm — Takahashi–Matsuyama nearest-receiver grafting
# ----------------------------------------------------------------------


def _build_steiner_tm(
    graph: Graph,
    source: int,
    receivers: Sequence[int],
    forest: Optional[ShortestPathForest] = None,
) -> DeliveryTree:
    source = graph.check_node(source)
    spt = _build_spt(graph, source, receivers, forest=forest)
    heuristic = takahashi_matsuyama_tree(graph, source, receivers)
    # Best-of guard (see module docs): the 2-approximation may lose to
    # the SPT tree outright on tie-heavy graphs; charge it the smaller.
    if heuristic.num_links < spt.num_links:
        nodes = heuristic.nodes
        edges = np.asarray(heuristic.edges, dtype=np.int64)
    else:
        nodes, edges = spt.nodes, spt.edges
    return DeliveryTree(
        source=source,
        receivers=spt.receivers,
        nodes=nodes,
        edges=edges,
        algorithm="steiner-tm",
    )


def _count_steiner_tm(
    graph: Graph,
    source: int,
    receiver_matrix,
    forest: Optional[ShortestPathForest] = None,
) -> np.ndarray:
    source = graph.check_node(source)
    forest = _resolve_forest(graph, source, forest)
    matrix = _as_matrix(receiver_matrix)
    # One batched walk covers the SPT side of the guard for every row.
    spt_links = MulticastTreeCounter(forest).tree_sizes_batch(matrix)
    out = np.empty(matrix.shape[0], dtype=np.int64)
    for i, row in enumerate(matrix):
        heuristic = takahashi_matsuyama_tree(graph, source, row)
        out[i] = min(int(heuristic.num_links), int(spt_links[i]))
    return out


# ----------------------------------------------------------------------
# dst-approx — dynamic (online) Steiner joins in arrival order
# ----------------------------------------------------------------------


def _build_dst_approx(
    graph: Graph,
    source: int,
    receivers: Sequence[int],
    forest: Optional[ShortestPathForest] = None,
) -> DeliveryTree:
    source = graph.check_node(source)
    in_tree: Set[int] = {source}
    edges: List[Tuple[int, int]] = []
    for raw in receivers:
        target = graph.check_node(int(raw))
        if target in in_tree:
            continue
        dist, parent = multi_source_bfs(graph, sorted(in_tree))
        if dist[target] < 0:
            raise GraphError(
                f"receiver {target} is unreachable from the tree"
            )
        _graft_chain(in_tree, edges, parent, target)
    return DeliveryTree(
        source=source,
        receivers=tuple(int(r) for r in receivers),
        nodes=np.asarray(sorted(in_tree), dtype=np.int64),
        edges=np.asarray(edges, dtype=np.int64).reshape(-1, 2),
        algorithm="dst-approx",
    )


# ----------------------------------------------------------------------
# kdisjoint — redundant edge-disjoint trees with protection accounting
# ----------------------------------------------------------------------


def _undirected_links(edges: np.ndarray) -> Set[Tuple[int, int]]:
    return {
        (int(min(u, v)), int(max(u, v)))
        for u, v in np.asarray(edges).reshape(-1, 2)
    }


@dataclass(frozen=True)
class RedundantTreeSet:
    """``k`` redundant delivery trees plus their protection ledger.

    ``trees[0]`` is the primary (the SPT tree); each later tree avoids
    every link used by the trees before it wherever the pruned graph
    still reaches the receiver, falling back to the primary path
    otherwise.  Links appearing in more than one tree are *shared* —
    their failure takes out every tree that uses them — and the primary
    links absent from every backup are *protected*.
    """

    source: int
    receivers: Tuple[int, ...]
    trees: Tuple[DeliveryTree, ...]

    @property
    def k(self) -> int:
        return len(self.trees)

    @property
    def num_links(self) -> int:
        """Distinct links across all trees — installed forwarding state
        (what the redundancy-overhead sweeps count)."""
        links: Set[Tuple[int, int]] = set()
        for tree in self.trees:
            links |= _undirected_links(tree.edges)
        return len(links)

    @property
    def total_links(self) -> int:
        """Sum of per-tree link counts (bandwidth-reservation cost)."""
        return sum(tree.num_links for tree in self.trees)

    @property
    def shared_links(self) -> int:
        """Links used by two or more trees (unprotected overlap)."""
        uses: Dict[Tuple[int, int], int] = {}
        for tree in self.trees:
            for link in _undirected_links(tree.edges):
                uses[link] = uses.get(link, 0) + 1
        return sum(1 for count in uses.values() if count > 1)

    @property
    def fully_disjoint(self) -> bool:
        """Whether no link is used by more than one tree."""
        return self.total_links == self.num_links

    @property
    def protected_fraction(self) -> float:
        """Fraction of primary links no backup depends on — the share
        of the primary tree that can fail with every backup intact."""
        primary = _undirected_links(self.trees[0].edges)
        if not primary:
            return 1.0
        backups: Set[Tuple[int, int]] = set()
        for tree in self.trees[1:]:
            backups |= _undirected_links(tree.edges)
        return 1.0 - len(primary & backups) / len(primary)


def _pruned_graph(graph: Graph, banned: Set[Tuple[int, int]]) -> Graph:
    """The graph with ``banned`` undirected links removed."""
    indptr, indices = graph.indptr, graph.indices
    heads = np.repeat(
        np.arange(graph.num_nodes, dtype=np.int64), np.diff(indptr)
    )
    tails = indices.astype(np.int64)
    forward = heads < tails
    heads, tails = heads[forward], tails[forward]
    if banned:
        banned_keys = np.asarray(
            [u * graph.num_nodes + v for u, v in banned], dtype=np.int64
        )
        keep = np.isin(
            heads * graph.num_nodes + tails, banned_keys, invert=True
        )
        heads, tails = heads[keep], tails[keep]
    return Graph.from_edges(
        graph.num_nodes, np.column_stack([heads, tails])
    )


def _backup_tree(
    source: int,
    receivers: Tuple[int, ...],
    sub_forest: ShortestPathForest,
    primary_forest: ShortestPathForest,
) -> DeliveryTree:
    """One backup tree: pruned-graph paths, primary-path fallback.

    Each receiver walks the pruned-subgraph parent chain when the
    subgraph still reaches it, else its primary chain; the shared
    visited set admits one parent edge per node, so the union is a tree
    whatever mix of chains built it.
    """
    in_tree: Set[int] = {source}
    edges: List[Tuple[int, int]] = []
    for receiver in receivers:
        protected = sub_forest.dist[receiver] >= 0
        parent = sub_forest.parent if protected else primary_forest.parent
        _graft_chain(in_tree, edges, parent, receiver)
    return DeliveryTree(
        source=source,
        receivers=receivers,
        nodes=np.asarray(sorted(in_tree), dtype=np.int64),
        edges=np.asarray(edges, dtype=np.int64).reshape(-1, 2),
        algorithm="kdisjoint",
    )


def build_redundant_set(
    graph: Graph,
    source: int,
    receivers: Sequence[int],
    k: int = DEFAULT_REDUNDANCY,
    forest: Optional[ShortestPathForest] = None,
) -> RedundantTreeSet:
    """Build ``k`` maximally-edge-disjoint delivery trees.

    The primary is the SPT tree; backup ``t`` runs BFS on the graph
    minus every link used by trees ``0..t-1`` (so on 2-edge-connected
    graphs ``k=2`` yields fully disjoint trees), with unreachable
    receivers falling back to their primary path — counted as
    unprotected in the set's ledger rather than failing the build.
    """
    k = int(k)
    if not 2 <= k <= MAX_REDUNDANCY:
        raise ExperimentError(
            f"kdisjoint supports k in [2, {MAX_REDUNDANCY}], got {k}"
        )
    source = graph.check_node(source)
    primary = replace(
        _build_spt(graph, source, receivers, forest=forest),
        algorithm="kdisjoint",
    )
    trees: List[DeliveryTree] = [primary]
    banned: Set[Tuple[int, int]] = _undirected_links(primary.edges)
    reachable = tuple(
        r for r in primary.receivers if r != source
    )
    for _ in range(k - 1):
        sub = _pruned_graph(graph, banned)
        sub_forest = bfs(sub, source, tie_break="first")
        backup = _backup_tree(
            source,
            reachable,
            sub_forest,
            _resolve_forest(graph, source, forest),
        )
        trees.append(backup)
        banned |= _undirected_links(backup.edges)
    return RedundantTreeSet(
        source=source,
        receivers=primary.receivers,
        trees=tuple(trees),
    )


def _build_kdisjoint(
    graph: Graph,
    source: int,
    receivers: Sequence[int],
    forest: Optional[ShortestPathForest] = None,
) -> DeliveryTree:
    return build_redundant_set(
        graph, source, receivers, k=DEFAULT_REDUNDANCY, forest=forest
    ).trees[0]


def _count_kdisjoint(
    graph: Graph,
    source: int,
    receiver_matrix,
    forest: Optional[ShortestPathForest] = None,
) -> np.ndarray:
    matrix = _as_matrix(receiver_matrix)
    forest = _resolve_forest(graph, graph.check_node(source), forest)
    out = np.empty(matrix.shape[0], dtype=np.int64)
    for i, row in enumerate(matrix):
        out[i] = build_redundant_set(
            graph, source, row, k=DEFAULT_REDUNDANCY, forest=forest
        ).num_links
    return out


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

register_builder(
    BuilderSpec(
        name="spt",
        description="shortest-path tree (the paper's routing; batched)",
        redundancy=1,
        build=_build_spt,
        count=_count_spt,
    )
)
register_builder(
    BuilderSpec(
        name="steiner-tm",
        description="Takahashi-Matsuyama Steiner 2-approximation",
        redundancy=1,
        build=_build_steiner_tm,
        count=_count_steiner_tm,
    )
)
register_builder(
    BuilderSpec(
        name="dst-approx",
        description="dynamic Steiner joins in arrival order",
        redundancy=1,
        build=_build_dst_approx,
        count=lambda graph, source, matrix, forest=None: _count_by_rows(
            _build_dst_approx, graph, source, matrix, forest
        ),
    )
)
register_builder(
    BuilderSpec(
        name="kdisjoint",
        description="k edge-disjoint redundant trees (k=2 default)",
        redundancy=DEFAULT_REDUNDANCY,
        build=_build_kdisjoint,
        count=_count_kdisjoint,
    )
)

#: Registration-order builder names (the CLI's --algorithm choices).
BUILDER_NAMES: Tuple[str, ...] = tuple(_SPECS)
