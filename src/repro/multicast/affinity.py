"""Receiver affinity and disaffinity (Section 5).

The paper models clustered (or spread-out) receivers by weighting each
receiver configuration ``α`` by ``W_α(β) ∝ exp(−β·d̂(α))`` where ``d̂(α)``
is the mean inter-receiver hop distance: ``β > 0`` is affinity (receivers
pack together), ``β < 0`` disaffinity, ``β = 0`` the uniform baseline, and
``β = ±∞`` the closed-form extremes of Sections 5.2–5.3.

This module provides:

* distance oracles — :class:`MatrixDistanceOracle` for arbitrary (small)
  graphs and :class:`KaryDistanceOracle`, an O(depth) vectorized
  LCA-climb for k-ary trees that avoids quadratic memory;
* :class:`AffinitySampler` — a Metropolis chain over configurations of
  ``n`` receivers drawn with replacement, targeting the ``W_α(β)``
  distribution (the simulation behind Figure 9);
* :func:`sample_weighted_tree_size` — the full estimator
  ``L̂_β(n) = Σ_α W_α(β)·L_α`` via MCMC averaging;
* greedy ``β = ±∞`` placements (:func:`extreme_placement`) to check the
  closed forms of Eqs. 33–38.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import AnalysisError, SamplingError
from repro.graph.core import Graph
from repro.graph.paths import ShortestPathForest, distance_matrix
from repro.multicast.tree import MulticastTreeCounter
from repro.topology.kary import KaryTree
from repro.utils.rng import RandomState, ensure_rng

__all__ = [
    "DistanceOracle",
    "MatrixDistanceOracle",
    "KaryDistanceOracle",
    "AffinitySampler",
    "AffinityEstimate",
    "sample_weighted_tree_size",
    "extreme_placement",
]


class DistanceOracle:
    """Interface: pairwise hop distances between receiver sites."""

    def distances(self, site: int, sites: np.ndarray) -> np.ndarray:
        """Distances from ``site`` to each entry of ``sites``."""
        raise NotImplementedError


class MatrixDistanceOracle(DistanceOracle):
    """Distance oracle backed by a full all-pairs matrix.

    Memory is O(N²) int32, so this is for graphs up to a few thousand
    nodes; larger k-ary trees should use :class:`KaryDistanceOracle`.
    """

    def __init__(self, graph: Graph) -> None:
        if graph.num_nodes > 20_000:
            raise AnalysisError(
                f"all-pairs matrix for {graph.num_nodes} nodes would need "
                ">1.6 GB; use a structured oracle instead"
            )
        self._matrix = distance_matrix(graph)

    def distances(self, site: int, sites: np.ndarray) -> np.ndarray:
        return self._matrix[int(site), sites]


class KaryDistanceOracle(DistanceOracle):
    """O(depth) vectorized distances on a complete k-ary tree.

    Uses heap indexing: the distance between two nodes is
    ``level(u) + level(v) − 2·level(lca)``, and the LCA is found by
    climbing the deeper node to the shallower level and then lifting both
    in lock-step.  All receivers are processed simultaneously with masked
    numpy updates, so one call costs O(depth) vector operations however
    many sites are queried.
    """

    def __init__(self, tree: KaryTree) -> None:
        self._k = tree.k
        self._depth = tree.depth
        n = tree.num_nodes
        level = np.empty(n, dtype=np.int64)
        start = 0
        width = 1
        for lvl in range(tree.depth + 1):
            stop = min(n, start + width)
            level[start:stop] = lvl
            start = stop
            width *= max(tree.k, 1) if tree.k > 1 else 1
            if tree.k == 1:
                width = 1
        self._level = level

    def _ancestor_chain(self, node: int) -> np.ndarray:
        chain = [node]
        while chain[-1] != 0:
            chain.append((chain[-1] - 1) // self._k)
        chain.reverse()
        return np.asarray(chain, dtype=np.int64)  # chain[l] = ancestor at level l

    def distances(self, site: int, sites: np.ndarray) -> np.ndarray:
        k = self._k
        u = int(site)
        chain = self._ancestor_chain(u)
        lu = chain.shape[0] - 1
        v = np.asarray(sites, dtype=np.int64).copy()
        lv = self._level[v]
        # Lift each v to level min(lv, lu).
        ell = np.minimum(lv, lu)
        steps = lv - ell
        for _ in range(int(steps.max(initial=0))):
            mask = steps > 0
            v[mask] = (v[mask] - 1) // k
            steps[mask] -= 1
        # Climb both sides until v meets u's ancestor at the same level.
        for _ in range(self._depth + 1):
            mask = v != chain[ell]
            if not mask.any():
                break
            v[mask] = (v[mask] - 1) // k
            ell[mask] -= 1
        return (lu - ell) + (lv - ell)


class AffinitySampler:
    """Metropolis sampler over receiver configurations.

    State: ``n`` receiver sites drawn from ``pool`` (with replacement —
    the paper's ``A(n) = ∪_{m<=n} A(m)``, which admits multiple receivers
    at one site).  The stationary distribution is
    ``W_α(β) ∝ exp(−β·d̂(α))`` over the uniform base measure.

    A move re-sites one uniformly-chosen receiver at a uniformly-chosen
    pool site and accepts with probability ``min(1, exp(−β·Δd̂))`` — the
    proposal is symmetric, so this is textbook Metropolis.

    Parameters
    ----------
    oracle:
        Pairwise-distance oracle over sites.
    pool:
        Eligible receiver sites (e.g. all non-root nodes of a tree).
    n:
        Number of receivers in a configuration.
    beta:
        Affinity strength; positive clusters, negative spreads.
    rng:
        Randomness source.
    """

    def __init__(
        self,
        oracle: DistanceOracle,
        pool: Sequence[int],
        n: int,
        beta: float,
        rng: RandomState = None,
    ) -> None:
        if n < 1:
            raise SamplingError(f"n must be >= 1, got {n}")
        self._pool = np.asarray(pool, dtype=np.int64)
        if self._pool.size == 0:
            raise SamplingError("site pool must be non-empty")
        if not math.isfinite(beta):
            raise SamplingError(
                "beta must be finite for MCMC; use extreme_placement() for "
                "the ±infinity limits"
            )
        self._oracle = oracle
        self._n = int(n)
        self._beta = float(beta)
        self._rng = ensure_rng(rng)
        self._sites = self._pool[
            self._rng.integers(0, self._pool.size, size=self._n)
        ]
        self._pair_sum = self._total_pair_distance(self._sites)
        self.accepted = 0
        self.proposed = 0

    @property
    def sites(self) -> np.ndarray:
        """The current configuration (copy)."""
        return self._sites.copy()

    @property
    def mean_pair_distance(self) -> float:
        """``d̂`` of the current configuration."""
        if self._n < 2:
            return 0.0
        return self._pair_sum / (self._n * (self._n - 1) / 2.0)

    def _total_pair_distance(self, sites: np.ndarray) -> float:
        total = 0.0
        for i in range(1, sites.shape[0]):
            total += float(
                self._oracle.distances(int(sites[i]), sites[:i]).sum()
            )
        return total

    def step(self) -> bool:
        """One Metropolis move; returns True when accepted."""
        self.proposed += 1
        if self._n == 1:
            # d̂ is identically 0: every proposal is accepted.
            self._sites[0] = self._pool[
                int(self._rng.integers(0, self._pool.size))
            ]
            self.accepted += 1
            return True
        idx = int(self._rng.integers(0, self._n))
        old_site = int(self._sites[idx])
        new_site = int(self._pool[int(self._rng.integers(0, self._pool.size))])
        if new_site == old_site:
            self.accepted += 1
            return True
        others = np.delete(self._sites, idx)
        delta = float(
            self._oracle.distances(new_site, others).sum()
            - self._oracle.distances(old_site, others).sum()
        )
        num_pairs = self._n * (self._n - 1) / 2.0
        log_ratio = -self._beta * delta / num_pairs
        if log_ratio >= 0 or self._rng.random() < math.exp(log_ratio):
            self._sites[idx] = new_site
            self._pair_sum += delta
            self.accepted += 1
            return True
        return False

    def run(self, num_steps: int) -> None:
        """Advance the chain ``num_steps`` moves (burn-in / thinning)."""
        for _ in range(num_steps):
            self.step()

    @property
    def acceptance_rate(self) -> float:
        """Fraction of proposals accepted so far (1.0 before any)."""
        if self.proposed == 0:
            return 1.0
        return self.accepted / self.proposed


@dataclass(frozen=True)
class AffinityEstimate:
    """MCMC estimate of the weighted mean tree size ``L̂_β(n)``.

    Attributes
    ----------
    beta / n:
        The affinity strength and configuration size.
    mean_tree_size:
        The estimator of ``L̂_β(n)``.
    std_tree_size:
        Sample standard deviation across retained configurations.
    mean_pair_distance:
        Average ``d̂`` over retained configurations (diagnostic: should
        fall with β).
    num_samples:
        Configurations retained after burn-in and thinning.
    acceptance_rate:
        Metropolis acceptance over the whole run.
    """

    beta: float
    n: int
    mean_tree_size: float
    std_tree_size: float
    mean_pair_distance: float
    num_samples: int
    acceptance_rate: float


def sample_weighted_tree_size(
    counter: MulticastTreeCounter,
    oracle: DistanceOracle,
    pool: Sequence[int],
    n: int,
    beta: float,
    num_samples: int = 50,
    burn_in_sweeps: int = 20,
    thin_sweeps: int = 2,
    rng: RandomState = None,
) -> AffinityEstimate:
    """Estimate ``L̂_β(n)`` by Metropolis averaging.

    A *sweep* is ``n`` moves (each receiver re-proposed once on average).
    β = 0 short-circuits to direct uniform sampling — no chain needed.

    Parameters
    ----------
    counter:
        Tree counter for the multicast source.
    oracle / pool / n / beta:
        As in :class:`AffinitySampler`.
    num_samples:
        Configurations to average.
    burn_in_sweeps / thin_sweeps:
        Sweeps discarded before sampling / between samples.
    rng:
        Randomness source.
    """
    generator = ensure_rng(rng)
    pool_arr = np.asarray(pool, dtype=np.int64)
    sizes: List[int] = []
    if beta == 0.0:
        for _ in range(num_samples):
            sites = pool_arr[generator.integers(0, pool_arr.size, size=n)]
            sizes.append(counter.tree_size(sites))
        mean_d = float("nan")
        acceptance = 1.0
    else:
        sampler = AffinitySampler(oracle, pool_arr, n, beta, rng=generator)
        sampler.run(burn_in_sweeps * n)
        pair_ds: List[float] = []
        for _ in range(num_samples):
            sampler.run(max(1, thin_sweeps * n))
            sizes.append(counter.tree_size(sampler.sites))
            pair_ds.append(sampler.mean_pair_distance)
        mean_d = float(np.mean(pair_ds))
        acceptance = sampler.acceptance_rate
    arr = np.asarray(sizes, dtype=float)
    return AffinityEstimate(
        beta=float(beta),
        n=int(n),
        mean_tree_size=float(arr.mean()),
        std_tree_size=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        mean_pair_distance=mean_d,
        num_samples=len(sizes),
        acceptance_rate=acceptance,
    )


def extreme_placement(
    forest: ShortestPathForest,
    pool: Sequence[int],
    n: int,
    mode: str,
    distinct: bool = True,
) -> Tuple[np.ndarray, np.ndarray]:
    """Greedy β = ±∞ receiver placement (Sections 5.2–5.3).

    ``mode="disaffinity"`` adds receivers "in an order that maximizes the
    number of links added to the tree at each step"; ``mode="affinity"``
    minimizes it.  Ties break toward the lowest site id, making the
    placement deterministic for a given forest.

    Parameters
    ----------
    forest:
        Shortest-path forest from the source.
    pool:
        Eligible receiver sites.
    n:
        Number of receivers to place.
    mode:
        ``"affinity"`` or ``"disaffinity"``.
    distinct:
        When True each site is used at most once (the ``L(m)`` reading);
        when False sites may repeat — under affinity all receivers then
        pile onto the first site (the paper's ``L_∞(n) = D``), and under
        disaffinity repeats only start once every site is in the tree
        (``L_−∞(n) = L_−∞(M)`` for ``n > M``).

    Returns
    -------
    (numpy.ndarray, numpy.ndarray)
        The placement order (length ``n``) and the cumulative tree sizes
        after each placement (``sizes[j]`` is the tree size with ``j+1``
        receivers).
    """
    if mode not in ("affinity", "disaffinity"):
        raise AnalysisError(
            f'mode must be "affinity" or "disaffinity", got {mode!r}'
        )
    pool_arr = np.unique(np.asarray(pool, dtype=np.int64))
    if pool_arr.size == 0:
        raise SamplingError("site pool must be non-empty")
    if n < 1:
        raise SamplingError(f"n must be >= 1, got {n}")
    if distinct and n > pool_arr.size:
        raise SamplingError(
            f"cannot place {n} distinct receivers on {pool_arr.size} sites"
        )
    if np.any(forest.dist[pool_arr] < 0):
        raise SamplingError("pool contains sites unreachable from the source")

    parent = forest.parent
    source = forest.source
    in_tree = np.zeros(forest.num_nodes, dtype=bool)
    in_tree[source] = True

    def links_if_added(site: int) -> int:
        count = 0
        node = site
        while not in_tree[node]:
            count += 1
            node = int(parent[node])
        return count

    chosen: List[int] = []
    sizes: List[int] = []
    available = pool_arr.tolist()
    tree_links = 0
    want_max = mode == "disaffinity"
    for _ in range(n):
        best_site = -1
        best_gain = -1 if want_max else None
        for site in available:
            gain = links_if_added(int(site))
            if want_max:
                if gain > best_gain:
                    best_gain, best_site = gain, int(site)
            else:
                if best_gain is None or gain < best_gain:
                    best_gain, best_site = gain, int(site)
                if best_gain == 0:
                    break  # cannot do better than adding nothing
        node = best_site
        while not in_tree[node]:
            in_tree[node] = True
            tree_links += 1
            node = int(parent[node])
        chosen.append(best_site)
        sizes.append(tree_links)
        if distinct:
            available.remove(best_site)
    return np.asarray(chosen, dtype=np.int64), np.asarray(sizes, dtype=np.int64)
