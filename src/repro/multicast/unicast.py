"""Unicast cost accounting — the baseline multicast is compared against.

Reaching ``m`` receivers by unicast costs the sum of their shortest-path
lengths, i.e. ``m · ū(m)`` where ``ū(m)`` is the sample's average unicast
path length.  The paper's headline ratio is ``L(m) / ū(m)``, which equals
``m`` when multicast is no better than unicast and grows like ``m^0.8``
under the Chuang-Sirbu law.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.exceptions import GraphError, SamplingError
from repro.graph.paths import ShortestPathForest

__all__ = ["UnicastCost", "unicast_cost"]


@dataclass(frozen=True)
class UnicastCost:
    """Unicast delivery cost for one receiver sample.

    Attributes
    ----------
    total_hops:
        Total link traversals: one shortest path per receiver, duplicates
        counted again (unicast sends a separate copy per receiver).
    num_receivers:
        Number of receivers in the sample.
    """

    total_hops: int
    num_receivers: int

    @property
    def mean_path_length(self) -> float:
        """The sample's average unicast path length ``ū``."""
        if self.num_receivers == 0:
            raise SamplingError("unicast cost of an empty receiver set")
        return self.total_hops / self.num_receivers


def unicast_cost(
    forest: ShortestPathForest, receivers: Sequence[int]
) -> UnicastCost:
    """Unicast cost of reaching ``receivers`` from the forest's source."""
    idx = np.asarray(receivers, dtype=np.int64).ravel()
    if idx.size == 0:
        raise SamplingError("receiver set must be non-empty")
    dists = forest.dist[idx]
    if np.any(dists < 0):
        bad = int(idx[int(np.argmax(dists < 0))])
        raise GraphError(
            f"receiver {bad} is unreachable from source {forest.source}"
        )
    return UnicastCost(total_hops=int(dists.sum()), num_receivers=int(idx.size))
