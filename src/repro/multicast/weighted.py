"""Weighted delivery trees — the "links are not all equal" extension.

The paper counts links unweighted ("we merely count the number of links,
we do not weight the links by their length or bandwidth").  This module
lifts that restriction: given a Dijkstra forest over positive arc
weights, it measures both the link count and the total *weight* of the
delivery tree, so the scaling question can be re-asked for cost-weighted
networks (the natural follow-on the paper's footnote invites).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.exceptions import GraphError
from repro.graph.core import Graph
from repro.graph.paths import WeightedForest

__all__ = ["WeightedTreeCost", "weighted_tree_cost"]


@dataclass(frozen=True)
class WeightedTreeCost:
    """Link count and total weight of one weighted delivery tree."""

    num_links: int
    total_weight: float
    unicast_weight: float

    @property
    def efficiency(self) -> float:
        """Tree weight over summed unicast weight (≤ 1; lower = better)."""
        if self.unicast_weight == 0.0:
            return 0.0
        return self.total_weight / self.unicast_weight


def weighted_tree_cost(
    graph: Graph,
    forest: WeightedForest,
    arc_weights: np.ndarray,
    receivers: Sequence[int],
) -> WeightedTreeCost:
    """Measure the minimum-cost-path delivery tree for ``receivers``.

    Parameters
    ----------
    graph:
        The topology the forest was computed on.
    forest:
        A :func:`repro.graph.paths.dijkstra` result for the source.
    arc_weights:
        The same per-arc weight array the forest was built with.
    receivers:
        Receiver sites (duplicates allowed).
    """
    weights = np.asarray(arc_weights, dtype=float)
    if weights.shape != graph.indices.shape:
        raise GraphError(
            f"arc_weights must have shape {graph.indices.shape}, "
            f"got {weights.shape}"
        )
    parent = forest.parent
    source = forest.source
    visited = set()
    num_links = 0
    total_weight = 0.0
    unicast_weight = 0.0
    for receiver in receivers:
        node = graph.check_node(int(receiver))
        if not np.isfinite(forest.cost[node]):
            raise GraphError(
                f"receiver {node} is unreachable from source {source}"
            )
        unicast_weight += float(forest.cost[node])
        while node != source and node not in visited:
            visited.add(node)
            up = int(parent[node])
            row = graph.neighbors(up)
            pos = graph.indptr[up] + int(np.searchsorted(row, node))
            total_weight += float(weights[pos])
            num_links += 1
            node = up
    return WeightedTreeCost(
        num_links=num_links,
        total_weight=total_weight,
        unicast_weight=unicast_weight,
    )
