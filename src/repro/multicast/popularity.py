"""Popularity-skewed receiver placement.

Section 5 perturbs the uniform-receiver assumption *spatially* (receivers
attract or repel each other).  The other natural perturbation is
*per-site popularity*: some sites simply host receivers more often —
campus networks vs dial-up pools, Zipf-distributed content audiences.
This module supplies Zipf-weighted receiver sampling so the scaling
question can be re-asked under skewed membership, completing the
affinity study with its non-spatial counterpart.

Skew interacts with the ``n``/``m`` distinction even more strongly than
uniformity does: under heavy skew, with-replacement draws pile onto the
popular sites, so ``m`` saturates far below ``n`` — measured by
:func:`effective_sites`.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.exceptions import SamplingError
from repro.utils.rng import RandomState, ensure_rng

__all__ = [
    "zipf_site_weights",
    "sample_popular_receivers",
    "effective_sites",
]


def zipf_site_weights(
    num_sites: int,
    skew: float,
    rng: RandomState = None,
    shuffle: bool = True,
) -> np.ndarray:
    """Zipf popularity weights over ``num_sites`` sites.

    Parameters
    ----------
    num_sites:
        Number of candidate receiver sites.
    skew:
        Zipf exponent ``s >= 0``: 0 is uniform, 1 the classic Zipf,
        larger is heavier-headed.
    rng:
        Randomness for the rank-to-site assignment.
    shuffle:
        Assign ranks to random sites (default).  Without shuffling, site
        0 is the most popular — useful for deterministic tests.

    Returns
    -------
    numpy.ndarray
        Probabilities summing to 1.
    """
    if num_sites < 1:
        raise SamplingError(f"num_sites must be >= 1, got {num_sites}")
    if skew < 0:
        raise SamplingError(f"skew must be >= 0, got {skew}")
    ranks = np.arange(1, num_sites + 1, dtype=float)
    weights = ranks**-skew
    weights /= weights.sum()
    if shuffle:
        generator = ensure_rng(rng)
        weights = weights[generator.permutation(num_sites)]
    return weights


def sample_popular_receivers(
    weights: np.ndarray,
    n: int,
    distinct: bool = False,
    exclude: Optional[Sequence[int]] = None,
    rng: RandomState = None,
) -> np.ndarray:
    """Draw receivers according to per-site popularity ``weights``.

    Parameters
    ----------
    weights:
        Site probabilities (will be renormalized after exclusions).
    n:
        Number of receivers.
    distinct:
        Without replacement when True (sites drawn proportionally to
        weight, each at most once).
    exclude:
        Sites barred from selection (e.g. the source).
    rng:
        Randomness source.
    """
    probs = np.asarray(weights, dtype=float).copy()
    if probs.ndim != 1 or probs.size == 0:
        raise SamplingError("weights must be a non-empty 1-D array")
    if np.any(probs < 0):
        raise SamplingError("weights must be non-negative")
    if n < 1:
        raise SamplingError(f"n must be >= 1, got {n}")
    if exclude is not None:
        for site in exclude:
            site = int(site)
            if not 0 <= site < probs.size:
                raise SamplingError(f"excluded site {site} out of range")
            probs[site] = 0.0
    total = probs.sum()
    if total <= 0:
        raise SamplingError("no eligible sites with positive weight")
    probs /= total
    eligible = int(np.count_nonzero(probs))
    if distinct and n > eligible:
        raise SamplingError(
            f"cannot draw {n} distinct receivers from {eligible} eligible sites"
        )
    generator = ensure_rng(rng)
    return generator.choice(
        probs.size, size=n, replace=not distinct, p=probs
    )


def effective_sites(weights: np.ndarray, n: int) -> float:
    """Expected number of *distinct* sites hit by ``n`` weighted draws.

    The skewed generalization of the paper's ``m̂ = M(1 − (1 − 1/M)^n)``:

        m̂ = Σ_i (1 − (1 − w_i)^n)

    At ``skew = 0`` this reduces to the uniform formula; as skew grows it
    saturates at the popular head long before ``M``.
    """
    probs = np.asarray(weights, dtype=float)
    if probs.ndim != 1 or probs.size == 0:
        raise SamplingError("weights must be a non-empty 1-D array")
    if n < 0:
        raise SamplingError(f"n must be >= 0, got {n}")
    total = probs.sum()
    if total <= 0:
        raise SamplingError("weights must have positive mass")
    probs = probs / total
    with np.errstate(divide="ignore"):
        log_miss = np.log1p(-probs)
    per_site = -np.expm1(n * log_miss)
    per_site[probs >= 1.0] = 1.0 if n > 0 else 0.0
    return float(per_site.sum())
