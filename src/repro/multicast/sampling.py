"""Receiver-set sampling.

Two sampling modes mirror the paper's two tree-size functions:

* ``L(m)`` — ``m`` **distinct** sites chosen uniformly
  (:func:`sample_distinct_receivers`), the Chuang-Sirbu methodology of
  Section 2.
* ``L̂(n)`` — ``n`` sites chosen uniformly **with replacement**
  (:func:`sample_receivers_with_replacement`), the analytically tractable
  variant of Section 3; Equation 1 converts between the two.

Both modes exclude the source by default (a receiver co-located with the
source adds nothing to the tree; Section 3.4 explicitly excludes the
root).  Pass ``exclude=()`` to allow receivers anywhere.

Each mode also has a **batched** form that draws a whole
``(num_sets, size)`` matrix of receiver sets from a constant number of
RNG calls (:func:`sample_distinct_receivers_batch`,
:func:`sample_receivers_with_replacement_batch`).  The batched and
scalar forms consume the *same* random stream: drawing ``k`` sets in one
batch yields exactly the ``k`` sets that ``k`` sequential scalar calls
on the same generator would produce.  The Monte-Carlo engine relies on
this to keep its vectorized and reference paths bit-identical.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.exceptions import SamplingError
from repro.utils.rng import RandomState, ensure_rng

__all__ = [
    "sample_distinct_receivers",
    "sample_distinct_receivers_batch",
    "sample_distinct_receivers_sweep",
    "sample_receivers_with_replacement",
    "sample_receivers_with_replacement_batch",
    "sample_receivers_with_replacement_sweep",
    "eligible_sites",
]

# One inc per batch/sweep call (not per set), so the counter costs
# nothing against the O(num_sets x size) draw it describes.  The
# distinct scalar draw routes through the batch path and is counted
# there; the sweep fast paths count their whole sweep in one inc.
_OBS_SETS = obs.counter(
    "repro_sampling_receiver_sets_total",
    "Receiver sets drawn, by sampling convention.",
    labelnames=("mode",),
)


def eligible_sites(
    num_nodes: int, exclude: Sequence[int] = ()
) -> np.ndarray:
    """The receiver population: all nodes minus ``exclude``."""
    if num_nodes < 0:
        raise SamplingError(f"num_nodes must be non-negative, got {num_nodes}")
    if not len(exclude):
        return np.arange(num_nodes, dtype=np.int64)
    excluded = np.unique(np.asarray(list(exclude), dtype=np.int64))
    if excluded.size and (excluded.min() < 0 or excluded.max() >= num_nodes):
        raise SamplingError(
            f"excluded nodes {excluded.tolist()} out of range for "
            f"{num_nodes} nodes"
        )
    return np.setdiff1d(
        np.arange(num_nodes, dtype=np.int64), excluded, assume_unique=True
    )


def _distinct_pool(num_nodes: int, m: int, source: Optional[int]) -> np.ndarray:
    if m < 1:
        raise SamplingError(f"m must be >= 1, got {m}")
    pool = eligible_sites(num_nodes, () if source is None else (source,))
    if m > pool.size:
        raise SamplingError(
            f"cannot draw {m} distinct receivers from {pool.size} eligible sites"
        )
    return pool


def sample_distinct_receivers(
    num_nodes: int,
    m: int,
    source: Optional[int] = None,
    rng: RandomState = None,
) -> np.ndarray:
    """Draw ``m`` distinct receiver sites uniformly (the ``L(m)`` mode).

    Parameters
    ----------
    num_nodes:
        Number of sites in the network.
    m:
        Number of distinct receivers wanted.
    source:
        When given, this site is excluded from the draw.
    rng:
        Randomness source.

    Raises
    ------
    SamplingError
        If fewer than ``m`` eligible sites exist.
    """
    return sample_distinct_receivers_batch(
        num_nodes, m, 1, source=source, rng=rng
    )[0]


def sample_distinct_receivers_batch(
    num_nodes: int,
    m: int,
    num_sets: int,
    source: Optional[int] = None,
    rng: RandomState = None,
) -> np.ndarray:
    """Draw ``num_sets`` independent distinct-receiver sets at once.

    Returns a ``(num_sets, m)`` int32 matrix whose rows are uniform
    ``m``-subsets of the eligible sites, in random order.  The rows are
    produced by a partial Fisher-Yates shuffle vectorized across sets and
    driven by a single ``rng.random((num_sets, m))`` draw, so row ``r``
    equals the ``r``-th sequential :func:`sample_distinct_receivers` call
    on the same generator.
    """
    if num_sets < 1:
        raise SamplingError(f"num_sets must be >= 1, got {num_sets}")
    pool = _distinct_pool(num_nodes, m, source)
    generator = ensure_rng(rng)
    _OBS_SETS.inc(num_sets, mode="distinct")
    u = generator.random((num_sets, m))
    size = pool.size
    # All swap targets up front: floor(u * remaining) is uniform on the
    # untouched suffix; the minimum guards the u -> 1.0 rounding edge.
    remaining = size - np.arange(m, dtype=np.int64)
    swap = np.minimum((u * remaining).astype(np.int64), remaining - 1)
    swap += np.arange(m, dtype=np.int64)
    if num_sets == 1:
        return _sparse_fisher_yates(pool, swap[0], m)[np.newaxis, :]
    base = np.arange(num_sets, dtype=np.int64) * size
    # The partial Fisher-Yates itself is sequential in i but vectorized
    # across sets; precomputed flat swap indices keep each step to two
    # gathers and two scatters, and the int32 pool copies halve the
    # memory traffic of the O(num_sets * pool) setup.
    flat_swap = np.ascontiguousarray(swap.T + base)
    flat_prefix = np.ascontiguousarray(
        np.arange(m, dtype=np.int64)[:, np.newaxis] + base
    )
    perm = np.repeat(pool.astype(np.int32)[np.newaxis, :], num_sets, axis=0)
    flat = perm.reshape(-1)
    for i in range(m):
        j = flat_swap[i]
        bi = flat_prefix[i]
        picked = flat[j]
        flat[j] = flat[bi]
        flat[bi] = picked
    return np.ascontiguousarray(perm[:, :m])


def sample_distinct_receivers_sweep(
    num_nodes: int,
    sizes: Sequence[int],
    num_sets: int,
    source: Optional[int] = None,
    rng: RandomState = None,
) -> List[np.ndarray]:
    """Distinct-receiver matrices for a whole sweep of group sizes.

    Value- and stream-identical to calling
    :func:`sample_distinct_receivers_batch` once per size in order, but
    the ``num_sets`` pool copies are materialized once for the whole
    sweep: after each size's partial Fisher-Yates, only the O(m)
    positions it touched are restored from the pool, instead of paying
    the O(pool) re-initialization per size.  This is the Monte-Carlo
    engine's per-source fast path.
    """
    if num_sets < 1:
        raise SamplingError(f"num_sets must be >= 1, got {num_sets}")
    size_list = [int(m) for m in sizes]
    if not size_list:
        return []
    if num_sets == 1:
        return [
            sample_distinct_receivers_batch(
                num_nodes, m, 1, source=source, rng=rng
            )
            for m in size_list
        ]
    for m in size_list:
        if m < 1:
            raise SamplingError(f"m must be >= 1, got {m}")
    pool = _distinct_pool(num_nodes, max(size_list), source)
    generator = ensure_rng(rng)
    _OBS_SETS.inc(num_sets * len(size_list), mode="distinct")
    size = pool.size
    pool32 = pool.astype(np.int32)
    perm = np.repeat(pool32[np.newaxis, :], num_sets, axis=0)
    flat = perm.reshape(-1)
    base = np.arange(num_sets, dtype=np.int64) * size
    out = []
    for m in size_list:
        u = generator.random((num_sets, m))
        remaining = size - np.arange(m, dtype=np.int64)
        swap = np.minimum((u * remaining).astype(np.int64), remaining - 1)
        swap += np.arange(m, dtype=np.int64)
        flat_swap = np.ascontiguousarray(swap.T + base)
        flat_prefix = np.ascontiguousarray(
            np.arange(m, dtype=np.int64)[:, np.newaxis] + base
        )
        for i in range(m):
            j = flat_swap[i]
            bi = flat_prefix[i]
            picked = flat[j]
            flat[j] = flat[bi]
            flat[bi] = picked
        # A real copy, never a view: np.ascontiguousarray would alias
        # perm when m == size, and the restore below would then wipe the
        # appended matrix in place.
        out.append(perm[:, :m].copy())
        # Undo this size's damage: every touched flat position is either
        # a swap target or one of the first m slots of its row.
        touched = np.concatenate([flat_swap.ravel(), flat_prefix.ravel()])
        flat[touched] = pool32[touched % size]
    return out


def _sparse_fisher_yates(
    pool: np.ndarray, swap: np.ndarray, m: int
) -> np.ndarray:
    """One partial Fisher-Yates row without materializing the pool copy.

    Applies exactly the swap sequence of the vectorized batch path, but
    tracks only the O(m) displaced positions in a dict — the profitable
    layout when a single row is drawn (the scalar samplers), where the
    per-step numpy dispatch and the O(pool) copy would dominate.
    """
    displaced = {}
    out = np.empty(m, dtype=np.int32)
    for i, j in enumerate(swap.tolist()):
        vj = displaced.get(j)
        if vj is None:
            vj = pool[j]
        vi = displaced.get(i)
        if vi is None:
            vi = pool[i]
        out[i] = vj
        displaced[j] = vi
    return out


def _replacement_pool(num_nodes: int, n: int, source: Optional[int]) -> np.ndarray:
    if n < 1:
        raise SamplingError(f"n must be >= 1, got {n}")
    pool = eligible_sites(num_nodes, () if source is None else (source,))
    if pool.size == 0:
        raise SamplingError("no eligible receiver sites")
    return pool


def sample_receivers_with_replacement(
    num_nodes: int,
    n: int,
    source: Optional[int] = None,
    rng: RandomState = None,
) -> np.ndarray:
    """Draw ``n`` receiver sites uniformly with replacement (``L̂(n)``)."""
    pool = _replacement_pool(num_nodes, n, source)
    generator = ensure_rng(rng)
    _OBS_SETS.inc(mode="replacement")
    return pool[generator.integers(0, pool.size, size=n)]


def sample_receivers_with_replacement_sweep(
    num_nodes: int,
    sizes: Sequence[int],
    num_sets: int,
    source: Optional[int] = None,
    rng: RandomState = None,
) -> List[np.ndarray]:
    """With-replacement matrices for a whole sweep of group sizes.

    Value- and stream-identical to calling
    :func:`sample_receivers_with_replacement_batch` once per size in
    order; the eligible-site pool is built once for the sweep.
    """
    if num_sets < 1:
        raise SamplingError(f"num_sets must be >= 1, got {num_sets}")
    size_list = [int(n) for n in sizes]
    if not size_list:
        return []
    pool = _replacement_pool(num_nodes, max(size_list), source)
    for n in size_list:
        if n < 1:
            raise SamplingError(f"n must be >= 1, got {n}")
    generator = ensure_rng(rng)
    _OBS_SETS.inc(num_sets * len(size_list), mode="replacement")
    pool32 = pool.astype(np.int32)
    return [
        pool32[generator.integers(0, pool.size, size=(num_sets, n))]
        for n in size_list
    ]


def sample_receivers_with_replacement_batch(
    num_nodes: int,
    n: int,
    num_sets: int,
    source: Optional[int] = None,
    rng: RandomState = None,
) -> np.ndarray:
    """Draw ``num_sets`` with-replacement receiver sets at once.

    Returns a ``(num_sets, n)`` int32 matrix from one bounded-integer
    draw; numpy fills it row-major from the bit stream, so row ``r``
    equals the ``r``-th sequential
    :func:`sample_receivers_with_replacement` call on the same generator.
    """
    if num_sets < 1:
        raise SamplingError(f"num_sets must be >= 1, got {num_sets}")
    pool = _replacement_pool(num_nodes, n, source)
    generator = ensure_rng(rng)
    _OBS_SETS.inc(num_sets, mode="replacement")
    idx = generator.integers(0, pool.size, size=(num_sets, n))
    return pool.astype(np.int32)[idx]
