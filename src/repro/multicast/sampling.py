"""Receiver-set sampling.

Two sampling modes mirror the paper's two tree-size functions:

* ``L(m)`` — ``m`` **distinct** sites chosen uniformly
  (:func:`sample_distinct_receivers`), the Chuang-Sirbu methodology of
  Section 2.
* ``L̂(n)`` — ``n`` sites chosen uniformly **with replacement**
  (:func:`sample_receivers_with_replacement`), the analytically tractable
  variant of Section 3; Equation 1 converts between the two.

Both modes exclude the source by default (a receiver co-located with the
source adds nothing to the tree; Section 3.4 explicitly excludes the
root).  Pass ``exclude=()`` to allow receivers anywhere.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import SamplingError
from repro.utils.rng import RandomState, ensure_rng

__all__ = [
    "sample_distinct_receivers",
    "sample_receivers_with_replacement",
    "eligible_sites",
]


def eligible_sites(
    num_nodes: int, exclude: Sequence[int] = ()
) -> np.ndarray:
    """The receiver population: all nodes minus ``exclude``."""
    if num_nodes < 0:
        raise SamplingError(f"num_nodes must be non-negative, got {num_nodes}")
    if not len(exclude):
        return np.arange(num_nodes, dtype=np.int64)
    excluded = np.unique(np.asarray(list(exclude), dtype=np.int64))
    if excluded.size and (excluded.min() < 0 or excluded.max() >= num_nodes):
        raise SamplingError(
            f"excluded nodes {excluded.tolist()} out of range for "
            f"{num_nodes} nodes"
        )
    return np.setdiff1d(
        np.arange(num_nodes, dtype=np.int64), excluded, assume_unique=True
    )


def sample_distinct_receivers(
    num_nodes: int,
    m: int,
    source: Optional[int] = None,
    rng: RandomState = None,
) -> np.ndarray:
    """Draw ``m`` distinct receiver sites uniformly (the ``L(m)`` mode).

    Parameters
    ----------
    num_nodes:
        Number of sites in the network.
    m:
        Number of distinct receivers wanted.
    source:
        When given, this site is excluded from the draw.
    rng:
        Randomness source.

    Raises
    ------
    SamplingError
        If fewer than ``m`` eligible sites exist.
    """
    if m < 1:
        raise SamplingError(f"m must be >= 1, got {m}")
    pool = eligible_sites(num_nodes, () if source is None else (source,))
    if m > pool.size:
        raise SamplingError(
            f"cannot draw {m} distinct receivers from {pool.size} eligible sites"
        )
    generator = ensure_rng(rng)
    return generator.choice(pool, size=m, replace=False)


def sample_receivers_with_replacement(
    num_nodes: int,
    n: int,
    source: Optional[int] = None,
    rng: RandomState = None,
) -> np.ndarray:
    """Draw ``n`` receiver sites uniformly with replacement (``L̂(n)``)."""
    if n < 1:
        raise SamplingError(f"n must be >= 1, got {n}")
    pool = eligible_sites(num_nodes, () if source is None else (source,))
    if pool.size == 0:
        raise SamplingError("no eligible receiver sites")
    generator = ensure_rng(rng)
    return pool[generator.integers(0, pool.size, size=n)]
