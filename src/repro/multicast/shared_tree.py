"""Shared-tree (core-based) multicast — the comparison the paper defers.

The paper analyzes *source-specific* trees and explicitly sets aside
shared-tree algorithms, pointing to Wei & Estrin [12] for that
comparison.  This module supplies it: a CBT/PIM-SM-style shared tree is
the union of shortest paths from a *core* (rendezvous point) to every
group member, with the source's packets first carried core-ward.

Costs measured here, comparable with the source-tree ``L(m)``:

* ``tree_links`` — links in the core-rooted tree spanning the receivers
  (plus the source, which must reach the core);
* ``delivery_cost(m)`` — links a packet actually crosses: the shared
  tree's links, counting the source→core path.

Core placement matters enormously; :func:`select_core` implements the
standard strategies (random, max-degree, distance-minimizing over a
candidate sample), and the shared-vs-source bench sweeps them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.exceptions import ExperimentError, GraphError
from repro.graph.core import Graph
from repro.graph.ops import require_connected
from repro.graph.paths import bfs, distances_from
from repro.multicast.tree import MulticastTreeCounter
from repro.utils.rng import RandomState, ensure_rng

__all__ = ["SharedTreeCost", "shared_tree_cost", "select_core"]

_CORE_STRATEGIES = ("random", "max-degree", "min-distance-sample")


def select_core(
    graph: Graph,
    strategy: str = "min-distance-sample",
    candidates: int = 16,
    rng: RandomState = None,
) -> int:
    """Choose a shared-tree core (rendezvous point).

    Parameters
    ----------
    graph:
        A connected topology.
    strategy:
        * ``"random"`` — uniform random node (the pessimistic baseline);
        * ``"max-degree"`` — the biggest hub (cheap, often good);
        * ``"min-distance-sample"`` — among ``candidates`` random nodes,
          the one minimizing total distance to all nodes (an
          approximation of the graph's 1-median, the classic optimal
          core placement).
    candidates:
        Sample size for ``"min-distance-sample"``.
    rng:
        Randomness source.
    """
    if strategy not in _CORE_STRATEGIES:
        raise ExperimentError(
            f"strategy must be one of {_CORE_STRATEGIES}, got {strategy!r}"
        )
    require_connected(graph, "select_core")
    generator = ensure_rng(rng)
    if strategy == "random":
        return int(generator.integers(0, graph.num_nodes))
    if strategy == "max-degree":
        return int(np.argmax(graph.degrees))
    sample = generator.choice(
        graph.num_nodes,
        size=min(candidates, graph.num_nodes),
        replace=False,
    )
    best_node, best_total = -1, np.inf
    for node in sample:
        total = float(distances_from(graph, int(node)).sum())
        if total < best_total:
            best_node, best_total = int(node), total
    return best_node


@dataclass(frozen=True)
class SharedTreeCost:
    """Cost breakdown of one shared-tree configuration.

    Attributes
    ----------
    core:
        The rendezvous node.
    tree_links:
        Links in the core-rooted tree spanning receivers ∪ {source}.
    source_to_core_hops:
        Length of the source's path toward the core (already part of the
        tree; reported separately because it is pure overhead relative
        to a source tree).
    """

    core: int
    tree_links: int
    source_to_core_hops: int

    @property
    def delivery_cost(self) -> int:
        """Links a data packet traverses: the whole shared tree."""
        return self.tree_links


def shared_tree_cost(
    graph: Graph,
    core: int,
    source: int,
    receivers: Sequence[int],
    counter: Optional[MulticastTreeCounter] = None,
) -> SharedTreeCost:
    """Cost of delivering from ``source`` to ``receivers`` via ``core``.

    The shared tree is the core-rooted shortest-path tree restricted to
    the paths reaching the receivers and the source (the source must be
    attached to send).  Pass a pre-built ``counter`` (from a core-rooted
    BFS) to amortize across many receiver sets.
    """
    core = graph.check_node(core)
    source = graph.check_node(source)
    if counter is None:
        counter = MulticastTreeCounter(bfs(graph, core))
    elif counter.source != core:
        raise GraphError(
            f"counter is rooted at {counter.source}, not at core {core}"
        )
    members = list(receivers) + [source]
    links = counter.tree_size(members)
    return SharedTreeCost(
        core=core,
        tree_links=links,
        source_to_core_hops=int(counter.forest.dist[source]),
    )
