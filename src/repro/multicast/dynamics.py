"""Dynamic group membership: join/leave churn on a delivery tree.

The paper measures static snapshots ``L(m)``.  Real multicast groups
churn — members join and leave continuously (the MBone sessions that
motivated the work certainly did).  :class:`DynamicGroup` maintains the
delivery tree *incrementally* under joins and leaves:

* a join grafts the new member's path onto the tree, costing the number
  of links up to the first on-tree node (exactly IGMP/PIM graft
  semantics);
* a leave prunes the member's branch back to the last node still needed
  by someone else (prune semantics), using per-node reference counts of
  downstream members.

Amortized cost per event is O(path length), versus O(tree) for a
recount, and the structure doubles as a correctness oracle: after any
event sequence the incremental size must equal a fresh
:class:`~repro.multicast.tree.MulticastTreeCounter` recount — the
property tests pin exactly that.

The steady-state tree size under churn equals ``E[L(m)]`` at the
stationary membership, tying the dynamics back to the paper's static
law; :meth:`DynamicGroup.simulate_churn` measures it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.exceptions import GraphError, SamplingError
from repro.graph.paths import ShortestPathForest
from repro.utils.rng import RandomState, ensure_rng

__all__ = ["DynamicGroup", "ChurnStats"]


@dataclass(frozen=True)
class ChurnStats:
    """Steady-state statistics from a churn simulation.

    Attributes
    ----------
    mean_members:
        Time-averaged number of members.
    mean_tree_links:
        Time-averaged delivery-tree size.
    mean_graft_cost / mean_prune_cost:
        Average links added per join / removed per leave.
    events:
        Number of join/leave events simulated (after warm-up).
    """

    mean_members: float
    mean_tree_links: float
    mean_graft_cost: float
    mean_prune_cost: float
    events: int


class DynamicGroup:
    """A multicast group with incremental join/leave maintenance.

    Parameters
    ----------
    forest:
        Shortest-path forest from the multicast source.

    Notes
    -----
    Members are *sites*; a site may host several members (multiplicity
    is tracked), matching the with-replacement convention.  The tree
    reference count of a node is the number of members at or below it.
    """

    def __init__(self, forest: ShortestPathForest) -> None:
        self._forest = forest
        self._parent = forest.parent
        self._source = forest.source
        self._refs = np.zeros(forest.num_nodes, dtype=np.int64)
        self._members: Dict[int, int] = {}
        self._tree_links = 0

    @property
    def source(self) -> int:
        """The multicast source."""
        return self._source

    @property
    def num_members(self) -> int:
        """Total members (counting multiplicity)."""
        return sum(self._members.values())

    @property
    def num_member_sites(self) -> int:
        """Distinct sites hosting at least one member."""
        return len(self._members)

    @property
    def tree_links(self) -> int:
        """Current delivery-tree size (maintained incrementally)."""
        return self._tree_links

    def members(self) -> Dict[int, int]:
        """Site → member-count mapping (copy)."""
        return dict(self._members)

    def join(self, site: int) -> int:
        """Add a member at ``site``; returns the links grafted."""
        site = int(site)
        if not 0 <= site < self._refs.shape[0]:
            raise GraphError(f"site {site} out of range")
        if self._forest.dist[site] < 0:
            raise GraphError(
                f"site {site} is unreachable from source {self._source}"
            )
        self._members[site] = self._members.get(site, 0) + 1
        grafted = 0
        node = site
        while node != self._source:
            self._refs[node] += 1
            if self._refs[node] == 1:
                grafted += 1
            node = int(self._parent[node])
        self._tree_links += grafted
        return grafted

    def leave(self, site: int) -> int:
        """Remove one member at ``site``; returns the links pruned."""
        site = int(site)
        count = self._members.get(site, 0)
        if count == 0:
            raise SamplingError(f"no member at site {site} to remove")
        if count == 1:
            del self._members[site]
        else:
            self._members[site] = count - 1
        pruned = 0
        node = site
        while node != self._source:
            self._refs[node] -= 1
            if self._refs[node] == 0:
                pruned += 1
            node = int(self._parent[node])
        self._tree_links -= pruned
        return pruned

    def recount(self) -> int:
        """Recompute the tree size from scratch (the test oracle)."""
        from repro.multicast.tree import MulticastTreeCounter

        if not self._members:
            return 0
        counter = MulticastTreeCounter(self._forest)
        return counter.tree_size(list(self._members))

    def simulate_churn(
        self,
        target_members: int,
        events: int,
        eligible_sites: Optional[np.ndarray] = None,
        warmup_events: Optional[int] = None,
        rng: RandomState = None,
    ) -> ChurnStats:
        """Run a join/leave churn process and record steady-state stats.

        The process targets ``target_members`` members: each event is a
        join with probability ``target/(target + current)`` (else a
        leave of a uniformly chosen member), giving an M/M/∞-flavoured
        stationary distribution centred on the target.

        Parameters
        ----------
        target_members:
            Intended steady-state group size.
        events:
            Events to simulate after warm-up.
        eligible_sites:
            Join-site pool (default: all non-source sites).
        warmup_events:
            Events discarded first (default ``4 × target_members``).
        rng:
            Randomness source.
        """
        if target_members < 1:
            raise SamplingError(
                f"target_members must be >= 1, got {target_members}"
            )
        if events < 1:
            raise SamplingError(f"events must be >= 1, got {events}")
        generator = ensure_rng(rng)
        if eligible_sites is None:
            pool = np.array(
                [v for v in range(self._refs.shape[0]) if v != self._source],
                dtype=np.int64,
            )
        else:
            pool = np.asarray(eligible_sites, dtype=np.int64)
            if pool.size == 0:
                raise SamplingError("eligible_sites must be non-empty")
        warmup = 4 * target_members if warmup_events is None else warmup_events

        member_sum = 0.0
        links_sum = 0.0
        graft_sum = 0.0
        graft_events = 0
        prune_sum = 0.0
        prune_events = 0
        for step in range(warmup + events):
            current = self.num_members
            join_probability = target_members / (target_members + current)
            if current == 0 or generator.random() < join_probability:
                site = int(pool[int(generator.integers(0, pool.size))])
                cost = self.join(site)
                if step >= warmup:
                    graft_sum += cost
                    graft_events += 1
            else:
                sites = list(self._members)
                weights = np.array(
                    [self._members[s] for s in sites], dtype=float
                )
                weights /= weights.sum()
                site = int(generator.choice(sites, p=weights))
                cost = self.leave(site)
                if step >= warmup:
                    prune_sum += cost
                    prune_events += 1
            if step >= warmup:
                member_sum += self.num_members
                links_sum += self.tree_links
        return ChurnStats(
            mean_members=member_sum / events,
            mean_tree_links=links_sum / events,
            mean_graft_cost=graft_sum / max(1, graft_events),
            mean_prune_cost=prune_sum / max(1, prune_events),
            events=events,
        )
