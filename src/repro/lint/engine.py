"""The ``repro.lint`` engine: per-file AST rules plus whole-program analysis.

The linter exists because the Monte-Carlo engine's guarantees — seeded,
stream-identical randomness; shared immutable BFS forests; an int32 hot
path — are *conventions*, and conventions rot.  Each convention is
encoded as a rule that reports :class:`Finding` objects.  Two rule
layers share this module's machinery:

* **Per-file rules** (:class:`Rule`) inspect one module's AST: the
  engine walks each file once and hands every node to the rules that
  declared a ``visit_<NodeType>`` method, maintaining a lexical scope
  stack the rules can consult.
* **Project rules** (:class:`~repro.lint.project.ProjectRule`,
  ``is_project = True``) run after every file has been summarized into
  a picklable :class:`~repro.lint.project.ModuleSummary`; they see the
  cross-file call graph, metric/seam declarations, and shared-memory
  handle flows that no single file can prove anything about.

Suppression comments are tokenize-parsed (inert inside string
literals): ``# repro-lint: disable=RR001,RR006`` anywhere on a logical
line suppresses those rules for every physical line the statement
spans, and a module-level ``# repro-lint: disable-file[=RRnnn,...]``
pragma silences the whole file.  The engine has no configuration file
on purpose: the rule set is the project's invariants, not a style
preference, and the only sanctioned opt-out is a pragma reviewers can
see.

:func:`lint_paths` is the production entry point: it runs the per-file
layer (optionally fanned out over the persistent
:mod:`repro.experiments.pool` worker pool with ``jobs > 1``), feeds the
summaries to the project layer, and — given a cache path — skips every
file whose content hash is unchanged since the last run.  Findings are
fully sorted, so serial, parallel, cold, and warm runs are
byte-identical.
"""

from __future__ import annotations

import ast
import hashlib
import io
import json
import os
import re
import tokenize
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Type

__all__ = [
    "Finding",
    "Rule",
    "SuppressionIndex",
    "register_rule",
    "registered_rules",
    "lint_source",
    "lint_file",
    "lint_paths",
    "source_digest",
    "ruleset_signature",
    "PARSE_ERROR_RULE_ID",
]

#: Findings about unparseable files carry this pseudo rule id.
PARSE_ERROR_RULE_ID = "RR000"

_SEVERITIES = ("error", "warning")
_RULE_ID_PATTERN = re.compile(r"^RR\d{3}$")
_SUPPRESS_PATTERN = re.compile(
    r"#\s*repro-lint:\s*disable(?P<scope>-file)?(?:=(?P<ids>[A-Z0-9,\s]+))?"
)

#: Scope-introducing AST nodes tracked on ``FileContext.scope_stack``.
_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a specific source location."""

    path: str
    line: int
    col: int
    rule_id: str
    severity: str
    message: str

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def render(self) -> str:
        return f"{self.location}: {self.rule_id} [{self.severity}] {self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule_id": self.rule_id,
            "severity": self.severity,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Finding":
        return cls(
            path=str(data["path"]),
            line=int(data["line"]),
            col=int(data["col"]),
            rule_id=str(data["rule_id"]),
            severity=str(data["severity"]),
            message=str(data["message"]),
        )


class Rule:
    """Base class for lint rules.

    Subclasses set the class attributes below and implement any number of
    ``visit_<NodeType>`` methods (``visit_Call``, ``visit_Assign``, ...);
    the engine calls each exactly once per matching node, in source
    order, before descending into the node's children.  ``begin_file``
    runs before the walk, ``end_file`` after — rules that need
    whole-module context accumulate candidates during the walk and emit
    them from ``end_file``.

    Rules with ``is_project = True`` (see
    :class:`repro.lint.project.ProjectRule`) skip the per-file walk
    entirely and instead implement ``check(index, report)`` over the
    whole-program index.
    """

    #: Stable identifier, ``RRnnn``.
    rule_id: str = ""
    #: ``"error"`` or ``"warning"`` (both fail the lint gate).
    severity: str = "error"
    #: One-line description shown in ``--json`` output and docs.
    summary: str = ""
    #: Why the invariant matters (shown in ``--json`` rule docs).
    rationale: str = ""
    #: Project rules run over the cross-file index, not per-file ASTs.
    is_project: bool = False

    def applies_to(self, path: str) -> bool:
        """Whether this rule runs on ``path`` (posix-normalized)."""
        return True

    def begin_file(self, ctx: "FileContext") -> None:  # pragma: no cover
        pass

    def end_file(self, ctx: "FileContext") -> None:  # pragma: no cover
        pass


_RULES: Dict[str, Type[Rule]] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding ``cls`` to the global rule registry."""
    if not _RULE_ID_PATTERN.match(cls.rule_id or ""):
        raise ValueError(
            f"rule id must match RRnnn, got {cls.rule_id!r} on {cls.__name__}"
        )
    if cls.severity not in _SEVERITIES:
        raise ValueError(
            f"severity must be one of {_SEVERITIES}, got {cls.severity!r}"
        )
    existing = _RULES.get(cls.rule_id)
    if existing is not None and existing is not cls:
        raise ValueError(
            f"rule id {cls.rule_id} already registered by {existing.__name__}"
        )
    _RULES[cls.rule_id] = cls
    return cls


def registered_rules() -> List[Type[Rule]]:
    """All registered rule classes (per-file and project), by rule id."""
    _load_builtin_rules()
    return [_RULES[rule_id] for rule_id in sorted(_RULES)]


def _load_builtin_rules() -> None:
    # Imported lazily so engine <-> rules is not a hard import cycle.
    from repro.lint import project, rules  # noqa: F401


def ruleset_signature() -> str:
    """Digest identifying the active rule set (cache invalidation key)."""
    from repro.lint import project

    parts = [
        f"{cls.rule_id}:{cls.__name__}:{cls.severity}:{int(cls.is_project)}"
        for cls in registered_rules()
    ]
    parts.append(f"summary-v{project.SUMMARY_VERSION}")
    return hashlib.sha256("|".join(parts).encode("utf-8")).hexdigest()[:16]


def source_digest(source: str) -> str:
    """Content hash keying the incremental cache."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# Suppression pragmas
# ---------------------------------------------------------------------------


class SuppressionIndex:
    """Parsed ``# repro-lint:`` pragmas for one file.

    ``lines`` maps a physical line number to ``"all"`` or a set of rule
    ids; a pragma anywhere on a logical line covers every physical line
    the statement spans (so a pragma after the closing paren of a
    multi-line call suppresses a finding reported at the call's first
    line).  ``file_scope`` holds a module-wide ``disable-file`` pragma:
    ``None`` (no pragma), ``"all"``, or a set of rule ids.
    """

    __slots__ = ("lines", "file_scope")

    def __init__(
        self,
        lines: Optional[Dict[int, object]] = None,
        file_scope: Optional[object] = None,
    ) -> None:
        self.lines: Dict[int, object] = lines if lines is not None else {}
        self.file_scope = file_scope

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        scope = self.file_scope
        if scope is not None and (scope == "all" or rule_id in scope):
            return True
        entry = self.lines.get(line)
        return entry is not None and (entry == "all" or rule_id in entry)

    def to_dict(self) -> Dict[str, object]:
        return {
            "lines": {
                str(line): sorted(entry) if isinstance(entry, set) else entry
                for line, entry in self.lines.items()
            },
            "file_scope": (
                sorted(self.file_scope)
                if isinstance(self.file_scope, set)
                else self.file_scope
            ),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SuppressionIndex":
        lines: Dict[int, object] = {}
        for line, entry in dict(data.get("lines", {})).items():
            lines[int(line)] = entry if entry == "all" else set(entry)
        scope = data.get("file_scope")
        if isinstance(scope, list):
            scope = set(scope)
        return cls(lines, scope)


def _logical_spans(tokens: Sequence) -> List[Tuple[int, int]]:
    """(first, last) physical-line pairs of each logical source line."""
    spans: List[Tuple[int, int]] = []
    start: Optional[int] = None
    skip = (
        tokenize.NL,
        tokenize.COMMENT,
        tokenize.INDENT,
        tokenize.DEDENT,
        tokenize.ENCODING,
        tokenize.ENDMARKER,
    )
    for token in tokens:
        if token.type == tokenize.NEWLINE:
            if start is not None:
                spans.append((start, token.end[0]))
            start = None
        elif token.type in skip:
            continue
        elif start is None:
            start = token.start[0]
    return spans


def parse_suppressions(source: str) -> SuppressionIndex:
    """Extract the pragma index from ``source``.

    Comments are found with :mod:`tokenize` rather than string scanning,
    so ``# repro-lint: disable`` inside a string literal is inert.
    """
    index = SuppressionIndex()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # The AST parse will report the real problem.
        return index
    spans = _logical_spans(tokens)

    def add_line(line: int, wanted: object) -> None:
        existing = index.lines.get(line)
        if existing == "all":
            return
        if wanted == "all":
            index.lines[line] = "all"
        elif isinstance(existing, set):
            existing.update(wanted)
        else:
            index.lines[line] = set(wanted)

    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _SUPPRESS_PATTERN.search(token.string)
        if not match:
            continue
        ids = match.group("ids")
        wanted: object = (
            "all"
            if ids is None
            else {part.strip() for part in ids.split(",") if part.strip()}
        )
        if match.group("scope"):
            if wanted == "all" or index.file_scope == "all":
                index.file_scope = "all"
            else:
                scope = index.file_scope if isinstance(index.file_scope, set) else set()
                scope.update(wanted)
                index.file_scope = scope
            continue
        line = token.start[0]
        lo, hi = line, line
        for span_lo, span_hi in spans:
            if span_lo <= line <= span_hi:
                lo, hi = span_lo, span_hi
                break
        for covered in range(lo, hi + 1):
            add_line(covered, wanted)
    return index


# ---------------------------------------------------------------------------
# Per-file analysis
# ---------------------------------------------------------------------------


class FileContext:
    """Per-file state shared between the engine and the rules."""

    def __init__(self, path: str, source: str) -> None:
        #: Posix-normalized path, as shown in findings.
        self.path = path.replace(os.sep, "/")
        self.source = source
        #: Lexical scope stack of *enclosing* nodes.  When a visitor runs
        #: on a node, the stack holds the scopes around it (not the node
        #: itself), so ``not ctx.scope_stack`` means "module top level".
        self.scope_stack: List[ast.AST] = []
        self.suppressions = parse_suppressions(source)
        self._findings: Set[Finding] = set()

    @property
    def function_stack(self) -> List[ast.AST]:
        """Enclosing function scopes only (classes filtered out)."""
        return [
            node
            for node in self.scope_stack
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda))
        ]

    def at_module_level(self) -> bool:
        return not self.scope_stack

    def report(
        self,
        rule: Rule,
        node: ast.AST,
        message: str,
        line: Optional[int] = None,
    ) -> None:
        """Record a finding at ``node`` unless suppressed on that line."""
        lineno = int(line if line is not None else getattr(node, "lineno", 1))
        col = int(getattr(node, "col_offset", 0))
        if self.suppressions.is_suppressed(rule.rule_id, lineno):
            return
        self._findings.add(
            Finding(
                path=self.path,
                line=lineno,
                col=col,
                rule_id=rule.rule_id,
                severity=rule.severity,
                message=message,
            )
        )

    def findings(self) -> List[Finding]:
        return sorted(self._findings)


def _active_rules(path: str) -> List[Rule]:
    normalized = path.replace(os.sep, "/")
    active = []
    for cls in registered_rules():
        if cls.is_project:
            continue
        rule = cls()
        if rule.applies_to(normalized):
            active.append(rule)
    return active


def _analyze_source(source: str, path: str):
    """Per-file findings plus the module summary for the project layer.

    Returns ``(findings, summary)``; ``summary`` is None for files that
    do not parse (the findings then carry the RR000 parse error).
    """
    from repro.lint import project

    ctx = FileContext(path, source)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return (
            [
                Finding(
                    path=ctx.path,
                    line=int(exc.lineno or 1),
                    col=int(exc.offset or 0),
                    rule_id=PARSE_ERROR_RULE_ID,
                    severity="error",
                    message=f"file does not parse: {exc.msg}",
                )
            ],
            None,
        )
    rules = _active_rules(path)
    dispatch: Dict[type, List] = {}
    for rule in rules:
        rule.begin_file(ctx)
        for name in dir(rule):
            if not name.startswith("visit_"):
                continue
            node_type = getattr(ast, name[len("visit_"):], None)
            if node_type is None:
                raise ValueError(
                    f"{type(rule).__name__}.{name} names no ast node type"
                )
            dispatch.setdefault(node_type, []).append(getattr(rule, name))
    _walk(tree, ctx, dispatch)
    for rule in rules:
        rule.end_file(ctx)
    summary = project.build_summary(ctx.path, tree, ctx.suppressions)
    return ctx.findings(), summary


def lint_source(
    source: str, path: str = "<string>", *, project: bool = True
) -> List[Finding]:
    """Lint python ``source``; ``path`` labels the findings.

    With ``project=True`` (the default) the cross-file rules also run,
    seeing this single file as the whole program — self-contained
    violations (an obs-series conflict within the file, a leaked
    shared-memory handle) are caught even without a full tree.
    """
    from repro.lint import project as project_mod

    findings, summary = _analyze_source(source, path)
    if project and summary is not None:
        index = project_mod.ProjectIndex([summary])
        findings = sorted(set(findings) | set(project_mod.run_project_rules(index)))
    return findings


def _walk(node: ast.AST, ctx: FileContext, dispatch: Dict[type, List]) -> None:
    for handler in dispatch.get(type(node), ()):
        handler(node, ctx)
    scoped = isinstance(node, _SCOPE_NODES)
    if scoped:
        ctx.scope_stack.append(node)
    for child in ast.iter_child_nodes(node):
        _walk(child, ctx, dispatch)
    if scoped:
        ctx.scope_stack.pop()


def lint_file(path, *, project: bool = True) -> List[Finding]:
    """Lint one file on disk."""
    path = os.fspath(path)
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    return lint_source(source, path, project=project)


def _iter_python_files(paths: Sequence) -> Iterable[str]:
    for path in paths:
        path = os.fspath(path)
        if os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(
                    d for d in dirs
                    if d not in ("__pycache__", ".git") and not d.endswith(".egg-info")
                )
                for name in sorted(files):
                    if name.endswith(".py"):
                        yield os.path.join(root, name)
        else:
            yield path


def _analyze_file_payload(path: str, source: str):
    """Worker-side task: one file's findings and summary, as plain dicts.

    Top-level (picklable by reference) so ``lint_paths`` can fan files
    through the persistent :mod:`repro.experiments.pool` executor; the
    parent rebuilds :class:`Finding`/``ModuleSummary`` objects from the
    returned payload.
    """
    findings, summary = _analyze_source(source, path)
    return (
        [finding.to_dict() for finding in findings],
        summary.to_dict() if summary is not None else None,
    )


def _analyze_parallel(
    work: List[Tuple[str, str]], jobs: int
) -> List[Tuple[List[Finding], object]]:
    """Analyze ``(path, source)`` pairs on the persistent worker pool.

    Results come back in input order regardless of completion order, so
    parallel runs are byte-identical to serial ones.  A broken executor
    degrades to inline analysis for the unfinished files — the pool is
    an optimization, never a correctness dependency.
    """
    from concurrent.futures import BrokenExecutor

    from repro.experiments.pool import get_pool
    from repro.lint import project

    executor = get_pool().ensure(min(jobs, len(work)))
    futures = []
    for path, source in work:
        try:
            futures.append(executor.submit(_analyze_file_payload, path, source))
        except (BrokenExecutor, RuntimeError):
            futures.append(None)
    results: List[Tuple[List[Finding], object]] = []
    for (path, source), future in zip(work, futures):
        payload = None
        if future is not None:
            try:
                payload = future.result()
            except BrokenExecutor:
                payload = None
        if payload is None:
            results.append(_analyze_source(source, path))
            continue
        finding_dicts, summary_dict = payload
        results.append(
            (
                [Finding.from_dict(d) for d in finding_dicts],
                project.ModuleSummary.from_dict(summary_dict)
                if summary_dict is not None
                else None,
            )
        )
    return results


def lint_paths(
    paths: Sequence,
    *,
    jobs: int = 1,
    cache: Optional[str] = None,
    project: bool = True,
) -> List[Finding]:
    """Lint every ``*.py`` under ``paths`` (files or directories).

    Findings are sorted by (path, line, col, rule id); an empty list
    means the tree is clean.

    ``jobs > 1`` fans per-file analysis through the persistent
    :mod:`repro.experiments.pool` worker pool; ``cache`` names a JSON
    file keyed by content hash so warm runs skip unchanged files
    entirely (including the parse).  ``project=False`` disables the
    cross-file rules — the right trade for partial-tree runs like
    ``make lint-changed``, where the index would be missing most of the
    program.
    """
    from repro.lint import project as project_mod
    from repro.lint.cache import LintCache

    files: List[Tuple[str, str, str]] = []  # (normalized, source, digest)
    for file_path in _iter_python_files(paths):
        with open(file_path, "r", encoding="utf-8") as handle:
            source = handle.read()
        normalized = os.fspath(file_path).replace(os.sep, "/")
        files.append((normalized, source, source_digest(source)))

    store = LintCache.load(cache) if cache else None
    findings: Set[Finding] = set()
    summaries: List = []
    pending: List[Tuple[str, str]] = []
    for normalized, source, digest in files:
        hit = store.lookup(normalized, digest) if store is not None else None
        if hit is not None:
            cached_findings, summary = hit
            findings.update(cached_findings)
            if summary is not None:
                summaries.append(summary)
        else:
            pending.append((normalized, source))

    if pending:
        if jobs > 1 and len(pending) > 1:
            results = _analyze_parallel(pending, jobs)
        else:
            results = [_analyze_source(source, path) for path, source in pending]
        digest_by_path = {normalized: digest for normalized, _, digest in files}
        for (path, _source), (file_findings, summary) in zip(pending, results):
            findings.update(file_findings)
            if summary is not None:
                summaries.append(summary)
            if store is not None:
                store.store(path, digest_by_path[path], file_findings, summary)

    if project and summaries:
        project_key = hashlib.sha256(
            json.dumps(
                sorted((normalized, digest) for normalized, _, digest in files)
            ).encode("utf-8")
        ).hexdigest()
        cached_project = (
            store.project_findings(project_key) if store is not None else None
        )
        if cached_project is not None:
            findings.update(cached_project)
        else:
            index = project_mod.ProjectIndex(summaries)
            project_findings = project_mod.run_project_rules(index)
            findings.update(project_findings)
            if store is not None:
                store.store_project(project_key, project_findings)

    if store is not None:
        store.save()
    return sorted(findings)
