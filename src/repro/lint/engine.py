"""The ``repro.lint`` AST-walking engine.

The linter exists because the Monte-Carlo engine's guarantees — seeded,
stream-identical randomness; shared immutable BFS forests; an int32 hot
path — are *conventions*, and conventions rot.  Each convention is
encoded as a :class:`Rule` that inspects one file's AST and reports
:class:`Finding` objects; this module provides the shared machinery:

* a rule registry (:func:`register_rule` / :func:`registered_rules`);
* per-file visitor dispatch — the engine walks each module's AST once
  and hands every node to the rules that declared a ``visit_<NodeType>``
  method, maintaining a lexical scope stack the rules can consult;
* suppression comments — a finding on a line carrying
  ``# repro-lint: disable=RR001`` (comma-separated ids, or a bare
  ``disable`` for all rules) is dropped before it is reported.

Rules are *stateful per file*: the engine instantiates a fresh rule
object for every file, calls ``begin_file``/``end_file`` hooks around
the walk, and deduplicates identical findings (nested scopes may cause
a rule to observe the same statement twice).

The engine has no configuration file on purpose: the rule set is the
project's invariants, not a style preference, and the only sanctioned
opt-out is an in-line suppression comment that reviewers can see.
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Type

__all__ = [
    "Finding",
    "Rule",
    "register_rule",
    "registered_rules",
    "lint_source",
    "lint_file",
    "lint_paths",
    "PARSE_ERROR_RULE_ID",
]

#: Findings about unparseable files carry this pseudo rule id.
PARSE_ERROR_RULE_ID = "RR000"

_SEVERITIES = ("error", "warning")
_RULE_ID_PATTERN = re.compile(r"^RR\d{3}$")
_SUPPRESS_PATTERN = re.compile(
    r"#\s*repro-lint:\s*disable(?:=(?P<ids>[A-Z0-9,\s]+))?"
)

#: Scope-introducing AST nodes tracked on ``FileContext.scope_stack``.
_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a specific source location."""

    path: str
    line: int
    col: int
    rule_id: str
    severity: str
    message: str

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def render(self) -> str:
        return f"{self.location}: {self.rule_id} [{self.severity}] {self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule_id": self.rule_id,
            "severity": self.severity,
            "message": self.message,
        }


class Rule:
    """Base class for lint rules.

    Subclasses set the class attributes below and implement any number of
    ``visit_<NodeType>`` methods (``visit_Call``, ``visit_Assign``, ...);
    the engine calls each exactly once per matching node, in source
    order, before descending into the node's children.  ``begin_file``
    runs before the walk, ``end_file`` after — rules that need
    whole-module context accumulate candidates during the walk and emit
    them from ``end_file``.
    """

    #: Stable identifier, ``RRnnn``.
    rule_id: str = ""
    #: ``"error"`` or ``"warning"`` (both fail the lint gate).
    severity: str = "error"
    #: One-line description shown in ``--json`` output and docs.
    summary: str = ""
    #: Why the invariant matters (shown in ``--json`` rule docs).
    rationale: str = ""

    def applies_to(self, path: str) -> bool:
        """Whether this rule runs on ``path`` (posix-normalized)."""
        return True

    def begin_file(self, ctx: "FileContext") -> None:  # pragma: no cover
        pass

    def end_file(self, ctx: "FileContext") -> None:  # pragma: no cover
        pass


_RULES: Dict[str, Type[Rule]] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding ``cls`` to the global rule registry."""
    if not _RULE_ID_PATTERN.match(cls.rule_id or ""):
        raise ValueError(
            f"rule id must match RRnnn, got {cls.rule_id!r} on {cls.__name__}"
        )
    if cls.severity not in _SEVERITIES:
        raise ValueError(
            f"severity must be one of {_SEVERITIES}, got {cls.severity!r}"
        )
    existing = _RULES.get(cls.rule_id)
    if existing is not None and existing is not cls:
        raise ValueError(
            f"rule id {cls.rule_id} already registered by {existing.__name__}"
        )
    _RULES[cls.rule_id] = cls
    return cls


def registered_rules() -> List[Type[Rule]]:
    """All registered rule classes, sorted by rule id."""
    _load_builtin_rules()
    return [_RULES[rule_id] for rule_id in sorted(_RULES)]


def _load_builtin_rules() -> None:
    # Imported lazily so engine <-> rules is not a hard import cycle.
    from repro.lint import rules  # noqa: F401


class FileContext:
    """Per-file state shared between the engine and the rules."""

    def __init__(self, path: str, source: str) -> None:
        #: Posix-normalized path, as shown in findings.
        self.path = path.replace(os.sep, "/")
        self.source = source
        #: Lexical scope stack of *enclosing* nodes.  When a visitor runs
        #: on a node, the stack holds the scopes around it (not the node
        #: itself), so ``not ctx.scope_stack`` means "module top level".
        self.scope_stack: List[ast.AST] = []
        self._suppressions = _parse_suppressions(source)
        self._findings: Set[Finding] = set()

    @property
    def function_stack(self) -> List[ast.AST]:
        """Enclosing function scopes only (classes filtered out)."""
        return [
            node
            for node in self.scope_stack
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda))
        ]

    def at_module_level(self) -> bool:
        return not self.scope_stack

    def report(
        self,
        rule: Rule,
        node: ast.AST,
        message: str,
        line: Optional[int] = None,
    ) -> None:
        """Record a finding at ``node`` unless suppressed on that line."""
        lineno = int(line if line is not None else getattr(node, "lineno", 1))
        col = int(getattr(node, "col_offset", 0))
        suppressed = self._suppressions.get(lineno)
        if suppressed is not None and (
            suppressed == "all" or rule.rule_id in suppressed
        ):
            return
        self._findings.add(
            Finding(
                path=self.path,
                line=lineno,
                col=col,
                rule_id=rule.rule_id,
                severity=rule.severity,
                message=message,
            )
        )

    def findings(self) -> List[Finding]:
        return sorted(self._findings)


def _parse_suppressions(source: str):
    """Map line number -> suppressed rule-id set (or ``"all"``).

    Comments are found with :mod:`tokenize` rather than string scanning,
    so ``# repro-lint: disable`` inside a string literal is inert.
    """
    suppressions: Dict[int, object] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_PATTERN.search(token.string)
            if not match:
                continue
            ids = match.group("ids")
            line = token.start[0]
            if ids is None:
                suppressions[line] = "all"
                continue
            wanted = {part.strip() for part in ids.split(",") if part.strip()}
            existing = suppressions.get(line)
            if existing == "all":
                continue
            if isinstance(existing, set):
                existing.update(wanted)
            else:
                suppressions[line] = wanted
    except tokenize.TokenError:
        # The AST parse will report the real problem.
        pass
    return suppressions


def _active_rules(path: str) -> List[Rule]:
    normalized = path.replace(os.sep, "/")
    active = []
    for cls in registered_rules():
        rule = cls()
        if rule.applies_to(normalized):
            active.append(rule)
    return active


def lint_source(source: str, path: str = "<string>") -> List[Finding]:
    """Lint python ``source``; ``path`` labels the findings."""
    ctx = FileContext(path, source)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                path=ctx.path,
                line=int(exc.lineno or 1),
                col=int(exc.offset or 0),
                rule_id=PARSE_ERROR_RULE_ID,
                severity="error",
                message=f"file does not parse: {exc.msg}",
            )
        ]
    rules = _active_rules(path)
    dispatch: Dict[type, List] = {}
    for rule in rules:
        rule.begin_file(ctx)
        for name in dir(rule):
            if not name.startswith("visit_"):
                continue
            node_type = getattr(ast, name[len("visit_"):], None)
            if node_type is None:
                raise ValueError(
                    f"{type(rule).__name__}.{name} names no ast node type"
                )
            dispatch.setdefault(node_type, []).append(getattr(rule, name))
    _walk(tree, ctx, dispatch)
    for rule in rules:
        rule.end_file(ctx)
    return ctx.findings()


def _walk(node: ast.AST, ctx: FileContext, dispatch: Dict[type, List]) -> None:
    for handler in dispatch.get(type(node), ()):
        handler(node, ctx)
    scoped = isinstance(node, _SCOPE_NODES)
    if scoped:
        ctx.scope_stack.append(node)
    for child in ast.iter_child_nodes(node):
        _walk(child, ctx, dispatch)
    if scoped:
        ctx.scope_stack.pop()


def lint_file(path) -> List[Finding]:
    """Lint one file on disk."""
    path = os.fspath(path)
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    return lint_source(source, path)


def _iter_python_files(paths: Sequence) -> Iterable[str]:
    for path in paths:
        path = os.fspath(path)
        if os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(
                    d for d in dirs
                    if d not in ("__pycache__", ".git") and not d.endswith(".egg-info")
                )
                for name in sorted(files):
                    if name.endswith(".py"):
                        yield os.path.join(root, name)
        else:
            yield path


def lint_paths(paths: Sequence) -> List[Finding]:
    """Lint every ``*.py`` under ``paths`` (files or directories).

    Findings are sorted by (path, line, col, rule id); an empty list
    means the tree is clean.
    """
    findings: List[Finding] = []
    for file_path in _iter_python_files(paths):
        findings.extend(lint_file(file_path))
    return sorted(findings)
