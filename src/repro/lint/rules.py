"""The built-in ``repro.lint`` per-file rules (RR001–RR010, RR015, RR016).

Each rule encodes one invariant the Monte-Carlo engine's correctness
arguments rest on; `docs/static-analysis.md` is the narrative version.
Rules are deliberately narrow: they under-approximate (an alias the
tracker loses is missed, not guessed at) so that a finding is always
worth reading — the lint gate treats every finding as fatal.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.lint.engine import FileContext, Rule, register_rule

__all__ = [
    "BlockingCallDetector",
    "UnseededRandomRule",
    "CachedForestMutationRule",
    "DtypeDisciplineRule",
    "OverbroadExceptRule",
    "UnregisteredFigureRule",
    "MutableDefaultRule",
    "BlockingAsyncCallRule",
    "RawClockReadRule",
    "ObsClockReadRule",
    "AdHocProcessPoolRule",
    "UnregisteredTreeBuilderRule",
]

_INT32_MAX = 2**31 - 1


def _attr_chain(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """``a.b.c`` as ``("a", "b", "c")``; None for non-name chains."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def _pre_order(nodes: Sequence[ast.AST], skip_scopes: bool = True):
    """Source-ordered walk of ``nodes`` and their descendants.

    With ``skip_scopes`` the walk does not descend into nested
    function/class definitions — their bodies are separate scopes and
    are analyzed on their own visit.
    """
    for node in nodes:
        yield node
        if skip_scopes and isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)
        ):
            continue
        yield from _pre_order(list(ast.iter_child_nodes(node)), skip_scopes)


# ---------------------------------------------------------------------------
# RR001 — unseeded / global randomness
# ---------------------------------------------------------------------------


@register_rule
class UnseededRandomRule(Rule):
    """Every random draw must flow through ``repro.utils.rng``."""

    rule_id = "RR001"
    severity = "error"
    summary = (
        "global/np.random usage outside utils/rng.py — route randomness "
        "through ensure_rng()/spawn_rngs()"
    )
    rationale = (
        "Batched/scalar engine equivalence and worker-count invariance "
        "are proved stream-by-stream: every draw comes from a seeded "
        "per-source generator.  One np.random.* or stdlib-random call "
        "taps hidden global state and silently breaks reproducibility."
    )

    #: Files allowed to touch numpy's generator constructors directly.
    _ALLOWED_SUFFIXES = ("repro/utils/rng.py",)
    #: Deterministic seed containers / types, not draw sources.
    _STATELESS = {
        "SeedSequence",
        "Generator",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }

    def applies_to(self, path: str) -> bool:
        return not path.endswith(self._ALLOWED_SUFFIXES)

    def begin_file(self, ctx: FileContext) -> None:
        self._random_modules: Set[str] = set()
        self._random_names: Set[str] = set()

    def visit_Import(self, node: ast.Import, ctx: FileContext) -> None:
        for alias in node.names:
            if alias.name == "random":
                self._random_modules.add(alias.asname or "random")

    def visit_ImportFrom(self, node: ast.ImportFrom, ctx: FileContext) -> None:
        if node.module not in ("random", "numpy.random"):
            return
        for alias in node.names:
            if alias.name in self._STATELESS:
                continue
            self._random_names.add(alias.asname or alias.name)

    def visit_Call(self, node: ast.Call, ctx: FileContext) -> None:
        chain = _attr_chain(node.func)
        if chain is None:
            return
        if (
            len(chain) == 3
            and chain[0] in ("np", "numpy")
            and chain[1] == "random"
            and chain[2] not in self._STATELESS
        ):
            ctx.report(
                self,
                node,
                f"call to {'.'.join(chain)}() bypasses the seeded-stream "
                "helpers; use repro.utils.rng.ensure_rng/spawn_rngs",
            )
        elif len(chain) == 2 and chain[0] in self._random_modules:
            ctx.report(
                self,
                node,
                f"stdlib random call {'.'.join(chain)}() uses hidden global "
                "state; use a numpy Generator from repro.utils.rng",
            )
        elif len(chain) == 1 and (
            chain[0] == "default_rng" or chain[0] in self._random_names
        ):
            ctx.report(
                self,
                node,
                f"bare {chain[0]}() constructs an unmanaged generator; use "
                "repro.utils.rng.ensure_rng",
            )


# ---------------------------------------------------------------------------
# RR002 — cached forests are shared immutable state
# ---------------------------------------------------------------------------

#: ndarray methods that mutate in place.
_MUTATING_METHODS = {"sort", "resize", "fill", "partition", "put", "itemset"}
#: ShortestPathForest array attributes (the cached state itself).
_FOREST_ARRAYS = ("dist", "parent")


@register_rule
class CachedForestMutationRule(Rule):
    """Arrays obtained from a forest cache must never be written."""

    rule_id = "RR002"
    severity = "error"
    summary = (
        "ForestCache-returned array mutated, thawed, or returned as a "
        "view from a public function"
    )
    rationale = (
        "A cached forest is shared by every driver, bench, and worker "
        "that ever asks for the same (graph, source) pair.  Writing "
        "through it — or handing a writable view across a public API — "
        "corrupts every later reader; the runtime writeable=False guard "
        "catches this late, the rule catches it at review time."
    )

    def visit_FunctionDef(self, node: ast.FunctionDef, ctx: FileContext) -> None:
        self._analyze(node, ctx)

    def visit_AsyncFunctionDef(
        self, node: ast.AsyncFunctionDef, ctx: FileContext
    ) -> None:
        self._analyze(node, ctx)

    # -- helpers ---------------------------------------------------------

    @staticmethod
    def _mentions_cache(node: ast.AST) -> bool:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name) and "cache" in sub.id.lower():
                return True
            if isinstance(sub, ast.Attribute) and "cache" in sub.attr.lower():
                return True
        return False

    @classmethod
    def _is_cache_getter(cls, node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("forest", "get")
            and cls._mentions_cache(node.func.value)
        )

    @classmethod
    def _is_view(
        cls, node: ast.AST, forests: Set[str], views: Set[str]
    ) -> bool:
        """Whether ``node`` evaluates to an array aliasing cached state."""
        if isinstance(node, ast.Name):
            return node.id in views
        if isinstance(node, ast.Attribute) and node.attr in _FOREST_ARRAYS:
            value = node.value
            if isinstance(value, ast.Name) and value.id in forests:
                return True
            return cls._is_cache_getter(value)
        if isinstance(node, ast.Subscript):
            return cls._is_view(node.value, forests, views)
        return False

    @staticmethod
    def _thaws(node: ast.Call) -> bool:
        """``x.setflags(...)`` calls that re-enable writing."""
        for keyword in node.keywords:
            if keyword.arg == "write" and isinstance(keyword.value, ast.Constant):
                return bool(keyword.value.value)
        if node.args and isinstance(node.args[0], ast.Constant):
            return bool(node.args[0].value)
        return False

    def _analyze(self, fn: ast.AST, ctx: FileContext) -> None:
        forests: Set[str] = set()
        views: Set[str] = set()
        public = not fn.name.startswith("_")
        for node in _pre_order(fn.body):
            if isinstance(node, ast.Assign):
                self._handle_assign(node, ctx, forests, views)
            elif isinstance(node, ast.AugAssign):
                if self._is_view(node.target, forests, views):
                    ctx.report(
                        self,
                        node,
                        "augmented assignment writes through a cached "
                        "forest array; use borrow_mutable() for a copy",
                    )
            elif isinstance(node, ast.Call):
                self._handle_call(node, ctx, forests, views)
            elif isinstance(node, ast.Return) and node.value is not None:
                if public and self._is_view(node.value, forests, views):
                    ctx.report(
                        self,
                        node,
                        f"public function {fn.name}() returns a view of a "
                        "cached forest array; return a copy instead",
                    )

    def _handle_assign(
        self,
        node: ast.Assign,
        ctx: FileContext,
        forests: Set[str],
        views: Set[str],
    ) -> None:
        for target in node.targets:
            if isinstance(target, ast.Subscript) and self._is_view(
                target.value, forests, views
            ):
                ctx.report(
                    self,
                    node,
                    "item assignment writes through a cached forest array; "
                    "use borrow_mutable() for a copy",
                )
        if len(node.targets) != 1 or not isinstance(node.targets[0], ast.Name):
            return
        name = node.targets[0].id
        value = node.value
        if self._is_cache_getter(value):
            forests.add(name)
            views.discard(name)
        elif self._is_view(value, forests, views):
            views.add(name)
            forests.discard(name)
        else:
            # Rebinding (including to an explicit .copy()) ends tracking.
            forests.discard(name)
            views.discard(name)

    def _handle_call(
        self,
        node: ast.Call,
        ctx: FileContext,
        forests: Set[str],
        views: Set[str],
    ) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        if not self._is_view(func.value, forests, views):
            return
        if func.attr in _MUTATING_METHODS:
            ctx.report(
                self,
                node,
                f".{func.attr}() mutates a cached forest array in place; "
                "use borrow_mutable() for a copy",
            )
        elif func.attr == "setflags" and self._thaws(node):
            ctx.report(
                self,
                node,
                "setflags(write=True) thaws a cached forest array shared "
                "with other callers",
            )


# ---------------------------------------------------------------------------
# RR003 — int32 hot-path dtype discipline
# ---------------------------------------------------------------------------


@register_rule
class DtypeDisciplineRule(Rule):
    """No implicit dtypes where int32 scratch is in play."""

    rule_id = "RR003"
    severity = "error"
    summary = (
        "dtype-mixing hazard near declared-int32 scratch (np.arange "
        "without dtype, float/oversized stores into int32 arrays)"
    )
    rationale = (
        "The batched walk is memory-bound and keeps all scratch int32; "
        "np.arange defaults to the platform int and a float or wide "
        "store silently upcasts or wraps, so the engines drift apart on "
        "exactly the large instances the equivalence suite cannot "
        "afford to cover."
    )

    def begin_file(self, ctx: FileContext) -> None:
        # Local declarations are per function scope (two functions may
        # reuse a name like ``dist`` for different dtypes); ``self.x``
        # attribute declarations are file-wide (set in __init__, used in
        # other methods).  Scope key: id() of the innermost function
        # node, or None at module level.
        self._locals: Dict[Optional[int], Set[str]] = {}
        self._attrs: Set[str] = set()
        self._aliases: List[Tuple[Optional[int], str, Tuple[str, str]]] = []
        self._arange_candidates: List[ast.Call] = []
        self._store_candidates: List[
            Tuple[Optional[int], Tuple[str, str], ast.AST, str]
        ] = []

    @staticmethod
    def _scope(ctx: FileContext) -> Optional[int]:
        stack = ctx.function_stack
        return id(stack[-1]) if stack else None

    # -- dtype spelling --------------------------------------------------

    @staticmethod
    def _is_int32_dtype(node: ast.AST) -> bool:
        if isinstance(node, ast.Constant) and node.value == "int32":
            return True
        chain = _attr_chain(node)
        return chain is not None and chain[-1] == "int32"

    @classmethod
    def _declares_int32(cls, value: ast.AST) -> bool:
        """``np.zeros(..., dtype=np.int32)`` / ``x.astype(np.int32)``."""
        if not isinstance(value, ast.Call):
            return False
        for keyword in value.keywords:
            if keyword.arg == "dtype" and cls._is_int32_dtype(keyword.value):
                return True
        if (
            isinstance(value.func, ast.Attribute)
            and value.func.attr == "astype"
            and value.args
            and cls._is_int32_dtype(value.args[0])
        ):
            return True
        return False

    @staticmethod
    def _target_key(target: ast.AST) -> Optional[Tuple[str, str]]:
        """``("local", name)`` for ``x``, ``("attr", name)`` for ``o.x``."""
        if isinstance(target, ast.Name):
            return ("local", target.id)
        if isinstance(target, ast.Attribute) and isinstance(
            target.value, ast.Name
        ):
            return ("attr", target.attr)
        return None

    # -- visitors --------------------------------------------------------

    def visit_Call(self, node: ast.Call, ctx: FileContext) -> None:
        chain = _attr_chain(node.func)
        if chain is None or chain[-1] != "arange":
            return
        if len(chain) == 2 and chain[0] not in ("np", "numpy"):
            return
        if not any(keyword.arg == "dtype" for keyword in node.keywords):
            self._arange_candidates.append(node)

    def visit_Assign(self, node: ast.Assign, ctx: FileContext) -> None:
        scope = self._scope(ctx)
        if len(node.targets) == 1:
            key = self._target_key(node.targets[0])
            if key is not None:
                if self._declares_int32(node.value):
                    if key[0] == "attr":
                        self._attrs.add(key[1])
                    else:
                        self._locals.setdefault(scope, set()).add(key[1])
                elif key[0] == "local" and isinstance(
                    node.value, (ast.Name, ast.Attribute)
                ):
                    source = self._target_key(node.value)
                    if source is not None:
                        self._aliases.append((scope, key[1], source))
        for target in node.targets:
            if isinstance(target, ast.Subscript):
                base = self._target_key(target.value)
                if base is not None:
                    self._record_store(scope, base, node.value, node)

    def visit_AugAssign(self, node: ast.AugAssign, ctx: FileContext) -> None:
        if isinstance(node.target, ast.Subscript):
            base = self._target_key(node.target.value)
        else:
            base = self._target_key(node.target)
        if base is not None:
            self._record_store(self._scope(ctx), base, node.value, node)

    def _record_store(
        self,
        scope: Optional[int],
        base: Tuple[str, str],
        value: ast.AST,
        node: ast.AST,
    ) -> None:
        for sub in ast.walk(value):
            if isinstance(sub, ast.Constant):
                if isinstance(sub.value, float):
                    self._store_candidates.append(
                        (scope, base, node, "a float value")
                    )
                    return
                if (
                    isinstance(sub.value, int)
                    and not isinstance(sub.value, bool)
                    and abs(sub.value) > _INT32_MAX
                ):
                    self._store_candidates.append(
                        (scope, base, node, "an int32-overflowing constant")
                    )
                    return
            if isinstance(sub, ast.Call):
                chain = _attr_chain(sub.func)
                if (
                    chain is not None
                    and chain[-1] in ("zeros", "empty", "ones", "full")
                    and chain[0] in ("np", "numpy")
                    and not any(k.arg == "dtype" for k in sub.keywords)
                ):
                    self._store_candidates.append(
                        (scope, base, node,
                         f"np.{chain[-1]}() with the default dtype")
                    )
                    return

    def _declared(self, scope: Optional[int], key: Tuple[str, str]) -> bool:
        if key[0] == "attr":
            return key[1] in self._attrs
        return key[1] in self._locals.get(scope, ())

    def end_file(self, ctx: FileContext) -> None:
        # Close declared-int32 over simple aliases within each scope
        # (``stamp = self._batch_stamp``).
        changed = True
        while changed:
            changed = False
            for scope, alias, source in self._aliases:
                if self._declared(scope, source):
                    local = self._locals.setdefault(scope, set())
                    if alias not in local:
                        local.add(alias)
                        changed = True
        if not self._attrs and not any(self._locals.values()):
            return
        for node in self._arange_candidates:
            ctx.report(
                self,
                node,
                "np.arange without an explicit dtype in a module with "
                "int32 scratch (the platform default poisons int32 math)",
            )
        for scope, base, node, what in self._store_candidates:
            if self._declared(scope, base):
                ctx.report(
                    self,
                    node,
                    f"stores {what} into declared-int32 scratch {base[1]!r}",
                )


# ---------------------------------------------------------------------------
# RR004 — swallowed exceptions
# ---------------------------------------------------------------------------

_LOGGING_NAMES = {"logging", "logger", "log", "warnings"}


@register_rule
class OverbroadExceptRule(Rule):
    """Overbroad handlers must re-raise or at least log."""

    rule_id = "RR004"
    severity = "warning"
    summary = "bare/overbroad except that neither re-raises nor logs"
    rationale = (
        "A swallowed exception in a Monte-Carlo sweep turns a crash "
        "into a silently skewed estimate — exactly the sampling "
        "artifact the paper's critics warn about.  Catch the narrow "
        "exception, or re-raise/log in the handler."
    )

    def visit_ExceptHandler(
        self, node: ast.ExceptHandler, ctx: FileContext
    ) -> None:
        described = self._overbroad(node.type)
        if described is None:
            return
        for sub in _pre_order(node.body, skip_scopes=True):
            if isinstance(sub, ast.Raise):
                return
            if isinstance(sub, ast.Call):
                chain = _attr_chain(sub.func)
                if chain is not None and (
                    chain[0] in _LOGGING_NAMES or chain[-1] == "print"
                ):
                    return
        ctx.report(
            self,
            node,
            f"{described} swallows errors without re-raise or logging; "
            "catch the specific exception or handle it visibly",
        )

    @staticmethod
    def _overbroad(type_node: Optional[ast.AST]) -> Optional[str]:
        if type_node is None:
            return "bare except:"
        names = []
        nodes = (
            list(type_node.elts)
            if isinstance(type_node, ast.Tuple)
            else [type_node]
        )
        for sub in nodes:
            chain = _attr_chain(sub)
            if chain is not None and chain[-1] in ("Exception", "BaseException"):
                names.append(chain[-1])
        if names:
            return f"except {'/'.join(names)}"
        return None


# ---------------------------------------------------------------------------
# RR005 — figure modules must register their drivers
# ---------------------------------------------------------------------------


@register_rule
class UnregisteredFigureRule(Rule):
    """Figure modules must register with the figure registry."""

    rule_id = "RR005"
    severity = "warning"
    summary = (
        "module under experiments/figures/ defines run_* drivers but "
        "never calls register_figure"
    )
    rationale = (
        "The figure registry is how `repro-mcast all`, the report "
        "builder, and future tooling enumerate what can be reproduced; "
        "an unregistered driver is invisible to all of them and decays "
        "unexercised."
    )

    _EXEMPT_BASENAMES = ("__init__.py", "base.py", "registry.py")

    def applies_to(self, path: str) -> bool:
        if "experiments/figures/" not in path:
            return False
        return path.rsplit("/", 1)[-1] not in self._EXEMPT_BASENAMES

    def begin_file(self, ctx: FileContext) -> None:
        self._first_driver: Optional[ast.FunctionDef] = None
        self._registers = False

    def visit_FunctionDef(self, node: ast.FunctionDef, ctx: FileContext) -> None:
        if (
            ctx.at_module_level()
            and node.name.startswith("run_")
            and self._first_driver is None
        ):
            self._first_driver = node

    def visit_Name(self, node: ast.Name, ctx: FileContext) -> None:
        if node.id == "register_figure":
            self._registers = True

    def visit_Attribute(self, node: ast.Attribute, ctx: FileContext) -> None:
        if node.attr == "register_figure":
            self._registers = True

    def end_file(self, ctx: FileContext) -> None:
        if self._first_driver is not None and not self._registers:
            ctx.report(
                self,
                self._first_driver,
                f"figure module defines {self._first_driver.name}() but "
                "never registers a driver with "
                "repro.experiments.figures.registry.register_figure",
            )


# ---------------------------------------------------------------------------
# RR006 — mutable default arguments
# ---------------------------------------------------------------------------

_MUTABLE_CONSTRUCTORS = {"list", "dict", "set", "bytearray", "defaultdict"}


@register_rule
class MutableDefaultRule(Rule):
    """No mutable default arguments."""

    rule_id = "RR006"
    severity = "warning"
    summary = "mutable default argument (list/dict/set literal or call)"
    rationale = (
        "A mutable default is evaluated once and shared across calls — "
        "state leaks between supposedly independent experiment runs, "
        "the same bug class the forest-cache guards exist for.  Default "
        "to None (or an immutable tuple) and construct inside."
    )

    def visit_FunctionDef(self, node: ast.FunctionDef, ctx: FileContext) -> None:
        self._check(node, ctx)

    def visit_AsyncFunctionDef(
        self, node: ast.AsyncFunctionDef, ctx: FileContext
    ) -> None:
        self._check(node, ctx)

    def visit_Lambda(self, node: ast.Lambda, ctx: FileContext) -> None:
        self._check(node, ctx)

    def _check(self, node: ast.AST, ctx: FileContext) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            described = self._mutable(default)
            if described is not None:
                name = getattr(node, "name", "<lambda>")
                ctx.report(
                    self,
                    default,
                    f"{name}() uses {described} as a default argument; "
                    "shared across calls — default to None instead",
                )

    @staticmethod
    def _mutable(node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.List):
            return "a list literal"
        if isinstance(node, ast.Dict):
            return "a dict literal"
        if isinstance(node, ast.Set):
            return "a set literal"
        if isinstance(node, ast.Call):
            chain = _attr_chain(node.func)
            if chain is not None and chain[-1] in _MUTABLE_CONSTRUCTORS:
                return f"{chain[-1]}()"
        return None


# ---------------------------------------------------------------------------
# RR007 — no blocking calls inside the serving layer's coroutines
# ---------------------------------------------------------------------------

#: Modules whose direct calls block the event loop.
_BLOCKING_MODULES = {"time", "subprocess", "socket"}
#: Blocking functions importable by bare name, keyed by home module.
_BLOCKING_FROM_IMPORTS = {
    ("time", "sleep"): "time.sleep",
    ("subprocess", "run"): "subprocess.run",
    ("subprocess", "call"): "subprocess.call",
    ("subprocess", "check_call"): "subprocess.check_call",
    ("subprocess", "check_output"): "subprocess.check_output",
    ("subprocess", "Popen"): "subprocess.Popen",
    ("socket", "create_connection"): "socket.create_connection",
    ("socket", "getaddrinfo"): "socket.getaddrinfo",
    ("urllib.request", "urlopen"): "urllib.request.urlopen",
}
#: ``time`` attributes that do NOT block (clock reads are fine).
_TIME_NONBLOCKING = {
    "monotonic",
    "monotonic_ns",
    "perf_counter",
    "perf_counter_ns",
    "process_time",
    "process_time_ns",
    "time",
    "time_ns",
    "thread_time",
    "thread_time_ns",
    "gmtime",
    "localtime",
    "strftime",
    "strptime",
    "mktime",
    "ctime",
    "asctime",
}


class BlockingCallDetector:
    """Import-aware recognition of event-loop-blocking calls.

    Shared by RR007 (direct blocking calls in serve coroutines) and the
    project indexer behind RR011 (the same primitives reached
    transitively through sync helpers) so both layers agree on what
    "blocking" means.  Feed it every Import/ImportFrom in the file, then
    ask :meth:`describe` about each call.
    """

    def __init__(self) -> None:
        # module alias -> canonical module ("import time as t")
        self._modules: Dict[str, str] = {}
        # bare name -> dotted description ("from time import sleep")
        self._names: Dict[str, str] = {}

    def see_import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "urllib.request":
                # Unaliased dotted imports are matched on the full
                # ``urllib.request.urlopen`` chain in describe().
                if alias.asname is not None:
                    self._modules[alias.asname] = "urllib.request"
                continue
            root = alias.name.split(".", 1)[0]
            if root in _BLOCKING_MODULES:
                self._modules[alias.asname or root] = root

    def see_import_from(self, node: ast.ImportFrom) -> None:
        for alias in node.names:
            described = _BLOCKING_FROM_IMPORTS.get((node.module, alias.name))
            if described is not None:
                self._names[alias.asname or alias.name] = described

    def describe(self, node: ast.Call) -> Optional[str]:
        """Human-readable name of the blocking primitive, or None."""
        chain = _attr_chain(node.func)
        if chain is None:
            return None
        if len(chain) == 1:
            if chain[0] == "open":
                return "built-in open()"
            described = self._names.get(chain[0])
            return f"{described}()" if described else None
        # ``urllib.request.urlopen`` via plain ``import urllib.request``.
        if chain[:2] == ("urllib", "request") and len(chain) == 3:
            return f"urllib.request.{chain[2]}()"
        module = self._modules.get(chain[0])
        if module is None:
            return None
        if module == "time":
            if chain[-1] in _TIME_NONBLOCKING:
                return None
            return f"time.{chain[-1]}()"
        return f"{module}.{chain[-1]}()"


@register_rule
class BlockingAsyncCallRule(Rule):
    """No synchronous sleeps, sockets, files, or subprocesses in handlers."""

    rule_id = "RR007"
    severity = "error"
    summary = (
        "blocking call (time.sleep, sync socket/file I/O, subprocess) "
        "inside an async def in repro/serve/"
    )
    rationale = (
        "The serving layer is one event loop; a single blocking call in "
        "a coroutine stalls every in-flight request at once — the "
        "tail-latency failure the EstimatorTable/coalescing design "
        "exists to prevent.  Blocking work belongs on the executor "
        "(loop.run_in_executor) or behind an awaitable.  Helpers that "
        "block only transitively are RR011's whole-program territory; "
        "this rule flags the direct calls."
    )

    def applies_to(self, path: str) -> bool:
        return "repro/serve/" in path

    def begin_file(self, ctx: FileContext) -> None:
        self._detector = BlockingCallDetector()

    def visit_Import(self, node: ast.Import, ctx: FileContext) -> None:
        self._detector.see_import(node)

    def visit_ImportFrom(self, node: ast.ImportFrom, ctx: FileContext) -> None:
        self._detector.see_import_from(node)

    def visit_AsyncFunctionDef(
        self, node: ast.AsyncFunctionDef, ctx: FileContext
    ) -> None:
        # Nested sync defs are skipped: defining one does not block, and
        # whether it is ever called from the coroutine is beyond an
        # under-approximating rule.  Nested async defs get their own
        # visit.
        for sub in _pre_order(node.body, skip_scopes=True):
            if isinstance(sub, ast.Call):
                described = self._detector.describe(sub)
                if described is not None:
                    ctx.report(
                        self,
                        sub,
                        f"{described} blocks the event loop inside "
                        f"coroutine {node.name}(); await an async "
                        "equivalent or use loop.run_in_executor",
                    )


# ---------------------------------------------------------------------------
# RR008 — no raw clock reads in the serving layer
# ---------------------------------------------------------------------------

#: ``time`` attributes that read a clock (and so bypass the injected one).
_CLOCK_READS = {
    "monotonic",
    "monotonic_ns",
    "perf_counter",
    "perf_counter_ns",
    "time",
    "time_ns",
}


@register_rule
class RawClockReadRule(Rule):
    """Serving code reads the injected clock, never ``time.*`` directly."""

    rule_id = "RR008"
    severity = "error"
    summary = (
        "raw time.monotonic()/time.time()/perf_counter() call in "
        "repro/serve/ — read the service's injected clock instead"
    )
    rationale = (
        "Every timing decision in the serving layer (TTL expiry, "
        "deadlines, table staleness, latency histograms) flows through "
        "one injected clock so VirtualClock tests control time "
        "deterministically.  A direct time.* read is invisible to that "
        "clock: the code works in production and silently diverges "
        "under virtual time — exactly the flakiness the seam removes.  "
        "References (e.g. a ``clock=time.monotonic`` default) are fine; "
        "only calls are flagged."
    )

    def applies_to(self, path: str) -> bool:
        return "repro/serve/" in path

    def begin_file(self, ctx: FileContext) -> None:
        # module alias -> "time" ("import time as t")
        self._time_aliases: Set[str] = set()
        # bare name -> original time attribute ("from time import monotonic")
        self._clock_names: Dict[str, str] = {}

    def visit_Import(self, node: ast.Import, ctx: FileContext) -> None:
        for alias in node.names:
            if alias.name == "time":
                self._time_aliases.add(alias.asname or "time")

    def visit_ImportFrom(self, node: ast.ImportFrom, ctx: FileContext) -> None:
        if node.module != "time":
            return
        for alias in node.names:
            if alias.name in _CLOCK_READS:
                self._clock_names[alias.asname or alias.name] = alias.name

    def visit_Call(self, node: ast.Call, ctx: FileContext) -> None:
        chain = _attr_chain(node.func)
        if chain is None:
            return
        if len(chain) == 1:
            read = self._clock_names.get(chain[0])
        elif len(chain) == 2 and chain[0] in self._time_aliases:
            read = chain[1] if chain[1] in _CLOCK_READS else None
        else:
            read = None
        if read is not None:
            ctx.report(
                self,
                node,
                f"time.{read}() bypasses the injected clock; call the "
                "service clock (self._clock() / the clock= hook) so "
                "virtual-time tests stay deterministic",
            )


# ---------------------------------------------------------------------------
# RR009 — instrumented modules time through repro.obs, not time.*
# ---------------------------------------------------------------------------

#: Path fragments of the modules instrumented by the observability
#: layer.  ``repro/obs/`` itself is the sanctioned owner of the clock
#: (its collector seam is how VirtualClock reaches every span) and
#: ``repro/serve/`` stays under RR008's injected-clock contract.
_OBS_INSTRUMENTED = ("repro/experiments/", "repro/multicast/", "repro/graph/")


@register_rule
class ObsClockReadRule(Rule):
    """Instrumented modules read time through repro.obs spans only."""

    rule_id = "RR009"
    severity = "error"
    summary = (
        "raw time.*/perf_counter() call in an obs-instrumented module "
        "(repro/experiments, repro/multicast, repro/graph) — wrap the "
        "work in a repro.obs span instead"
    )
    rationale = (
        "The observability layer gives the runner, samplers, caches, "
        "and figure drivers exactly one timing seam: spans read the "
        "collector's injectable clock, so chaos tests swap in a "
        "VirtualClock and traces stay deterministic, and the "
        "samples/sec gauges always agree with the spans they summarize. "
        " A raw time.* read reintroduces an invisible second clock — "
        "timings that drift from the trace and flake under virtual "
        "time.  References (storing ``time.perf_counter`` as a default "
        "clock callable) are fine; only calls are flagged."
    )

    def applies_to(self, path: str) -> bool:
        if "repro/obs/" in path:
            return False
        return any(fragment in path for fragment in _OBS_INSTRUMENTED)

    def begin_file(self, ctx: FileContext) -> None:
        self._time_aliases: Set[str] = set()
        self._clock_names: Dict[str, str] = {}

    def visit_Import(self, node: ast.Import, ctx: FileContext) -> None:
        for alias in node.names:
            if alias.name == "time":
                self._time_aliases.add(alias.asname or "time")

    def visit_ImportFrom(self, node: ast.ImportFrom, ctx: FileContext) -> None:
        if node.module != "time":
            return
        for alias in node.names:
            if alias.name in _CLOCK_READS:
                self._clock_names[alias.asname or alias.name] = alias.name

    def visit_Call(self, node: ast.Call, ctx: FileContext) -> None:
        chain = _attr_chain(node.func)
        if chain is None:
            return
        if len(chain) == 1:
            read = self._clock_names.get(chain[0])
        elif len(chain) == 2 and chain[0] in self._time_aliases:
            read = chain[1] if chain[1] in _CLOCK_READS else None
        else:
            read = None
        if read is not None:
            ctx.report(
                self,
                node,
                f"time.{read}() is a second, untraceable clock; bracket "
                "the timed work in repro.obs.span(...) (its collector "
                "clock is the injectable seam) and read span.duration",
            )


# ---------------------------------------------------------------------------
# RR010 — process fan-out goes through the persistent pool
# ---------------------------------------------------------------------------


@register_rule
class AdHocProcessPoolRule(Rule):
    """Hot paths use repro.experiments.pool, not ad-hoc executors."""

    rule_id = "RR010"
    severity = "error"
    summary = (
        "per-call ProcessPoolExecutor construction or a Graph pickled "
        "across a submit() boundary — route fan-out through "
        "repro.experiments.pool"
    )
    rationale = (
        "Process fan-out pays its fixed costs once per *pool* and once "
        "per *topology*: the persistent WorkerPool amortizes worker "
        "spawn across sweeps, and shared-memory descriptors replace "
        "per-task CSR pickling.  An executor constructed inside a "
        "function resurrects the per-sweep spin-up that once made four "
        "workers slower than one, and a graph argument to submit() "
        "re-ships the whole topology on every task.  Both belong behind "
        "repro.experiments.pool (get_pool / SharedGraphRegistry).  The "
        "graph check is a name heuristic: only submit() arguments whose "
        "terminal identifier contains 'graph' are flagged."
    )

    #: The one module allowed to own executors: the pool itself.
    _POOL_OWNERS = ("repro/experiments/pool.py",)

    def applies_to(self, path: str) -> bool:
        return "repro/" in path and not path.endswith(self._POOL_OWNERS)

    def begin_file(self, ctx: FileContext) -> None:
        self._executor_names: Set[str] = set()

    def visit_ImportFrom(self, node: ast.ImportFrom, ctx: FileContext) -> None:
        if node.module == "concurrent.futures":
            for alias in node.names:
                if alias.name == "ProcessPoolExecutor":
                    self._executor_names.add(alias.asname or alias.name)

    @staticmethod
    def _terminal_name(node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Attribute):
            return node.attr
        return None

    def visit_Call(self, node: ast.Call, ctx: FileContext) -> None:
        chain = _attr_chain(node.func)
        if chain is None:
            return
        constructs_executor = chain[-1] == "ProcessPoolExecutor" and (
            len(chain) > 1 or chain[0] in self._executor_names
        )
        if constructs_executor and not ctx.at_module_level():
            ctx.report(
                self,
                node,
                "ProcessPoolExecutor constructed per call — workers "
                "re-spawn on every invocation; use the persistent "
                "repro.experiments.pool.get_pool() instead",
            )
            return
        if chain[-1] != "submit" or len(chain) < 2:
            return
        # args[0] is the callable; only payload arguments are checked.
        payload = list(node.args[1:]) + [kw.value for kw in node.keywords]
        for arg in payload:
            name = self._terminal_name(arg)
            if name is not None and "graph" in name.lower():
                ctx.report(
                    self,
                    arg,
                    f"{name!r} crosses the submit() boundary by pickle — "
                    "the whole CSR re-ships on every task; publish it "
                    "once (Graph.to_shared / SharedGraphRegistry) and "
                    "submit the descriptor",
                )


# --------------------------------------------------------------------------
# RR015 — serving state must not cross a process spawn boundary


@register_rule
class ServiceAcrossSpawnRule(Rule):
    """ServerApp/EstimationService objects must not be spawned across."""

    rule_id = "RR015"
    severity = "error"
    summary = (
        "a ServerApp or EstimationService crosses a process spawn "
        "boundary (Process(...) / submit()) — ship a FleetWorkerSpec or "
        "TableStoreDescriptor and rebuild the service in-worker"
    )
    rationale = (
        "A live service object is a bundle of process-local state: an "
        "asyncio server and its connection tasks, a response cache with "
        "coalescing futures, shared-memory table views, metric "
        "registries.  None of that survives a pickle round-trip — it "
        "either fails outright or, worse, silently re-imports into a "
        "fresh object whose caches, tables, and counters no longer have "
        "anything to do with the parent's.  The fleet's contract is "
        "that only picklable *recipes* cross the boundary "
        "(FleetWorkerSpec, ServiceConfig, TableStoreDescriptor) and "
        "each worker constructs its own service from them.  Detection "
        "is deliberately narrow: names bound to EstimationService(...) "
        "or ServerApp(...) calls, direct constructor expressions, and "
        "a terminal-name heuristic ('service'/'server_app') for "
        "instances the tracker cannot see being built."
    )

    _SERVICE_CLASSES = ("EstimationService", "ServerApp")
    _NAME_HINTS = ("service", "server_app")

    def applies_to(self, path: str) -> bool:
        return "repro/" in path

    def begin_file(self, ctx: FileContext) -> None:
        #: imported-as aliases of the service classes, local name → class
        self._class_aliases: Dict[str, str] = {}
        #: variables assigned from a tracked constructor, name → class
        self._instances: Dict[str, str] = {}

    def visit_ImportFrom(self, node: ast.ImportFrom, ctx: FileContext) -> None:
        for alias in node.names:
            if alias.name in self._SERVICE_CLASSES:
                self._class_aliases[alias.asname or alias.name] = alias.name

    def _constructed_class(self, node: ast.AST) -> Optional[str]:
        """The service class ``node`` constructs, if it is such a call."""
        if not isinstance(node, ast.Call):
            return None
        chain = _attr_chain(node.func)
        if chain is None:
            return None
        if chain[-1] in self._SERVICE_CLASSES:
            return chain[-1]
        return self._class_aliases.get(chain[-1]) if len(chain) == 1 else None

    def visit_Assign(self, node: ast.Assign, ctx: FileContext) -> None:
        constructed = self._constructed_class(node.value)
        for target in node.targets:
            if not isinstance(target, ast.Name):
                continue
            if constructed is not None:
                self._instances[target.id] = constructed
            else:
                # Rebinding to anything else drops the taint.
                self._instances.pop(target.id, None)

    def _classify(self, node: ast.AST) -> Optional[str]:
        """Why ``node`` looks like a service crossing, or None."""
        constructed = self._constructed_class(node)
        if constructed is not None:
            return f"a fresh {constructed}"
        name = AdHocProcessPoolRule._terminal_name(node)
        if name is None:
            return None
        if name in self._instances:
            return f"{name!r} (an {self._instances[name]})"
        lowered = name.lower()
        if any(hint in lowered for hint in self._NAME_HINTS):
            return f"{name!r} (service-named)"
        return None

    def _report_crossing(
        self, ctx: FileContext, node: ast.AST, what: str, boundary: str
    ) -> None:
        ctx.report(
            self,
            node,
            f"{what} crosses the {boundary} spawn boundary by pickle — "
            "live serving state (event loop, caches, shm views) does "
            "not survive it; pass a FleetWorkerSpec/ServiceConfig and "
            "rebuild the service inside the worker",
        )

    def visit_Call(self, node: ast.Call, ctx: FileContext) -> None:
        chain = _attr_chain(node.func)
        if chain is None:
            return
        if chain[-1] == "submit" and len(chain) >= 2:
            # args[0] is the callable; only payload arguments cross.
            payload = list(node.args[1:]) + [kw.value for kw in node.keywords]
            for arg in payload:
                what = self._classify(arg)
                if what is not None:
                    self._report_crossing(ctx, arg, what, "submit()")
            return
        if chain[-1] != "Process":
            return
        for kw in node.keywords:
            if kw.arg == "target" and isinstance(kw.value, ast.Attribute):
                # A bound method drags its whole instance across.
                what = self._classify(kw.value.value)
                if what is not None:
                    self._report_crossing(
                        ctx, kw.value, f"a bound method of {what}", "Process()"
                    )
            elif kw.arg in ("args", "kwargs") and isinstance(
                kw.value, (ast.Tuple, ast.List)
            ):
                for element in kw.value.elts:
                    what = self._classify(element)
                    if what is not None:
                        self._report_crossing(ctx, element, what, "Process()")


# ---------------------------------------------------------------------------
# RR016 — tree construction must flow through the builder registry
# ---------------------------------------------------------------------------


@register_rule
class UnregisteredTreeBuilderRule(Rule):
    """Tree construction outside repro.multicast must use the registry."""

    rule_id = "RR016"
    severity = "error"
    summary = (
        "direct tree construction (takahashi_matsuyama_tree / "
        "build_delivery_tree) outside repro.multicast — go through "
        "repro.multicast.builders.build_tree(algorithm, ...) so the "
        "algorithm axis stays sweepable"
    )
    rationale = (
        "The algorithm axis works because every consumer — sweeps, "
        "estimator tables, the serving tier, figures — selects its tree "
        "discipline by registry name.  A direct call to a concrete "
        "builder hard-wires one algorithm into that consumer: it cannot "
        "be swept, its results carry no 'algorithm' provenance, and the "
        "steiner-tm best-of-SPT guard (the documented comparison "
        "semantics) is silently skipped.  Inside repro.multicast the "
        "concrete constructors ARE the implementation, so the package "
        "itself is exempt."
    )

    _DIRECT_BUILDERS = ("takahashi_matsuyama_tree", "build_delivery_tree")

    def applies_to(self, path: str) -> bool:
        return "repro/" in path and "repro/multicast/" not in path

    def visit_Call(self, node: ast.Call, ctx: FileContext) -> None:
        chain = _attr_chain(node.func)
        if chain is None or chain[-1] not in self._DIRECT_BUILDERS:
            return
        ctx.report(
            self,
            node,
            f"{chain[-1]}() called directly — route through "
            "repro.multicast.builders.build_tree() (registry key "
            f"{'steiner-tm' if chain[-1] == 'takahashi_matsuyama_tree' else 'spt'!r}) "
            "so the call site honors the algorithm axis",
        )
