"""Whole-program analysis: the project indexer and cross-file rules.

The per-file rules in :mod:`repro.lint.rules` under-approximate by
construction — they cannot see a helper that blocks three modules below
a serve coroutine, a shared-memory segment unlinked while a worker
still holds a view, or two modules declaring the same obs series with
different label sets.  This module closes that gap in two passes:

1. **Index.**  Every linted file is distilled into a picklable
   :class:`ModuleSummary`: resolved imports, a per-function call list
   (targets resolved to dotted qualnames where the imports allow it),
   direct blocking-primitive calls, shared-memory handle events,
   obs-metric declarations, and fault-seam declarations/firings.
   Summaries carry no AST nodes, so they travel through the worker pool
   and the incremental cache unchanged — a warm run re-runs the project
   rules without re-parsing a single file.
2. **Analyze.**  :class:`ProjectRule` subclasses (RR011–RR014) run over
   the :class:`ProjectIndex` built from all summaries, walking the call
   graph and the declaration tables.  Findings land on concrete
   file/line locations and respect that file's suppression pragmas,
   exactly like per-file findings.

Everything here stays deliberately under-approximating: an unresolvable
call edge is dropped, not guessed at, so a cross-file finding is always
worth reading.  The cost is soundness on *partial* indexes — linting a
lone file cannot see callees or seam declarations elsewhere — which is
why ``make lint`` feeds the whole tree at once and ``make lint-changed``
disables this layer (``--no-project``).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.engine import (
    Finding,
    Rule,
    SuppressionIndex,
    register_rule,
    registered_rules,
)
from repro.lint.rules import BlockingCallDetector, _attr_chain

__all__ = [
    "SUMMARY_VERSION",
    "ModuleSummary",
    "FunctionSummary",
    "MetricDecl",
    "SeamDecl",
    "SpecRef",
    "ProjectIndex",
    "ProjectRule",
    "build_summary",
    "module_name_for_path",
    "run_project_rules",
    "TransitiveBlockingRule",
    "SharedHandleLifetimeRule",
    "ObsSeriesDriftRule",
    "FaultSeamConsistencyRule",
]

#: Bumped whenever the summary shape changes; part of the cache key.
SUMMARY_VERSION = 1

_METRIC_KINDS = ("counter", "gauge", "histogram")
_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)

#: Method names that take ownership of a handle argument (container
#: stores and registries); plain function arguments are borrows.
_TRANSFER_METHODS = frozenset(
    {"append", "add", "put", "push", "register", "store", "setdefault"}
)


def module_name_for_path(path: str) -> Optional[str]:
    """Dotted module name for a posix-normalized ``*.py`` path.

    ``src/repro/serve/app.py`` -> ``repro.serve.app``; trees without a
    ``src`` component anchor on the first ``repro`` component (fixture
    and scratch trees), and bare files fall back to their stem.
    """
    parts = path.split("/")
    if not parts or not parts[-1].endswith(".py"):
        return None
    parts = parts[:-1] + [parts[-1][: -len(".py")]]
    if parts[-1] == "__init__":
        parts = parts[:-1]
        if not parts:
            return None
    if "src" in parts[:-1]:
        anchor = len(parts) - 1 - parts[::-1].index("src")
        module_parts = parts[anchor + 1 :]
    elif "repro" in parts:
        module_parts = parts[parts.index("repro") :]
    else:
        module_parts = parts[-1:]
    return ".".join(module_parts) if module_parts else None


# ---------------------------------------------------------------------------
# Summaries (picklable, cacheable)
# ---------------------------------------------------------------------------


@dataclass
class CallSite:
    """One resolved call edge out of a function."""

    target: str
    line: int
    col: int

    def to_dict(self):
        return {"target": self.target, "line": self.line, "col": self.col}

    @classmethod
    def from_dict(cls, data):
        return cls(str(data["target"]), int(data["line"]), int(data["col"]))


@dataclass
class BlockingCall:
    """A direct call to an event-loop-blocking primitive."""

    described: str
    line: int
    col: int

    def to_dict(self):
        return {"described": self.described, "line": self.line, "col": self.col}

    @classmethod
    def from_dict(cls, data):
        return cls(str(data["described"]), int(data["line"]), int(data["col"]))


@dataclass
class FunctionSummary:
    """Call-graph node: one module-level function or class method."""

    qualname: str
    name: str
    line: int
    col: int
    is_async: bool
    calls: List[CallSite] = field(default_factory=list)
    blocking: List[BlockingCall] = field(default_factory=list)
    #: Returns a ``.to_shared()`` result directly.
    returns_handle: bool = False
    #: Call targets whose results this function returns (for propagating
    #: "returns a shared handle" through wrappers).
    return_targets: List[str] = field(default_factory=list)
    #: Source-ordered shared-memory handle events:
    #: ``[kind, name, line, col, extra]`` with kind in {create, maybe,
    #: rebind, kill, use, submit, escape, return}.
    handle_events: List[list] = field(default_factory=list)

    def to_dict(self):
        return {
            "qualname": self.qualname,
            "name": self.name,
            "line": self.line,
            "col": self.col,
            "is_async": self.is_async,
            "calls": [c.to_dict() for c in self.calls],
            "blocking": [b.to_dict() for b in self.blocking],
            "returns_handle": self.returns_handle,
            "return_targets": list(self.return_targets),
            "handle_events": [list(e) for e in self.handle_events],
        }

    @classmethod
    def from_dict(cls, data):
        return cls(
            qualname=str(data["qualname"]),
            name=str(data["name"]),
            line=int(data["line"]),
            col=int(data["col"]),
            is_async=bool(data["is_async"]),
            calls=[CallSite.from_dict(c) for c in data["calls"]],
            blocking=[BlockingCall.from_dict(b) for b in data["blocking"]],
            returns_handle=bool(data["returns_handle"]),
            return_targets=[str(t) for t in data["return_targets"]],
            handle_events=[list(e) for e in data["handle_events"]],
        )


@dataclass
class MetricDecl:
    """One ``obs.counter/gauge/histogram`` (or registry) declaration."""

    name: str
    kind: str
    #: Label names, or None when not statically known.
    labels: Optional[Tuple[str, ...]]
    #: Canonical bucket repr, "?" when present but not literal, None
    #: when the declaration relies on the default buckets.
    buckets: Optional[str]
    line: int
    col: int

    def to_dict(self):
        return {
            "name": self.name,
            "kind": self.kind,
            "labels": list(self.labels) if self.labels is not None else None,
            "buckets": self.buckets,
            "line": self.line,
            "col": self.col,
        }

    @classmethod
    def from_dict(cls, data):
        labels = data["labels"]
        return cls(
            name=str(data["name"]),
            kind=str(data["kind"]),
            labels=tuple(labels) if labels is not None else None,
            buckets=data["buckets"],
            line=int(data["line"]),
            col=int(data["col"]),
        )


@dataclass
class SeamDecl:
    """One ``faults.point(name, ...)`` declaration."""

    name: str
    #: Qualified name of the variable holding the point (fire matching),
    #: or None for a bare expression declaration.
    var: Optional[str]
    line: int
    col: int

    def to_dict(self):
        return {
            "name": self.name,
            "var": self.var,
            "line": self.line,
            "col": self.col,
        }

    @classmethod
    def from_dict(cls, data):
        return cls(
            str(data["name"]),
            data["var"],
            int(data["line"]),
            int(data["col"]),
        )


@dataclass
class SpecRef:
    """A literal fault-seam name inside a ``FaultSpec(...)`` call."""

    name: str
    line: int
    col: int

    def to_dict(self):
        return {"name": self.name, "line": self.line, "col": self.col}

    @classmethod
    def from_dict(cls, data):
        return cls(str(data["name"]), int(data["line"]), int(data["col"]))


@dataclass
class ModuleSummary:
    """Everything the project rules need to know about one file."""

    path: str
    module: Optional[str]
    functions: List[FunctionSummary] = field(default_factory=list)
    metrics: List[MetricDecl] = field(default_factory=list)
    seams: List[SeamDecl] = field(default_factory=list)
    #: Qualified variable names receiving a ``.fire()`` call.
    seam_fires: List[str] = field(default_factory=list)
    spec_refs: List[SpecRef] = field(default_factory=list)
    suppressions: SuppressionIndex = field(default_factory=SuppressionIndex)

    def to_dict(self):
        return {
            "version": SUMMARY_VERSION,
            "path": self.path,
            "module": self.module,
            "functions": [f.to_dict() for f in self.functions],
            "metrics": [m.to_dict() for m in self.metrics],
            "seams": [s.to_dict() for s in self.seams],
            "seam_fires": list(self.seam_fires),
            "spec_refs": [r.to_dict() for r in self.spec_refs],
            "suppressions": self.suppressions.to_dict(),
        }

    @classmethod
    def from_dict(cls, data):
        return cls(
            path=str(data["path"]),
            module=data["module"],
            functions=[FunctionSummary.from_dict(f) for f in data["functions"]],
            metrics=[MetricDecl.from_dict(m) for m in data["metrics"]],
            seams=[SeamDecl.from_dict(s) for s in data["seams"]],
            seam_fires=[str(f) for f in data["seam_fires"]],
            spec_refs=[SpecRef.from_dict(r) for r in data["spec_refs"]],
            suppressions=SuppressionIndex.from_dict(data["suppressions"]),
        )


# ---------------------------------------------------------------------------
# The summary builder
# ---------------------------------------------------------------------------


class _ModuleResolver:
    """Resolve attribute chains to dotted qualnames via the import table."""

    def __init__(self, module: Optional[str], tree: ast.Module) -> None:
        self.module = module
        self.aliases: Dict[str, str] = {}
        self.import_roots: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.aliases[alias.asname] = alias.name
                    else:
                        self.import_roots.add(alias.name.split(".", 1)[0])
            elif isinstance(node, ast.ImportFrom):
                base = self._from_base(node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    self.aliases[alias.asname or alias.name] = f"{base}.{alias.name}"

    def _from_base(self, node: ast.ImportFrom) -> Optional[str]:
        if node.level == 0:
            return node.module
        if self.module is None:
            return None
        parts = self.module.split(".")
        if node.level > len(parts):
            return None
        base_parts = parts[: len(parts) - node.level]
        if node.module:
            base_parts.append(node.module)
        return ".".join(base_parts) if base_parts else None

    def resolve(
        self, chain: Sequence[str], class_name: Optional[str] = None
    ) -> Optional[str]:
        """Dotted qualname for ``chain``, or None when unresolvable.

        Unknown heads are qualified into this module (``helper()`` ->
        ``pkg.mod.helper``); bogus results simply never match a real
        function table entry, keeping the analysis under-approximating.
        """
        if not chain:
            return None
        head = chain[0]
        rest = ".".join(chain[1:])
        if head == "self":
            if class_name is not None and len(chain) == 2 and self.module:
                return f"{self.module}.{class_name}.{chain[1]}"
            return None
        if head in self.aliases:
            base = self.aliases[head]
            return f"{base}.{rest}" if rest else base
        if head in self.import_roots:
            return ".".join(chain)
        if self.module is not None:
            return f"{self.module}." + ".".join(chain)
        return None


def _str_const(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _str_tuple(node: ast.AST) -> Optional[Tuple[str, ...]]:
    if isinstance(node, (ast.Tuple, ast.List)):
        values = [_str_const(elt) for elt in node.elts]
        if all(v is not None for v in values):
            return tuple(values)  # type: ignore[arg-type]
    return None


def _bucket_repr(node: ast.AST) -> str:
    if isinstance(node, (ast.Tuple, ast.List)):
        values = []
        for elt in node.elts:
            if isinstance(elt, ast.Constant) and isinstance(
                elt.value, (int, float)
            ):
                values.append(float(elt.value))
            else:
                return "?"
        return repr(tuple(values))
    return "?"


def _is_to_shared_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    chain = _attr_chain(node.func)
    return chain is not None and chain[-1] == "to_shared"


def _metric_decl(
    call: ast.Call, chain: Tuple[str, ...], resolver: _ModuleResolver
) -> Optional[MetricDecl]:
    kind = chain[-1]
    if kind not in _METRIC_KINDS:
        return None
    if len(chain) == 1:
        # Bare counter()/gauge() names count only when they were
        # imported from repro.obs — a local helper of the same name is
        # not a metric declaration.
        resolved = resolver.resolve(chain)
        if resolved is None or not resolved.startswith("repro.obs"):
            return None
    if not call.args:
        return None
    name = _str_const(call.args[0])
    if name is None:
        return None
    labels_node: Optional[ast.AST] = call.args[2] if len(call.args) >= 3 else None
    buckets_node: Optional[ast.AST] = call.args[3] if len(call.args) >= 4 else None
    for keyword in call.keywords:
        if keyword.arg == "labelnames":
            labels_node = keyword.value
        elif keyword.arg == "buckets":
            buckets_node = keyword.value
    labels: Optional[Tuple[str, ...]]
    if labels_node is None:
        labels = ()
    else:
        labels = _str_tuple(labels_node)
    buckets = None
    if kind == "histogram" and buckets_node is not None:
        buckets = _bucket_repr(buckets_node)
    return MetricDecl(name, kind, labels, buckets, call.lineno, call.col_offset)


def _is_seam_decl(chain: Tuple[str, ...], resolver: _ModuleResolver) -> bool:
    if chain[-1] != "point":
        return False
    if len(chain) >= 2 and chain[-2] in ("faults", "points"):
        return True
    resolved = resolver.resolve(chain)
    return resolved is not None and resolved.startswith("repro.faults")


def _summarize_function(
    fn: ast.AST,
    qualname: str,
    class_name: Optional[str],
    resolver: _ModuleResolver,
    detector: BlockingCallDetector,
) -> FunctionSummary:
    summary = FunctionSummary(
        qualname=qualname,
        name=fn.name,
        line=fn.lineno,
        col=fn.col_offset,
        is_async=isinstance(fn, ast.AsyncFunctionDef),
    )
    candidates: Set[str] = set()
    events = summary.handle_events

    def call_target(value: ast.AST) -> Optional[str]:
        if not isinstance(value, ast.Call):
            return None
        chain = _attr_chain(value.func)
        if chain is None:
            return None
        return resolver.resolve(chain, class_name)

    def scan(node: ast.AST, in_finally: bool) -> None:
        if isinstance(node, _SCOPE_NODES):
            # Nested defs are separate control flow: defining one
            # neither calls nor blocks (mirrors RR007's choice).
            return
        if isinstance(node, ast.Try):
            for sub in node.body:
                scan(sub, in_finally)
            for handler in node.handlers:
                for sub in handler.body:
                    scan(sub, in_finally)
            for sub in node.orelse:
                scan(sub, in_finally)
            for sub in node.finalbody:
                scan(sub, True)
            return
        if isinstance(node, ast.Return):
            value = node.value
            if value is None:
                return
            if isinstance(value, ast.Name):
                if value.id in candidates:
                    events.append(
                        ["return", value.id, value.lineno, value.col_offset, None]
                    )
                return
            if _is_to_shared_call(value):
                summary.returns_handle = True
            else:
                target = call_target(value)
                if target is not None:
                    summary.return_targets.append(target)
            scan(value, in_finally)
            return
        if isinstance(node, ast.Assign):
            value = node.value
            single = (
                node.targets[0]
                if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name)
                else None
            )
            if isinstance(value, ast.Name) and value.id in candidates:
                # Storing the bare handle anywhere transfers ownership.
                events.append(
                    ["escape", value.id, value.lineno, value.col_offset, None]
                )
            else:
                scan(value, in_finally)
            for target in node.targets:
                if not isinstance(target, ast.Name):
                    scan(target, in_finally)
            if single is not None:
                if _is_to_shared_call(value):
                    candidates.add(single.id)
                    events.append(
                        ["create", single.id, node.lineno, node.col_offset, None]
                    )
                else:
                    target_name = call_target(value)
                    if target_name is not None:
                        candidates.add(single.id)
                        events.append(
                            [
                                "maybe",
                                single.id,
                                node.lineno,
                                node.col_offset,
                                target_name,
                            ]
                        )
                    elif single.id in candidates:
                        events.append(
                            ["rebind", single.id, node.lineno, node.col_offset, None]
                        )
            return
        if isinstance(node, ast.Call):
            chain = _attr_chain(node.func)
            described = detector.describe(node)
            if described is not None:
                summary.blocking.append(
                    BlockingCall(described, node.lineno, node.col_offset)
                )
            if chain is not None:
                target = resolver.resolve(chain, class_name)
                if target is not None:
                    summary.calls.append(
                        CallSite(target, node.lineno, node.col_offset)
                    )
                if (
                    len(chain) == 2
                    and chain[0] in candidates
                    and chain[1] in ("unlink", "release")
                ):
                    events.append(
                        [
                            "kill",
                            chain[0],
                            node.lineno,
                            node.col_offset,
                            bool(in_finally),
                        ]
                    )
                    for arg in list(node.args) + [k.value for k in node.keywords]:
                        scan(arg, in_finally)
                    return
            tail = chain[-1] if chain else None
            if tail == "submit":
                arg_kind = "submit"
            elif tail in _TRANSFER_METHODS and len(chain) >= 2:
                arg_kind = "escape"
            else:
                arg_kind = "use"
            for arg in list(node.args) + [k.value for k in node.keywords]:
                if isinstance(arg, ast.Name) and arg.id in candidates:
                    events.append(
                        [arg_kind, arg.id, arg.lineno, arg.col_offset, None]
                    )
                else:
                    scan(arg, in_finally)
            if isinstance(node.func, ast.Attribute):
                scan(node.func.value, in_finally)
            return
        if isinstance(node, ast.Name):
            if node.id in candidates:
                events.append(
                    ["use", node.id, node.lineno, node.col_offset, None]
                )
            return
        for child in ast.iter_child_nodes(node):
            scan(child, in_finally)

    for statement in fn.body:
        scan(statement, False)
    return summary


def build_summary(
    path: str, tree: ast.Module, suppressions: SuppressionIndex
) -> ModuleSummary:
    """Distill one parsed module into its :class:`ModuleSummary`."""
    module = module_name_for_path(path)
    resolver = _ModuleResolver(module, tree)
    detector = BlockingCallDetector()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            detector.see_import(node)
        elif isinstance(node, ast.ImportFrom):
            detector.see_import_from(node)

    # value-call -> assigned name, for tying `X = faults.point(...)` to
    # the later `X.fire()` sites.
    assigned_calls: Dict[int, str] = {}
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, ast.Call)
        ):
            assigned_calls[id(node.value)] = node.targets[0].id

    summary = ModuleSummary(path=path, module=module, suppressions=suppressions)
    fires: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Attribute) and node.attr == "fire":
            # Covers X.fire() and bound-method aliases (f = X.fire).
            fire_chain = _attr_chain(node)
            if fire_chain is not None and len(fire_chain) >= 2:
                base = resolver.resolve(fire_chain[:-1])
                if base is not None:
                    fires.add(base)
            continue
        if not isinstance(node, ast.Call):
            continue
        chain = _attr_chain(node.func)
        if chain is None:
            continue
        metric = _metric_decl(node, chain, resolver)
        if metric is not None:
            summary.metrics.append(metric)
            continue
        if _is_seam_decl(chain, resolver):
            seam_name = _str_const(node.args[0]) if node.args else None
            if seam_name is not None:
                local = assigned_calls.get(id(node))
                var = resolver.resolve((local,)) if local else None
                summary.seams.append(
                    SeamDecl(seam_name, var, node.lineno, node.col_offset)
                )
            continue
        if chain[-1] == "FaultSpec":
            ref_name = _str_const(node.args[0]) if node.args else None
            if ref_name is None:
                for keyword in node.keywords:
                    if keyword.arg == "point":
                        ref_name = _str_const(keyword.value)
            if ref_name is not None:
                summary.spec_refs.append(
                    SpecRef(ref_name, node.lineno, node.col_offset)
                )
            continue
    summary.seam_fires = sorted(fires)

    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qualname = f"{module}.{node.name}" if module else node.name
            summary.functions.append(
                _summarize_function(node, qualname, None, resolver, detector)
            )
        elif isinstance(node, ast.ClassDef):
            for sub in node.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qualname = (
                        f"{module}.{node.name}.{sub.name}"
                        if module
                        else f"{node.name}.{sub.name}"
                    )
                    summary.functions.append(
                        _summarize_function(
                            sub, qualname, node.name, resolver, detector
                        )
                    )
    return summary


# ---------------------------------------------------------------------------
# The project index and rule base
# ---------------------------------------------------------------------------


class ProjectIndex:
    """All module summaries of one lint run, with derived tables."""

    def __init__(self, summaries: Iterable[ModuleSummary]) -> None:
        self.modules: Dict[str, ModuleSummary] = {}
        for summary in summaries:
            self.modules[summary.path] = summary
        self.functions: Dict[str, FunctionSummary] = {}
        self.function_paths: Dict[str, str] = {}
        for path in sorted(self.modules):
            for fn in self.modules[path].functions:
                self.functions[fn.qualname] = fn
                self.function_paths[fn.qualname] = path


class ProjectRule(Rule):
    """Base class for cross-file rules.

    Subclasses implement :meth:`check`, calling ``report(path, line,
    col, message)`` for each finding; suppression pragmas of the target
    file are applied by the engine-side reporter.
    """

    is_project = True

    def check(self, index: ProjectIndex, report) -> None:
        raise NotImplementedError


def run_project_rules(index: ProjectIndex) -> List[Finding]:
    """Run every registered project rule over ``index``."""
    findings: Set[Finding] = set()
    for cls in registered_rules():
        if not cls.is_project:
            continue
        rule = cls()

        def report(path: str, line: int, col: int, message: str, _rule=rule) -> None:
            summary = index.modules.get(path)
            if summary is not None and summary.suppressions.is_suppressed(
                _rule.rule_id, line
            ):
                return
            findings.add(
                Finding(
                    path=path,
                    line=int(line),
                    col=int(col),
                    rule_id=_rule.rule_id,
                    severity=_rule.severity,
                    message=message,
                )
            )

        rule.check(index, report)
    return sorted(findings)


# ---------------------------------------------------------------------------
# RR011 — transitive blocking-call propagation
# ---------------------------------------------------------------------------


@register_rule
class TransitiveBlockingRule(ProjectRule):
    """Serve coroutines must not reach blocking primitives through helpers."""

    rule_id = "RR011"
    severity = "error"
    summary = (
        "serve coroutine calls a sync helper that transitively reaches a "
        "blocking primitive (full call chain in the finding)"
    )
    rationale = (
        "RR007 catches time.sleep() written inside a coroutine; it is "
        "blind to the same call three frames down a sync helper, which "
        "stalls the event loop just as completely.  The project call "
        "graph propagates 'may block' from the primitives up through "
        "every resolved sync call edge and flags the coroutine's call "
        "site with the witness chain, so the fix location (hand the "
        "helper to run_in_executor, or break the chain) is obvious.  "
        "Unresolvable edges (dynamic dispatch, callables passed as "
        "values) are dropped, not guessed at — the rule "
        "under-approximates like every other repro.lint rule."
    )

    def check(self, index: ProjectIndex, report) -> None:
        table = index.functions
        # qualname -> ("prim", description, path, line) | ("call", callee)
        witness: Dict[str, tuple] = {}
        changed = True
        while changed:
            changed = False
            for qualname, fn in table.items():
                if fn.is_async or qualname in witness:
                    continue
                if fn.blocking:
                    first = fn.blocking[0]
                    witness[qualname] = (
                        "prim",
                        first.described,
                        index.function_paths[qualname],
                        first.line,
                    )
                    changed = True
                    continue
                for call in fn.calls:
                    callee = table.get(call.target)
                    if (
                        callee is not None
                        and not callee.is_async
                        and call.target in witness
                    ):
                        witness[qualname] = ("call", call.target)
                        changed = True
                        break
        for path in sorted(index.modules):
            if "repro/serve/" not in path:
                continue
            for fn in index.modules[path].functions:
                if not fn.is_async:
                    continue
                for call in fn.calls:
                    callee = table.get(call.target)
                    if (
                        callee is None
                        or callee.is_async
                        or call.target not in witness
                    ):
                        continue
                    report(
                        path,
                        call.line,
                        call.col,
                        f"coroutine {fn.name}() calls {callee.name}(), "
                        "which blocks the event loop transitively: "
                        f"{self._chain(call.target, witness)}; run the "
                        "helper in the executor or break the chain",
                    )

    @staticmethod
    def _chain(start: str, witness: Dict[str, tuple]) -> str:
        parts = [start]
        seen = {start}
        current = start
        while True:
            entry = witness[current]
            if entry[0] == "prim":
                parts.append(f"{entry[1]} ({entry[2]}:{entry[3]})")
                break
            current = entry[1]
            if current in seen:
                parts.append("<cycle>")
                break
            seen.add(current)
            parts.append(current)
        return " -> ".join(parts)


# ---------------------------------------------------------------------------
# RR012 — shared-memory handle lifetimes
# ---------------------------------------------------------------------------


@register_rule
class SharedHandleLifetimeRule(ProjectRule):
    """``to_shared()`` handles are released exactly once, by their owner."""

    rule_id = "RR012"
    severity = "error"
    summary = (
        "shared-memory handle misuse: use-after-unlink, raw handle "
        "across submit(), segment leaked or released without "
        "exception safety"
    )
    rationale = (
        "A Graph.to_shared() handle owns a POSIX shared-memory segment: "
        "reading it after unlink() hands workers a name that no longer "
        "resolves, pickling the handle itself through submit() ships "
        "the wrong object (workers attach via the descriptor, which the "
        "SharedGraphRegistry owns), and a handle that is neither "
        "released nor handed off leaks the segment past process exit "
        "intent.  The escape analysis follows handles through "
        "wrapper functions project-wide (a helper that returns "
        "to_shared() is itself a handle source) and trusts ownership "
        "transfers — storing or returning a handle ends local "
        "responsibility — so every finding is a genuine lifetime bug."
    )

    def check(self, index: ProjectIndex, report) -> None:
        returners: Set[str] = {
            qualname
            for qualname, fn in index.functions.items()
            if fn.returns_handle
        }
        changed = True
        while changed:
            changed = False
            for qualname, fn in index.functions.items():
                if qualname in returners:
                    continue
                if any(target in returners for target in fn.return_targets):
                    returners.add(qualname)
                    changed = True
        for path in sorted(index.modules):
            for fn in index.modules[path].functions:
                self._check_function(fn, path, returners, report)

    @staticmethod
    def _check_function(
        fn: FunctionSummary, path: str, returners: Set[str], report
    ) -> None:
        live: Dict[str, Tuple[int, int]] = {}
        killed: Dict[str, Tuple[int, int, bool]] = {}
        escaped: Set[str] = set()
        used_while_live: Dict[str, int] = {}
        for kind, name, line, col, extra in fn.handle_events:
            creates = kind == "create" or (kind == "maybe" and extra in returners)
            if creates:
                if name in live and name not in killed and name not in escaped:
                    report(
                        path,
                        line,
                        col,
                        f"shared-memory handle {name!r} is rebound before "
                        "unlink(); the previous segment leaks",
                    )
                live[name] = (line, col)
                killed.pop(name, None)
                escaped.discard(name)
                used_while_live[name] = 0
            elif kind in ("maybe", "rebind"):
                if name in live and name not in killed and name not in escaped:
                    report(
                        path,
                        line,
                        col,
                        f"shared-memory handle {name!r} is rebound before "
                        "unlink(); the previous segment leaks",
                    )
                live.pop(name, None)
                killed.pop(name, None)
                escaped.discard(name)
            elif kind == "kill":
                if name in live and name not in killed:
                    killed[name] = (line, col, bool(extra))
            elif kind == "use":
                if name in killed:
                    report(
                        path,
                        line,
                        col,
                        f"shared-memory handle {name!r} is used after "
                        f"unlink() (line {killed[name][0]}); the segment "
                        "name no longer resolves for new attachments",
                    )
                elif name in live:
                    used_while_live[name] = used_while_live.get(name, 0) + 1
            elif kind == "submit":
                if name in killed:
                    report(
                        path,
                        line,
                        col,
                        f"shared-memory handle {name!r} crosses submit() "
                        f"after unlink() (line {killed[name][0]})",
                    )
                elif name in live:
                    report(
                        path,
                        line,
                        col,
                        f"shared-memory handle {name!r} crosses a submit() "
                        "boundary; ship the picklable descriptor "
                        "(SharedGraphRegistry.descriptor) and keep the "
                        "handle with its owner",
                    )
            elif kind == "escape":
                if name in killed:
                    report(
                        path,
                        line,
                        col,
                        f"shared-memory handle {name!r} escapes after "
                        f"unlink() (line {killed[name][0]}); the receiver "
                        "gets a dead segment name",
                    )
                elif name in live:
                    escaped.add(name)
            elif kind == "return":
                if name in killed:
                    report(
                        path,
                        line,
                        col,
                        f"returns shared-memory handle {name!r} after "
                        f"unlink() (line {killed[name][0]})",
                    )
                elif name in live:
                    escaped.add(name)
        for name, (line, col) in sorted(live.items()):
            if name in escaped:
                continue
            kill = killed.get(name)
            if kill is None:
                report(
                    path,
                    line,
                    col,
                    f"shared-memory handle {name!r} is neither unlinked "
                    "nor handed off on this path; the segment leaks past "
                    f"{fn.name}()",
                )
            elif not kill[2] and used_while_live.get(name, 0) > 0:
                report(
                    path,
                    kill[0],
                    kill[1],
                    f"unlink() of shared-memory handle {name!r} is not "
                    "exception-safe: work happens between to_shared() and "
                    "the release — move the unlink into a finally block",
                )


# ---------------------------------------------------------------------------
# RR013 — obs-series declaration drift
# ---------------------------------------------------------------------------


@register_rule
class ObsSeriesDriftRule(ProjectRule):
    """One metric name, one spec, everywhere in the tree."""

    rule_id = "RR013"
    severity = "error"
    summary = (
        "obs metric name re-declared with a conflicting type, label "
        "set, or buckets elsewhere in the tree"
    )
    rationale = (
        "obs metrics are get-or-create and process-wide: the runner and "
        "the pool deliberately declare repro_runner_chunks_total with "
        "one spec and share the series.  A second declaration with a "
        "different type or label set raises ValueError only when both "
        "modules happen to be imported together — typically in a worker "
        "hand-back or a cron-driven figure run, far from the edit that "
        "caused it.  The index sees every declaration at once and turns "
        "the latent import-order crash into a lint finding at the "
        "conflicting site."
    )

    def check(self, index: ProjectIndex, report) -> None:
        by_name: Dict[str, List[Tuple[MetricDecl, str]]] = {}
        for path in sorted(index.modules):
            for decl in index.modules[path].metrics:
                by_name.setdefault(decl.name, []).append((decl, path))
        for name in sorted(by_name):
            group = sorted(
                by_name[name], key=lambda item: (item[1], item[0].line, item[0].col)
            )
            base, base_path = group[0]
            for decl, path in group[1:]:
                conflicts = []
                if decl.kind != base.kind:
                    conflicts.append(f"type {decl.kind} vs {base.kind}")
                if (
                    decl.labels is not None
                    and base.labels is not None
                    and decl.labels != base.labels
                ):
                    conflicts.append(
                        f"labels {list(decl.labels)} vs {list(base.labels)}"
                    )
                if (
                    decl.buckets is not None
                    and base.buckets is not None
                    and "?" not in (decl.buckets, base.buckets)
                    and decl.buckets != base.buckets
                ):
                    conflicts.append("buckets differ")
                if conflicts:
                    report(
                        path,
                        decl.line,
                        decl.col,
                        f"metric {name!r} re-declared with a conflicting "
                        f"spec ({'; '.join(conflicts)}); first declared at "
                        f"{base_path}:{base.line} — the obs registry "
                        "raises ValueError when both modules load",
                    )


# ---------------------------------------------------------------------------
# RR014 — fault-seam consistency
# ---------------------------------------------------------------------------


@register_rule
class FaultSeamConsistencyRule(ProjectRule):
    """Every referenced seam exists; every declared seam fires."""

    rule_id = "RR014"
    severity = "error"
    summary = (
        "FaultSpec references an undeclared fault seam, or a declared "
        "seam has no .fire() site (orphan)"
    )
    rationale = (
        "Fault plans match seams by exact string name: a FaultSpec "
        "naming a seam nobody declares simply never fires, so the chaos "
        "test it belongs to silently stops testing anything.  The "
        "reverse is as bad — a faults.point() whose fire() call was "
        "refactored away keeps appearing in the catalog and in "
        "generated chaos plans, giving coverage reports a seam that "
        "can no longer inject.  Both directions need the whole tree at "
        "once (declaration, firing, and reference usually live in three "
        "different files); the check stays silent on indexes with no "
        "seam declarations at all, so partial-tree runs do not produce "
        "spurious unknown-seam findings."
    )

    def check(self, index: ProjectIndex, report) -> None:
        declared: Dict[str, List[Tuple[SeamDecl, str]]] = {}
        fired_vars: Set[str] = set()
        for path in sorted(index.modules):
            summary = index.modules[path]
            fired_vars.update(summary.seam_fires)
            for decl in summary.seams:
                declared.setdefault(decl.name, []).append((decl, path))
        if not declared:
            return
        for path in sorted(index.modules):
            for ref in index.modules[path].spec_refs:
                if ref.name not in declared:
                    report(
                        path,
                        ref.line,
                        ref.col,
                        f"FaultSpec names unknown fault seam {ref.name!r}; "
                        "no faults.point() in the linted tree declares it, "
                        "so this spec can never fire",
                    )
        for name in sorted(declared):
            sites = declared[name]
            if any(
                decl.var is not None and decl.var in fired_vars
                for decl, _path in sites
            ):
                continue
            decl, path = sorted(sites, key=lambda item: (item[1], item[0].line))[0]
            report(
                path,
                decl.line,
                decl.col,
                f"fault seam {name!r} is declared but never fired "
                "(no .fire() site in the linted tree); orphaned seams "
                "give chaos plans false coverage",
            )
