"""``python -m repro.lint`` — command-line entry point.

Usage::

    python -m repro.lint                # lint ./src (or . if no src/)
    python -m repro.lint src tests      # lint specific paths
    python -m repro.lint --json src     # machine-readable report
    python -m repro.lint --list-rules   # print the rule catalogue

Exit status: 0 clean, 1 findings, 2 usage/IO error.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.lint import run_lint
from repro.lint.reporting import rule_docs


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "AST-based invariant checker: seeded randomness (RR001), "
            "cached-forest immutability (RR002), int32 dtype discipline "
            "(RR003), exception hygiene (RR004), figure registration "
            "(RR005), mutable defaults (RR006)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src/, else .)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the JSON report (findings + rule docs + counts)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule id with its summary and exit",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule_id, doc in sorted(rule_docs().items()):
            print(f"{rule_id} [{doc['severity']}] {doc['summary']}")
        return 0
    return run_lint(args.paths, json_output=args.json)


if __name__ == "__main__":
    sys.exit(main())
