"""``python -m repro.lint`` — command-line entry point.

Usage::

    python -m repro.lint                     # lint ./src (or . if no src/)
    python -m repro.lint src tests           # lint specific paths
    python -m repro.lint --format json src   # machine-readable report
    python -m repro.lint --format sarif src  # SARIF 2.1.0 for CI ingestion
    python -m repro.lint --jobs 4 src        # parallel (same report bytes)
    python -m repro.lint --cache .lint-cache.json src   # incremental
    python -m repro.lint --no-project file.py           # per-file rules only
    python -m repro.lint --write-baseline lint-baseline.json src
    python -m repro.lint --baseline lint-baseline.json src
    python -m repro.lint --list-rules        # print the rule catalogue

Exit status: 0 clean, 1 findings, 2 usage/IO error.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.lint import run_lint
from repro.lint.reporting import rule_docs


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "AST-based invariant checker: per-file rules RR001-RR010 "
            "(seeded randomness, cached-forest immutability, int32 "
            "dtype discipline, exception hygiene, figure registration, "
            "mutable defaults, blocking awaits, golden determinism, "
            "fault hygiene, pool discipline) plus cross-file rules "
            "RR011-RR014 (transitive blocking, shared-memory handle "
            "lifetimes, obs-series drift, fault-seam consistency)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src/, else .)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default=None,
        help="report format (default text; sarif targets SARIF 2.1.0)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="alias for --format json (kept for older callers)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="fan file analysis across N pool workers; the report is "
        "byte-identical to a serial run",
    )
    parser.add_argument(
        "--cache",
        metavar="PATH",
        default=None,
        help="incremental cache file: unchanged files (by content hash) "
        "skip re-analysis entirely",
    )
    parser.add_argument(
        "--no-project",
        action="store_true",
        help="per-file rules only; use when linting a partial file set "
        "where cross-file rules (RR011-RR014) would lack context",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help="drop findings recorded in this baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="PATH",
        default=None,
        help="record the current findings as the accepted baseline and "
        "exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule id with its summary and exit",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule_id, doc in sorted(rule_docs().items()):
            print(f"{rule_id} [{doc['severity']}] {doc['summary']}")
        return 0
    if args.jobs < 1:
        print("repro.lint: --jobs must be >= 1", file=sys.stderr)
        return 2
    return run_lint(
        args.paths,
        json_output=args.json,
        output_format=args.format,
        jobs=args.jobs,
        cache=args.cache,
        project=not args.no_project,
        baseline=args.baseline,
        baseline_out=args.write_baseline,
    )


if __name__ == "__main__":
    sys.exit(main())
