"""Content-hash incremental cache for ``lint_paths``.

The cache is one JSON document: per-file entries keyed by path and
content digest (findings plus the pickable module summary the project
layer needs), and one project-level entry keyed by the digest of the
whole file set.  A warm run over an unchanged tree therefore does zero
parsing — it hashes the sources, replays the per-file findings, and
replays the project findings, which is what buys ``make lint`` its
>=5x warm speedup (gated in ``benchmarks/lint_smoke.py``).

Invalidation is structural, not temporal: an entry is dead the moment
its content hash stops matching, and the whole document is dropped when
:func:`repro.lint.engine.ruleset_signature` changes (new rules, changed
severities, or a bumped summary schema).  Corrupt or unreadable cache
files are treated as empty — the cache is an optimization and must
never be able to fail a lint run.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Dict, List, Optional, Tuple

from repro.lint.engine import Finding, ruleset_signature

__all__ = ["LintCache", "CACHE_FORMAT_VERSION"]

#: Bumped whenever this document's shape changes incompatibly.
CACHE_FORMAT_VERSION = 1


class LintCache:
    """Findings + summaries from the previous run, keyed by content hash."""

    def __init__(self, path: str, files: Dict, project: Dict) -> None:
        self._path = path
        self._files = files
        self._project = project
        self._dirty = False

    @classmethod
    def load(cls, path) -> "LintCache":
        path = os.fspath(path)
        files: Dict = {}
        project: Dict = {}
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
            if (
                document.get("format") == CACHE_FORMAT_VERSION
                and document.get("signature") == ruleset_signature()
            ):
                files = dict(document.get("files", {}))
                project = dict(document.get("project", {}))
        except (OSError, ValueError):
            pass  # missing or corrupt cache == cold cache
        return cls(path, files, project)

    # -- per-file entries ------------------------------------------------

    def lookup(
        self, path: str, digest: str
    ) -> Optional[Tuple[List[Finding], Optional[object]]]:
        """Cached ``(findings, summary)`` for ``path`` at ``digest``."""
        from repro.lint.project import ModuleSummary

        entry = self._files.get(path)
        if entry is None or entry.get("digest") != digest:
            return None
        findings = [Finding.from_dict(d) for d in entry["findings"]]
        summary_dict = entry.get("summary")
        summary = (
            ModuleSummary.from_dict(summary_dict)
            if summary_dict is not None
            else None
        )
        return findings, summary

    def store(
        self,
        path: str,
        digest: str,
        findings: List[Finding],
        summary: Optional[object],
    ) -> None:
        self._files[path] = {
            "digest": digest,
            "findings": [finding.to_dict() for finding in findings],
            "summary": summary.to_dict() if summary is not None else None,
        }
        self._dirty = True

    # -- the whole-program entry ----------------------------------------

    def project_findings(self, key: str) -> Optional[List[Finding]]:
        if self._project.get("key") != key:
            return None
        return [Finding.from_dict(d) for d in self._project["findings"]]

    def store_project(self, key: str, findings: List[Finding]) -> None:
        self._project = {
            "key": key,
            "findings": [finding.to_dict() for finding in findings],
        }
        self._dirty = True

    # -- persistence -----------------------------------------------------

    def save(self) -> None:
        """Write the document back (atomic rename; failures are ignored)."""
        if not self._dirty:
            return
        document = {
            "format": CACHE_FORMAT_VERSION,
            "signature": ruleset_signature(),
            "files": self._files,
            "project": self._project,
        }
        directory = os.path.dirname(os.path.abspath(self._path))
        try:
            os.makedirs(directory, exist_ok=True)
            fd, temp_path = tempfile.mkstemp(
                prefix=".lint-cache-", dir=directory
            )
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(document, handle)
            os.replace(temp_path, self._path)
        except OSError:
            pass  # read-only checkout etc.; the cache is best-effort
