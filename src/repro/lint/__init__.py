"""``repro.lint`` — static invariant checks for the reproduction.

The reproduction's central claims (batched == scalar bit-identity,
worker-count invariance, cacheable forests) rest on code conventions —
seeded RNG streams, immutable cached arrays, int32 hot-path discipline —
that no test can fully enforce.  This package checks them statically:

* :mod:`repro.lint.engine` — the AST walker, rule registry,
  :class:`~repro.lint.engine.Finding`, and ``# repro-lint: disable=RRnnn``
  suppression handling;
* :mod:`repro.lint.rules` — the RR001–RR006 rule set;
* :mod:`repro.lint.reporting` — text and JSON rendering.

Run it as ``python -m repro.lint [paths]`` or ``repro-mcast lint``;
``make lint`` gates the test suite and the benchmark trajectory on a
clean tree.  See ``docs/static-analysis.md`` for the rule catalogue.
"""

from repro.lint.engine import (
    Finding,
    Rule,
    lint_file,
    lint_paths,
    lint_source,
    register_rule,
    registered_rules,
)
from repro.lint.reporting import render_json, render_text, rule_docs

__all__ = [
    "Finding",
    "Rule",
    "lint_file",
    "lint_paths",
    "lint_source",
    "register_rule",
    "registered_rules",
    "render_json",
    "render_text",
    "rule_docs",
    "run_lint",
]


def run_lint(paths=None, json_output: bool = False, quiet: bool = False) -> int:
    """Lint ``paths`` (default ``src``/cwd), print a report, return exit code.

    Shared by ``python -m repro.lint`` and ``repro-mcast lint``: exit
    status 0 means no findings, 1 means findings, 2 means a path could
    not be read.
    """
    import os
    import sys

    if not paths:
        paths = ["src"] if os.path.isdir("src") else ["."]
    for path in paths:
        if not os.path.exists(path):
            print(f"repro.lint: no such path: {path}", file=sys.stderr)
            return 2
    findings = lint_paths(paths)
    report = render_json(findings) if json_output else render_text(findings)
    if not quiet or findings:
        print(report)
    return 1 if findings else 0
