"""``repro.lint`` — static invariant checks for the reproduction.

The reproduction's central claims (batched == scalar bit-identity,
worker-count invariance, cacheable forests) rest on code conventions —
seeded RNG streams, immutable cached arrays, int32 hot-path discipline —
that no test can fully enforce.  This package checks them statically:

* :mod:`repro.lint.engine` — the AST walker, rule registry,
  :class:`~repro.lint.engine.Finding`, and ``# repro-lint: disable=RRnnn``
  suppression handling;
* :mod:`repro.lint.rules` — the per-file RR001–RR010 rule set;
* :mod:`repro.lint.project` — the project indexer, call graph, and the
  cross-file RR011–RR014 rules;
* :mod:`repro.lint.cache` — the content-hash incremental cache;
* :mod:`repro.lint.reporting` — text, JSON, and SARIF 2.1.0 rendering
  plus baseline files for CI.

Run it as ``python -m repro.lint [paths]`` or ``repro-mcast lint``;
``make lint`` gates the test suite and the benchmark trajectory on a
clean tree.  See ``docs/static-analysis.md`` for the rule catalogue.
"""

from repro.lint.engine import (
    Finding,
    Rule,
    lint_file,
    lint_paths,
    lint_source,
    register_rule,
    registered_rules,
)
from repro.lint.reporting import (
    apply_baseline,
    load_baseline,
    render_json,
    render_sarif,
    render_text,
    rule_docs,
    write_baseline,
)

__all__ = [
    "Finding",
    "Rule",
    "apply_baseline",
    "lint_file",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "register_rule",
    "registered_rules",
    "render_json",
    "render_sarif",
    "render_text",
    "rule_docs",
    "run_lint",
    "write_baseline",
]

_RENDERERS = {
    "text": render_text,
    "json": render_json,
    "sarif": render_sarif,
}


def run_lint(
    paths=None,
    json_output: bool = False,
    quiet: bool = False,
    *,
    output_format: str = None,
    jobs: int = 1,
    cache: str = None,
    project: bool = True,
    baseline: str = None,
    baseline_out: str = None,
) -> int:
    """Lint ``paths`` (default ``src``/cwd), print a report, return exit code.

    Shared by ``python -m repro.lint`` and ``repro-mcast lint``: exit
    status 0 means no findings, 1 means findings, 2 means a usage/IO
    error (unreadable path, bad baseline).  ``json_output`` is the
    legacy alias for ``output_format="json"``; ``baseline_out`` writes
    the current findings as the accepted set and exits 0.
    """
    import os
    import sys

    if not paths:
        paths = ["src"] if os.path.isdir("src") else ["."]
    for path in paths:
        if not os.path.exists(path):
            print(f"repro.lint: no such path: {path}", file=sys.stderr)
            return 2
    fmt = output_format or ("json" if json_output else "text")
    renderer = _RENDERERS.get(fmt)
    if renderer is None:
        print(f"repro.lint: unknown format: {fmt}", file=sys.stderr)
        return 2
    findings = lint_paths(paths, jobs=jobs, cache=cache, project=project)
    if baseline_out is not None:
        try:
            count = write_baseline(findings, baseline_out)
        except OSError as exc:
            print(f"repro.lint: cannot write baseline: {exc}", file=sys.stderr)
            return 2
        print(f"repro.lint: baseline of {count} findings -> {baseline_out}")
        return 0
    if baseline is not None:
        try:
            findings = apply_baseline(findings, load_baseline(baseline))
        except (OSError, ValueError) as exc:
            print(f"repro.lint: bad baseline: {exc}", file=sys.stderr)
            return 2
    report = renderer(findings)
    if not quiet or findings:
        print(report)
    return 1 if findings else 0
