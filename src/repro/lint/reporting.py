"""Rendering lint findings as text or machine-readable JSON.

The JSON document is a stable contract for downstream tooling
(pre-commit hooks, the benchmark dirty-tree guard, re-anchor reviews):
it carries the findings *and* the rule documentation and per-rule
counts, so a consumer never has to parse the text format or import the
rule classes to explain a finding.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Dict, List, Sequence

from repro.lint.engine import Finding, registered_rules

__all__ = ["render_text", "render_json", "rule_docs", "JSON_SCHEMA_VERSION"]

#: Bumped whenever the JSON document shape changes incompatibly.
JSON_SCHEMA_VERSION = 1


def rule_docs() -> Dict[str, Dict[str, str]]:
    """Rule-id -> {summary, severity, rationale} for every known rule."""
    return {
        cls.rule_id: {
            "summary": cls.summary,
            "severity": cls.severity,
            "rationale": cls.rationale,
        }
        for cls in registered_rules()
    }


def render_text(findings: Sequence[Finding]) -> str:
    """Human-readable report, one ``path:line:col: RRnnn`` line each."""
    if not findings:
        return "repro.lint: clean (0 findings)"
    lines = [finding.render() for finding in findings]
    counts = Counter(finding.rule_id for finding in findings)
    breakdown = ", ".join(
        f"{rule_id} x{count}" for rule_id, count in sorted(counts.items())
    )
    lines.append(
        f"repro.lint: {len(findings)} finding"
        f"{'s' if len(findings) != 1 else ''} ({breakdown})"
    )
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """The machine-readable report (see module docstring)."""
    by_rule = Counter(finding.rule_id for finding in findings)
    by_severity = Counter(finding.severity for finding in findings)
    document = {
        "version": JSON_SCHEMA_VERSION,
        "clean": not findings,
        "counts": {
            "total": len(findings),
            "by_rule": dict(sorted(by_rule.items())),
            "by_severity": dict(sorted(by_severity.items())),
        },
        "rules": rule_docs(),
        "findings": [finding.to_dict() for finding in findings],
    }
    return json.dumps(document, indent=2, sort_keys=False)
