"""Rendering lint findings as text, JSON, or SARIF; baseline handling.

The JSON document is a stable contract for downstream tooling
(pre-commit hooks, the benchmark dirty-tree guard, re-anchor reviews):
it carries the findings *and* the rule documentation and per-rule
counts, so a consumer never has to parse the text format or import the
rule classes to explain a finding.

The SARIF document (``--format sarif``) targets SARIF 2.1.0 so CI
platforms that ingest the standard (code-scanning UIs, review bots) can
annotate findings inline.  Each result carries a content-based partial
fingerprint — path, rule, and message, deliberately *not* the line
number — which is also what the baseline file stores: a baseline
suppresses known findings across unrelated edits that merely shift
them, while a new instance of the same rule with a new message still
fails CI.
"""

from __future__ import annotations

import hashlib
import json
from collections import Counter
from typing import Dict, List, Sequence

from repro.lint.engine import Finding, registered_rules

__all__ = [
    "render_text",
    "render_json",
    "render_sarif",
    "rule_docs",
    "finding_fingerprint",
    "load_baseline",
    "write_baseline",
    "apply_baseline",
    "JSON_SCHEMA_VERSION",
    "BASELINE_VERSION",
    "SARIF_VERSION",
]

#: Bumped whenever the JSON document shape changes incompatibly.
JSON_SCHEMA_VERSION = 1

#: Bumped whenever the baseline file shape changes incompatibly.
BASELINE_VERSION = 1

SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA_URI = "https://json.schemastore.org/sarif-2.1.0.json"

#: repro.lint severities -> SARIF result levels.
_SARIF_LEVELS = {"error": "error", "warning": "warning"}


def rule_docs() -> Dict[str, Dict[str, str]]:
    """Rule-id -> {summary, severity, rationale} for every known rule."""
    return {
        cls.rule_id: {
            "summary": cls.summary,
            "severity": cls.severity,
            "rationale": cls.rationale,
        }
        for cls in registered_rules()
    }


def render_text(findings: Sequence[Finding]) -> str:
    """Human-readable report, one ``path:line:col: RRnnn`` line each."""
    if not findings:
        return "repro.lint: clean (0 findings)"
    lines = [finding.render() for finding in findings]
    counts = Counter(finding.rule_id for finding in findings)
    breakdown = ", ".join(
        f"{rule_id} x{count}" for rule_id, count in sorted(counts.items())
    )
    lines.append(
        f"repro.lint: {len(findings)} finding"
        f"{'s' if len(findings) != 1 else ''} ({breakdown})"
    )
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """The machine-readable report (see module docstring)."""
    by_rule = Counter(finding.rule_id for finding in findings)
    by_severity = Counter(finding.severity for finding in findings)
    document = {
        "version": JSON_SCHEMA_VERSION,
        "clean": not findings,
        "counts": {
            "total": len(findings),
            "by_rule": dict(sorted(by_rule.items())),
            "by_severity": dict(sorted(by_severity.items())),
        },
        "rules": rule_docs(),
        "findings": [finding.to_dict() for finding in findings],
    }
    return json.dumps(document, indent=2, sort_keys=False)


def render_sarif(findings: Sequence[Finding]) -> str:
    """The findings as a SARIF 2.1.0 log (one run, one driver)."""
    rules = sorted(registered_rules(), key=lambda cls: cls.rule_id)
    rule_index = {cls.rule_id: index for index, cls in enumerate(rules)}
    results = []
    for finding in findings:
        results.append(
            {
                "ruleId": finding.rule_id,
                "ruleIndex": rule_index.get(finding.rule_id, -1),
                "level": _SARIF_LEVELS.get(finding.severity, "note"),
                "message": {"text": finding.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": finding.path.replace("\\", "/"),
                                "uriBaseId": "SRCROOT",
                            },
                            "region": {
                                "startLine": finding.line,
                                "startColumn": finding.col + 1,
                            },
                        }
                    }
                ],
                "partialFingerprints": {
                    "reproLint/v1": finding_fingerprint(finding)
                },
            }
        )
    document = {
        "$schema": _SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.lint",
                        "informationUri": (
                            "https://example.invalid/repro/docs/static-analysis.md"
                        ),
                        "rules": [
                            {
                                "id": cls.rule_id,
                                "name": cls.__name__,
                                "shortDescription": {"text": cls.summary},
                                "fullDescription": {"text": cls.rationale},
                                "defaultConfiguration": {
                                    "level": _SARIF_LEVELS.get(
                                        cls.severity, "note"
                                    )
                                },
                            }
                            for cls in rules
                        ],
                    }
                },
                "originalUriBaseIds": {"SRCROOT": {"uri": "file:///./"}},
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=False)


# ---------------------------------------------------------------------------
# Baselines
# ---------------------------------------------------------------------------


def finding_fingerprint(finding: Finding) -> str:
    """Content hash of a finding, stable across pure line moves."""
    payload = f"{finding.path}|{finding.rule_id}|{finding.message}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:24]


def write_baseline(findings: Sequence[Finding], path: str) -> int:
    """Record the current findings as accepted; returns the count."""
    counts: Dict[str, int] = {}
    for finding in findings:
        fingerprint = finding_fingerprint(finding)
        counts[fingerprint] = counts.get(fingerprint, 0) + 1
    document = {"version": BASELINE_VERSION, "fingerprints": counts}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return len(findings)


def load_baseline(path: str) -> Dict[str, int]:
    """Fingerprint -> accepted count.  Raises ``ValueError`` on shape errors."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if (
        not isinstance(document, dict)
        or document.get("version") != BASELINE_VERSION
        or not isinstance(document.get("fingerprints"), dict)
    ):
        raise ValueError(f"not a repro.lint baseline file: {path}")
    return {
        str(fingerprint): int(count)
        for fingerprint, count in document["fingerprints"].items()
    }


def apply_baseline(
    findings: Sequence[Finding], baseline: Dict[str, int]
) -> List[Finding]:
    """Drop findings the baseline accepts (up to its recorded multiplicity)."""
    budget = dict(baseline)
    kept = []
    for finding in findings:
        fingerprint = finding_fingerprint(finding)
        if budget.get(fingerprint, 0) > 0:
            budget[fingerprint] -= 1
            continue
        kept.append(finding)
    return kept
