"""Waxman random graphs [Waxman 1988].

The Waxman model places nodes uniformly in the unit square and connects
each pair with probability ``alpha · exp(−d / (beta · L))`` where ``d`` is
their Euclidean distance and ``L`` the maximum possible distance.  It is
the edge model used inside GT-ITM domains and one of the topology families
the broader multicast-scaling literature evaluates against (reference [10]
of the paper).
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from repro.exceptions import TopologyError
from repro.graph.builders import GraphBuilder
from repro.graph.core import Graph
from repro.topology._common import connect_components
from repro.utils.rng import RandomState, ensure_rng

__all__ = ["waxman_graph", "waxman_edge_probabilities"]


def waxman_edge_probabilities(
    points: np.ndarray, alpha: float, beta: float
) -> np.ndarray:
    """The (n, n) matrix of Waxman connection probabilities.

    ``P[u, v] = alpha · exp(−d(u, v) / (beta · L))`` with ``L = √2`` for
    the unit square.  The diagonal is zero.
    """
    if not 0.0 < alpha <= 1.0:
        raise TopologyError(f"alpha must be in (0, 1], got {alpha}")
    if beta <= 0.0:
        raise TopologyError(f"beta must be positive, got {beta}")
    pts = np.asarray(points, dtype=float)
    diff = pts[:, None, :] - pts[None, :, :]
    dist = np.sqrt(np.sum(diff**2, axis=-1))
    probs = alpha * np.exp(-dist / (beta * math.sqrt(2.0)))
    np.fill_diagonal(probs, 0.0)
    return probs


def waxman_graph(
    num_nodes: int,
    alpha: float = 0.2,
    beta: float = 0.15,
    rng: RandomState = None,
    ensure_connected: bool = True,
    return_points: bool = False,
) -> "Graph | Tuple[Graph, np.ndarray]":
    """Generate a Waxman random graph on the unit square.

    Parameters
    ----------
    num_nodes:
        Number of nodes.
    alpha:
        Overall edge density knob in (0, 1].
    beta:
        Locality knob: small beta favours short edges.
    rng:
        Randomness source.
    ensure_connected:
        Bridge stray components with random edges (see
        :func:`repro.topology._common.connect_components`).
    return_points:
        Also return the node coordinates.
    """
    if num_nodes < 1:
        raise TopologyError(f"num_nodes must be >= 1, got {num_nodes}")
    generator = ensure_rng(rng)
    points = generator.random((num_nodes, 2))
    probs = waxman_edge_probabilities(points, alpha, beta)
    draws = generator.random((num_nodes, num_nodes))
    upper = np.triu(draws < probs, k=1)
    us, vs = np.nonzero(upper)

    builder = GraphBuilder(num_nodes)
    builder.add_edges(zip(us.tolist(), vs.tolist()))
    graph = builder.to_graph()
    if ensure_connected:
        graph = connect_components(graph, generator)
    if return_points:
        return graph, points
    return graph
