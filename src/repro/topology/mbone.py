"""MBone-like overlay topology.

The paper's MBone map (from the USC/ISI SCAN project) is a tunnel overlay:
multicast islands connected by long unicast tunnels that follow geography.
Its reachability function ``T(r)`` shows "a slight concavity", i.e. mildly
sub-exponential growth (Section 4, Figure 7), which the paper attributes
to the overlay structure.

The stand-in here reproduces that regime with a *random geometric
backbone*: backbone routers are scattered in the unit square and joined to
every other backbone router within a connection radius — growth of the
reachable set is then limited by planar geometry, exactly the mechanism
that makes an overlay following geography sub-exponential.  A population
of degree-1 island hosts hangs off the backbone to reach the target size.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import TopologyError
from repro.graph.builders import GraphBuilder
from repro.graph.core import Graph
from repro.topology._common import connect_components
from repro.utils.rng import RandomState, ensure_rng

__all__ = ["mbone_like_graph", "random_geometric_graph"]


def random_geometric_graph(
    num_nodes: int,
    radius: float,
    rng: RandomState = None,
    ensure_connected: bool = True,
) -> Graph:
    """Random geometric graph on the unit square.

    Nodes are uniform points; an edge joins every pair closer than
    ``radius``.  Reachability grows quadratically (area of a disc), making
    this the canonical *sub-exponential* topology family.
    """
    if num_nodes < 1:
        raise TopologyError(f"num_nodes must be >= 1, got {num_nodes}")
    if radius <= 0:
        raise TopologyError(f"radius must be positive, got {radius}")
    generator = ensure_rng(rng)
    points = generator.random((num_nodes, 2))
    diff = points[:, None, :] - points[None, :, :]
    dist2 = np.sum(diff**2, axis=-1)
    upper = np.triu(dist2 < radius * radius, k=1)
    us, vs = np.nonzero(upper)
    builder = GraphBuilder(num_nodes)
    builder.add_edges(zip(us.tolist(), vs.tolist()))
    graph = builder.to_graph()
    if ensure_connected:
        graph = connect_components(graph, generator)
    return graph


def mbone_like_graph(
    num_nodes: int = 3_000,
    backbone_fraction: float = 0.4,
    long_tunnel_fraction: float = 0.02,
    rng: RandomState = None,
) -> Graph:
    """MBone stand-in: geometric backbone, long tunnels, island hosts.

    Parameters
    ----------
    num_nodes:
        Total node count (the 1999 MBone map had a few thousand nodes).
    backbone_fraction:
        Fraction of nodes forming the geometric tunnel backbone; the rest
        are degree-1 island hosts attached to random backbone routers.
    long_tunnel_fraction:
        Fraction of backbone routers given one additional long-range
        tunnel to a uniformly random backbone router.  The real MBone had
        a handful of transcontinental tunnels; a small dose keeps the
        diameter realistic (~20-30) while leaving the growth of ``T(r)``
        mildly sub-exponential — the paper's "slight concavity".
    rng:
        Randomness source.
    """
    if num_nodes < 2:
        raise TopologyError(f"num_nodes must be >= 2, got {num_nodes}")
    if not 0.0 < backbone_fraction <= 1.0:
        raise TopologyError(
            f"backbone_fraction must be in (0, 1], got {backbone_fraction}"
        )
    if not 0.0 <= long_tunnel_fraction < 1.0:
        raise TopologyError(
            f"long_tunnel_fraction must be in [0, 1), got {long_tunnel_fraction}"
        )
    generator = ensure_rng(rng)
    num_backbone = max(2, int(round(num_nodes * backbone_fraction)))
    num_backbone = min(num_backbone, num_nodes)
    # Radius targeting an average backbone degree around 5: the expected
    # number of points in a disc of radius r is (n-1)·π·r².
    target_degree = 5.0
    radius = math.sqrt(target_degree / (math.pi * max(1, num_backbone - 1)))

    backbone = random_geometric_graph(num_backbone, radius, rng=generator)
    builder = GraphBuilder(num_nodes, strict=False)
    builder.add_edges(backbone.edges())
    for _ in range(int(round(num_backbone * long_tunnel_fraction))):
        u = int(generator.integers(0, num_backbone))
        v = int(generator.integers(0, num_backbone))
        builder.add_edge(u, v)
    for host in range(num_backbone, num_nodes):
        builder.add_edge(host, int(generator.integers(0, num_backbone)))
    return connect_components(builder.to_graph(), generator)
