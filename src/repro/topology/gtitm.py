"""GT-ITM-style topologies: pure-random and transit-stub graphs.

The paper's ``r100``, ``ts1000`` and ``ts1008`` networks come from the
GT-ITM generator [Calvert, Doar & Zegura 1997].  We reimplement the two
flavours it uses:

* **Pure random** (:func:`pure_random_graph`): every node pair is joined
  independently with a fixed probability — GT-ITM's "flat random" method,
  an Erdős–Rényi graph.
* **Transit-stub** (:func:`transit_stub_graph`): a two-level hierarchy.
  A small random graph of *transit domains* forms the core; every transit
  node sponsors several *stub domains*, each itself a small random graph
  hanging off its transit node.  Optional extra transit-stub and stub-stub
  edges add the cross links real inter-domain topologies have.  GT-ITM
  "constructs portions of the graph randomly while constraining the gross
  structure" — the property Section 4 of the paper credits for the very
  similar reachability growth of ts1000 and ts1008 despite their average
  degrees (3.6 vs 7.5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.exceptions import TopologyError
from repro.graph.builders import GraphBuilder
from repro.graph.core import Graph
from repro.topology._common import connect_components
from repro.utils.rng import RandomState, ensure_rng

__all__ = ["pure_random_graph", "TransitStubParams", "transit_stub_graph"]


def pure_random_graph(
    num_nodes: int,
    edge_probability: Optional[float] = None,
    average_degree: Optional[float] = None,
    rng: RandomState = None,
    ensure_connected: bool = True,
) -> Graph:
    """Erdős–Rényi G(n, p) graph (GT-ITM's flat "random" method).

    Exactly one of ``edge_probability`` and ``average_degree`` must be
    given; the latter sets ``p = avg_degree / (n − 1)``.
    """
    if num_nodes < 1:
        raise TopologyError(f"num_nodes must be >= 1, got {num_nodes}")
    if (edge_probability is None) == (average_degree is None):
        raise TopologyError(
            "give exactly one of edge_probability or average_degree"
        )
    if edge_probability is None:
        if average_degree < 0:
            raise TopologyError(f"average_degree must be >= 0, got {average_degree}")
        edge_probability = min(1.0, average_degree / max(1, num_nodes - 1))
    if not 0.0 <= edge_probability <= 1.0:
        raise TopologyError(
            f"edge_probability must be in [0, 1], got {edge_probability}"
        )
    generator = ensure_rng(rng)
    draws = generator.random((num_nodes, num_nodes))
    upper = np.triu(draws < edge_probability, k=1)
    us, vs = np.nonzero(upper)
    builder = GraphBuilder(num_nodes)
    builder.add_edges(zip(us.tolist(), vs.tolist()))
    graph = builder.to_graph()
    if ensure_connected:
        graph = connect_components(graph, generator)
    return graph


@dataclass(frozen=True)
class TransitStubParams:
    """Parameters of the transit-stub construction.

    The expected node count is
    ``T·Nt · (1 + S·Ns)`` where the fields below map to:

    Attributes
    ----------
    transit_domains:
        ``T`` — number of transit domains in the core.
    transit_nodes:
        ``Nt`` — nodes per transit domain.
    stub_domains_per_transit_node:
        ``S`` — stub domains sponsored by each transit node.
    stub_nodes:
        ``Ns`` — nodes per stub domain.
    transit_edge_probability:
        Edge probability inside each transit domain.
    stub_edge_probability:
        Edge probability inside each stub domain; raise it to densify the
        graph (this is the ts1000 → ts1008 knob).
    extra_transit_stub_edges / extra_stub_stub_edges:
        Cross-hierarchy edges added between random (transit, stub-node)
        and (stub-node, stub-node) pairs.
    """

    transit_domains: int = 4
    transit_nodes: int = 5
    stub_domains_per_transit_node: int = 3
    stub_nodes: int = 16
    transit_edge_probability: float = 0.6
    stub_edge_probability: float = 0.25
    extra_transit_stub_edges: int = 0
    extra_stub_stub_edges: int = 0

    def expected_nodes(self) -> int:
        """Total node count implied by the parameters."""
        core = self.transit_domains * self.transit_nodes
        return core * (1 + self.stub_domains_per_transit_node * self.stub_nodes)

    def validate(self) -> None:
        """Raise :class:`TopologyError` on inconsistent parameters."""
        if self.transit_domains < 1:
            raise TopologyError("need at least one transit domain")
        if self.transit_nodes < 1:
            raise TopologyError("need at least one node per transit domain")
        if self.stub_domains_per_transit_node < 0 or self.stub_nodes < 0:
            raise TopologyError("stub counts must be non-negative")
        if self.stub_domains_per_transit_node > 0 and self.stub_nodes < 1:
            raise TopologyError("stub domains must have at least one node")
        for name, p in (
            ("transit_edge_probability", self.transit_edge_probability),
            ("stub_edge_probability", self.stub_edge_probability),
        ):
            if not 0.0 <= p <= 1.0:
                raise TopologyError(f"{name} must be in [0, 1], got {p}")
        if self.extra_transit_stub_edges < 0 or self.extra_stub_stub_edges < 0:
            raise TopologyError("extra edge counts must be non-negative")


def _random_domain_edges(
    builder: GraphBuilder,
    nodes: List[int],
    probability: float,
    generator: np.random.Generator,
) -> None:
    """Wire ``nodes`` as an internally-connected random domain.

    Each pair joins with ``probability``; a random spanning tree over the
    domain's nodes is added first so the domain is connected regardless of
    the draw (GT-ITM likewise redraws domains until connected — a spanning
    backbone is the rejection-free equivalent).
    """
    if len(nodes) <= 1:
        return
    order = generator.permutation(len(nodes))
    for i in range(1, len(nodes)):
        attach = int(order[generator.integers(0, i)])
        builder.add_edge(nodes[int(order[i])], nodes[attach])
    size = len(nodes)
    draws = generator.random((size, size))
    for i in range(size):
        for j in range(i + 1, size):
            if draws[i, j] < probability:
                builder.add_edge(nodes[i], nodes[j])


def transit_stub_graph(
    params: Optional[TransitStubParams] = None,
    rng: RandomState = None,
) -> Graph:
    """Generate a transit-stub topology.

    Structure: the transit domains are joined by a ring plus random
    inter-domain edges (so the core is always connected); each transit
    domain is an internally-connected random graph; each stub domain is an
    internally-connected random graph tied to its sponsoring transit node
    by a single edge, plus any configured extra cross edges.
    """
    params = params or TransitStubParams()
    params.validate()
    generator = ensure_rng(rng)

    builder = GraphBuilder(strict=False)

    # Transit core.
    transit_domains: List[List[int]] = []
    for _ in range(params.transit_domains):
        domain = [builder.add_node() for _ in range(params.transit_nodes)]
        _random_domain_edges(
            builder, domain, params.transit_edge_probability, generator
        )
        transit_domains.append(domain)

    # Inter-domain core links: ring of domains + one random chord per domain.
    t = params.transit_domains
    if t > 1:
        for i in range(t):
            j = (i + 1) % t
            if i < j or t == 2:
                u = int(generator.choice(transit_domains[i]))
                v = int(generator.choice(transit_domains[j]))
                builder.add_edge(u, v)
        for i in range(t):
            j = int(generator.integers(0, t))
            if j != i:
                u = int(generator.choice(transit_domains[i]))
                v = int(generator.choice(transit_domains[j]))
                builder.add_edge(u, v)

    # Stub domains.
    stub_nodes_all: List[int] = []
    for domain in transit_domains:
        for transit_node in domain:
            for _ in range(params.stub_domains_per_transit_node):
                stub = [builder.add_node() for _ in range(params.stub_nodes)]
                _random_domain_edges(
                    builder, stub, params.stub_edge_probability, generator
                )
                builder.add_edge(transit_node, int(generator.choice(stub)))
                stub_nodes_all.extend(stub)

    # Extra cross-hierarchy edges.
    transit_all = [n for domain in transit_domains for n in domain]
    for _ in range(params.extra_transit_stub_edges):
        if not stub_nodes_all:
            break
        builder.add_edge(
            int(generator.choice(transit_all)),
            int(generator.choice(stub_nodes_all)),
        )
    for _ in range(params.extra_stub_stub_edges):
        if len(stub_nodes_all) < 2:
            break
        builder.add_edge(
            int(generator.choice(stub_nodes_all)),
            int(generator.choice(stub_nodes_all)),
        )

    graph = builder.to_graph()
    return connect_components(graph, generator)
