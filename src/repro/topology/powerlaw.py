"""Power-law (preferential-attachment) topologies.

Stand-ins for the paper's two direct Internet measurements — the SCAN
router-level map ("Internet") and the NLANR AS-connectivity map ("AS").
Faloutsos, Faloutsos & Faloutsos (the paper's reference [8]) showed these
maps have power-law degree distributions; preferential attachment is the
canonical generative model for that regime, and it reproduces the two
properties the paper actually uses:

* exponential reachability growth ``T(r)`` before saturation (Figure 7),
* a linear ``L̂(n)/(n·ū)`` versus ``ln n`` series (Figure 6).

:func:`preferential_attachment_graph` is a Barabási–Albert process with an
optional *fringe*: a fraction of late-arriving nodes attach with a single
edge, mimicking the degree-1 access routers that dominate router-level
maps.

Seed-stream contract
--------------------
The generator is chunk-streaming: it never materializes a Python
endpoint list or per-node Python sets for the whole graph, emits CSR
directly, and keeps its working set bounded by O(edges) int32 scratch.
Two draw streams are supported, selected by ``stream=``:

``"loop"`` (default)
    Bit-identical replay of the historical per-node attach loop: the
    same ``Generator`` consumes the same sequence of ``integers`` calls
    (one batched call of ``edges_per_node`` draws per node — identical
    to the historical scalar draws — plus scalar top-ups on duplicate
    hits), and duplicate rejection goes through a real Python set so
    even the set-iteration order of the endpoint extension is
    preserved.  Every graph ever built from a seed reproduces exactly.

``"vectorized"``
    A new, documented stream: targets are drawn chunk-at-a-time as
    ``rng.random`` floats scaled to the live endpoint-pool length, with
    in-chunk references resolved by deterministic chain-chasing and
    within-node duplicates repaired by further draws from the same
    stream.  The fixed internal chunk size (``_VECTOR_CHUNK_NODES``) is
    part of the contract.  ~10-100x faster than ``"loop"``; use it for
    million-node builds.

Both streams realize the same repeated-endpoints process: the endpoint
pool after ``t`` edges is, positionally, ``pool[2t] = heads[t]`` and
``pool[2t + 1] = tails[t]``, and because every node attaches only to
already-present nodes, the pool length during a node's draws is the
fixed ``2 * edge_base(node)`` and self-loops are impossible.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.exceptions import TopologyError
from repro.graph.core import Graph
from repro.utils.rng import RandomState, ensure_rng

__all__ = [
    "preferential_attachment_graph",
    "internet_like_graph",
    "as_like_graph",
]

#: Nodes per draw chunk in the ``"vectorized"`` stream.  Fixed — retry
#: draws interleave differently across chunk boundaries, so the chunk
#: size is part of the seed-stream contract, not a tuning knob.
_VECTOR_CHUNK_NODES = 32_768


def _plan(
    num_nodes: int, edges_per_node: int, fringe_fraction: float
) -> Tuple[int, int, int, int]:
    """Validate parameters and return (num_core, seed_size, seed_edges, total_edges)."""
    if num_nodes < 2:
        raise TopologyError(f"num_nodes must be >= 2, got {num_nodes}")
    if edges_per_node < 1:
        raise TopologyError(f"edges_per_node must be >= 1, got {edges_per_node}")
    if not 0.0 <= fringe_fraction < 1.0:
        raise TopologyError(
            f"fringe_fraction must be in [0, 1), got {fringe_fraction}"
        )
    if edges_per_node >= num_nodes:
        raise TopologyError(
            f"edges_per_node ({edges_per_node}) must be below num_nodes "
            f"({num_nodes})"
        )
    num_fringe = int(round(num_nodes * fringe_fraction))
    num_core = num_nodes - num_fringe
    if num_core < edges_per_node + 1:
        raise TopologyError(
            f"fringe_fraction {fringe_fraction} leaves only {num_core} core "
            f"nodes; need at least edges_per_node + 1 = {edges_per_node + 1}"
        )
    seed_size = edges_per_node + 1
    seed_edges = seed_size * (seed_size - 1) // 2
    total_edges = (
        seed_edges + edges_per_node * (num_core - seed_size) + num_fringe
    )
    return num_core, seed_size, seed_edges, total_edges


def _arc_arrays(
    num_nodes: int, num_core: int, seed_size: int, seed_edges: int, total: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Allocate (heads, tails) with all heads — which are deterministic —
    prefilled, and the seed clique's tails written.

    Edge ``t`` was created by node ``heads[t]`` attaching to the older
    node ``tails[t]``; the endpoint pool is the interleave of the two.
    """
    heads = np.empty(total, dtype=np.int32)
    tails = np.empty(total, dtype=np.int32)
    m = seed_size - 1
    # Seed clique in historical nested order: (0,1), (0,2), ... (u, v>u).
    pos = 0
    for u in range(seed_size):
        for v in range(u + 1, seed_size):
            heads[pos] = u
            tails[pos] = v
            pos += 1
    core = np.arange(seed_size, num_core, dtype=np.int32)
    heads[seed_edges : seed_edges + m * len(core)] = np.repeat(core, m)
    heads[seed_edges + m * len(core) :] = np.arange(
        num_core, num_nodes, dtype=np.int32
    )
    return heads, tails


def _pool_lookup(
    idx: np.ndarray, heads: np.ndarray, tails: np.ndarray
) -> np.ndarray:
    """Resolve endpoint-pool indices: pool[2t] = heads[t], pool[2t+1] = tails[t]."""
    edge = idx >> 1
    return np.where(idx & 1 == 1, tails[edge], heads[edge]).astype(
        np.int32, copy=False
    )


def _fill_loop_stream(
    generator: np.random.Generator,
    heads: np.ndarray,
    tails: np.ndarray,
    node_lo: int,
    node_hi: int,
    per_node: int,
    edge_base: int,
) -> None:
    """Replay the historical attach loop for nodes [node_lo, node_hi).

    Consumes the generator exactly as the per-node loop did: the pool
    length is pinned at ``2 * edge_base(node)`` for all of a node's
    draws (extensions happened after the draws), a batched ``integers``
    call is stream-identical to the historical scalar draws, the
    ``candidate != node`` rejection is kept verbatim (it can never fire
    — the pool only holds older nodes — but fidelity is the point), and
    the accepted targets pass through a real Python set so the endpoint
    pool extends in the same set-iteration order.
    """
    pos = edge_base
    for node in range(node_lo, node_hi):
        pool_len = 2 * pos
        targets: set = set()
        drawn = _pool_lookup(
            generator.integers(0, pool_len, size=per_node), heads, tails
        )
        for candidate in drawn.tolist():
            if candidate != node:
                targets.add(candidate)
        while len(targets) < per_node:
            idx = int(generator.integers(0, pool_len))
            candidate = int(tails[idx >> 1] if idx & 1 else heads[idx >> 1])
            if candidate != node:
                targets.add(candidate)
        tails[pos : pos + per_node] = list(targets)
        pos += per_node


def _fill_vectorized_stream(
    generator: np.random.Generator,
    heads: np.ndarray,
    tails: np.ndarray,
    node_lo: int,
    node_hi: int,
    per_node: int,
    edge_base: int,
) -> None:
    """Chunked vectorized draws for nodes [node_lo, node_hi).

    Each draw is one float in [0, 1) scaled by the drawing node's pool
    length ``2 * edge_base(node)``.  Draw ``p`` of a chunk materializes
    edge ``chunk_base + p``, so an odd pool index landing on an in-chunk
    edge is resolved by chasing to that draw's own (strictly earlier)
    index until it exits the chunk or lands on a head — the chain is
    strictly decreasing in edge number, so it terminates.  Within-node
    duplicate rows are then repaired with further whole-row draws from
    the same stream against the now-materialized chunk.
    """
    for chunk_lo in range(node_lo, node_hi, _VECTOR_CHUNK_NODES):
        chunk_hi = min(chunk_lo + _VECTOR_CHUNK_NODES, node_hi)
        nodes = np.arange(chunk_lo, chunk_hi, dtype=np.int64)
        chunk_base = edge_base + (chunk_lo - node_lo) * per_node
        bases = edge_base + (nodes - node_lo) * per_node
        bounds = np.repeat(2 * bases, per_node).astype(np.float64)

        draws = generator.random(len(nodes) * per_node)
        idx = (draws * bounds).astype(np.int64)
        edge = idx >> 1
        while True:
            pending = ((idx & 1) == 1) & (edge >= chunk_base)
            if not pending.any():
                break
            idx[pending] = idx[edge[pending] - chunk_base]
            edge = idx >> 1
        vals = _pool_lookup(idx, heads, tails)
        tails[chunk_base : chunk_base + len(vals)] = vals

        if per_node > 1:
            rows = vals.reshape(-1, per_node)
            bad = _duplicate_rows(rows)
            while len(bad):
                redraw = generator.random(len(bad) * per_node)
                rebounds = np.repeat(
                    2 * bases[bad], per_node
                ).astype(np.float64)
                ridx = (redraw * rebounds).astype(np.int64)
                # Every earlier edge is materialized now, and a node's
                # pool predates its own row, so no chase is needed.
                rvals = _pool_lookup(ridx, heads, tails).reshape(
                    -1, per_node
                )
                starts = chunk_base + bad * per_node
                for k, start in enumerate(starts.tolist()):
                    tails[start : start + per_node] = rvals[k]
                still = _duplicate_rows(rvals)
                bad = bad[still]


def _duplicate_rows(rows: np.ndarray) -> np.ndarray:
    """Indices of rows containing a repeated value."""
    srt = np.sort(rows, axis=1)
    return np.flatnonzero((srt[:, 1:] == srt[:, :-1]).any(axis=1))


def _csr_from_arcs(
    num_nodes: int, heads: np.ndarray, tails: np.ndarray
) -> Graph:
    """Emit a canonical CSR graph straight from (head, tail) edge arrays.

    Both streams guarantee no self-loops (the pool only holds older
    nodes) and no parallel edges (an edge's head is always its newer
    endpoint and per-node targets are distinct), so one int64 key sort
    yields sorted, duplicate-free adjacency rows without a builder pass.
    """
    h = heads.astype(np.int64)
    t = tails.astype(np.int64)
    key = np.concatenate([h * num_nodes + t, t * num_nodes + h])
    key.sort()
    indices = (key % num_nodes).astype(np.int32)
    counts = np.bincount(key // num_nodes, minlength=num_nodes)
    indptr = np.zeros(num_nodes + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return Graph(num_nodes, indptr, indices, check=False)


def preferential_attachment_graph(
    num_nodes: int,
    edges_per_node: int = 2,
    fringe_fraction: float = 0.0,
    rng: RandomState = None,
    *,
    stream: str = "loop",
) -> Graph:
    """Grow a graph by preferential attachment.

    Parameters
    ----------
    num_nodes:
        Final node count.
    edges_per_node:
        Edges each arriving core node creates (the BA ``m``).
    fringe_fraction:
        Fraction of nodes (the last arrivals) that attach with exactly one
        edge instead of ``edges_per_node`` — the degree-1 fringe of
        router-level maps.  0 disables the fringe.
    rng:
        Randomness source.
    stream:
        Seed-stream contract: ``"loop"`` bit-identically replays the
        historical per-node draw stream, ``"vectorized"`` is the fast
        documented chunk stream (see module docstring).

    Notes
    -----
    Target selection uses the standard repeated-endpoints trick: every
    edge endpoint ever created is appended to a (conceptual) pool, and
    new targets are drawn uniformly from that pool, which realizes
    degree-proportional attachment in O(1) per draw.  The pool is never
    materialized — draws index positionally into the (heads, tails)
    edge arrays — so the working set is bounded by O(edges) int32.
    """
    if stream not in ("loop", "vectorized"):
        raise TopologyError(
            f'stream must be "loop" or "vectorized", got {stream!r}'
        )
    num_core, seed_size, seed_edges, total = _plan(
        num_nodes, edges_per_node, fringe_fraction
    )
    generator = ensure_rng(rng)
    heads, tails = _arc_arrays(num_nodes, num_core, seed_size, seed_edges, total)
    fill = _fill_loop_stream if stream == "loop" else _fill_vectorized_stream
    core_edges = seed_edges + edges_per_node * (num_core - seed_size)
    fill(generator, heads, tails, seed_size, num_core, edges_per_node, seed_edges)
    fill(generator, heads, tails, num_core, num_nodes, 1, core_edges)
    return _csr_from_arcs(num_nodes, heads, tails)


def _legacy_loop_reference(
    num_nodes: int,
    edges_per_node: int = 2,
    fringe_fraction: float = 0.0,
    rng: RandomState = None,
) -> Graph:
    """The pre-streaming per-node attach loop, kept verbatim as the
    reference implementation for the equivalence suite and benchmarks.

    Unbounded Python endpoint list, per-node Python sets, builder pass —
    everything the streaming generator replaced.  ``stream="loop"``
    must reproduce its output bit-for-bit for any seed.
    """
    from repro.graph.builders import GraphBuilder

    num_core, seed_size, _, _ = _plan(num_nodes, edges_per_node, fringe_fraction)
    generator = ensure_rng(rng)

    builder = GraphBuilder(num_nodes, strict=False)
    endpoint_pool: List[int] = []
    for u in range(seed_size):
        for v in range(u + 1, seed_size):
            builder.add_edge(u, v)
            endpoint_pool.extend((u, v))

    def attach(node: int, num_edges: int) -> None:
        targets: set = set()
        while len(targets) < num_edges:
            candidate = endpoint_pool[int(generator.integers(0, len(endpoint_pool)))]
            if candidate != node:
                targets.add(candidate)
        for target in targets:
            builder.add_edge(node, target)
            endpoint_pool.extend((node, target))

    for node in range(seed_size, num_core):
        attach(node, edges_per_node)
    for node in range(num_core, num_nodes):
        attach(node, 1)
    return builder.to_graph()


def internet_like_graph(
    num_nodes: int = 10_000,
    rng: RandomState = None,
    *,
    stream: str = "loop",
) -> Graph:
    """Router-level-map stand-in (the paper's "Internet" topology).

    Preferential attachment with a large degree-1 fringe: roughly 35% of
    nodes are single-homed access routers, pulling the average degree down
    toward the ~2.8 of the SCAN map while keeping a well-connected core.
    The paper's map has 56k nodes; the default here is 10k for tractable
    experiment times — pass ``num_nodes=56_000`` to match the paper scale,
    or go to ``num_nodes=1_000_000`` (with ``stream="vectorized"`` for
    speed) to probe the Eq. 22-30 regime boundaries beyond it.
    """
    return preferential_attachment_graph(
        num_nodes, edges_per_node=2, fringe_fraction=0.35, rng=rng,
        stream=stream,
    )


def as_like_graph(
    num_nodes: int = 4_500,
    rng: RandomState = None,
    *,
    stream: str = "loop",
) -> Graph:
    """AS-connectivity-map stand-in (the paper's "AS" topology).

    Pure preferential attachment with ``m = 2``: power-law degrees,
    average degree just under 4, matching the March-1999 NLANR AS map era
    (~4.5k ASes).
    """
    return preferential_attachment_graph(
        num_nodes, edges_per_node=2, fringe_fraction=0.0, rng=rng,
        stream=stream,
    )
