"""Power-law (preferential-attachment) topologies.

Stand-ins for the paper's two direct Internet measurements — the SCAN
router-level map ("Internet") and the NLANR AS-connectivity map ("AS").
Faloutsos, Faloutsos & Faloutsos (the paper's reference [8]) showed these
maps have power-law degree distributions; preferential attachment is the
canonical generative model for that regime, and it reproduces the two
properties the paper actually uses:

* exponential reachability growth ``T(r)`` before saturation (Figure 7),
* a linear ``L̂(n)/(n·ū)`` versus ``ln n`` series (Figure 6).

:func:`preferential_attachment_graph` is a Barabási–Albert process with an
optional *fringe*: a fraction of late-arriving nodes attach with a single
edge, mimicking the degree-1 access routers that dominate router-level
maps.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.exceptions import TopologyError
from repro.graph.builders import GraphBuilder
from repro.graph.core import Graph
from repro.utils.rng import RandomState, ensure_rng

__all__ = [
    "preferential_attachment_graph",
    "internet_like_graph",
    "as_like_graph",
]


def preferential_attachment_graph(
    num_nodes: int,
    edges_per_node: int = 2,
    fringe_fraction: float = 0.0,
    rng: RandomState = None,
) -> Graph:
    """Grow a graph by preferential attachment.

    Parameters
    ----------
    num_nodes:
        Final node count.
    edges_per_node:
        Edges each arriving core node creates (the BA ``m``).
    fringe_fraction:
        Fraction of nodes (the last arrivals) that attach with exactly one
        edge instead of ``edges_per_node`` — the degree-1 fringe of
        router-level maps.  0 disables the fringe.
    rng:
        Randomness source.

    Notes
    -----
    Target selection uses the standard repeated-endpoints trick: every
    edge endpoint ever created is appended to a list, and new targets are
    drawn uniformly from that list, which realizes degree-proportional
    attachment in O(1) per draw.
    """
    if num_nodes < 2:
        raise TopologyError(f"num_nodes must be >= 2, got {num_nodes}")
    if edges_per_node < 1:
        raise TopologyError(f"edges_per_node must be >= 1, got {edges_per_node}")
    if not 0.0 <= fringe_fraction < 1.0:
        raise TopologyError(
            f"fringe_fraction must be in [0, 1), got {fringe_fraction}"
        )
    if edges_per_node >= num_nodes:
        raise TopologyError(
            f"edges_per_node ({edges_per_node}) must be below num_nodes "
            f"({num_nodes})"
        )
    generator = ensure_rng(rng)

    num_fringe = int(round(num_nodes * fringe_fraction))
    num_core = num_nodes - num_fringe
    if num_core < edges_per_node + 1:
        raise TopologyError(
            f"fringe_fraction {fringe_fraction} leaves only {num_core} core "
            f"nodes; need at least edges_per_node + 1 = {edges_per_node + 1}"
        )

    builder = GraphBuilder(num_nodes, strict=False)
    # Seed: a small clique of the first m+1 nodes, so every early node has
    # nonzero degree and the endpoint list is well defined.
    seed_size = edges_per_node + 1
    endpoint_pool: List[int] = []
    for u in range(seed_size):
        for v in range(u + 1, seed_size):
            builder.add_edge(u, v)
            endpoint_pool.extend((u, v))

    def attach(node: int, num_edges: int) -> None:
        targets: set = set()
        while len(targets) < num_edges:
            candidate = endpoint_pool[int(generator.integers(0, len(endpoint_pool)))]
            if candidate != node:
                targets.add(candidate)
        for target in targets:
            builder.add_edge(node, target)
            endpoint_pool.extend((node, target))

    for node in range(seed_size, num_core):
        attach(node, edges_per_node)
    for node in range(num_core, num_nodes):
        attach(node, 1)
    return builder.to_graph()


def internet_like_graph(
    num_nodes: int = 10_000,
    rng: RandomState = None,
) -> Graph:
    """Router-level-map stand-in (the paper's "Internet" topology).

    Preferential attachment with a large degree-1 fringe: roughly 35% of
    nodes are single-homed access routers, pulling the average degree down
    toward the ~2.8 of the SCAN map while keeping a well-connected core.
    The paper's map has 56k nodes; the default here is 10k for tractable
    experiment times — pass ``num_nodes=56_000`` to match the paper scale.
    """
    return preferential_attachment_graph(
        num_nodes, edges_per_node=2, fringe_fraction=0.35, rng=rng
    )


def as_like_graph(
    num_nodes: int = 4_500,
    rng: RandomState = None,
) -> Graph:
    """AS-connectivity-map stand-in (the paper's "AS" topology).

    Pure preferential attachment with ``m = 2``: power-law degrees,
    average degree just under 4, matching the March-1999 NLANR AS map era
    (~4.5k ASes).
    """
    return preferential_attachment_graph(
        num_nodes, edges_per_node=2, fringe_fraction=0.0, rng=rng
    )
