"""The ARPA network topology (47 nodes).

The paper's "ARPA" network is the original ARPANET topology also used by
Wei & Estrin and by Chuang & Sirbu.  The exact historical edge list is not
redistributable offline, so this module ships a documented hand-built
stand-in with the same gross statistics: 47 nodes, 65 links, average
degree ≈ 2.8, diameter ≈ 9 — a sparse continental mesh of two east-west
backbone chains with periodic cross links and a handful of long-haul
shortcuts.  Like the real ARPANET it is strongly chain-like, which gives
it the **sub-exponential reachability growth** Section 4 reports for the
ARPA data (Figure 7) and the correspondingly weaker fit to the predicted
``L̂(n)`` form (Figure 6).

The topology is deterministic: every call returns the identical graph.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.graph.core import Graph

__all__ = ["arpanet", "ARPANET_NUM_NODES", "arpanet_edges"]

ARPANET_NUM_NODES = 47

# Northern backbone chain: nodes 0..22.  Southern chain: nodes 23..46.
_NORTH_CHAIN = list(range(0, 23))
_SOUTH_CHAIN = list(range(23, 47))

# Periodic north-south cross links, west to east.
_CROSS_LINKS: List[Tuple[int, int]] = [
    (0, 23), (2, 25), (5, 27), (7, 30), (9, 32),
    (12, 35), (14, 38), (17, 40), (19, 43), (22, 46),
]

# Long-haul redundancy shortcuts within each chain.
_SHORTCUTS: List[Tuple[int, int]] = [
    (1, 8), (4, 13), (10, 18), (6, 24),
    (26, 34), (31, 41), (36, 44), (3, 28), (15, 39), (20, 45),
]


def arpanet_edges() -> List[Tuple[int, int]]:
    """The full 65-entry edge list of the ARPA stand-in topology."""
    edges: List[Tuple[int, int]] = []
    edges.extend(zip(_NORTH_CHAIN, _NORTH_CHAIN[1:]))
    edges.extend(zip(_SOUTH_CHAIN, _SOUTH_CHAIN[1:]))
    edges.extend(_CROSS_LINKS)
    edges.extend(_SHORTCUTS)
    return edges


def arpanet() -> Graph:
    """Build the 47-node ARPA stand-in network.

    Examples
    --------
    >>> g = arpanet()
    >>> g.num_nodes, g.num_edges
    (47, 65)
    """
    return Graph.from_edges(ARPANET_NUM_NODES, arpanet_edges())
