"""Complete k-ary trees — the paper's analytically tractable test case.

Section 3 computes the multicast tree size exactly on a complete k-ary
tree of depth ``D`` with the source at the root.  This module builds those
trees with *heap indexing*: the root is node 0 and the children of node
``i`` are ``k·i + 1 .. k·i + k``.  Heap indexing makes level, parent, and
subtree computations O(1) arithmetic, which the affinity sampler exploits
to avoid storing all-pairs distances on large trees.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

import numpy as np

from repro.exceptions import TopologyError
from repro.graph.core import Graph

__all__ = ["KaryTree", "kary_tree", "kary_num_nodes", "kary_num_leaves"]


def _check_kd(k: int, depth: int) -> None:
    if k < 1:
        raise TopologyError(f"tree degree k must be >= 1, got {k}")
    if depth < 0:
        raise TopologyError(f"tree depth must be >= 0, got {depth}")


def kary_num_nodes(k: int, depth: int) -> int:
    """Number of nodes in a complete k-ary tree of depth ``depth``.

    ``(k^(D+1) − 1)/(k − 1)`` for ``k >= 2``; ``D + 1`` for a path
    (``k = 1``).
    """
    _check_kd(k, depth)
    if k == 1:
        return depth + 1
    return (k ** (depth + 1) - 1) // (k - 1)


def kary_num_leaves(k: int, depth: int) -> int:
    """Number of leaves, ``M = k^D`` (the paper's receiver population)."""
    _check_kd(k, depth)
    return k**depth


@dataclass(frozen=True)
class KaryTree:
    """A complete k-ary tree with heap indexing and O(1) structure queries.

    Attributes
    ----------
    k:
        Branching factor (>= 1; ``k = 1`` degenerates to a path, which the
        paper uses as the continuum limit of small ``k``).
    depth:
        Depth ``D``; leaves are at distance ``D`` from the root.
    graph:
        The tree as a :class:`~repro.graph.core.Graph`.
    """

    k: int
    depth: int
    graph: Graph

    @property
    def num_nodes(self) -> int:
        """Total number of nodes."""
        return self.graph.num_nodes

    @property
    def num_leaves(self) -> int:
        """Number of leaves ``M = k^D``."""
        return kary_num_leaves(self.k, self.depth)

    @property
    def root(self) -> int:
        """The root node id (always 0)."""
        return 0

    def level_start(self, level: int) -> int:
        """Id of the first node at ``level`` (root is level 0)."""
        if not 0 <= level <= self.depth:
            raise TopologyError(
                f"level must be in [0, {self.depth}], got {level}"
            )
        return kary_num_nodes(self.k, level - 1) if level > 0 else 0

    def level_of(self, node: int) -> int:
        """The level (distance from the root) of ``node``."""
        node = self.graph.check_node(node)
        if self.k == 1:
            return node
        # Smallest l with (k^(l+1) - 1)/(k-1) > node.
        level = 0
        boundary = 1
        step = self.k
        while node >= boundary:
            boundary += step
            step *= self.k
            level += 1
        return level

    def parent_of(self, node: int) -> int:
        """Heap parent of ``node`` (-1 for the root)."""
        node = self.graph.check_node(node)
        if node == 0:
            return -1
        return (node - 1) // self.k

    def children_of(self, node: int) -> List[int]:
        """Children of ``node`` (empty for leaves)."""
        node = self.graph.check_node(node)
        first = self.k * node + 1
        if first >= self.num_nodes:
            return []
        return list(range(first, min(first + self.k, self.num_nodes)))

    def leaves(self) -> np.ndarray:
        """Ids of all leaf nodes (the deepest level)."""
        return np.arange(self.level_start(self.depth), self.num_nodes)

    def non_root_nodes(self) -> np.ndarray:
        """All candidate receiver sites when receivers sit throughout."""
        return np.arange(1, self.num_nodes)

    def ancestors(self, node: int) -> Iterator[int]:
        """Yield the proper ancestors of ``node`` up to the root."""
        node = self.graph.check_node(node)
        while node != 0:
            node = (node - 1) // self.k
            yield node

    def distance(self, u: int, v: int) -> int:
        """Hop distance between ``u`` and ``v`` via their lowest common
        ancestor — O(depth), no BFS needed."""
        u = self.graph.check_node(u)
        v = self.graph.check_node(v)
        du, dv = self.level_of(u), self.level_of(v)
        hops = 0
        while du > dv:
            u = (u - 1) // self.k
            du -= 1
            hops += 1
        while dv > du:
            v = (v - 1) // self.k
            dv -= 1
            hops += 1
        while u != v:
            u = (u - 1) // self.k
            v = (v - 1) // self.k
            hops += 2
        return hops


def kary_tree(k: int, depth: int) -> KaryTree:
    """Build a complete k-ary tree of the given degree and depth.

    Examples
    --------
    >>> tree = kary_tree(2, 3)
    >>> tree.num_nodes, tree.num_leaves
    (15, 8)
    """
    _check_kd(k, depth)
    n = kary_num_nodes(k, depth)
    if n > 5_000_000:
        raise TopologyError(
            f"k={k}, depth={depth} yields {n} nodes; explicit trees above "
            "5M nodes are refused — use the closed-form analysis in "
            "repro.analysis.kary_exact instead"
        )
    children = np.arange(1, n, dtype=np.int64)
    parents = (children - 1) // k
    edges = np.column_stack([parents, children])
    graph = Graph.from_edges(n, [tuple(int(x) for x in e) for e in edges])
    return KaryTree(k=k, depth=depth, graph=graph)
