"""TIERS-style three-level topologies [Doar 1996].

The TIERS generator models an internetwork as a hierarchy of one WAN,
several MANs, and many LANs.  Each WAN/MAN network is laid out as random
points in the plane, joined by their Euclidean minimum spanning tree, and
given ``redundancy`` extra edges from each node to its nearest non-adjacent
neighbours; LANs are stars (a hub plus hosts).  MANs attach to WAN nodes
and LANs to MAN nodes.

Two behaviours of the real generator matter for the paper and are kept:

* The redundancy step can propose already-existing edges — the original
  tool emitted them as duplicates, which Phillips et al. "cleaned" away.
  We build with a deduplicating builder, which is the cleaned result.
* The planar-MST skeleton gives the topology strong geographic locality,
  which is exactly why ``ti5000``'s reachability function grows
  sub-exponentially (Figure 7) and why its ``L̂(n)/(n·ū)`` curve deviates
  from the predicted linear form (Figure 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.exceptions import TopologyError
from repro.graph.builders import GraphBuilder
from repro.graph.core import Graph
from repro.topology._common import connect_components, euclidean_mst_edges
from repro.utils.rng import RandomState, ensure_rng

__all__ = ["TiersParams", "tiers_graph"]


@dataclass(frozen=True)
class TiersParams:
    """Parameters of the TIERS construction.

    Expected total nodes:
    ``wan_nodes + num_mans·man_nodes + num_mans·lans_per_man·(1 + lan_hosts)``
    (each LAN contributes a hub node plus its hosts).

    Attributes
    ----------
    wan_nodes:
        Nodes in the single WAN.
    num_mans:
        Number of MANs, each attached to a distinct random WAN node.
    man_nodes:
        Nodes per MAN.
    lans_per_man:
        LANs attached to each MAN (each to a random MAN node).
    lan_hosts:
        Host (leaf) nodes per LAN hub.
    wan_redundancy / man_redundancy:
        Extra nearest-neighbour edges per node added on top of the MST
        within the WAN / each MAN (TIERS' ``R`` parameter).
    """

    wan_nodes: int = 50
    num_mans: int = 10
    man_nodes: int = 20
    lans_per_man: int = 6
    lan_hosts: int = 7
    wan_redundancy: int = 2
    man_redundancy: int = 1

    def expected_nodes(self) -> int:
        """Total node count implied by the parameters."""
        lans = self.num_mans * self.lans_per_man
        return (
            self.wan_nodes
            + self.num_mans * self.man_nodes
            + lans * (1 + self.lan_hosts)
        )

    def validate(self) -> None:
        """Raise :class:`TopologyError` on inconsistent parameters."""
        if self.wan_nodes < 1:
            raise TopologyError("the WAN needs at least one node")
        if self.num_mans < 0 or self.man_nodes < 0:
            raise TopologyError("MAN counts must be non-negative")
        if self.num_mans > 0 and self.man_nodes < 1:
            raise TopologyError("MANs must have at least one node")
        if self.lans_per_man < 0 or self.lan_hosts < 0:
            raise TopologyError("LAN counts must be non-negative")
        if self.wan_redundancy < 0 or self.man_redundancy < 0:
            raise TopologyError("redundancy must be non-negative")


def _mesh_network(
    builder: GraphBuilder,
    size: int,
    redundancy: int,
    generator: np.random.Generator,
) -> List[int]:
    """Create a TIERS WAN/MAN: random points, Euclidean MST, redundancy.

    Returns the new node ids.  The redundancy pass connects each node to
    its ``redundancy`` nearest neighbours; proposals duplicating MST edges
    are dropped by the non-strict builder (the "cleaning" step).
    """
    nodes = list(builder.add_nodes(size))
    if size == 1:
        return nodes
    points = generator.random((size, 2))
    for u, v in euclidean_mst_edges(points):
        builder.add_edge(nodes[u], nodes[v])
    if redundancy > 0 and size > 2:
        diff = points[:, None, :] - points[None, :, :]
        dist = np.sum(diff**2, axis=-1)
        np.fill_diagonal(dist, np.inf)
        order = np.argsort(dist, axis=1)
        for i in range(size):
            added = 0
            for j in order[i]:
                if added >= redundancy:
                    break
                if builder.add_edge(nodes[i], nodes[int(j)]):
                    added += 1
    return nodes


def tiers_graph(
    params: "TiersParams | None" = None,
    rng: RandomState = None,
) -> Graph:
    """Generate a TIERS-style WAN/MAN/LAN topology."""
    params = params or TiersParams()
    params.validate()
    generator = ensure_rng(rng)
    builder = GraphBuilder(strict=False)

    wan = _mesh_network(builder, params.wan_nodes, params.wan_redundancy, generator)

    for _ in range(params.num_mans):
        man = _mesh_network(
            builder, params.man_nodes, params.man_redundancy, generator
        )
        builder.add_edge(int(generator.choice(wan)), int(generator.choice(man)))
        for _ in range(params.lans_per_man):
            hub = builder.add_node()
            builder.add_edge(int(generator.choice(man)), hub)
            for host in builder.add_nodes(params.lan_hosts):
                builder.add_edge(hub, host)

    return connect_components(builder.to_graph(), generator)
