"""The named topology suite of Table 1.

``build_topology(name)`` constructs any of the eight networks the paper
evaluates (or their documented stand-ins — see DESIGN.md §2), cleaned and
connected, at either paper scale or a reduced ``scale`` for quick runs.

The suite:

========  =================================  ========================
name      generator                          paper description
========  =================================  ========================
arpa      :func:`repro.topology.arpanet`     original ARPANET, 47 nodes
mbone     :func:`mbone_like_graph`           SCAN MBone map
internet  :func:`internet_like_graph`        SCAN router map (56k nodes)
as        :func:`as_like_graph`              NLANR AS map
r100      :func:`pure_random_graph`          GT-ITM flat random, 100 nodes
ts1000    :func:`transit_stub_graph`         GT-ITM transit-stub, ~1000
ts1008    :func:`transit_stub_graph`         GT-ITM transit-stub, dense
ti5000    :func:`tiers_graph`                TIERS, ~5000 nodes
========  =================================  ========================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.exceptions import TopologyError
from repro.graph.core import Graph
from repro.graph.ops import largest_connected_component
from repro.topology.arpanet import arpanet
from repro.topology.gtitm import TransitStubParams, pure_random_graph, transit_stub_graph
from repro.topology.mbone import mbone_like_graph
from repro.topology.powerlaw import as_like_graph, internet_like_graph
from repro.topology.tiers import TiersParams, tiers_graph
from repro.topology.waxman import waxman_graph
from repro.utils.rng import RandomState, ensure_rng

__all__ = [
    "TopologySpec",
    "TOPOLOGY_NAMES",
    "EXTRA_TOPOLOGIES",
    "GENERATED_TOPOLOGIES",
    "REAL_TOPOLOGIES",
    "build_topology",
    "build_suite",
]


@dataclass(frozen=True)
class TopologySpec:
    """A named topology with its generator and descriptive metadata."""

    name: str
    kind: str  # "real" (measured-map stand-in) or "generated"
    description: str
    builder: Callable[[float, RandomState], Graph]

    def build(self, scale: float = 1.0, rng: RandomState = None) -> Graph:
        """Build the topology at ``scale`` (1.0 = paper scale)."""
        if scale <= 0:
            raise TopologyError(f"scale must be positive, got {scale}")
        return self.builder(scale, rng)


def _scaled(base: int, scale: float, minimum: int = 8) -> int:
    return max(minimum, int(round(base * scale)))


def _build_arpa(scale: float, rng: RandomState) -> Graph:
    # The ARPA map is a fixed historical artifact: it does not scale.
    return arpanet()


def _build_mbone(scale: float, rng: RandomState) -> Graph:
    return mbone_like_graph(num_nodes=_scaled(3_000, scale), rng=rng)


def _build_internet(scale: float, rng: RandomState) -> Graph:
    return internet_like_graph(num_nodes=_scaled(10_000, scale), rng=rng)


def _build_as(scale: float, rng: RandomState) -> Graph:
    return as_like_graph(num_nodes=_scaled(4_500, scale), rng=rng)


def _build_r100(scale: float, rng: RandomState) -> Graph:
    return pure_random_graph(
        num_nodes=_scaled(100, scale), average_degree=4.0, rng=rng
    )


def _ts_params(scale: float, dense: bool) -> TransitStubParams:
    stub_nodes = max(2, int(round(16 * scale)))
    if dense:
        return TransitStubParams(
            transit_domains=4,
            transit_nodes=5,
            stub_domains_per_transit_node=3,
            stub_nodes=stub_nodes,
            transit_edge_probability=0.8,
            stub_edge_probability=0.42,
            extra_transit_stub_edges=120,
            extra_stub_stub_edges=120,
        )
    return TransitStubParams(
        transit_domains=4,
        transit_nodes=5,
        stub_domains_per_transit_node=3,
        stub_nodes=stub_nodes,
        transit_edge_probability=0.6,
        stub_edge_probability=0.12,
        extra_transit_stub_edges=0,
        extra_stub_stub_edges=0,
    )


def _build_ts1000(scale: float, rng: RandomState) -> Graph:
    return transit_stub_graph(_ts_params(scale, dense=False), rng=rng)


def _build_ts1008(scale: float, rng: RandomState) -> Graph:
    return transit_stub_graph(_ts_params(scale, dense=True), rng=rng)


def _build_waxman(scale: float, rng: RandomState) -> Graph:
    # alpha/beta chosen for average degree ~4.5 at 400 nodes, the sparse
    # regime of the original Waxman evaluations.
    return waxman_graph(
        num_nodes=_scaled(400, scale), alpha=0.14, beta=0.095, rng=rng
    )


def _build_ti5000(scale: float, rng: RandomState) -> Graph:
    # Total nodes are dominated by num_mans × (man + LAN population), so
    # scaling num_mans alone keeps the node count roughly linear in scale.
    params = TiersParams(
        wan_nodes=_scaled(50, min(1.0, scale), minimum=8),
        num_mans=_scaled(33, scale, minimum=2),
        man_nodes=60,
        lans_per_man=10,
        lan_hosts=8,
        wan_redundancy=2,
        man_redundancy=2,
    )
    return tiers_graph(params, rng=rng)


_SPECS: Dict[str, TopologySpec] = {
    spec.name: spec
    for spec in (
        TopologySpec(
            "arpa", "real", "original ARPANET topology (47 nodes)", _build_arpa
        ),
        TopologySpec(
            "mbone", "real", "MBone overlay map stand-in (~3k nodes)", _build_mbone
        ),
        TopologySpec(
            "internet",
            "real",
            "router-level Internet map stand-in (~10k nodes)",
            _build_internet,
        ),
        TopologySpec(
            "as", "real", "AS connectivity map stand-in (~4.5k nodes)", _build_as
        ),
        TopologySpec(
            "r100", "generated", "GT-ITM flat random graph (100 nodes)", _build_r100
        ),
        TopologySpec(
            "ts1000",
            "generated",
            "GT-ITM transit-stub, sparse (~1000 nodes)",
            _build_ts1000,
        ),
        TopologySpec(
            "ts1008",
            "generated",
            "GT-ITM transit-stub, dense (~1000 nodes)",
            _build_ts1008,
        ),
        TopologySpec(
            "ti5000", "generated", "TIERS WAN/MAN/LAN (~5000 nodes)", _build_ti5000
        ),
        # Extras beyond Table 1 (kind "extra"): available by name but not
        # part of the paper's suite.
        TopologySpec(
            "waxman",
            "extra",
            "Waxman random graph (~400 nodes; the Chuang-Sirbu 'wax' family)",
            _build_waxman,
        ),
    )
}

#: The paper's Table-1 suite (extras like "waxman" are excluded).
TOPOLOGY_NAMES: Tuple[str, ...] = tuple(
    name for name, spec in _SPECS.items() if spec.kind != "extra"
)
EXTRA_TOPOLOGIES: Tuple[str, ...] = tuple(
    name for name, spec in _SPECS.items() if spec.kind == "extra"
)
GENERATED_TOPOLOGIES: Tuple[str, ...] = tuple(
    name for name, spec in _SPECS.items() if spec.kind == "generated"
)
REAL_TOPOLOGIES: Tuple[str, ...] = tuple(
    name for name, spec in _SPECS.items() if spec.kind == "real"
)


def build_topology(
    name: str, scale: float = 1.0, rng: RandomState = None
) -> Graph:
    """Build one of the Table-1 topologies by name.

    The result is always connected (generators bridge stray components)
    and deduplicated.  ``scale`` shrinks or grows the generated networks;
    the fixed ARPA map ignores it.

    Raises
    ------
    TopologyError
        For an unknown name.
    """
    key = name.lower()
    if key not in _SPECS:
        raise TopologyError(
            f"unknown topology {name!r}; available: "
            f"{', '.join((*TOPOLOGY_NAMES, *EXTRA_TOPOLOGIES))}"
        )
    graph = _SPECS[key].build(scale=scale, rng=ensure_rng(rng))
    # Belt and braces: experiments assume connectivity.
    lcc, _ = largest_connected_component(graph)
    return lcc if lcc.num_nodes < graph.num_nodes else graph


def build_suite(
    names: Optional[List[str]] = None,
    scale: float = 1.0,
    rng: RandomState = None,
) -> Dict[str, Graph]:
    """Build several named topologies with independent seeded streams."""
    from repro.utils.rng import spawn_rngs

    chosen = list(names) if names is not None else list(TOPOLOGY_NAMES)
    streams = spawn_rngs(rng, len(chosen))
    return {
        name: build_topology(name, scale=scale, rng=stream)
        for name, stream in zip(chosen, streams)
    }


def topology_spec(name: str) -> TopologySpec:
    """Look up the :class:`TopologySpec` for ``name``."""
    key = name.lower()
    if key not in _SPECS:
        raise TopologyError(
            f"unknown topology {name!r}; available: {', '.join(TOPOLOGY_NAMES)}"
        )
    return _SPECS[key]
