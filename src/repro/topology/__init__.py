"""Topology generators: the Table-1 suite, k-ary trees, and model families."""

from repro.topology.arpanet import ARPANET_NUM_NODES, arpanet, arpanet_edges
from repro.topology.gtitm import (
    TransitStubParams,
    pure_random_graph,
    transit_stub_graph,
)
from repro.topology.kary import KaryTree, kary_num_leaves, kary_num_nodes, kary_tree
from repro.topology.mbone import mbone_like_graph, random_geometric_graph
from repro.topology.powerlaw import (
    as_like_graph,
    internet_like_graph,
    preferential_attachment_graph,
)
from repro.topology.registry import (
    EXTRA_TOPOLOGIES,
    GENERATED_TOPOLOGIES,
    REAL_TOPOLOGIES,
    TOPOLOGY_NAMES,
    TopologySpec,
    build_suite,
    build_topology,
    topology_spec,
)
from repro.topology.tiers import TiersParams, tiers_graph
from repro.topology.waxman import waxman_edge_probabilities, waxman_graph

__all__ = [
    "ARPANET_NUM_NODES",
    "arpanet",
    "arpanet_edges",
    "TransitStubParams",
    "pure_random_graph",
    "transit_stub_graph",
    "KaryTree",
    "kary_num_leaves",
    "kary_num_nodes",
    "kary_tree",
    "mbone_like_graph",
    "random_geometric_graph",
    "as_like_graph",
    "internet_like_graph",
    "preferential_attachment_graph",
    "EXTRA_TOPOLOGIES",
    "GENERATED_TOPOLOGIES",
    "REAL_TOPOLOGIES",
    "TOPOLOGY_NAMES",
    "TopologySpec",
    "build_suite",
    "build_topology",
    "topology_spec",
    "TiersParams",
    "tiers_graph",
    "waxman_edge_probabilities",
    "waxman_graph",
]
