"""Shared helpers for topology generators."""

from __future__ import annotations

from typing import List

import numpy as np

from repro.exceptions import TopologyError
from repro.graph.builders import GraphBuilder
from repro.graph.core import Graph
from repro.graph.ops import connected_components
from repro.utils.rng import RandomState, ensure_rng

__all__ = ["connect_components", "euclidean_mst_edges"]


def connect_components(graph: Graph, rng: RandomState = None) -> Graph:
    """Return ``graph`` made connected by bridging its components.

    Every generator in this package must emit a connected topology (the
    paper's methodology samples receivers over the whole network).  Random
    models occasionally produce stragglers; rather than rejection-sampling
    whole graphs, we add one random edge from each smaller component to the
    largest one.  For the parameter ranges used here this perturbs the
    degree statistics by well under 1%.
    """
    components = connected_components(graph)
    if len(components) <= 1:
        return graph
    generator = ensure_rng(rng)
    giant = components[0]
    extra = []
    for component in components[1:]:
        u = int(generator.choice(component))
        v = int(generator.choice(giant))
        extra.append((u, v))
    return graph.with_extra_edges(extra)


def euclidean_mst_edges(points: np.ndarray) -> List[tuple]:
    """Minimum spanning tree of points in the plane (Prim, O(n²)).

    Used by the TIERS generator, which starts each network level from the
    Euclidean MST of randomly-placed nodes.  ``points`` is an ``(n, 2)``
    coordinate array; returns ``n − 1`` edges as ``(u, v)`` tuples.
    """
    pts = np.asarray(points, dtype=float)
    if pts.ndim != 2 or pts.shape[1] != 2:
        raise TopologyError(f"points must be (n, 2), got shape {pts.shape}")
    n = pts.shape[0]
    if n == 0:
        return []
    in_tree = np.zeros(n, dtype=bool)
    best_dist = np.full(n, np.inf)
    best_from = np.zeros(n, dtype=np.int64)
    in_tree[0] = True
    d0 = np.sum((pts - pts[0]) ** 2, axis=1)
    best_dist = np.where(in_tree, np.inf, d0)
    best_from[:] = 0
    edges = []
    for _ in range(n - 1):
        u = int(np.argmin(best_dist))
        if not np.isfinite(best_dist[u]):
            raise TopologyError("MST failed: non-finite candidate distance")
        edges.append((int(best_from[u]), u))
        in_tree[u] = True
        best_dist[u] = np.inf
        du = np.sum((pts - pts[u]) ** 2, axis=1)
        improve = (~in_tree) & (du < best_dist)
        best_dist[improve] = du[improve]
        best_from[improve] = u
    return edges
