"""Process-wide metrics primitives: counters, gauges, histograms.

These are the primitives that previously lived inside
:mod:`repro.serve.metrics`, promoted so every subsystem — the
Monte-Carlo runner, the forest cache, the figure drivers, the serving
layer — records into the same kind of instrument and renders through
the same Prometheus text exposition (format 0.0.4, the thing every
scraper and ``curl`` understands).

Model
-----
A :class:`MetricsRegistry` owns named metrics; each metric owns labeled
*children* (one time series per label-value combination).  Metrics are
get-or-create: re-registering an identical spec returns the existing
object (so module-level ``obs.counter(...)`` declarations survive
re-imports), while re-registering a conflicting spec raises
``ValueError`` instead of silently forking the series.

Worker processes each get their own registry copy; cross-process
aggregation is explicit — :meth:`MetricsRegistry.to_dict` in the
worker, :meth:`MetricsRegistry.merge` in the parent (counters and
histograms add, gauges last-write-wins).

The module-level :func:`default_registry` is the process-wide instance
the convenience constructors in :mod:`repro.obs` register into; the
serving layer appends its render to ``GET /metrics``.

Thread safety: every mutation and render holds the owning metric's
lock.  ``Counter.inc`` on the hot path costs one dict update under a
lock — a few hundred nanoseconds, cheap enough for per-lookup cache
counters (gated by ``benchmarks/obs_smoke.py``).
"""

from __future__ import annotations

import re
import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "default_registry",
    "metrics_delta",
]

#: Histogram upper bounds (seconds) shared by every latency histogram
#: in the tree.  Table lookups land in the first few buckets, fresh
#: Monte-Carlo runs in the last few — the spread is the point.
DEFAULT_BUCKETS = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _fmt(value: float) -> str:
    """Prometheus-friendly number rendering (no exponent surprises)."""
    if value == int(value):
        return str(int(value))
    return repr(float(value))


def _label_str(labelnames: Sequence[str], values: Sequence[str]) -> str:
    if not labelnames:
        return ""
    pairs = ",".join(
        f'{name}="{value}"' for name, value in zip(labelnames, values)
    )
    return "{" + pairs + "}"


class _Metric:
    """Shared plumbing for the three instrument kinds."""

    kind = "untyped"

    def __init__(
        self, name: str, help_text: str, labelnames: Sequence[str] = ()
    ) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        self.name = name
        self.help = help_text
        self.labelnames: Tuple[str, ...] = tuple(labelnames)
        self._lock = threading.Lock()

    def _key(self, labels: Dict[str, object]) -> Tuple[str, ...]:
        if not labels and not self.labelnames:
            return ()
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name} expects labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def _header(self) -> List[str]:
        return [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} {self.kind}",
        ]

    # Subclasses: render(), to_child_list(), merge_children().


class Counter(_Metric):
    """A monotonically increasing sum, optionally labeled.

    ``set_total`` exists for one pattern only: mirroring an absolute
    count owned elsewhere (a cache's internal hit tally) into the
    exposition, where the source of truth already guarantees
    monotonicity.  New code should ``inc``.
    """

    kind = "counter"

    def __init__(
        self, name: str, help_text: str, labelnames: Sequence[str] = ()
    ) -> None:
        super().__init__(name, help_text, labelnames)
        self._values: Dict[Tuple[str, ...], float] = {}
        if not self.labelnames:
            self._values[()] = 0.0

    def inc(self, amount: float = 1, **labels: object) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; inc({amount})")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def set_total(self, value: float, **labels: object) -> None:
        """Overwrite with an absolute total copied from the owner."""
        key = self._key(labels)
        with self._lock:
            self._values[key] = float(value)

    def value(self, **labels: object) -> float:
        key = self._key(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def render(self) -> List[str]:
        lines = self._header()
        with self._lock:
            children = sorted(self._values.items())
        for key, value in children:
            lines.append(
                f"{self.name}{_label_str(self.labelnames, key)} {_fmt(value)}"
            )
        return lines

    def to_child_list(self) -> List:
        with self._lock:
            return [[list(key), value] for key, value in sorted(self._values.items())]

    def merge_children(self, children: Iterable) -> None:
        with self._lock:
            for key, value in children:
                key = tuple(key)
                self._values[key] = self._values.get(key, 0.0) + float(value)


class Gauge(_Metric):
    """A value that can go anywhere (rates, ratios, sizes)."""

    kind = "gauge"

    def __init__(
        self, name: str, help_text: str, labelnames: Sequence[str] = ()
    ) -> None:
        super().__init__(name, help_text, labelnames)
        self._values: Dict[Tuple[str, ...], float] = {}
        if not self.labelnames:
            self._values[()] = 0.0

    def set(self, value: float, **labels: object) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1, **labels: object) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        key = self._key(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def render(self) -> List[str]:
        lines = self._header()
        with self._lock:
            children = sorted(self._values.items())
        for key, value in children:
            lines.append(
                f"{self.name}{_label_str(self.labelnames, key)} "
                f"{repr(float(value))}"
            )
        return lines

    def to_child_list(self) -> List:
        with self._lock:
            return [[list(key), value] for key, value in sorted(self._values.items())]

    def merge_children(self, children: Iterable) -> None:
        # Gauges are instantaneous readings: the merged-in value wins.
        with self._lock:
            for key, value in children:
                self._values[tuple(key)] = float(value)


class Histogram(_Metric):
    """Cumulative-bucket histogram (``_bucket{le=}``, ``_sum``, ``_count``)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        labelnames: Sequence[str] = (),
    ) -> None:
        if not buckets or list(buckets) != sorted(set(buckets)):
            raise ValueError("buckets must be a sorted, deduplicated sequence")
        super().__init__(name, help_text, labelnames)
        self.buckets: Tuple[float, ...] = tuple(float(b) for b in buckets)
        # child key -> [per-bucket counts + overflow slot, sum, count]
        self._children: Dict[Tuple[str, ...], List] = {}
        if not self.labelnames:
            self._children[()] = self._new_child()

    def _new_child(self) -> List:
        return [[0] * (len(self.buckets) + 1), 0.0, 0]

    def observe(self, value: float, **labels: object) -> None:
        import bisect

        key = self._key(labels)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._new_child()
                self._children[key] = child
            child[0][bisect.bisect_left(self.buckets, value)] += 1
            child[1] += float(value)
            child[2] += 1

    def count(self, **labels: object) -> int:
        key = self._key(labels)
        with self._lock:
            child = self._children.get(key)
            return child[2] if child is not None else 0

    def sum(self, **labels: object) -> float:
        key = self._key(labels)
        with self._lock:
            child = self._children.get(key)
            return child[1] if child is not None else 0.0

    def render(self) -> List[str]:
        lines = self._header()
        with self._lock:
            children = sorted(
                (key, [list(child[0]), child[1], child[2]])
                for key, child in self._children.items()
            )
        for key, (counts, total, n) in children:
            # The child's labels come first so the unlabeled form reads
            # `name_bucket{le="x"}` and the labeled one
            # `name_bucket{endpoint="e",le="x"}`.
            prefix_labels = ",".join(
                f'{name}="{value}"'
                for name, value in zip(self.labelnames, key)
            )
            sep = "," if prefix_labels else ""
            running = 0
            for bound, bucket in zip(self.buckets, counts):
                running += bucket
                lines.append(
                    f"{self.name}_bucket{{{prefix_labels}{sep}"
                    f'le="{_fmt(bound)}"}} {running}'
                )
            lines.append(
                f'{self.name}_bucket{{{prefix_labels}{sep}le="+Inf"}} {n}'
            )
            label_str = _label_str(self.labelnames, key)
            lines.append(f"{self.name}_sum{label_str} {repr(float(total))}")
            lines.append(f"{self.name}_count{label_str} {n}")
        return lines

    def to_child_list(self) -> List:
        with self._lock:
            return [
                [list(key), {"counts": list(child[0]), "sum": child[1], "count": child[2]}]
                for key, child in sorted(self._children.items())
            ]

    def merge_children(self, children: Iterable) -> None:
        with self._lock:
            for key, payload in children:
                key = tuple(key)
                child = self._children.get(key)
                if child is None:
                    child = self._new_child()
                    self._children[key] = child
                counts = payload["counts"]
                if len(counts) != len(child[0]):
                    raise ValueError(
                        f"{self.name}: merged histogram has "
                        f"{len(counts)} buckets, expected {len(child[0])}"
                    )
                for i, c in enumerate(counts):
                    child[0][i] += int(c)
                child[1] += float(payload["sum"])
                child[2] += int(payload["count"])


class MetricsRegistry:
    """A named, ordered collection of metrics with one text exposition.

    Registration order is render order, so callers that care about the
    document layout (the serving layer's pinned ``/metrics`` output)
    simply register in the order they want to expose.
    """

    def __init__(self) -> None:
        self._metrics: "Dict[str, _Metric]" = {}
        self._lock = threading.Lock()

    def _get_or_create(self, cls, name: str, *args, **kwargs) -> _Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is None:
                metric = cls(name, *args, **kwargs)
                self._metrics[name] = metric
                return metric
        created = cls(name, *args, **kwargs)
        if (
            type(existing) is not type(created)
            or existing.labelnames != created.labelnames
            or getattr(existing, "buckets", None) != getattr(created, "buckets", None)
        ):
            raise ValueError(
                f"metric {name!r} already registered with a different spec"
            )
        return existing

    def counter(
        self, name: str, help_text: str, labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._get_or_create(Counter, name, help_text, labelnames)

    def gauge(
        self, name: str, help_text: str, labelnames: Sequence[str] = ()
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help_text, labelnames)

    def histogram(
        self,
        name: str,
        help_text: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        labelnames: Sequence[str] = (),
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help_text, buckets, labelnames
        )

    def get(self, name: str) -> Optional[_Metric]:
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> List[str]:
        with self._lock:
            return list(self._metrics)

    def render(self) -> str:
        """The Prometheus text-format document (trailing newline).

        An empty registry renders the empty string so concatenating
        documents stays valid.
        """
        with self._lock:
            metrics = list(self._metrics.values())
        lines: List[str] = []
        for metric in metrics:
            lines.extend(metric.render())
        return "\n".join(lines) + "\n" if lines else ""

    def to_dict(self) -> Dict:
        """JSON-safe snapshot for artifacts and worker hand-back."""
        with self._lock:
            metrics = list(self._metrics.values())
        payload = []
        for metric in metrics:
            entry = {
                "name": metric.name,
                "kind": metric.kind,
                "help": metric.help,
                "labelnames": list(metric.labelnames),
                "children": metric.to_child_list(),
            }
            if isinstance(metric, Histogram):
                entry["buckets"] = list(metric.buckets)
            payload.append(entry)
        return {"version": 1, "metrics": payload}

    def merge(self, payload: Dict) -> None:
        """Fold a :meth:`to_dict` snapshot (e.g. from a worker) in.

        Counters and histograms add; gauges take the merged-in reading.
        Unknown metrics are created from the snapshot's spec.
        """
        if payload.get("version") != 1:
            raise ValueError(
                f"unsupported metrics payload version {payload.get('version')!r}"
            )
        kinds = {"counter": self.counter, "gauge": self.gauge}
        for entry in payload["metrics"]:
            kind = entry["kind"]
            if kind == "histogram":
                metric = self.histogram(
                    entry["name"],
                    entry["help"],
                    buckets=entry["buckets"],
                    labelnames=entry["labelnames"],
                )
            elif kind in kinds:
                metric = kinds[kind](
                    entry["name"], entry["help"], labelnames=entry["labelnames"]
                )
            else:
                raise ValueError(f"unknown metric kind {kind!r}")
            metric.merge_children(entry["children"])

    @classmethod
    def from_dict(cls, payload: Dict) -> "MetricsRegistry":
        registry = cls()
        registry.merge(payload)
        return registry

    def reset(self) -> None:
        """Drop every metric (tests and artifact isolation only)."""
        with self._lock:
            self._metrics.clear()


def metrics_delta(before: Dict, after: Dict) -> Dict:
    """The change between two :meth:`MetricsRegistry.to_dict` snapshots.

    Returns a payload in the same ``version: 1`` format, suitable for
    :meth:`MetricsRegistry.merge` — this is how persistent worker
    processes hand metrics back per task: a long-lived worker serves
    many tasks, so re-sending its cumulative totals each time would
    double-count in the parent.  Counters and histograms report the
    increase since ``before`` (children that went backwards — a registry
    reset between snapshots — are dropped rather than guessed at);
    gauges report their new reading when it changed.  Metrics with no
    changed children are omitted entirely.
    """
    if before.get("version") != 1 or after.get("version") != 1:
        raise ValueError("metrics_delta expects version-1 snapshots")
    prior_metrics = {entry["name"]: entry for entry in before["metrics"]}
    out: List[Dict] = []
    for entry in after["metrics"]:
        prior = prior_metrics.get(entry["name"])
        prior_children: Dict[Tuple[str, ...], object] = {}
        if prior is not None and prior["kind"] == entry["kind"]:
            prior_children = {
                tuple(key): value for key, value in prior["children"]
            }
        children: List = []
        for key, value in entry["children"]:
            seen = prior_children.get(tuple(key))
            if entry["kind"] == "counter":
                delta = float(value) - float(seen or 0.0)
                if delta > 0:
                    children.append([list(key), delta])
            elif entry["kind"] == "gauge":
                if seen is None or float(seen) != float(value):
                    children.append([list(key), value])
            else:  # histogram
                if seen is None:
                    if value["count"] > 0:
                        children.append([list(key), value])
                    continue
                count = int(value["count"]) - int(seen["count"])
                counts = [
                    int(c) - int(p)
                    for c, p in zip(value["counts"], seen["counts"])
                ]
                if count <= 0 or any(c < 0 for c in counts):
                    continue
                children.append(
                    [
                        list(key),
                        {
                            "counts": counts,
                            "sum": float(value["sum"]) - float(seen["sum"]),
                            "count": count,
                        },
                    ]
                )
        if children:
            out.append({**entry, "children": children})
    return {"version": 1, "metrics": out}


_DEFAULT_REGISTRY = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide registry behind :mod:`repro.obs`'s constructors."""
    return _DEFAULT_REGISTRY
