"""Opt-in per-span profiling, gated by ``REPRO_OBS_PROFILE``.

Two capture modes, chosen when a collector is armed (the environment is
read once, in :class:`~repro.obs.spans.TraceCollector`):

* ``REPRO_OBS_PROFILE=cprofile`` — run a :mod:`cProfile` profiler for
  the span's extent and attach the hottest functions (by cumulative
  time) to the span's ``profile`` payload.  CPython allows one active
  profiler per thread, so nested spans only profile the outermost one;
  inner spans record ``{"mode": "cprofile", "nested": true}``.
* any other truthy value (``1``, ``ns``, ...) — record the span's
  extent in wall nanoseconds via ``time.perf_counter_ns``, a
  cross-check for the collector clock (and the only way to see real
  time when tracing under a ``VirtualClock``).

With the variable unset/false nothing here runs at all: span entry
calls :func:`start_capture` once, gets ``None`` back, and skips the
teardown branch — the disarmed-overhead budget in
``benchmarks/obs_smoke.py`` covers the whole path.
"""

from __future__ import annotations

import cProfile
import pstats
import threading
import time
from typing import Any, Dict, Optional

__all__ = ["PROFILE_ENV", "resolve_profile_mode", "start_capture"]

#: Environment variable read at collector-arm time.
PROFILE_ENV = "REPRO_OBS_PROFILE"

#: How many functions the cProfile payload keeps (by cumulative time).
TOP_FUNCTIONS = 10

_FALSE_VALUES = {"", "0", "false", "no", "off"}

# One cProfile per thread: track whether an outer span already owns it.
_tl = threading.local()


def resolve_profile_mode(raw: Optional[str]) -> str:
    """Normalize an env/override value to ``""``, ``"ns"`` or ``"cprofile"``."""
    if raw is None:
        return ""
    value = raw.strip().lower()
    if value in _FALSE_VALUES:
        return ""
    if value in ("cprofile", "profile"):
        return "cprofile"
    return "ns"


class _NsCapture:
    __slots__ = ("_start",)

    def __init__(self) -> None:
        self._start = time.perf_counter_ns()

    def stop(self) -> Dict[str, Any]:
        return {"mode": "ns", "elapsed_ns": time.perf_counter_ns() - self._start}


class _NestedCapture:
    __slots__ = ()

    def stop(self) -> Dict[str, Any]:
        return {"mode": "cprofile", "nested": True}


class _CProfileCapture:
    __slots__ = ("_profiler",)

    def __init__(self) -> None:
        _tl.profiling = True
        self._profiler = cProfile.Profile()
        self._profiler.enable()

    def stop(self) -> Dict[str, Any]:
        self._profiler.disable()
        _tl.profiling = False
        stats = pstats.Stats(self._profiler)
        rows = []
        entries = sorted(
            stats.stats.items(),  # type: ignore[attr-defined]
            key=lambda item: item[1][3],  # cumulative time
            reverse=True,
        )
        for (filename, line, func), (cc, nc, tt, ct, _callers) in entries[
            :TOP_FUNCTIONS
        ]:
            rows.append(
                {
                    "function": f"{filename}:{line}({func})",
                    "calls": nc,
                    "tottime": tt,
                    "cumtime": ct,
                }
            )
        return {
            "mode": "cprofile",
            "total_calls": int(stats.total_calls),  # type: ignore[attr-defined]
            "top": rows,
        }


def start_capture(mode: str):
    """A capture object for one span, or ``None`` when profiling is off."""
    if not mode:
        return None
    if mode == "ns":
        return _NsCapture()
    if getattr(_tl, "profiling", False):
        return _NestedCapture()
    try:
        return _CProfileCapture()
    except ValueError:
        # Another profiler (pytest-cov, an outer tool) already owns the
        # thread; degrade to the timestamp capture rather than erroring.
        _tl.profiling = False
        return _NsCapture()
