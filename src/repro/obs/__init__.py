"""Unified observability: metrics, trace spans, and profiling hooks.

``repro.obs`` is the one place the tree reads clocks and counts events.
Three layers, importable from the package root:

* **Metrics** — :class:`Counter` / :class:`Gauge` / :class:`Histogram`
  children of a :class:`MetricsRegistry` (the primitives the serving
  layer's ``/metrics`` endpoint is built from).  The module-level
  :func:`counter` / :func:`gauge` / :func:`histogram` helpers register
  into the process-wide :func:`default_registry`, which
  ``GET /metrics`` appends to its own document — instrument a module
  and the series shows up on the wire with no serve-side change.
* **Spans** — ``with obs.span("runner.chunk", topology=...) as sp:``
  records structured timing when a :class:`TraceCollector` is armed
  (:func:`start_tracing` / :func:`tracing`) and costs one global load
  when not.  The collector clock is injectable, so
  :class:`repro.faults.clock.VirtualClock` makes traces deterministic.
* **Profiling** — ``REPRO_OBS_PROFILE=cprofile|1`` attaches per-span
  cProfile / ``perf_counter_ns`` captures (see :mod:`repro.obs.profile`).

Instrumented modules must not read ``time.*`` directly — lint rule
RR009 enforces that the obs seam is the only clock, the same way RR008
does for the serving layer's injected clock.

See ``docs/observability.md`` for the full tour, including the golden
regression suite that pins the paper's reproduced numbers.
"""

from __future__ import annotations

from typing import Sequence

from repro.obs.profile import PROFILE_ENV, resolve_profile_mode
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    metrics_delta,
)
from repro.obs.spans import (
    Span,
    TraceCollector,
    active_collector,
    span,
    start_tracing,
    stop_tracing,
    tracing,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "default_registry",
    "metrics_delta",
    "counter",
    "gauge",
    "histogram",
    "render_default",
    "Span",
    "TraceCollector",
    "span",
    "start_tracing",
    "stop_tracing",
    "active_collector",
    "tracing",
    "PROFILE_ENV",
    "resolve_profile_mode",
]


def counter(name: str, help_text: str, labelnames: Sequence[str] = ()) -> Counter:
    """Get-or-create a counter in the process-wide default registry."""
    return default_registry().counter(name, help_text, labelnames)


def gauge(name: str, help_text: str, labelnames: Sequence[str] = ()) -> Gauge:
    """Get-or-create a gauge in the process-wide default registry."""
    return default_registry().gauge(name, help_text, labelnames)


def histogram(
    name: str,
    help_text: str,
    buckets: Sequence[float] = DEFAULT_BUCKETS,
    labelnames: Sequence[str] = (),
) -> Histogram:
    """Get-or-create a histogram in the process-wide default registry."""
    return default_registry().histogram(name, help_text, buckets, labelnames)


def render_default() -> str:
    """Prometheus text for the process-wide registry ("" when empty)."""
    return default_registry().render()
