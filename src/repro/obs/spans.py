"""Structured trace spans with a VirtualClock-compatible timing seam.

A *span* brackets one unit of work — a sweep, a worker chunk, a figure
driver — with a name, free-form attributes, start/end timestamps, and
parent linkage (nesting follows the call stack per thread)::

    with obs.span("runner.chunk", topology="arpa", m=32) as sp:
        ...
        sp.set(samples=1280)

Arming
------
Like :class:`repro.faults.FaultPoint`, spans are **free when
disarmed**: with no collector active, :func:`span` returns a shared
no-op object — one module-global load and an ``is None`` test, gated
by ``benchmarks/obs_smoke.py``.  Tests and the CLI arm a
:class:`TraceCollector` via :func:`start_tracing` /
:func:`stop_tracing` or the :func:`tracing` context manager.

Clocks
------
The collector reads time through an injected callable returning
monotonic seconds — ``time.perf_counter`` by default,
:class:`repro.faults.clock.VirtualClock` in chaos tests, so traces
recorded under virtual time are bit-deterministic.

Processes
---------
Collection is per-process (worker processes run disarmed unless they
arm their own collector); every exported span carries its ``pid`` so
merged dumps stay attributable, and :meth:`TraceCollector.absorb`
folds a worker's exported list into the parent's.

Profiling
---------
``REPRO_OBS_PROFILE`` opts spans into per-span capture (see
:mod:`repro.obs.profile`): ``cprofile`` attaches a function-level
profile to every span, any other truthy value records wall
nanoseconds.  The environment is read when the collector is armed, so
production code paths carry no conditional at all when tracing is off.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterable, List, Optional

from repro.obs.profile import PROFILE_ENV, resolve_profile_mode, start_capture

__all__ = [
    "Span",
    "TraceCollector",
    "span",
    "start_tracing",
    "stop_tracing",
    "active_collector",
    "tracing",
]


class _NoopSpan:
    """The shared disarmed span: every operation is a no-op."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs: Any) -> None:
        pass

    @property
    def duration(self) -> Optional[float]:
        return None


_NOOP = _NoopSpan()


class Span:
    """One recorded unit of work (live only while a collector is armed)."""

    __slots__ = (
        "name",
        "attrs",
        "span_id",
        "parent_id",
        "start",
        "end",
        "pid",
        "thread",
        "profile",
        "_collector",
        "_capture",
    )

    def __init__(
        self, collector: "TraceCollector", name: str, attrs: Dict[str, Any]
    ) -> None:
        self.name = name
        self.attrs = attrs
        self.span_id: Optional[int] = None
        self.parent_id: Optional[int] = None
        self.start: Optional[float] = None
        self.end: Optional[float] = None
        self.pid = os.getpid()
        self.thread = threading.current_thread().name
        self.profile: Optional[Dict[str, Any]] = None
        self._collector = collector
        self._capture = None

    def set(self, **attrs: Any) -> None:
        """Attach/overwrite attributes (usable during and after the block)."""
        self.attrs.update(attrs)

    @property
    def duration(self) -> Optional[float]:
        if self.start is None or self.end is None:
            return None
        return self.end - self.start

    def __enter__(self) -> "Span":
        collector = self._collector
        self.span_id = collector._next_id()
        stack = collector._stack()
        if stack:
            self.parent_id = stack[-1].span_id
        stack.append(self)
        self._capture = start_capture(collector.profile_mode)
        self.start = collector.clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        collector = self._collector
        self.end = collector.clock()
        if self._capture is not None:
            self.profile = self._capture.stop()
            self._capture = None
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        stack = collector._stack()
        # Robust to exotic unwinding: drop us wherever we sit.
        if self in stack:
            while stack and stack[-1] is not self:
                stack.pop()
            if stack:
                stack.pop()
        collector._record(self)
        return False

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "attrs": dict(self.attrs),
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "pid": self.pid,
            "thread": self.thread,
        }
        if self.profile is not None:
            payload["profile"] = self.profile
        return payload


class TraceCollector:
    """Thread-safe container for finished spans.

    Parameters
    ----------
    clock:
        Callable returning monotonic seconds; defaults to
        ``time.perf_counter``.  Pass a
        :class:`~repro.faults.clock.VirtualClock` for deterministic
        traces.
    profile:
        Profiling mode override; ``None`` reads ``REPRO_OBS_PROFILE``
        once, at construction.
    """

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        profile: Optional[str] = None,
    ) -> None:
        self.clock: Callable[[], float] = clock or time.perf_counter
        if profile is None:
            profile = os.environ.get(PROFILE_ENV, "")
        self.profile_mode = resolve_profile_mode(profile)
        self._lock = threading.Lock()
        self._spans: List[Dict[str, Any]] = []
        self._next = 0
        self._local = threading.local()

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _next_id(self) -> int:
        with self._lock:
            self._next += 1
            return self._next

    def _record(self, finished: Span) -> None:
        payload = finished.to_dict()
        with self._lock:
            self._spans.append(payload)

    def span(self, name: str, attrs: Optional[Dict[str, Any]] = None) -> Span:
        return Span(self, name, dict(attrs or {}))

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def export(self) -> List[Dict[str, Any]]:
        """Finished spans, in completion order (JSON-safe dicts)."""
        with self._lock:
            return [dict(payload) for payload in self._spans]

    def absorb(self, spans: Iterable[Dict[str, Any]]) -> None:
        """Fold spans exported elsewhere (another process) into this one."""
        incoming = [dict(payload) for payload in spans]
        with self._lock:
            self._spans.extend(incoming)

    def dump_json(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.export(), handle, indent=2, sort_keys=True)
            handle.write("\n")


#: The armed collector, or None.  Read on every span() call, so keep it
#: a plain module global (one LOAD_GLOBAL on the disarmed fast path).
_ACTIVE: Optional[TraceCollector] = None


def span(name: str, **attrs: Any):
    """A context-manager span; free when no collector is armed."""
    collector = _ACTIVE
    if collector is None:
        return _NOOP
    return collector.span(name, attrs)


def start_tracing(
    clock: Optional[Callable[[], float]] = None,
    profile: Optional[str] = None,
) -> TraceCollector:
    """Arm a fresh collector; exactly one may be active per process."""
    global _ACTIVE
    if _ACTIVE is not None:
        raise RuntimeError(
            "a TraceCollector is already active; stop_tracing() first"
        )
    _ACTIVE = TraceCollector(clock=clock, profile=profile)
    return _ACTIVE


def stop_tracing() -> Optional[TraceCollector]:
    """Disarm and return the active collector (None when disarmed)."""
    global _ACTIVE
    collector = _ACTIVE
    _ACTIVE = None
    return collector


def active_collector() -> Optional[TraceCollector]:
    return _ACTIVE


@contextmanager
def tracing(
    clock: Optional[Callable[[], float]] = None,
    profile: Optional[str] = None,
):
    """``with obs.tracing() as collector:`` — arm for the block only."""
    collector = start_tracing(clock=clock, profile=profile)
    try:
        yield collector
    finally:
        stop_tracing()
