"""Averaging over topology *instances* — the paper's footnote-4 variance.

Footnote 4: "Note that we use a slightly different methodology than in
[Chuang-Sirbu]; there, for the networks created by network generators,
there are also N_network random creations of each such network."  In
other words Chuang & Sirbu averaged over fresh generator draws while
Phillips et al. measure one instance per generated topology.

:func:`measure_over_instances` implements the Chuang-Sirbu variant —
regenerate the topology ``num_instances`` times, run the standard sweep
on each, and aggregate — and reports the *between-instance* spread, so
users can check the footnote's implicit claim: instance-to-instance
variance is small enough that the two methodologies agree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ExperimentError
from repro.experiments.config import MonteCarloConfig, QUICK_MONTE_CARLO
from repro.experiments.results import SweepMeasurement
from repro.experiments.runner import measure_sweep
from repro.topology.registry import build_topology
from repro.utils.rng import RandomState, ensure_rng, spawn_rngs

__all__ = ["InstanceAggregate", "measure_over_instances"]


@dataclass(frozen=True)
class InstanceAggregate:
    """Sweep results aggregated over independent topology instances.

    Attributes
    ----------
    topology:
        Topology name.
    sizes:
        The swept group sizes.
    mean_ratio:
        Mean ``L/ū`` per size, across instances (the Chuang-Sirbu
        methodology's headline series).
    between_instance_std:
        Standard deviation of the per-instance mean ratios — the
        variance footnote 4 is about.
    per_instance:
        The individual instance measurements.
    """

    topology: str
    sizes: Tuple[int, ...]
    mean_ratio: Tuple[float, ...]
    between_instance_std: Tuple[float, ...]
    per_instance: Tuple[SweepMeasurement, ...]

    @property
    def num_instances(self) -> int:
        """Number of topology instances aggregated."""
        return len(self.per_instance)

    def max_relative_spread(self) -> float:
        """Worst ``std/mean`` across sizes — small means footnote 4's
        methodological difference is immaterial."""
        means = np.asarray(self.mean_ratio)
        stds = np.asarray(self.between_instance_std)
        return float(np.max(stds / means))

    def fit_exponent_spread(self) -> Tuple[float, float]:
        """(mean, std) of the fitted exponent across instances."""
        slopes = [m.fit_exponent().slope for m in self.per_instance]
        return float(np.mean(slopes)), float(np.std(slopes))


def measure_over_instances(
    topology: str,
    sizes: Sequence[int],
    num_instances: int = 5,
    scale: float = 0.3,
    mode: str = "distinct",
    config: Optional[MonteCarloConfig] = None,
    rng: RandomState = None,
) -> InstanceAggregate:
    """Run the sweep on ``num_instances`` fresh generator draws.

    Each instance gets independent streams for both generation and
    measurement.  Fixed topologies (``arpa``) are rejected — there is
    nothing to vary.
    """
    if num_instances < 2:
        raise ExperimentError(
            f"need at least 2 instances to measure spread, got {num_instances}"
        )
    if topology.lower() == "arpa":
        raise ExperimentError(
            "the ARPA map is a fixed artifact; instance averaging applies "
            "only to generated topologies"
        )
    config = config or QUICK_MONTE_CARLO
    streams = spawn_rngs(ensure_rng(rng), 2 * num_instances)

    measurements: List[SweepMeasurement] = []
    for i in range(num_instances):
        graph = build_topology(topology, scale=scale, rng=streams[2 * i])
        measurements.append(
            measure_sweep(
                graph,
                sizes,
                mode=mode,
                config=config,
                topology=f"{topology}#{i}",
                rng=streams[2 * i + 1],
            )
        )

    stacked = np.asarray([m.mean_ratio for m in measurements])
    return InstanceAggregate(
        topology=topology,
        sizes=tuple(int(s) for s in sizes),
        mean_ratio=tuple(float(v) for v in stacked.mean(axis=0)),
        between_instance_std=tuple(float(v) for v in stacked.std(axis=0)),
        per_instance=tuple(measurements),
    )
