"""The Monte-Carlo measurement engine (the paper's Section-2 methodology).

For each of ``Nsource`` random sources (drawn with replacement): run one
BFS; then for each swept group size and each of ``Nrcvr`` receiver sets,
draw the receivers, count the delivery-tree links ``L`` and the average
unicast path ``ū`` of the sample, and record the ratio ``L/ū``.  The
reported value per group size is the average over the samples that
produced a well-defined ratio (a sample whose receivers all sit on the
source has ``ū = 0`` and is excluded from the divisor as well as the
numerator — possible only when the source site is eligible).

Both receiver conventions are supported: ``mode="distinct"`` (the
Chuang-Sirbu ``L(m)``) and ``mode="replacement"`` (the analytical
``L̂(n)``).  Each source uses its own spawned RNG stream, so results do
not depend on iteration order and sub-sweeps are reproducible.

Execution engines
-----------------
The hot path is batched: per (source, size) the runner draws the whole
``Nrcvr × size`` receiver matrix in O(1) RNG calls
(:mod:`repro.multicast.sampling`), then counts the source's entire sweep
— every size, every receiver set — in one flat vectorized ancestor walk
(:meth:`repro.multicast.tree.MulticastTreeCounter.count_trees_and_unicast`).
``engine="scalar"`` keeps the original one-sample-at-a-time loop as a
reference; both engines consume identical random streams and produce
**bit-identical** measurements (enforced by the tier-1 suite), so the
scalar path exists purely for cross-checking and benchmarking.

Setting ``MonteCarloConfig.num_workers > 1`` fans the
(source × receiver-set) grid out over the process-wide persistent pool
(:mod:`repro.experiments.pool`): workers attach once to the topology
via shared memory, tasks return raw integer counts, and the parent
stitches them into the per-source arrays the serial path computes
before running the identical float reduction in source order — so the
result is bit-identical for any worker count (``num_workers=0`` means
one worker per CPU).

BFS forests for ``tie_break="first"`` are served from the process-wide
:class:`repro.graph.forest_cache.ForestCache`, keyed by graph content —
figure drivers that rebuild the same topology reuse each other's
forests.  ``tie_break="random"`` consumes the per-source stream and is
never cached.
"""

from __future__ import annotations

import logging
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro import obs
from repro.exceptions import ExperimentError
from repro.graph.core import Graph
from repro.graph.distance_store import (
    DistanceStore,
    DistanceStoreDescriptor,
    attach_distance_store,
)
from repro.graph.forest_cache import default_forest_cache
from repro.graph.ops import require_connected
from repro.graph.paths import bfs
from repro.multicast.sampling import (
    sample_distinct_receivers,
    sample_distinct_receivers_sweep,
    sample_receivers_with_replacement,
    sample_receivers_with_replacement_sweep,
)
from repro.multicast import builders
from repro.multicast.tree import MulticastTreeCounter
from repro.experiments.config import MonteCarloConfig
from repro.experiments.pool import resolve_workers, run_sweep_chunks
from repro.experiments.results import SweepMeasurement
from repro.utils.rng import RandomState, ensure_rng

__all__ = ["measure_sweep", "measure_single_source_sweep"]

logger = logging.getLogger("repro.experiments")

_MODES = ("distinct", "replacement")
_ENGINES = ("batched", "scalar")

_OBS_SWEEPS = obs.counter(
    "repro_runner_sweeps_total",
    "Monte-Carlo sweeps completed.",
    labelnames=("mode", "engine"),
)
_OBS_SAMPLES = obs.counter(
    "repro_runner_samples_total",
    "Receiver-set samples measured (sources x receiver sets x sizes).",
)
_OBS_CHUNKS = obs.counter(
    "repro_runner_chunks_total",
    "Source chunks by execution path: worker processes, the serial "
    "fallback, or an inline recompute after a worker died.",
    labelnames=("path",),
)
_OBS_RATE = obs.gauge(
    "repro_runner_samples_per_second",
    "Throughput of the most recently traced sweep; only updated while "
    "a trace collector is armed (spans own the clock — see RR009).",
)


def _check_mode(mode: str) -> None:
    if mode not in _MODES:
        raise ExperimentError(f"mode must be one of {_MODES}, got {mode!r}")


def _check_engine(engine: str) -> None:
    if engine not in _ENGINES:
        raise ExperimentError(
            f"engine must be one of {_ENGINES}, got {engine!r}"
        )


def _spawn_seed_sequences(
    master: np.random.Generator, count: int
) -> List[np.random.SeedSequence]:
    """Children of the master's seed sequence (one per source).

    SeedSequences — unlike live generators — are cheap to ship to worker
    processes and reconstruct the exact per-source streams there.
    """
    seed_seq = master.bit_generator.seed_seq  # type: ignore[attr-defined]
    if seed_seq is None:  # pragma: no cover - legacy bit generators
        seed_seq = np.random.SeedSequence(int(master.integers(2**63)))
    return list(seed_seq.spawn(count))


def _count_samples(
    counter: MulticastTreeCounter,
    source_rng: np.random.Generator,
    num_nodes: int,
    size_list: Sequence[int],
    num_receiver_sets: int,
    mode: str,
    exclude: Optional[int],
    engine: str,
    row_slice: Optional[Tuple[int, int]] = None,
    algorithm: str = "spt",
    graph: Optional[Graph] = None,
) -> Tuple[List[np.ndarray], List[np.ndarray]]:
    """Per-size links and unicast totals for one source's whole sweep.

    Both engines consume the same random stream (the batched samplers
    are stream-compatible with repeated scalar draws, and counting draws
    nothing), so the returned integer arrays are identical between them.
    The batched engine counts every size of the sweep in one flat
    vectorized walk; the scalar engine is the seed's sample-at-a-time
    reference loop.

    ``row_slice=(lo, hi)`` restricts the *counted* receiver-set rows
    while the full grid is still drawn — the stream a source consumes
    never depends on the slice, so any row partition of a source
    re-assembles into exactly the full-row arrays (how the worker pool
    splits one source across workers).

    A non-``"spt"`` ``algorithm`` (a :mod:`repro.multicast.builders`
    registry key; requires ``graph`` and the batched engine) draws the
    *identical* receiver stream and swaps only the counting step: links
    come from the named builder, while the unicast baseline ``ū`` stays
    the SPT distances — the paper's denominator is the unicast path,
    whatever tree carries the multicast copies.  Builders consume no
    randomness, so worker-count determinism is preserved as-is.
    """
    lo, hi = (0, num_receiver_sets) if row_slice is None else row_slice
    if engine == "batched":
        if mode == "distinct":
            matrices = sample_distinct_receivers_sweep(
                num_nodes, size_list, num_receiver_sets,
                source=exclude, rng=source_rng,
            )
        else:
            matrices = sample_receivers_with_replacement_sweep(
                num_nodes, size_list, num_receiver_sets,
                source=exclude, rng=source_rng,
            )
        if algorithm != "spt":
            sliced = [matrix[lo:hi] for matrix in matrices]
            links_list = [
                builders.count_tree_links(
                    algorithm, graph, counter.source, matrix,
                    forest=counter.forest,
                )
                for matrix in sliced
            ]
            totals_list = [
                counter.unicast_totals_batch(matrix) for matrix in sliced
            ]
            return links_list, totals_list
        return counter.count_trees_and_unicast(
            [matrix[lo:hi] for matrix in matrices]
        )
    links_list = []
    totals_list = []
    for size in size_list:
        links = np.empty(hi - lo, dtype=np.int64)
        totals = np.empty(hi - lo, dtype=np.int64)
        for i in range(num_receiver_sets):
            if mode == "distinct":
                receivers = sample_distinct_receivers(
                    num_nodes, size, source=exclude, rng=source_rng
                )
            else:
                receivers = sample_receivers_with_replacement(
                    num_nodes, size, source=exclude, rng=source_rng
                )
            if lo <= i < hi:
                links[i - lo] = counter.tree_size(receivers)
                totals[i - lo] = counter.unicast_total(receivers)
        links_list.append(links)
        totals_list.append(totals)
    return links_list, totals_list


#: Process-local distance-store attachments, keyed by (path, generation).
#: Workers receive a :class:`DistanceStoreDescriptor` per task (the mmap
#: itself never crosses the process boundary) and re-attach once here.
_STORE_CACHE: Dict[Tuple[str, int], DistanceStore] = {}


def _resolve_store(
    store: Optional[Union[DistanceStore, DistanceStoreDescriptor]],
) -> Optional[DistanceStore]:
    if store is None or isinstance(store, DistanceStore):
        return store
    key = (store.path, store.generation)
    attached = _STORE_CACHE.get(key)
    if attached is None:
        attached = attach_distance_store(store)
        _STORE_CACHE[key] = attached
    return attached


def _source_forest(
    graph: Graph,
    source: int,
    tie_break: str,
    source_rng: np.random.Generator,
    use_cache: bool,
):
    if tie_break == "random":
        # The random tie-break draws from the per-source stream; caching
        # would either skip those draws or key on transient state.
        return bfs(graph, source, tie_break="random", rng=source_rng)
    if use_cache:
        return default_forest_cache().forest(graph, source, tie_break="first")
    return bfs(graph, source, tie_break="first")


def _source_counts(
    graph: Graph,
    child_seed: np.random.SeedSequence,
    size_list: Sequence[int],
    mode: str,
    num_receiver_sets: int,
    tie_break: str,
    exclude_source_site: bool,
    engine: str,
    use_cache: bool,
    algorithm: str = "spt",
    distance_store: Optional[
        Union[DistanceStore, DistanceStoreDescriptor]
    ] = None,
    row_slice: Optional[Tuple[int, int]] = None,
) -> Tuple[List[np.ndarray], List[np.ndarray]]:
    """Raw per-size (links, unicast-total) counts for one source.

    This is the integer half of a source's contribution — what worker
    processes ship back.  Keeping the hand-off integral is what makes
    grid chunking bit-identical: float summation is non-associative, so
    the parent must see the same arrays the serial path feeds to
    :func:`_partials_from_counts`, however the rows were split.

    With a ``distance_store`` the source's forest comes from the mmap'd
    rows instead of a fresh BFS; on a *complete* store the source draw
    consumes the stream identically to the storeless path, so the whole
    sweep stays bit-identical (see :meth:`DistanceStore.pick_source`).
    """
    source_rng = ensure_rng(child_seed)
    store = _resolve_store(distance_store)
    if store is not None:
        source = store.pick_source(source_rng)
        forest = store.forest(source)
    else:
        source = int(source_rng.integers(0, graph.num_nodes))
        forest = _source_forest(graph, source, tie_break, source_rng, use_cache)
    counter = MulticastTreeCounter(forest)
    exclude = source if exclude_source_site else None
    return _count_samples(
        counter, source_rng, graph.num_nodes, size_list,
        num_receiver_sets, mode, exclude, engine, row_slice,
        algorithm, graph,
    )


def _partials_from_counts(
    size_list: Sequence[int],
    links_list: Sequence[np.ndarray],
    totals_list: Sequence[np.ndarray],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """The float half: per-size partial sums from one source's counts.

    Returns ``(ratio_sum, tree_sum, tree_sq_sum, path_sum, count)``
    arrays over the swept sizes; ``count`` holds the number of samples
    whose ratio was well-defined (``ū > 0``).
    """
    num_sizes = len(size_list)
    ratio_sum = np.zeros(num_sizes)
    tree_sum = np.zeros(num_sizes)
    tree_sq_sum = np.zeros(num_sizes)
    path_sum = np.zeros(num_sizes)
    count = np.zeros(num_sizes, dtype=np.int64)
    for size_idx, size in enumerate(size_list):
        links = links_list[size_idx]
        mean_path = totals_list[size_idx] / size
        valid = mean_path > 0
        kept = links[valid].astype(float)
        count[size_idx] = int(np.count_nonzero(valid))
        ratio_sum[size_idx] = float(np.sum(kept / mean_path[valid]))
        tree_sum[size_idx] = float(kept.sum())
        tree_sq_sum[size_idx] = float(np.sum(kept * kept))
        path_sum[size_idx] = float(mean_path[valid].sum())
    return ratio_sum, tree_sum, tree_sq_sum, path_sum, count


def _source_partials(
    graph: Graph,
    child_seed: np.random.SeedSequence,
    size_list: Sequence[int],
    mode: str,
    num_receiver_sets: int,
    tie_break: str,
    exclude_source_site: bool,
    engine: str,
    use_cache: bool,
    algorithm: str = "spt",
    distance_store: Optional[
        Union[DistanceStore, DistanceStoreDescriptor]
    ] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Per-size partial sums contributed by one source (serial path)."""
    links_list, totals_list = _source_counts(
        graph, child_seed, size_list, mode, num_receiver_sets,
        tie_break, exclude_source_site, engine, use_cache, algorithm,
        distance_store,
    )
    return _partials_from_counts(size_list, links_list, totals_list)


def measure_sweep(
    graph: Graph,
    sizes: Sequence[int],
    mode: str = "distinct",
    config: Optional[MonteCarloConfig] = None,
    topology: str = "graph",
    exclude_source_site: bool = True,
    rng: RandomState = None,
    engine: str = "batched",
    use_cache: bool = True,
    distance_store: Optional[
        Union[DistanceStore, DistanceStoreDescriptor]
    ] = None,
    algorithm: str = "spt",
) -> SweepMeasurement:
    """Measure averaged tree sizes over a sweep of group sizes.

    Parameters
    ----------
    graph:
        A connected topology.
    sizes:
        Group sizes (m for ``"distinct"``, n for ``"replacement"``),
        strictly positive.  For ``"distinct"`` no size may exceed the
        eligible-site count.
    mode:
        Receiver convention (see module docs).
    config:
        Monte-Carlo settings; defaults to :class:`MonteCarloConfig`'s
        paper values.  ``config.num_workers`` selects process
        parallelism over the persistent pool (0 = one worker per CPU;
        bit-identical for every worker count).
    topology:
        Name recorded in the result.
    exclude_source_site:
        Keep receivers off the source node (the default convention; the
        source-site ablation flips this).
    rng:
        Overrides ``config.seed`` when given.
    engine:
        ``"batched"`` (vectorized hot path, the default) or
        ``"scalar"`` (the per-sample reference loop).  Both produce
        bit-identical measurements.
    use_cache:
        Serve ``tie_break="first"`` forests from the process-wide
        :class:`~repro.graph.forest_cache.ForestCache`.
    distance_store:
        A :class:`~repro.graph.distance_store.DistanceStore` (or its
        descriptor) holding precomputed BFS rows for this graph.
        Sources are drawn from the store's rows instead of running BFS
        per source — on a *complete* store (one row per node) the draws
        and results are bit-identical to the storeless path; a partial
        store samples uniformly over its rows (a different, documented
        stream).  Requires ``tie_break="first"`` (the stored parents
        are first-parent forests).
    algorithm:
        Tree-construction discipline, a
        :mod:`repro.multicast.builders` registry key (default
        ``"spt"``, the paper's shortest-path trees — bit-identical to
        every pre-existing result).  Other algorithms draw the same
        receiver stream and count links through the registered builder
        instead; they require the batched engine, and the unicast
        baseline stays the SPT distances (see :func:`_count_samples`).
    """
    _check_mode(mode)
    _check_engine(engine)
    builders.builder_spec(algorithm)  # unknown names fail fast
    if algorithm != "spt" and engine != "batched":
        raise ExperimentError(
            "non-SPT algorithms are measured through the batched "
            f"engine only, got engine={engine!r}"
        )
    config = config or MonteCarloConfig()
    config.validate()
    require_connected(graph, "measure_sweep")
    store = _resolve_store(distance_store)
    if store is not None:
        if config.tie_break != "first":
            raise ExperimentError(
                "distance_store rows are first-parent forests; "
                f"tie_break={config.tie_break!r} cannot be served from them"
            )
        if not store.has_parents:
            raise ExperimentError(
                "distance_store was built without parent rows; tree "
                "counting needs include_parents=True"
            )
        store.check_graph(graph)

    size_list = [int(s) for s in sizes]
    if not size_list or min(size_list) < 1:
        raise ExperimentError("sizes must be positive and non-empty")
    eligible = graph.num_nodes - (1 if exclude_source_site else 0)
    if mode == "distinct" and max(size_list) > eligible:
        raise ExperimentError(
            f"distinct sweep asks for {max(size_list)} receivers but only "
            f"{eligible} sites are eligible"
        )

    master = ensure_rng(rng if rng is not None else config.seed)
    children = _spawn_seed_sequences(master, config.num_sources)

    # 0 = auto (one worker per CPU); the grid bounds useful parallelism.
    num_workers = min(
        resolve_workers(config.num_workers),
        config.num_sources * config.num_receiver_sets,
    )
    # Workers get the picklable descriptor (they re-attach the mmap
    # once, in _resolve_store); the serial path keeps the live store.
    store_token = (
        store.descriptor if store is not None and num_workers > 1 else store
    )
    task_args = (
        size_list, mode, config.num_receiver_sets, config.tie_break,
        exclude_source_site, engine, use_cache, algorithm, store_token,
    )
    span_attrs = dict(
        topology=topology,
        mode=mode,
        engine=engine,
        workers=num_workers,
        workers_requested=config.num_workers,
        sources=config.num_sources,
        sizes=len(size_list),
    )
    # Only tagged when non-default, keeping pre-existing traces
    # byte-identical for every "spt" sweep.
    if algorithm != "spt":
        span_attrs["algorithm"] = algorithm
    sweep_span = obs.span("runner.sweep", **span_attrs)
    with sweep_span:
        if num_workers > 1:
            source_counts = run_sweep_chunks(
                graph, children, config.num_receiver_sets, num_workers,
                _source_counts, task_args,
            )
            partials = [
                _partials_from_counts(size_list, links_list, totals_list)
                for links_list, totals_list in source_counts
            ]
        else:
            with obs.span("runner.chunk", chunk=0, sources=len(children)):
                partials = [
                    _source_partials(graph, child, *task_args)
                    for child in children
                ]
            _OBS_CHUNKS.inc(path="serial")
        total_samples = (
            config.num_sources * config.num_receiver_sets * len(size_list)
        )
        _OBS_SWEEPS.inc(mode=mode, engine=engine)
        _OBS_SAMPLES.inc(total_samples)
        sweep_span.set(samples=total_samples)
    # Only spans may read the clock (RR009), so throughput exists only
    # when a collector is armed: a disarmed span has no duration.
    elapsed = sweep_span.duration
    if elapsed:
        _OBS_RATE.set(total_samples / elapsed)

    num_sizes = len(size_list)
    ratio_sum = np.zeros(num_sizes)
    tree_sum = np.zeros(num_sizes)
    tree_sq_sum = np.zeros(num_sizes)
    path_sum = np.zeros(num_sizes)
    counts = np.zeros(num_sizes, dtype=np.int64)
    # Reduce in source order: bit-identical however the work was laid out.
    for ratio, tree, tree_sq, path, count in partials:
        ratio_sum += ratio
        tree_sum += tree
        tree_sq_sum += tree_sq
        path_sum += path
        counts += count

    divisor = np.maximum(counts, 1)  # all-skipped sizes report 0.0
    mean_tree = tree_sum / divisor
    variance = np.maximum(tree_sq_sum / divisor - mean_tree**2, 0.0)
    return SweepMeasurement(
        topology=topology,
        mode=mode,
        sizes=tuple(size_list),
        mean_ratio=tuple(float(v) for v in ratio_sum / divisor),
        mean_tree_size=tuple(float(v) for v in mean_tree),
        mean_unicast_path=tuple(float(v) for v in path_sum / divisor),
        std_tree_size=tuple(float(v) for v in np.sqrt(variance)),
        num_samples=config.num_sources * config.num_receiver_sets,
        num_nodes=graph.num_nodes,
        algorithm=algorithm,
    )


def measure_single_source_sweep(
    graph: Graph,
    source: int,
    sizes: Sequence[int],
    mode: str = "replacement",
    num_receiver_sets: int = 100,
    tie_break: str = "first",
    exclude_source_site: bool = True,
    rng: RandomState = None,
    engine: str = "batched",
    use_cache: bool = True,
) -> SweepMeasurement:
    """Like :func:`measure_sweep` but for one fixed source.

    Used by the k-ary-tree validations (the source is the root by
    construction) and by per-source diagnostics.  Tree-size statistics
    average over every sample; the ratio averages over the samples where
    it is defined (``ū > 0``).
    """
    _check_mode(mode)
    _check_engine(engine)
    require_connected(graph, "measure_single_source_sweep")
    source = graph.check_node(source)
    config = MonteCarloConfig(
        num_sources=1,
        num_receiver_sets=num_receiver_sets,
        tie_break=tie_break,
        seed=None,
    )
    config.validate()
    generator = ensure_rng(rng)
    size_list = [int(s) for s in sizes]
    if not size_list or min(size_list) < 1:
        raise ExperimentError("sizes must be positive and non-empty")

    forest = _source_forest(graph, source, tie_break, generator, use_cache)
    counter = MulticastTreeCounter(forest)
    exclude = source if exclude_source_site else None

    ratios, trees, paths, stds = [], [], [], []
    with obs.span(
        "runner.single_source",
        source=source,
        mode=mode,
        engine=engine,
        sizes=len(size_list),
    ):
        links_list, totals_list = _count_samples(
            counter, generator, graph.num_nodes, size_list,
            num_receiver_sets, mode, exclude, engine,
        )
    _OBS_SAMPLES.inc(num_receiver_sets * len(size_list))
    for size_idx, size in enumerate(size_list):
        links = links_list[size_idx]
        mean_path = totals_list[size_idx] / size
        valid = mean_path > 0
        num_valid = int(np.count_nonzero(valid))
        ratio_total = float(np.sum(links[valid] / mean_path[valid]))
        ratios.append(ratio_total / num_valid if num_valid else 0.0)
        trees.append(float(links.mean()))
        paths.append(float(mean_path.mean()))
        stds.append(float(links.std(ddof=0)))

    return SweepMeasurement(
        topology=f"source-{source}",
        mode=mode,
        sizes=tuple(size_list),
        mean_ratio=tuple(ratios),
        mean_tree_size=tuple(trees),
        mean_unicast_path=tuple(paths),
        std_tree_size=tuple(stds),
        num_samples=num_receiver_sets,
        num_nodes=graph.num_nodes,
    )
