"""The Monte-Carlo measurement engine (the paper's Section-2 methodology).

For each of ``Nsource`` random sources (drawn with replacement): run one
BFS; then for each swept group size and each of ``Nrcvr`` receiver sets,
draw the receivers, count the delivery-tree links ``L`` and the average
unicast path ``ū`` of the sample, and record the ratio ``L/ū``.  The
reported value per group size is the average over all
``Nsource × Nrcvr`` samples.

Both receiver conventions are supported: ``mode="distinct"`` (the
Chuang-Sirbu ``L(m)``) and ``mode="replacement"`` (the analytical
``L̂(n)``).  Each (source, set) cell uses its own spawned RNG stream, so
results do not depend on iteration order and sub-sweeps are reproducible.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ExperimentError
from repro.graph.core import Graph
from repro.graph.ops import require_connected
from repro.graph.paths import bfs
from repro.multicast.sampling import (
    sample_distinct_receivers,
    sample_receivers_with_replacement,
)
from repro.multicast.tree import MulticastTreeCounter
from repro.experiments.config import MonteCarloConfig
from repro.experiments.results import SweepMeasurement
from repro.utils.rng import RandomState, ensure_rng, spawn_rngs

__all__ = ["measure_sweep", "measure_single_source_sweep"]

_MODES = ("distinct", "replacement")


def _check_mode(mode: str) -> None:
    if mode not in _MODES:
        raise ExperimentError(f"mode must be one of {_MODES}, got {mode!r}")


def measure_sweep(
    graph: Graph,
    sizes: Sequence[int],
    mode: str = "distinct",
    config: Optional[MonteCarloConfig] = None,
    topology: str = "graph",
    exclude_source_site: bool = True,
    rng: RandomState = None,
) -> SweepMeasurement:
    """Measure averaged tree sizes over a sweep of group sizes.

    Parameters
    ----------
    graph:
        A connected topology.
    sizes:
        Group sizes (m for ``"distinct"``, n for ``"replacement"``),
        strictly positive.  For ``"distinct"`` no size may exceed the
        eligible-site count.
    mode:
        Receiver convention (see module docs).
    config:
        Monte-Carlo settings; defaults to :class:`MonteCarloConfig`'s
        paper values.
    topology:
        Name recorded in the result.
    exclude_source_site:
        Keep receivers off the source node (the default convention; the
        source-site ablation flips this).
    rng:
        Overrides ``config.seed`` when given.
    """
    _check_mode(mode)
    config = config or MonteCarloConfig()
    config.validate()
    require_connected(graph, "measure_sweep")

    size_list = [int(s) for s in sizes]
    if not size_list or min(size_list) < 1:
        raise ExperimentError("sizes must be positive and non-empty")
    eligible = graph.num_nodes - (1 if exclude_source_site else 0)
    if mode == "distinct" and max(size_list) > eligible:
        raise ExperimentError(
            f"distinct sweep asks for {max(size_list)} receivers but only "
            f"{eligible} sites are eligible"
        )

    master = ensure_rng(rng if rng is not None else config.seed)
    source_rngs = spawn_rngs(master, config.num_sources)

    num_sizes = len(size_list)
    ratio_sum = np.zeros(num_sizes)
    tree_sum = np.zeros(num_sizes)
    tree_sq_sum = np.zeros(num_sizes)
    path_sum = np.zeros(num_sizes)

    for source_rng in source_rngs:
        source = int(source_rng.integers(0, graph.num_nodes))
        forest = bfs(
            graph,
            source,
            tie_break=config.tie_break,
            rng=source_rng if config.tie_break == "random" else None,
        )
        counter = MulticastTreeCounter(forest)
        exclude = source if exclude_source_site else None
        for size_idx, size in enumerate(size_list):
            for _ in range(config.num_receiver_sets):
                if mode == "distinct":
                    receivers = sample_distinct_receivers(
                        graph.num_nodes, size, source=exclude, rng=source_rng
                    )
                else:
                    receivers = sample_receivers_with_replacement(
                        graph.num_nodes, size, source=exclude, rng=source_rng
                    )
                links = counter.tree_size(receivers)
                total_hops = counter.unicast_total(receivers)
                mean_path = total_hops / size
                if mean_path <= 0:
                    # Receivers all at the source: only possible when the
                    # source site is eligible; the ratio is 0/0 -> skip.
                    continue
                ratio_sum[size_idx] += links / mean_path
                tree_sum[size_idx] += links
                tree_sq_sum[size_idx] += links * links
                path_sum[size_idx] += mean_path

    total = config.num_sources * config.num_receiver_sets
    mean_tree = tree_sum / total
    variance = np.maximum(tree_sq_sum / total - mean_tree**2, 0.0)
    return SweepMeasurement(
        topology=topology,
        mode=mode,
        sizes=tuple(size_list),
        mean_ratio=tuple(float(v) for v in ratio_sum / total),
        mean_tree_size=tuple(float(v) for v in mean_tree),
        mean_unicast_path=tuple(float(v) for v in path_sum / total),
        std_tree_size=tuple(float(v) for v in np.sqrt(variance)),
        num_samples=total,
        num_nodes=graph.num_nodes,
    )


def measure_single_source_sweep(
    graph: Graph,
    source: int,
    sizes: Sequence[int],
    mode: str = "replacement",
    num_receiver_sets: int = 100,
    tie_break: str = "first",
    exclude_source_site: bool = True,
    rng: RandomState = None,
) -> SweepMeasurement:
    """Like :func:`measure_sweep` but for one fixed source.

    Used by the k-ary-tree validations (the source is the root by
    construction) and by per-source diagnostics.
    """
    _check_mode(mode)
    require_connected(graph, "measure_single_source_sweep")
    source = graph.check_node(source)
    config = MonteCarloConfig(
        num_sources=1,
        num_receiver_sets=num_receiver_sets,
        tie_break=tie_break,
        seed=None,
    )
    generator = ensure_rng(rng)
    size_list = [int(s) for s in sizes]
    if not size_list or min(size_list) < 1:
        raise ExperimentError("sizes must be positive and non-empty")

    forest = bfs(
        graph,
        source,
        tie_break=tie_break,
        rng=generator if tie_break == "random" else None,
    )
    counter = MulticastTreeCounter(forest)
    exclude = source if exclude_source_site else None

    ratios, trees, paths, stds = [], [], [], []
    for size in size_list:
        samples = np.empty(num_receiver_sets)
        ratio_acc = 0.0
        path_acc = 0.0
        for i in range(num_receiver_sets):
            if mode == "distinct":
                receivers = sample_distinct_receivers(
                    graph.num_nodes, size, source=exclude, rng=generator
                )
            else:
                receivers = sample_receivers_with_replacement(
                    graph.num_nodes, size, source=exclude, rng=generator
                )
            links = counter.tree_size(receivers)
            mean_path = counter.unicast_total(receivers) / size
            samples[i] = links
            ratio_acc += links / mean_path if mean_path > 0 else 0.0
            path_acc += mean_path
        ratios.append(ratio_acc / num_receiver_sets)
        trees.append(float(samples.mean()))
        paths.append(path_acc / num_receiver_sets)
        stds.append(float(samples.std(ddof=0)))

    return SweepMeasurement(
        topology=f"source-{source}",
        mode=mode,
        sizes=tuple(size_list),
        mean_ratio=tuple(ratios),
        mean_tree_size=tuple(trees),
        mean_unicast_path=tuple(paths),
        std_tree_size=tuple(stds),
        num_samples=num_receiver_sets,
        num_nodes=graph.num_nodes,
    )
