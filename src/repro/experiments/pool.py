"""Persistent shared-memory worker pool for the Monte-Carlo engine.

Why this module exists
----------------------
``BENCH_runner.json`` used to show 4 workers running *slower* than one
(0.78×): every parallel sweep spawned a fresh ``ProcessPoolExecutor``
(interpreter start + imports per worker, per sweep) and pickled the
whole CSR topology into every ``submit()``.  Both costs are fixed, so
this module pays each exactly once:

* **One pool per process.**  :class:`WorkerPool` lazily spawns a
  spawn-context executor the first parallel sweep needs, grows it when
  a sweep asks for more workers, and reuses it until process exit (or
  :func:`shutdown_pool`).  Spawn — not fork — so workers start with
  clean state: no inherited trace collectors, fault plans, or caches.
* **One shared segment per topology.**  :class:`SharedGraphRegistry`
  publishes a graph's CSR arrays via :meth:`Graph.to_shared` keyed by
  the content fingerprint; repeated sweeps over the same topology (and
  every worker's :class:`~repro.graph.forest_cache.ForestCache`) reuse
  one attachment.  Tasks carry a
  :class:`~repro.graph.core.SharedGraphDescriptor` — a few dozen bytes
  — instead of the graph (enforced by lint rule RR010).
* **Grid chunking.**  :func:`plan_grid_chunks` splits the
  (source × receiver-set) grid: contiguous source runs while sources
  outnumber workers, per-source receiver-row slices otherwise — so the
  worker count is no longer capped by ``num_sources``.

Bit-identity
------------
Workers return **raw integer counts** (per-size links / unicast totals
from :func:`repro.experiments.runner._source_counts`); the parent
stitches row slices back into full per-source arrays with
``np.concatenate`` and only then runs the float reduction.  Integer
re-layout commutes with nothing float, so results are bit-identical to
the serial path for every worker count and every chunking.  A row-slice
worker draws the source's *full* receiver matrices (sampling is what
consumes the stream; counting draws nothing) and counts only its rows,
which keeps the PR 1 seed-sequence layout intact.

Failure and observability
-------------------------
The ``runner.worker.exit`` fault point fires parent-side per chunk; a
crashed worker (injected or real) costs its chunk, never the run — the
chunk is a pure function of its seed sequences, so the inline recompute
is bit-identical.  A genuinely broken executor is recycled so the next
sweep re-spawns cleanly.  When the parent is tracing, each task arms a
worker-side collector and hands back its spans (so ``runner.chunk``
measures real worker compute; the parent's wait is ``runner.chunk_wait``)
plus a per-task metrics delta merged into the parent registry.
"""

from __future__ import annotations

import atexit
import logging
import multiprocessing
import os
import threading
from collections import OrderedDict
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import faults, obs
from repro.exceptions import ExperimentError
from repro.graph.core import Graph, SharedGraphDescriptor, SharedGraphHandle
from repro.graph.forest_cache import graph_fingerprint

__all__ = [
    "GridChunk",
    "plan_grid_chunks",
    "resolve_workers",
    "SharedGraphRegistry",
    "WorkerPool",
    "get_pool",
    "shared_graphs",
    "shutdown_pool",
    "run_sweep_chunks",
]

logger = logging.getLogger("repro.experiments.pool")

_FP_WORKER_EXIT = faults.point(
    "runner.worker.exit",
    "Parent-side, as a worker chunk's result is collected; a 'crash' "
    "simulates the worker process dying — the chunk must be recomputed "
    "inline and the source-order reduction stay bit-identical.",
)

# Same spec as the runner's declaration: obs metrics are get-or-create,
# so both modules increment one shared series.
_OBS_CHUNKS = obs.counter(
    "repro_runner_chunks_total",
    "Source chunks by execution path: worker processes, the serial "
    "fallback, or an inline recompute after a worker died.",
    labelnames=("path",),
)
_OBS_POOL_SPAWNS = obs.counter(
    "repro_pool_spawns_total",
    "Worker-pool executors spawned (persistent: ~1 per process, +1 per "
    "growth or post-crash recycle).",
)
_OBS_POOL_TASKS = obs.counter(
    "repro_pool_tasks_total", "Grid-chunk tasks submitted to the pool."
)
_OBS_POOL_WORKERS = obs.gauge(
    "repro_pool_workers", "Current size of the persistent worker pool."
)
_OBS_SEGMENTS = obs.gauge(
    "repro_shared_graph_segments",
    "Shared-memory graph segments currently published by this process.",
)


def resolve_workers(requested: int) -> int:
    """Concrete worker count for a config value (``0`` = one per CPU)."""
    requested = int(requested)
    if requested < 0:
        raise ExperimentError(
            f"num_workers must be >= 0 (0 = auto), got {requested}"
        )
    if requested == 0:
        return max(1, os.cpu_count() or 1)
    return requested


# ---------------------------------------------------------------------------
# Grid chunking
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GridChunk:
    """One task's slice of the (source × receiver-set) grid.

    Spans sources ``[source_lo, source_hi)`` and receiver-set rows
    ``[row_lo, row_hi)``.  Multi-source chunks always cover every row;
    single-source row slices appear only when workers outnumber sources.
    """

    index: int
    source_lo: int
    source_hi: int
    row_lo: int
    row_hi: int

    @property
    def num_sources(self) -> int:
        return self.source_hi - self.source_lo

    @property
    def num_rows(self) -> int:
        return self.row_hi - self.row_lo


def plan_grid_chunks(
    num_sources: int, num_rows: int, workers: int
) -> List[GridChunk]:
    """Split the grid into ~``workers`` contiguous tasks.

    Sources are the natural unit (each source's forest and receiver
    matrices are private to its stream), so while sources outnumber
    workers the grid splits into contiguous source runs — the same
    layout the serial reduction walks.  With fewer sources than
    workers, each source's receiver rows split into
    ``ceil(workers / num_sources)`` slices instead, so the worker count
    is not capped by the source count.  Bit-identity never depends on
    the split: chunks return raw integer counts and the parent
    re-assembles rows in order before any float math.
    """
    if num_sources < 1 or num_rows < 1:
        raise ExperimentError(
            f"grid must be non-empty, got {num_sources}x{num_rows}"
        )
    workers = max(1, min(int(workers), num_sources * num_rows))
    if num_sources >= workers:
        bounds = np.linspace(0, num_sources, workers + 1, dtype=int)
        spans = [(lo, hi) for lo, hi in zip(bounds, bounds[1:]) if hi > lo]
        return [
            GridChunk(i, int(lo), int(hi), 0, num_rows)
            for i, (lo, hi) in enumerate(spans)
        ]
    per_source = min(-(-workers // num_sources), num_rows)
    row_bounds = np.linspace(0, num_rows, per_source + 1, dtype=int)
    row_spans = [
        (lo, hi) for lo, hi in zip(row_bounds, row_bounds[1:]) if hi > lo
    ]
    chunks: List[GridChunk] = []
    for source in range(num_sources):
        for lo, hi in row_spans:
            chunks.append(
                GridChunk(len(chunks), source, source + 1, int(lo), int(hi))
            )
    return chunks


# ---------------------------------------------------------------------------
# Shared-graph registry (parent side)
# ---------------------------------------------------------------------------


class SharedGraphRegistry:
    """Published graph segments, deduplicated by content fingerprint.

    ``descriptor(graph)`` publishes on first sight and returns the
    cached descriptor afterwards, so repeated sweeps over structurally
    identical topologies (every figure driver rebuilds its own
    :class:`Graph`) share one segment and one worker-side attachment.
    LRU-bounded; evicted segments are unlinked — workers that still
    hold views keep their mapping until the views die (POSIX semantics),
    they just can't be joined by new attachments.
    """

    def __init__(self, max_segments: int = 8) -> None:
        if max_segments < 1:
            raise ExperimentError(
                f"max_segments must be >= 1, got {max_segments}"
            )
        self._max_segments = int(max_segments)
        self._handles: "OrderedDict[str, SharedGraphHandle]" = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._handles)

    def descriptor(self, graph: Graph) -> SharedGraphDescriptor:
        """The (possibly cached) descriptor publishing ``graph``."""
        fingerprint = graph_fingerprint(graph)
        with self._lock:
            handle = self._handles.get(fingerprint)
            if handle is not None:
                self._handles.move_to_end(fingerprint)
                return handle.descriptor
        handle = graph.to_shared()
        evicted: List[SharedGraphHandle] = []
        with self._lock:
            raced = self._handles.get(fingerprint)
            if raced is not None:
                evicted.append(handle)
                handle = raced
                self._handles.move_to_end(fingerprint)
            else:
                self._handles[fingerprint] = handle
                while len(self._handles) > self._max_segments:
                    evicted.append(self._handles.popitem(last=False)[1])
        for old in evicted:
            old.release()
        _OBS_SEGMENTS.set(len(self))
        return handle.descriptor

    def release_all(self) -> None:
        """Unlink every published segment (atexit / test teardown)."""
        with self._lock:
            handles = list(self._handles.values())
            self._handles.clear()
        for handle in handles:
            handle.release()
        _OBS_SEGMENTS.set(0)


# ---------------------------------------------------------------------------
# The persistent pool
# ---------------------------------------------------------------------------


class WorkerPool:
    """The process-wide persistent executor behind every parallel sweep.

    Spawn-context workers are started once and reused across sweeps;
    :meth:`ensure` grows the pool when a sweep asks for more workers
    than it has and keeps the larger size (idle workers cost a few MB;
    re-spawning costs interpreter start + imports).  :meth:`recycle`
    discards the executor — after a real crash, or from
    :func:`shutdown_pool` — so the next sweep re-spawns cleanly.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._executor: Optional[ProcessPoolExecutor] = None
        self._size = 0

    @property
    def size(self) -> int:
        """Workers the current executor was sized for (0 = none yet)."""
        return self._size

    def ensure(self, workers: int) -> ProcessPoolExecutor:
        """The executor, spawned or grown to at least ``workers``."""
        workers = int(workers)
        if workers < 1:
            raise ExperimentError(f"workers must be >= 1, got {workers}")
        retired = None
        with self._lock:
            if self._executor is None or workers > self._size:
                retired = self._executor
                self._size = max(workers, self._size)
                self._executor = ProcessPoolExecutor(
                    max_workers=self._size,
                    mp_context=multiprocessing.get_context("spawn"),
                )
                _OBS_POOL_SPAWNS.inc()
                _OBS_POOL_WORKERS.set(self._size)
            executor = self._executor
        if retired is not None:
            retired.shutdown(wait=False)
        return executor

    def recycle(self) -> None:
        """Drop the executor (idempotent); the next sweep re-spawns."""
        with self._lock:
            executor = self._executor
            self._executor = None
            self._size = 0
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)
            _OBS_POOL_WORKERS.set(0)


_POOL = WorkerPool()
_SHARED = SharedGraphRegistry()


def get_pool() -> WorkerPool:
    """The process-wide persistent pool."""
    return _POOL


def shared_graphs() -> SharedGraphRegistry:
    """The process-wide shared-graph registry."""
    return _SHARED


def shutdown_pool() -> None:
    """Stop the workers and unlink every shared segment.

    Registered with ``atexit`` so no segment survives the process; safe
    to call repeatedly (tests do) — the next parallel sweep simply
    re-spawns and re-publishes.
    """
    _POOL.recycle()
    _SHARED.release_all()


atexit.register(shutdown_pool)


# ---------------------------------------------------------------------------
# Worker-side task
# ---------------------------------------------------------------------------

#: Worker-side attachments: segment name -> zero-copy Graph view.  One
#: entry per distinct segment this worker has served; bounded in
#: practice by the parent registry's LRU (segment names are unique, so
#: a re-published topology gets a fresh entry and the stale mapping
#: dies with its views).
_ATTACHED: Dict[str, Graph] = {}


def _attached_graph(descriptor: SharedGraphDescriptor) -> Graph:
    graph = _ATTACHED.get(descriptor.name)
    if graph is None:
        graph = Graph.from_shared(descriptor)
        _ATTACHED[descriptor.name] = graph
    return graph


def _chunk_counts(
    fn: Callable[..., Tuple],
    graph: Graph,
    chunk: GridChunk,
    child_seeds: Sequence,
    task_args: Tuple,
) -> List[Tuple]:
    """Raw counts for one chunk — shared by workers and inline recompute."""
    row_slice = (chunk.row_lo, chunk.row_hi)
    return [
        fn(graph, child, *task_args, row_slice=row_slice)
        for child in child_seeds
    ]


def _worker_chunk(
    fn: Callable[..., Tuple],
    descriptor: SharedGraphDescriptor,
    chunk: GridChunk,
    child_seeds: Sequence,
    task_args: Tuple,
    want_trace: bool,
):
    """Worker-process entry point: counts plus obs hand-back.

    Runs disarmed unless the parent is tracing, in which case a local
    collector brackets the compute in a worker-side ``runner.chunk``
    span — absorbed by the parent, so chunk durations measure worker
    compute, not parent wait.  Metrics return as the delta against the
    task-start snapshot: persistent workers serve many tasks, and
    re-sending cumulative totals would double-count in the parent.
    """
    graph = _attached_graph(descriptor)
    registry = obs.default_registry()
    before = registry.to_dict()
    collector = None
    if want_trace and obs.active_collector() is None:
        collector = obs.start_tracing()
    try:
        with obs.span(
            "runner.chunk",
            chunk=chunk.index,
            sources=chunk.num_sources,
            rows=chunk.num_rows,
        ):
            counts = _chunk_counts(fn, graph, chunk, child_seeds, task_args)
    finally:
        if collector is not None:
            obs.stop_tracing()
    spans = collector.export() if collector is not None else None
    return counts, spans, obs.metrics_delta(before, registry.to_dict())


# ---------------------------------------------------------------------------
# Parent-side orchestration
# ---------------------------------------------------------------------------


def _stitch_source_counts(
    chunks: Sequence[GridChunk],
    results: Sequence[List[Tuple]],
    num_sources: int,
) -> List[Tuple[List[np.ndarray], List[np.ndarray]]]:
    """Re-assemble full-row per-source (links, totals) lists.

    Row slices concatenate in row order — an integer re-layout, so the
    downstream float reduction sees exactly the arrays the serial path
    computes.
    """
    gathered: List[List[Tuple[int, Tuple]]] = [[] for _ in range(num_sources)]
    for chunk, chunk_result in zip(chunks, results):
        for offset, source in enumerate(
            range(chunk.source_lo, chunk.source_hi)
        ):
            gathered[source].append((chunk.row_lo, chunk_result[offset]))
    stitched: List[Tuple[List[np.ndarray], List[np.ndarray]]] = []
    for rows in gathered:
        rows.sort(key=lambda item: item[0])
        parts = [item[1] for item in rows]
        if len(parts) == 1:
            stitched.append(parts[0])
            continue
        num_sizes = len(parts[0][0])
        stitched.append(
            (
                [
                    np.concatenate([part[0][k] for part in parts])
                    for k in range(num_sizes)
                ],
                [
                    np.concatenate([part[1][k] for part in parts])
                    for k in range(num_sizes)
                ],
            )
        )
    return stitched


def run_sweep_chunks(
    graph: Graph,
    children: Sequence,
    num_rows: int,
    workers: int,
    fn: Callable[..., Tuple],
    task_args: Tuple,
) -> List[Tuple[List[np.ndarray], List[np.ndarray]]]:
    """Fan one sweep's grid over the persistent pool.

    ``fn`` is the per-source counting function (picklable by reference;
    the runner passes ``_source_counts``) called as
    ``fn(graph, child, *task_args, row_slice=(lo, hi))``.  Returns one
    full-row ``(links_list, totals_list)`` pair per source, in source
    order — exactly what the serial path computes.  Crashed workers
    (injected or real) fall back to the bit-identical inline recompute;
    a genuinely broken executor is recycled afterwards so the next
    sweep gets a fresh pool.
    """
    chunks = plan_grid_chunks(len(children), num_rows, workers)
    descriptor = _SHARED.descriptor(graph)
    executor = _POOL.ensure(min(int(workers), len(chunks)))
    want_trace = obs.active_collector() is not None

    futures: List[Optional[object]] = []
    broken = False
    for chunk in chunks:
        if broken:
            futures.append(None)
            continue
        try:
            futures.append(
                executor.submit(
                    _worker_chunk,
                    fn,
                    descriptor,
                    chunk,
                    children[chunk.source_lo : chunk.source_hi],
                    task_args,
                    want_trace,
                )
            )
        except (BrokenExecutor, RuntimeError) as exc:
            logger.warning(
                "pool submit failed (%s); chunk %d and the rest run inline",
                exc,
                chunk.index,
            )
            broken = True
            futures.append(None)
    _OBS_POOL_TASKS.inc(sum(1 for f in futures if f is not None))

    collector = obs.active_collector()
    results: List[List[Tuple]] = []
    for chunk, future in zip(chunks, futures):
        seeds = children[chunk.source_lo : chunk.source_hi]
        with obs.span(
            "runner.chunk_wait", chunk=chunk.index, sources=len(seeds)
        ) as wait_span:
            try:
                _FP_WORKER_EXIT.fire(chunk=chunk.index)
                if future is None:
                    raise BrokenExecutor("worker pool is broken")
                counts, spans, delta = future.result()
                if spans and collector is not None:
                    collector.absorb(spans)
                if delta["metrics"]:
                    obs.default_registry().merge(delta)
                _OBS_CHUNKS.inc(path="worker")
            except (faults.WorkerCrash, BrokenExecutor) as exc:
                # A dead worker costs its chunk, never the run: the
                # chunk is a pure function of its seed sequences, so the
                # inline recompute is bit-identical to what the worker
                # would have returned.
                logger.warning(
                    "worker for chunk %d/%d died (%s); recomputing inline",
                    chunk.index + 1,
                    len(chunks),
                    exc,
                )
                if isinstance(exc, BrokenExecutor):
                    broken = True
                counts = _chunk_counts(fn, graph, chunk, seeds, task_args)
                _OBS_CHUNKS.inc(path="inline-recompute")
                wait_span.set(recomputed=True)
        results.append(counts)
    if broken:
        _POOL.recycle()
    return _stitch_source_counts(chunks, results, len(children))
