"""Result containers for Monte-Carlo measurements.

A :class:`SweepMeasurement` is the outcome of sweeping receiver-group
sizes on one topology: for every group size it stores the averaged tree
size, the averaged unicast path length, and — following the paper's
methodology exactly — the average of the **per-sample ratio**
``L/ū_sample`` (each (source, receiver-set) draw contributes one ratio
data point; Section 2 averages ``Nrcvr·Nsource`` of them per group size).

Containers serialize to plain JSON so experiment outputs can be archived
next to EXPERIMENTS.md and reloaded for later analysis.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Tuple, Union

import numpy as np

from repro.exceptions import ExperimentError
from repro.utils.stats import LinearFit

__all__ = [
    "SweepMeasurement",
    "save_measurements",
    "load_measurements",
    "save_measurements_csv",
]

PathLike = Union[str, Path]


@dataclass(frozen=True)
class SweepMeasurement:
    """Averaged tree-size data for one topology sweep.

    Attributes
    ----------
    topology:
        Topology name (Table-1 key or free-form).
    mode:
        ``"distinct"`` (the ``L(m)`` convention) or ``"replacement"``
        (``L̂(n)``).
    sizes:
        The swept group sizes (m or n).
    mean_ratio:
        Per size, the mean of the per-sample ``L/ū_sample`` ratio — the
        y axis of Figure 1 (and, divided by the size, of Figure 6).
    mean_tree_size:
        Per size, the mean number of delivery-tree links.
    mean_unicast_path:
        Per size, the mean unicast path length ``ū``.
    std_tree_size:
        Per size, the sample standard deviation of tree sizes.
    num_samples:
        Samples per size (``Nsource × Nrcvr``).
    num_nodes:
        Node count of the measured graph.
    algorithm:
        The tree-construction discipline measured (a
        :mod:`repro.multicast.builders` registry key; ``"spt"`` is the
        paper's shortest-path routing and the default for every
        pre-existing payload).
    """

    topology: str
    mode: str
    sizes: Tuple[int, ...]
    mean_ratio: Tuple[float, ...]
    mean_tree_size: Tuple[float, ...]
    mean_unicast_path: Tuple[float, ...]
    std_tree_size: Tuple[float, ...]
    num_samples: int
    num_nodes: int
    algorithm: str = "spt"

    def __post_init__(self) -> None:
        lengths = {
            len(self.sizes),
            len(self.mean_ratio),
            len(self.mean_tree_size),
            len(self.mean_unicast_path),
            len(self.std_tree_size),
        }
        if len(lengths) != 1:
            raise ExperimentError(
                "all per-size arrays of a SweepMeasurement must align"
            )
        if not self.sizes:
            raise ExperimentError("a sweep needs at least one group size")

    # -- derived series ------------------------------------------------

    @property
    def normalized_tree_size(self) -> np.ndarray:
        """``L/ū`` per size — Figure 1's y axis."""
        return np.asarray(self.mean_ratio)

    @property
    def per_receiver_series(self) -> np.ndarray:
        """``L/(size·ū)`` per size — Figure 6's y axis."""
        return np.asarray(self.mean_ratio) / np.asarray(self.sizes, dtype=float)

    def fit_exponent(self) -> LinearFit:
        """Log-log fit of ``L/ū`` against size (Chuang-Sirbu exponent)."""
        from repro.analysis.scaling import fit_scaling_exponent

        return fit_scaling_exponent(self.sizes, self.normalized_tree_size)

    def efficiency(self) -> np.ndarray:
        """Multicast/unicast cost ratio per size (1 = no saving)."""
        return self.per_receiver_series

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> Dict:
        """Plain-JSON-serializable dict."""
        return asdict(self)

    @staticmethod
    def from_dict(payload: Dict) -> "SweepMeasurement":
        """Inverse of :meth:`to_dict`."""
        try:
            return SweepMeasurement(
                topology=str(payload["topology"]),
                mode=str(payload["mode"]),
                sizes=tuple(int(v) for v in payload["sizes"]),
                mean_ratio=tuple(float(v) for v in payload["mean_ratio"]),
                mean_tree_size=tuple(
                    float(v) for v in payload["mean_tree_size"]
                ),
                mean_unicast_path=tuple(
                    float(v) for v in payload["mean_unicast_path"]
                ),
                std_tree_size=tuple(
                    float(v) for v in payload["std_tree_size"]
                ),
                num_samples=int(payload["num_samples"]),
                num_nodes=int(payload["num_nodes"]),
                algorithm=str(payload.get("algorithm", "spt")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ExperimentError(
                f"malformed SweepMeasurement payload: {exc}"
            ) from exc


def save_measurements(
    measurements: List[SweepMeasurement], path: PathLike
) -> None:
    """Write a list of measurements as a JSON document."""
    payload = [m.to_dict() for m in measurements]
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1)


def load_measurements(path: PathLike) -> List[SweepMeasurement]:
    """Load measurements written by :func:`save_measurements`."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, list):
        raise ExperimentError(f"{path}: expected a JSON list of measurements")
    return [SweepMeasurement.from_dict(item) for item in payload]


def save_measurements_csv(
    measurements: List[SweepMeasurement], path: PathLike
) -> None:
    """Write measurements as one flat CSV (a row per topology × size).

    Columns: topology, mode, num_nodes, num_samples, size, mean_ratio,
    mean_tree_size, mean_unicast_path, std_tree_size, algorithm.  The
    JSON format (:func:`save_measurements`) is lossless and
    round-trips; the CSV is for spreadsheets and external plotting
    tools.
    """
    import csv

    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            [
                "topology",
                "mode",
                "num_nodes",
                "num_samples",
                "size",
                "mean_ratio",
                "mean_tree_size",
                "mean_unicast_path",
                "std_tree_size",
                "algorithm",
            ]
        )
        for m in measurements:
            for i, size in enumerate(m.sizes):
                writer.writerow(
                    [
                        m.topology,
                        m.mode,
                        m.num_nodes,
                        m.num_samples,
                        size,
                        m.mean_ratio[i],
                        m.mean_tree_size[i],
                        m.mean_unicast_path[i],
                        m.std_tree_size[i],
                        m.algorithm,
                    ]
                )
