"""Terminal rendering of data series.

The paper's figures are gnuplot log-log / lin-log plots.  Benchmarks and
examples in this reproduction print the same series as aligned numeric
columns plus, where a picture helps, a coarse ASCII scatter so shapes
(linearity, concavity, oscillation) are visible in terminal output and in
the committed ``bench_output.txt``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ExperimentError

__all__ = ["Series", "AsciiPlot", "render_series_table"]

_MARKERS = "*+ox#@%&"


@dataclass(frozen=True)
class Series:
    """A named (x, y) data series."""

    name: str
    x: Tuple[float, ...]
    y: Tuple[float, ...]

    @staticmethod
    def from_arrays(name: str, x: Sequence[float], y: Sequence[float]) -> "Series":
        xs = tuple(float(v) for v in x)
        ys = tuple(float(v) for v in y)
        if len(xs) != len(ys):
            raise ExperimentError(
                f"series {name!r}: x has {len(xs)} points, y has {len(ys)}"
            )
        if not xs:
            raise ExperimentError(f"series {name!r} is empty")
        return Series(name, xs, ys)


@dataclass
class AsciiPlot:
    """A multi-series ASCII scatter plot.

    Parameters
    ----------
    width / height:
        Character-grid size of the plotting area.
    log_x / log_y:
        Plot in log coordinates (points with non-positive values on a log
        axis are dropped).
    title / x_label / y_label:
        Annotations.
    """

    width: int = 72
    height: int = 20
    log_x: bool = False
    log_y: bool = False
    title: str = ""
    x_label: str = "x"
    y_label: str = "y"
    series: List[Series] = field(default_factory=list)

    def add(self, name: str, x: Sequence[float], y: Sequence[float]) -> None:
        """Add a series to the plot."""
        if len(self.series) >= len(_MARKERS):
            raise ExperimentError(
                f"at most {len(_MARKERS)} series per ASCII plot"
            )
        self.series.append(Series.from_arrays(name, x, y))

    def _transform(self) -> List[Tuple[str, List[Tuple[float, float]]]]:
        out = []
        for series in self.series:
            points = []
            for xv, yv in zip(series.x, series.y):
                if self.log_x:
                    if xv <= 0:
                        continue
                    xv = math.log10(xv)
                if self.log_y:
                    if yv <= 0:
                        continue
                    yv = math.log10(yv)
                if math.isfinite(xv) and math.isfinite(yv):
                    points.append((xv, yv))
            out.append((series.name, points))
        return out

    def render(self) -> str:
        """Render the plot to a string."""
        if not self.series:
            raise ExperimentError("nothing to plot")
        transformed = self._transform()
        all_points = [p for _, pts in transformed for p in pts]
        if not all_points:
            raise ExperimentError("no plottable points (log axis dropped all?)")
        xs = [p[0] for p in all_points]
        ys = [p[1] for p in all_points]
        x_lo, x_hi = min(xs), max(xs)
        y_lo, y_hi = min(ys), max(ys)
        if x_hi == x_lo:
            x_hi = x_lo + 1.0
        if y_hi == y_lo:
            y_hi = y_lo + 1.0

        grid = [[" "] * self.width for _ in range(self.height)]
        for (name, points), marker in zip(transformed, _MARKERS):
            for xv, yv in points:
                col = int((xv - x_lo) / (x_hi - x_lo) * (self.width - 1))
                row = int((yv - y_lo) / (y_hi - y_lo) * (self.height - 1))
                grid[self.height - 1 - row][col] = marker

        def axis_val(v: float, log: bool) -> str:
            return format(10**v if log else v, ".3g")

        lines: List[str] = []
        if self.title:
            lines.append(self.title)
        lines.append(
            f"y: {self.y_label}  [{axis_val(y_lo, self.log_y)} .. "
            f"{axis_val(y_hi, self.log_y)}]"
        )
        border = "+" + "-" * self.width + "+"
        lines.append(border)
        for row in grid:
            lines.append("|" + "".join(row) + "|")
        lines.append(border)
        lines.append(
            f"x: {self.x_label}  [{axis_val(x_lo, self.log_x)} .. "
            f"{axis_val(x_hi, self.log_x)}]"
            + ("  (log x)" if self.log_x else "")
            + ("  (log y)" if self.log_y else "")
        )
        legend = "  ".join(
            f"{marker}={series.name}"
            for series, marker in zip(self.series, _MARKERS)
        )
        lines.append(f"legend: {legend}")
        return "\n".join(lines)


def render_series_table(
    x_name: str,
    series: Sequence[Series],
    float_format: str = ".5g",
) -> str:
    """Align several series sharing an x axis into one numeric table.

    Series with differing x grids are merged on the union of x values;
    missing cells render as ``-``.
    """
    if not series:
        raise ExperimentError("no series to tabulate")
    from repro.utils.tables import format_table

    x_union: List[float] = sorted({xv for s in series for xv in s.x})
    lookup: List[Dict[float, float]] = [dict(zip(s.x, s.y)) for s in series]
    headers = [x_name] + [s.name for s in series]
    rows = []
    for xv in x_union:
        row: List[Optional[float]] = [xv]
        for table in lookup:
            row.append(table.get(xv))
        rows.append(row)
    return format_table(headers, rows, float_format=float_format)
