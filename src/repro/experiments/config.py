"""Experiment configuration objects.

One dataclass per methodology knob cluster, all immutable, all with
``validate()``, so drivers and the CLI share a single vocabulary.  The
paper's canonical settings (``Nrcvr = 100``, ``Nsource = 100``, sources
drawn with replacement) are the defaults of :data:`PAPER_MONTE_CARLO`;
benchmarks use :data:`QUICK_MONTE_CARLO` to stay laptop-fast, and
EXPERIMENTS.md records which was used where.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from repro.exceptions import ExperimentError

__all__ = [
    "MonteCarloConfig",
    "SweepConfig",
    "AffinityConfig",
    "PAPER_MONTE_CARLO",
    "QUICK_MONTE_CARLO",
]


@dataclass(frozen=True)
class MonteCarloConfig:
    """How many samples the Monte-Carlo engine draws.

    Attributes
    ----------
    num_sources:
        ``Nsource`` — random sources, drawn with replacement (the paper's
        methodology, Section 2).
    num_receiver_sets:
        ``Nrcvr`` — receiver sets per source per group size.
    tie_break:
        Shortest-path-tree tie-breaking policy, ``"first"`` or
        ``"random"`` (the ablation knob).
    seed:
        Base seed; every (source, receiver-set) cell derives its own
        stream, so results are order-independent and reproducible.
    num_workers:
        Processes the runner fans the sample grid out over (1 =
        in-process, 0 = auto: one worker per CPU, resolved at sweep
        time).  Workers come from the persistent shared-memory pool in
        :mod:`repro.experiments.pool`; because each source's samples
        come from its own spawned RNG stream and partial sums are
        reduced in source order, results are bit-identical for every
        worker count.
    """

    num_sources: int = 100
    num_receiver_sets: int = 100
    tie_break: str = "first"
    seed: Optional[int] = 0
    num_workers: int = 1

    def validate(self) -> None:
        if self.num_sources < 1:
            raise ExperimentError(
                f"num_sources must be >= 1, got {self.num_sources}"
            )
        if self.num_receiver_sets < 1:
            raise ExperimentError(
                f"num_receiver_sets must be >= 1, got {self.num_receiver_sets}"
            )
        if self.tie_break not in ("first", "random"):
            raise ExperimentError(
                f'tie_break must be "first" or "random", got {self.tie_break!r}'
            )
        if self.num_workers < 0:
            raise ExperimentError(
                f"num_workers must be >= 0 (0 = auto), got {self.num_workers}"
            )

    def scaled(self, factor: float) -> "MonteCarloConfig":
        """A config with sample counts scaled by ``factor`` (min 1 each)."""
        if factor <= 0:
            raise ExperimentError(f"factor must be positive, got {factor}")
        return replace(
            self,
            num_sources=max(1, int(round(self.num_sources * factor))),
            num_receiver_sets=max(1, int(round(self.num_receiver_sets * factor))),
        )


#: The paper's Section-2 methodology: 100 sources × 100 receiver sets.
PAPER_MONTE_CARLO = MonteCarloConfig(num_sources=100, num_receiver_sets=100)

#: Bench-friendly settings giving the same shapes in seconds, not hours.
QUICK_MONTE_CARLO = MonteCarloConfig(num_sources=8, num_receiver_sets=12)


@dataclass(frozen=True)
class SweepConfig:
    """The x axis of an ``L(m)`` / ``L̂(n)`` sweep.

    Attributes
    ----------
    min_size / max_size:
        Receiver-count range (inclusive); ``max_size`` defaults per
        driver to a fraction of the network size when None.
    points:
        Number of geometrically-spaced sizes.
    """

    min_size: int = 1
    max_size: Optional[int] = None
    points: int = 12

    def validate(self) -> None:
        if self.min_size < 1:
            raise ExperimentError(f"min_size must be >= 1, got {self.min_size}")
        if self.max_size is not None and self.max_size < self.min_size:
            raise ExperimentError(
                f"max_size ({self.max_size}) below min_size ({self.min_size})"
            )
        if self.points < 2:
            raise ExperimentError(f"points must be >= 2, got {self.points}")

    def sizes(self, network_limit: int) -> Tuple[int, ...]:
        """Concrete geometric grid, clipped to ``network_limit``."""
        from repro.utils.stats import geometric_spaced

        self.validate()
        if network_limit < self.min_size:
            raise ExperimentError(
                f"network supports at most {network_limit} receivers, "
                f"sweep starts at {self.min_size}"
            )
        hi = network_limit if self.max_size is None else min(
            self.max_size, network_limit
        )
        return tuple(
            int(v) for v in geometric_spaced(self.min_size, hi, self.points)
        )


@dataclass(frozen=True)
class AffinityConfig:
    """Settings of the Figure-9 affinity simulation.

    Attributes
    ----------
    betas:
        Affinity strengths to sweep (the paper uses
        −10, −1, −0.1, 0, 0.1, 1, 10).
    num_samples:
        Configurations retained per (β, n) cell.
    burn_in_sweeps / thin_sweeps:
        MCMC schedule in sweeps of ``n`` moves.
    """

    betas: Tuple[float, ...] = (-10.0, -1.0, -0.1, 0.0, 0.1, 1.0, 10.0)
    num_samples: int = 40
    burn_in_sweeps: int = 20
    thin_sweeps: int = 2

    def validate(self) -> None:
        if not self.betas:
            raise ExperimentError("betas must be non-empty")
        if self.num_samples < 1:
            raise ExperimentError(
                f"num_samples must be >= 1, got {self.num_samples}"
            )
        if self.burn_in_sweeps < 0 or self.thin_sweeps < 0:
            raise ExperimentError("MCMC sweep counts must be non-negative")
        for beta in self.betas:
            if beta != beta or beta in (float("inf"), float("-inf")):
                raise ExperimentError(
                    "betas must be finite; ±infinity has closed forms in "
                    "repro.analysis.affinity_theory"
                )
