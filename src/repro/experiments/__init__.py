"""Experiment harness: Monte-Carlo engine, configs, results, figure drivers."""

from repro.experiments.ascii_plot import AsciiPlot, Series, render_series_table
from repro.experiments.config import (
    AffinityConfig,
    MonteCarloConfig,
    PAPER_MONTE_CARLO,
    QUICK_MONTE_CARLO,
    SweepConfig,
)
from repro.experiments.instances import InstanceAggregate, measure_over_instances
from repro.experiments.results import (
    SweepMeasurement,
    load_measurements,
    save_measurements,
)
from repro.experiments.runner import measure_single_source_sweep, measure_sweep

__all__ = [
    "AsciiPlot",
    "Series",
    "render_series_table",
    "AffinityConfig",
    "MonteCarloConfig",
    "PAPER_MONTE_CARLO",
    "QUICK_MONTE_CARLO",
    "SweepConfig",
    "InstanceAggregate",
    "measure_over_instances",
    "SweepMeasurement",
    "load_measurements",
    "save_measurements",
    "measure_single_source_sweep",
    "measure_sweep",
]
