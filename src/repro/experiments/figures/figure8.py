"""Figure 8: ``L̂(n)/(n·ū)`` for non-exponential reachability functions.

Section 4.3 evaluates the Eq.-23 predictor on three synthetic ``S(r)``
families — exponential ``2^r``, power-law ``r^λ``, and super-exponential
``e^{λ·r²}`` — normalized so ``S(D)`` agrees, receivers at the leaves.
"The non-exponential cases have quite different behavior than the
exponential case", i.e. the linear-in-``ln n`` form is exclusive to
exponential growth.  Notes quantify this with each family's linear-fit R²
over the mid range.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.analysis.general import normalized_series
from repro.analysis.reachability_models import figure8_families
from repro.experiments.figures.base import FigureResult
from repro.experiments.figures.registry import register_figure
from repro.utils.stats import linear_fit

__all__ = ["run_figure8"]


@register_figure("figure8")
def run_figure8(
    depth: int = 20,
    base: float = 2.0,
    points: int = 40,
    n_max: Optional[float] = None,
) -> FigureResult:
    """Reproduce Figure 8 from the three synthetic reachability families.

    Parameters
    ----------
    depth:
        The horizon ``D`` (the paper's plot spans n up to ~10^10,
        implying a deep horizon; D = 20 at base 2 reaches 10^6 leaves and
        shows the same separation).
    base:
        Exponential base (the paper's exemplar is 2^r).
    points:
        n-grid size.
    n_max:
        Upper end of the n sweep; defaults to ``100·S(D)``.
    """
    families = figure8_families(depth=depth, base=base)
    horizon = float(base) ** depth
    if n_max is None:
        n_max = 100.0 * horizon
    n = np.geomspace(1.0, n_max, points)

    result = FigureResult(
        figure_id="figure-8",
        title="Lhat(n)/(n*u) vs ln n for exponential / power-law / "
        "super-exponential S(r)",
        x_label="n",
        y_label="Lhat(n)/(n*u)",
        log_x=True,
    )
    for family, rings in families.items():
        series = normalized_series(rings, n, receivers="leaf")
        result.add_series(family, n, series)
        mid = (n > 5.0) & (n < horizon)
        fit = linear_fit(np.log(n[mid]), series[mid])
        result.notes[f"linearity[{family}]"] = (
            f"R^2={fit.r_squared:.3f}, slope={fit.slope:.4f}"
        )
    result.notes["normalization"] = (
        f"S(D) = {horizon:g} for all families; receivers at leaves, u = D"
    )
    return result
