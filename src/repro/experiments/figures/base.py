"""Shared result type for figure/table reproduction drivers.

Every driver in :mod:`repro.experiments.figures` returns a
:class:`FigureResult`: named data series plus enough metadata to render
the table and ASCII plot that stand in for the paper's gnuplot output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.exceptions import ExperimentError
from repro.experiments.ascii_plot import AsciiPlot, Series, render_series_table

__all__ = ["FigureResult"]


@dataclass
class FigureResult:
    """Reproduction output for one paper figure or table.

    Attributes
    ----------
    figure_id:
        Paper identifier, e.g. ``"figure-1a"`` or ``"table-1"``.
    title:
        One-line description of what the figure shows.
    x_label / y_label:
        Axis labels (as in the paper).
    log_x / log_y:
        Whether the paper draws the axis logarithmically.
    series:
        The data series (measured curves, reference lines, predictions).
    notes:
        Free-form annotations: fitted exponents, growth classes,
        methodology deviations — anything EXPERIMENTS.md should record.
    """

    figure_id: str
    title: str
    x_label: str
    y_label: str
    series: List[Series] = field(default_factory=list)
    log_x: bool = False
    log_y: bool = False
    notes: Dict[str, str] = field(default_factory=dict)

    def add_series(self, name: str, x, y) -> None:
        """Append a named series."""
        self.series.append(Series.from_arrays(name, x, y))

    def get_series(self, name: str) -> Series:
        """Look up a series by name."""
        for series in self.series:
            if series.name == name:
                return series
        raise ExperimentError(
            f"{self.figure_id} has no series {name!r}; available: "
            f"{[s.name for s in self.series]}"
        )

    @property
    def series_names(self) -> List[str]:
        return [s.name for s in self.series]

    def table(self, float_format: str = ".5g") -> str:
        """The figure's data as one aligned text table."""
        if not self.series:
            raise ExperimentError(f"{self.figure_id} has no series")
        return render_series_table(self.x_label, self.series, float_format)

    def plot(self, width: int = 72, height: int = 20) -> str:
        """The figure as an ASCII scatter plot."""
        ascii_plot = AsciiPlot(
            width=width,
            height=height,
            log_x=self.log_x,
            log_y=self.log_y,
            title=f"{self.figure_id}: {self.title}",
            x_label=self.x_label,
            y_label=self.y_label,
        )
        for series in self.series:
            ascii_plot.series.append(series)
        return ascii_plot.render()

    def render(self, include_plot: bool = True) -> str:
        """Full text rendering: header, notes, table, optional plot."""
        parts = [f"== {self.figure_id}: {self.title} =="]
        for key, value in self.notes.items():
            parts.append(f"   {key}: {value}")
        parts.append(self.table())
        if include_plot and self.series:
            parts.append(self.plot())
        return "\n".join(parts)

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> Dict:
        """Plain-JSON-serializable dict (inverse of :meth:`from_dict`)."""
        return {
            "figure_id": self.figure_id,
            "title": self.title,
            "x_label": self.x_label,
            "y_label": self.y_label,
            "log_x": self.log_x,
            "log_y": self.log_y,
            "notes": dict(self.notes),
            "series": [
                {"name": s.name, "x": list(s.x), "y": list(s.y)}
                for s in self.series
            ],
        }

    @staticmethod
    def from_dict(payload: Dict) -> "FigureResult":
        """Rebuild a result written by :meth:`to_dict`."""
        try:
            result = FigureResult(
                figure_id=str(payload["figure_id"]),
                title=str(payload["title"]),
                x_label=str(payload["x_label"]),
                y_label=str(payload["y_label"]),
                log_x=bool(payload.get("log_x", False)),
                log_y=bool(payload.get("log_y", False)),
                notes={
                    str(k): str(v)
                    for k, v in payload.get("notes", {}).items()
                },
            )
            for entry in payload.get("series", []):
                result.add_series(entry["name"], entry["x"], entry["y"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ExperimentError(
                f"malformed FigureResult payload: {exc}"
            ) from exc
        return result

    def save(self, path) -> None:
        """Write this result as JSON."""
        import json

        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=1)

    @staticmethod
    def load(path) -> "FigureResult":
        """Load a result written by :meth:`save`."""
        import json

        with open(path, "r", encoding="utf-8") as handle:
            return FigureResult.from_dict(json.load(handle))
