"""Table 1: description of the networks used in the evaluation.

The paper's Table 1 lists, for each of the eight networks, its origin and
gross statistics (node counts 47–56,317; average degrees 2.7–7.5; four
topologies shared with the original Chuang-Sirbu study).  This driver
builds the suite (or any subset) and reports the same columns for our
topologies / stand-ins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.figures.registry import register_figure
from repro.graph.ops import GraphStats, graph_stats
from repro.graph.reachability import average_profile, classify_growth
from repro.topology.registry import TOPOLOGY_NAMES, build_topology, topology_spec
from repro.utils.rng import RandomState, ensure_rng, spawn_rngs
from repro.utils.tables import format_table

__all__ = ["Table1Row", "Table1Result", "run_table1"]


@dataclass(frozen=True)
class Table1Row:
    """One network's row: stats plus reachability-growth class."""

    stats: GraphStats
    kind: str
    description: str
    growth: str


@dataclass(frozen=True)
class Table1Result:
    """The reproduced Table 1."""

    rows: Tuple[Table1Row, ...]
    scale: float

    def render(self) -> str:
        """Aligned text table matching the paper's columns (plus growth)."""
        headers = [
            "network",
            "kind",
            "nodes",
            "links",
            "avg degree",
            "diameter",
            "avg path",
            "T(r) growth",
        ]
        body = [
            (
                row.stats.name,
                row.kind,
                row.stats.num_nodes,
                row.stats.num_edges,
                row.stats.average_degree,
                row.stats.diameter,
                row.stats.average_path_length,
                row.growth,
            )
            for row in self.rows
        ]
        title = f"Table 1 reproduction (scale={self.scale:g})"
        return format_table(headers, body, float_format=".3g", title=title)

    def degree_range(self) -> Tuple[float, float]:
        """Min and max average degree across the suite (paper: 2.7–7.5)."""
        degrees = [row.stats.average_degree for row in self.rows]
        return min(degrees), max(degrees)


@register_figure("table1")
def run_table1(
    names: Optional[Sequence[str]] = None,
    scale: float = 1.0,
    num_growth_sources: int = 20,
    rng: RandomState = None,
) -> Table1Result:
    """Build the Table-1 suite and compute its statistics.

    Parameters
    ----------
    names:
        Topology subset (defaults to all eight).
    scale:
        Size scale relative to the paper (generated topologies only).
    num_growth_sources:
        Sources averaged for the reachability-growth classification.
    rng:
        Base randomness; each topology gets an independent child stream.
    """
    chosen = list(names) if names is not None else list(TOPOLOGY_NAMES)
    streams = spawn_rngs(ensure_rng(rng), 2 * len(chosen))
    rows: List[Table1Row] = []
    for i, name in enumerate(chosen):
        spec = topology_spec(name)
        graph = build_topology(name, scale=scale, rng=streams[2 * i])
        stats = graph_stats(graph, name=name, rng=streams[2 * i + 1])
        profile = average_profile(
            graph, num_sources=num_growth_sources, rng=streams[2 * i + 1]
        )
        rows.append(
            Table1Row(
                stats=stats,
                kind=spec.kind,
                description=spec.description,
                growth=classify_growth(profile),
            )
        )
    return Table1Result(rows=tuple(rows), scale=scale)
