"""Figure 4: the k-ary ``L(m)`` against the Chuang-Sirbu law.

Using the exact Eq. 4 plus the Eq. 1 conversion (``L(m) ≈ L̂(n(m))``),
the paper plots ``ln(L(m)/ū)`` versus ``ln m`` for k = 2 (D = 10, 14, 17)
and k = 4 (D = 5, 7, 9) with receivers at leaves (``ū = D``), against the
``m^0.8`` line: "even though the form of the function L(m) is rather
different than m^0.8, the agreement with the Chuang-Sirbu scaling law is
remarkably good."

Notes record each curve's fitted log-log exponent (expected ≈ 0.8) and
the worst-case relative deviation from the exact power law.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from repro.analysis.kary_asymptotic import lm_exact_via_conversion
from repro.analysis.kary_exact import num_leaf_sites
from repro.analysis.scaling import (
    CHUANG_SIRBU_EXPONENT,
    chuang_sirbu_prediction,
    fit_scaling_exponent,
)
from repro.experiments.figures.base import FigureResult
from repro.experiments.figures.registry import register_figure

__all__ = ["run_figure4_panel", "run_figure4", "FIGURE4_CASES"]

FIGURE4_CASES: Tuple[Tuple[int, Tuple[int, ...]], ...] = (
    (2, (10, 14, 17)),
    (4, (5, 7, 9)),
)


def run_figure4_panel(
    k: int,
    depths: Sequence[int],
    points: int = 40,
    max_fraction: float = 0.9,
) -> FigureResult:
    """One Figure-4 panel at fixed ``k``.

    Parameters
    ----------
    k / depths:
        Tree family.
    points:
        Size of the geometric m grid (from 1 to ``max_fraction·M``).
    max_fraction:
        Upper end of the m sweep as a fraction of the leaf count
        (m = M has no finite n and the law breaks near saturation).
    """
    result = FigureResult(
        figure_id=f"figure-4 (k={k})",
        title=f"ln(L(m)/u) vs ln m for k={k} trees, against m^0.8",
        x_label="m",
        y_label="L(m)/u",
        log_x=True,
        log_y=True,
    )
    max_m = 1.0
    for depth in depths:
        big_m = num_leaf_sites(k, depth)
        m = np.geomspace(1.0, max_fraction * big_m, points)
        normalized = lm_exact_via_conversion(k, depth, m) / depth
        result.add_series(f"k={k},D={depth}", m, normalized)
        max_m = max(max_m, float(m[-1]))

        fit = fit_scaling_exponent(m, normalized)
        law = chuang_sirbu_prediction(m)
        worst = float(np.max(np.abs(np.log(normalized) - np.log(law))))
        result.notes[f"exponent[D={depth}]"] = (
            f"{fit.slope:.3f} (law {CHUANG_SIRBU_EXPONENT}); max "
            f"|ln deviation| from m^0.8 = {worst:.3f}"
        )
    reference = np.geomspace(1.0, max_m, points)
    result.add_series("m^0.8", reference, chuang_sirbu_prediction(reference))
    return result


@register_figure("figure4")
def run_figure4(
    cases: Sequence[Tuple[int, Sequence[int]]] = FIGURE4_CASES,
    points: int = 40,
) -> Dict[str, FigureResult]:
    """Both Figure-4 panels."""
    return {
        f"figure-4{'ab'[i] if i < 2 else i}": run_figure4_panel(
            k, depths, points=points
        )
        for i, (k, depths) in enumerate(cases)
    }
