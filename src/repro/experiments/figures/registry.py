"""Name → driver registry for the reproduction's figures and studies.

Every module under :mod:`repro.experiments.figures` registers its main
driver(s) with :func:`register_figure` at import time, so anything that
wants to enumerate "what can this repo reproduce" — the CLI, the report
builder, pre-commit tooling — asks :func:`registered_figures` instead of
hard-coding a list.  The ``repro.lint`` rule RR005 enforces the
convention statically: a figure module that defines ``run_*`` drivers
but never registers one fails the lint gate.

Registered ids follow the paper's naming (``"figure1"`` … ``"figure9"``,
``"table1"``) with namespaced extras for the beyond-the-paper drivers
(``"ablation:tiebreak"``, ``"study:shared-tree"``, …).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.exceptions import ExperimentError

__all__ = [
    "register_figure",
    "registered_figures",
    "figure_ids",
    "get_figure_driver",
]

_REGISTRY: Dict[str, Callable] = {}


def register_figure(figure_id: str) -> Callable[[Callable], Callable]:
    """Decorator registering a driver callable under ``figure_id``.

    Re-decorating the *same* callable is idempotent (module reloads);
    registering a different callable under a taken id raises
    :class:`~repro.exceptions.ExperimentError`.
    """
    if not isinstance(figure_id, str) or not figure_id:
        raise ExperimentError(
            f"figure id must be a non-empty string, got {figure_id!r}"
        )

    def decorate(driver: Callable) -> Callable:
        existing = _REGISTRY.get(figure_id)
        if existing is not None and existing is not driver:
            raise ExperimentError(
                f"figure id {figure_id!r} is already registered by "
                f"{existing.__module__}.{existing.__qualname__}"
            )
        _REGISTRY[figure_id] = driver
        return driver

    return decorate


def registered_figures() -> Dict[str, Callable]:
    """A snapshot of the registry (id -> driver callable)."""
    return dict(_REGISTRY)


def figure_ids() -> List[str]:
    """All registered ids, sorted."""
    return sorted(_REGISTRY)


def get_figure_driver(figure_id: str) -> Callable:
    """The driver registered under ``figure_id``.

    Raises
    ------
    ExperimentError
        If nothing is registered under that id (the message lists what
        is available).
    """
    try:
        return _REGISTRY[figure_id]
    except KeyError:
        raise ExperimentError(
            f"no figure driver registered under {figure_id!r}; "
            f"available: {figure_ids()}"
        ) from None
