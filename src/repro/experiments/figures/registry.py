"""Name → driver registry for the reproduction's figures and studies.

Every module under :mod:`repro.experiments.figures` registers its main
driver(s) with :func:`register_figure` at import time, so anything that
wants to enumerate "what can this repo reproduce" — the CLI, the report
builder, pre-commit tooling — asks :func:`registered_figures` instead of
hard-coding a list.  The ``repro.lint`` rule RR005 enforces the
convention statically: a figure module that defines ``run_*`` drivers
but never registers one fails the lint gate.

Registered ids follow the paper's naming (``"figure1"`` … ``"figure9"``,
``"table1"``) with namespaced extras for the beyond-the-paper drivers
(``"ablation:tiebreak"``, ``"study:shared-tree"``, …).
"""

from __future__ import annotations

import functools
from typing import Callable, Dict, List

from repro import obs
from repro.exceptions import ExperimentError

__all__ = [
    "register_figure",
    "registered_figures",
    "figure_ids",
    "get_figure_driver",
]

_REGISTRY: Dict[str, Callable] = {}

_OBS_RUNS = obs.counter(
    "repro_figure_runs_total",
    "Figure/study driver invocations, by registered id.",
    labelnames=("figure",),
)


def register_figure(figure_id: str) -> Callable[[Callable], Callable]:
    """Decorator registering a driver callable under ``figure_id``.

    The registered (and returned) callable is a thin wrapper that
    counts the run in :mod:`repro.obs` and brackets it in a
    ``figure.run`` trace span — every driver is instrumented by virtue
    of following the registration convention RR005 already enforces.

    Re-decorating the *same* callable is idempotent (module reloads
    hand back the registered wrapper, whether given the wrapper or the
    original driver); registering a different callable under a taken id
    raises :class:`~repro.exceptions.ExperimentError`.
    """
    if not isinstance(figure_id, str) or not figure_id:
        raise ExperimentError(
            f"figure id must be a non-empty string, got {figure_id!r}"
        )

    def decorate(driver: Callable) -> Callable:
        inner = getattr(driver, "__wrapped__", driver)
        existing = _REGISTRY.get(figure_id)
        if existing is not None:
            if getattr(existing, "__wrapped__", existing) is inner:
                return existing
            raise ExperimentError(
                f"figure id {figure_id!r} is already registered by "
                f"{existing.__module__}.{existing.__qualname__}"
            )

        @functools.wraps(inner)
        def wrapper(*args, **kwargs):
            _OBS_RUNS.inc(figure=figure_id)
            with obs.span("figure.run", figure=figure_id):
                return inner(*args, **kwargs)

        _REGISTRY[figure_id] = wrapper
        return wrapper

    return decorate


def registered_figures() -> Dict[str, Callable]:
    """A snapshot of the registry (id -> driver callable)."""
    return dict(_REGISTRY)


def figure_ids() -> List[str]:
    """All registered ids, sorted."""
    return sorted(_REGISTRY)


def get_figure_driver(figure_id: str) -> Callable:
    """The driver registered under ``figure_id``.

    Raises
    ------
    ExperimentError
        If nothing is registered under that id (the message lists what
        is available).
    """
    try:
        return _REGISTRY[figure_id]
    except KeyError:
        raise ExperimentError(
            f"no figure driver registered under {figure_id!r}; "
            f"available: {figure_ids()}"
        ) from None
