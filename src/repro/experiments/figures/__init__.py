"""Per-table/figure reproduction drivers (see DESIGN.md experiment index)."""

from repro.experiments.figures.ablations import (
    run_sampling_ablation,
    run_source_placement_ablation,
    run_tiebreak_ablation,
    run_weighted_links_ablation,
)
from repro.experiments.figures.algorithms import (
    run_algorithm_ratio_study,
    run_kdisjoint_overhead_study,
)
from repro.experiments.figures.base import FigureResult
from repro.experiments.figures.extensions import (
    run_churn_study,
    run_popularity_study,
    run_steiner_study,
)
from repro.experiments.figures.figure1 import run_figure1, run_figure1_panel
from repro.experiments.figures.figure2 import FIGURE2_CASES, run_figure2, run_figure2_panel
from repro.experiments.figures.figure3 import (
    FIGURE3_CASES,
    run_figure3,
    run_figure3_panel,
    run_figure5,
)
from repro.experiments.figures.figure4 import FIGURE4_CASES, run_figure4, run_figure4_panel
from repro.experiments.figures.figure6 import run_figure6, run_figure6_panel
from repro.experiments.figures.figure7 import run_figure7, run_figure7_panel
from repro.experiments.figures.figure8 import run_figure8
from repro.experiments.figures.figure9 import run_figure9, run_figure9_panel
from repro.experiments.figures.registry import (
    figure_ids,
    get_figure_driver,
    register_figure,
    registered_figures,
)
from repro.experiments.figures.shared_tree_study import run_shared_tree_study
from repro.experiments.figures.table1 import Table1Result, Table1Row, run_table1

__all__ = [
    "FigureResult",
    "register_figure",
    "registered_figures",
    "figure_ids",
    "get_figure_driver",
    "run_table1",
    "Table1Result",
    "Table1Row",
    "run_figure1",
    "run_figure1_panel",
    "run_figure2",
    "run_figure2_panel",
    "FIGURE2_CASES",
    "run_figure3",
    "run_figure3_panel",
    "run_figure5",
    "FIGURE3_CASES",
    "run_figure4",
    "run_figure4_panel",
    "FIGURE4_CASES",
    "run_figure6",
    "run_figure6_panel",
    "run_figure7",
    "run_figure7_panel",
    "run_figure8",
    "run_figure9",
    "run_figure9_panel",
    "run_tiebreak_ablation",
    "run_sampling_ablation",
    "run_source_placement_ablation",
    "run_shared_tree_study",
    "run_weighted_links_ablation",
    "run_popularity_study",
    "run_churn_study",
    "run_steiner_study",
    "run_algorithm_ratio_study",
    "run_kdisjoint_overhead_study",
]
