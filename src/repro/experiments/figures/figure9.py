"""Figure 9: receiver affinity/disaffinity on binary trees.

The paper simulates ``L̂_β(n)`` on binary trees of depth 10 and 12 for
β ∈ {−10, −1, −0.1, 0, 0.1, 1, 10}, receivers allowed at all non-root
sites.  Expected shapes:

* affinity (β > 0) shrinks the tree, disaffinity grows it, with the
  effect most visible at small ``n``;
* comparing D = 10 against D = 12 at fixed ``n``, the *normalized* gap
  between β curves stays roughly constant, supporting the paper's
  conjecture that affinity vanishes from the asymptotic form (Eq. 39).

We reproduce the simulation with the Metropolis sampler of
:mod:`repro.multicast.affinity`; notes record per-β acceptance rates and
the mean inter-receiver distance ``d̂`` (which must decrease with β —
the direct check that the sampler targets the intended distribution).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.experiments.config import AffinityConfig
from repro.experiments.figures.base import FigureResult
from repro.experiments.figures.registry import register_figure
from repro.graph.paths import bfs
from repro.graph.reachability import reachability_profile
from repro.multicast.affinity import KaryDistanceOracle, sample_weighted_tree_size
from repro.multicast.tree import MulticastTreeCounter
from repro.topology.kary import kary_tree
from repro.utils.rng import RandomState, ensure_rng, spawn_rngs
from repro.utils.stats import geometric_spaced

__all__ = ["run_figure9_panel", "run_figure9"]


def run_figure9_panel(
    depth: int,
    k: int = 2,
    config: Optional[AffinityConfig] = None,
    n_values: Optional[Sequence[int]] = None,
    rng: RandomState = None,
) -> FigureResult:
    """One Figure-9 panel: a depth-``depth`` k-ary tree, swept over β.

    Parameters
    ----------
    depth / k:
        Tree shape (the paper uses binary trees, depths 10 and 12).
    config:
        β grid and MCMC schedule.
    n_values:
        Receiver counts; default geometric 1..4·M-ish like the paper's
        1..10^4.
    rng:
        Base randomness; every (β, n) cell gets its own stream.
    """
    config = config or AffinityConfig()
    config.validate()
    tree = kary_tree(k, depth)
    forest = bfs(tree.graph, tree.root)
    counter = MulticastTreeCounter(forest)
    oracle = KaryDistanceOracle(tree)
    pool = tree.non_root_nodes()
    u_bar = reachability_profile(tree.graph, tree.root).mean_distance

    if n_values is None:
        n_values = geometric_spaced(1, 4 * tree.num_leaves, 9).tolist()
    n_list = [int(n) for n in n_values]

    result = FigureResult(
        figure_id=f"figure-9 (D={depth})",
        title=f"Lhat_beta(n)/(n*u) vs ln n on a k={k}, D={depth} tree",
        x_label="n",
        y_label="Lhat_beta(n)/(n*u)",
        log_x=True,
    )
    streams = spawn_rngs(ensure_rng(rng), len(config.betas) * len(n_list))
    stream_iter = iter(streams)
    for beta in config.betas:
        ys = []
        acceptances = []
        pair_dists = []
        for n in n_list:
            estimate = sample_weighted_tree_size(
                counter,
                oracle,
                pool,
                n=n,
                beta=beta,
                num_samples=config.num_samples,
                burn_in_sweeps=config.burn_in_sweeps,
                thin_sweeps=config.thin_sweeps,
                rng=next(stream_iter),
            )
            ys.append(estimate.mean_tree_size / (n * u_bar))
            acceptances.append(estimate.acceptance_rate)
            if estimate.mean_pair_distance == estimate.mean_pair_distance:
                pair_dists.append(estimate.mean_pair_distance)
        result.add_series(f"beta={beta:g}", n_list, ys)
        note = f"acceptance mean {float(np.mean(acceptances)):.2f}"
        if pair_dists:
            note += f", mean d^ {float(np.mean(pair_dists)):.2f}"
        result.notes[f"beta={beta:g}"] = note
    result.notes["tree"] = (
        f"k={k}, D={depth}, nodes={tree.num_nodes}, u={u_bar:.3f}"
    )
    return result


@register_figure("figure9")
def run_figure9(
    depths: Tuple[int, ...] = (10, 12),
    k: int = 2,
    config: Optional[AffinityConfig] = None,
    n_values: Optional[Sequence[int]] = None,
    rng: RandomState = None,
) -> Dict[str, FigureResult]:
    """Both Figure-9 panels (depths 10 and 12 by default)."""
    streams = spawn_rngs(ensure_rng(rng), len(depths))
    return {
        f"figure-9 (D={depth})": run_figure9_panel(
            depth, k=k, config=config, n_values=n_values, rng=stream
        )
        for depth, stream in zip(depths, streams)
    }
