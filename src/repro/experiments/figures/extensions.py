"""Extension studies beyond the paper's evaluation.

Two follow-on questions the paper's framing invites but never runs:

* :func:`run_popularity_study` — what does per-site *popularity* skew
  (Zipf audiences) do to the scaling law?  Spatial clustering (Section
  5) barely moves the asymptotics; popularity skew instead shrinks the
  effective site population, so the ``L(m)`` curve saturates earlier and
  the fitted exponent drops with skew.
* :func:`run_churn_study` — does the *time-averaged* tree size of a
  churning group match the paper's static ``L̂(n)`` at the stationary
  membership?  It should (PASTA-style), and measuring it validates the
  incremental graft/prune engine against the closed form.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.analysis.kary_exact import lhat_throughout
from repro.experiments.config import SweepConfig
from repro.experiments.figures.base import FigureResult
from repro.experiments.figures.registry import register_figure
from repro.graph.paths import bfs
from repro.multicast.dynamics import DynamicGroup
from repro.multicast.popularity import (
    effective_sites,
    sample_popular_receivers,
    zipf_site_weights,
)
from repro.multicast.tree import MulticastTreeCounter
from repro.topology.kary import kary_tree
from repro.topology.registry import build_topology
from repro.utils.rng import RandomState, ensure_rng, spawn_rngs
from repro.utils.stats import power_law_fit

__all__ = ["run_popularity_study", "run_churn_study", "run_steiner_study"]


@register_figure("study:popularity")
def run_popularity_study(
    topology: str = "ts1000",
    scale: float = 0.3,
    skews: Sequence[float] = (0.0, 0.8, 1.5),
    num_sources: int = 6,
    num_receiver_sets: int = 10,
    sweep: Optional[SweepConfig] = None,
    rng: RandomState = None,
) -> FigureResult:
    """Sweep ``L(n)/ū`` under Zipf-skewed receiver popularity.

    One popularity assignment is drawn per skew (ranks scattered over
    random sites) and receivers are drawn with replacement from it; the
    ``skew = 0`` series is the paper's uniform baseline.
    """
    sweep = sweep or SweepConfig(points=8)
    streams = spawn_rngs(ensure_rng(rng), 2 + len(skews))
    graph = build_topology(topology, scale=scale, rng=streams[0])
    sizes = sweep.sizes(max(2, graph.num_nodes))
    source_rng = streams[1]

    result = FigureResult(
        figure_id="extension-popularity",
        title=f"L(n)/u under Zipf receiver popularity on {topology}",
        x_label="n",
        y_label="L(n)/u",
        log_x=True,
        log_y=True,
    )
    for skew, stream in zip(skews, streams[2:]):
        weights = zipf_site_weights(graph.num_nodes, skew, rng=stream)
        ratios = []
        for size in sizes:
            total_ratio = 0.0
            draws = 0
            for _ in range(num_sources):
                source = int(source_rng.integers(0, graph.num_nodes))
                counter = MulticastTreeCounter(bfs(graph, source))
                for _ in range(num_receiver_sets):
                    receivers = sample_popular_receivers(
                        weights, size, exclude=[source], rng=stream
                    )
                    links = counter.tree_size(receivers)
                    mean_path = counter.unicast_total(receivers) / size
                    if mean_path > 0:
                        total_ratio += links / mean_path
                        draws += 1
            ratios.append(total_ratio / max(1, draws))
        result.add_series(f"skew={skew:g}", sizes, ratios)
        fit = power_law_fit(sizes, ratios)
        m_hat = effective_sites(weights, int(sizes[-1]))
        result.notes[f"skew={skew:g}"] = (
            f"exponent {fit.slope:.3f}; effective sites at n={sizes[-1]}: "
            f"{m_hat:.0f} of {graph.num_nodes}"
        )
    return result


@register_figure("study:churn")
def run_churn_study(
    k: int = 2,
    depth: int = 8,
    targets: Sequence[int] = (4, 16, 64, 256),
    events_per_target: int = 4000,
    rng: RandomState = None,
) -> FigureResult:
    """Steady-state churn tree size vs the static closed form.

    For each target membership the churn process runs to stationarity
    and its time-averaged tree size is compared against Eq. 21 evaluated
    at the *measured* mean membership.
    """
    tree = kary_tree(k, depth)
    forest = bfs(tree.graph, tree.root)
    streams = spawn_rngs(ensure_rng(rng), len(targets))

    result = FigureResult(
        figure_id="extension-churn",
        title=f"churning group vs static Lhat on a k={k}, D={depth} tree",
        x_label="target members",
        y_label="tree links",
        log_x=True,
        log_y=True,
    )
    measured = []
    static = []
    for target, stream in zip(targets, streams):
        group = DynamicGroup(forest)
        stats = group.simulate_churn(
            target_members=target, events=events_per_target, rng=stream
        )
        measured.append(stats.mean_tree_links)
        static.append(float(lhat_throughout(k, depth, stats.mean_members)))
        result.notes[f"target={target}"] = (
            f"mean members {stats.mean_members:.1f}, churn tree "
            f"{stats.mean_tree_links:.1f}, static {static[-1]:.1f}, "
            f"graft {stats.mean_graft_cost:.2f} / prune "
            f"{stats.mean_prune_cost:.2f} links per event"
        )
    result.add_series("churn (time average)", targets, measured)
    result.add_series("static Lhat(E[members])", targets, static)
    rel = np.abs(np.asarray(measured) - np.asarray(static)) / np.asarray(static)
    result.notes["max relative gap"] = f"{float(rel.max()):.4f}"
    return result


@register_figure("study:steiner")
def run_steiner_study(
    topology: str = "ts1000",
    scale: float = 0.3,
    num_sources: int = 4,
    num_receiver_sets: int = 8,
    sweep: Optional[SweepConfig] = None,
    rng: RandomState = None,
) -> FigureResult:
    """Shortest-path trees vs near-optimal Steiner trees.

    For each group size, measures the SPT size ``L(m)`` and the
    Takahashi-Matsuyama heuristic tree on the *same* receiver draws.
    Findings: the fitted scaling exponent is the same for both — the
    law is a property of the network, not of shortest-path routing —
    while the SPT premium over the heuristic depends on path diversity:
    under 1% on sparse topologies (ts1000), but growing with m up to
    ~20% on dense multipath ones (ts1008), where equal-cost branches
    that a Steiner tree merges are paid separately by the SPT.
    """
    from repro.multicast.builders import build_tree
    from repro.multicast.sampling import sample_distinct_receivers
    from repro.multicast.tree import MulticastTreeCounter
    from repro.graph.paths import bfs as run_bfs
    from repro.utils.stats import power_law_fit

    streams = spawn_rngs(ensure_rng(rng), 2)
    graph = build_topology(topology, scale=scale, rng=streams[0])
    sweep = sweep or SweepConfig(points=7)
    sizes = sweep.sizes(max(2, (graph.num_nodes - 1) // 4))
    sample_rng = streams[1]

    spt_means = []
    steiner_means = []
    draws = num_sources * num_receiver_sets
    for size in sizes:
        spt_total = 0.0
        steiner_total = 0.0
        for _ in range(num_sources):
            source = int(sample_rng.integers(0, graph.num_nodes))
            counter = MulticastTreeCounter(run_bfs(graph, source))
            for _ in range(num_receiver_sets):
                receivers = sample_distinct_receivers(
                    graph.num_nodes, size, source=source, rng=sample_rng
                )
                spt_total += counter.tree_size(receivers)
                steiner_total += build_tree(
                    "steiner-tm", graph, source, receivers,
                    forest=counter.forest,
                ).num_links
        spt_means.append(spt_total / draws)
        steiner_means.append(steiner_total / draws)

    result = FigureResult(
        figure_id="extension-steiner",
        title=f"SPT vs Takahashi-Matsuyama Steiner trees on {topology}",
        x_label="m",
        y_label="mean tree links",
        log_x=True,
        log_y=True,
    )
    result.add_series("shortest-path tree", sizes, spt_means)
    result.add_series("steiner heuristic", sizes, steiner_means)
    spt_fit = power_law_fit(sizes, spt_means)
    steiner_fit = power_law_fit(sizes, steiner_means)
    waste = np.asarray(spt_means) / np.asarray(steiner_means) - 1.0
    result.notes["exponent[spt]"] = f"{spt_fit.slope:.3f}"
    result.notes["exponent[steiner]"] = f"{steiner_fit.slope:.3f}"
    result.notes["spt waste"] = (
        f"{100 * waste[0]:.1f}% at m={sizes[0]} down to "
        f"{100 * waste[-1]:.1f}% at m={sizes[-1]}"
    )
    return result
