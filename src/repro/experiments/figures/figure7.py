"""Figure 7: ``ln T(r)`` versus ``r`` for the topology suite.

``T(r)`` — the number of sites within ``r`` hops, averaged over the
``Nsource`` random sources — exposes each network's reachability growth.
Expected shapes: r100, ts1000, ts1008, Internet and AS grow exponentially
(straight lines in this plot) before saturating at ``T(r) ≈ M``; the two
transit-stub networks grow at very similar rates despite their different
degrees; ti5000 shows pronounced concavity and ARPA/MBone milder
concavity (sub-exponential growth).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.experiments.figures.base import FigureResult
from repro.experiments.figures.registry import register_figure
from repro.graph.reachability import average_profile, classify_growth
from repro.topology.registry import GENERATED_TOPOLOGIES, REAL_TOPOLOGIES, build_topology
from repro.utils.rng import RandomState, ensure_rng, spawn_rngs
from repro.utils.stats import linear_fit

__all__ = ["run_figure7_panel", "run_figure7"]


def run_figure7_panel(
    names: Sequence[str],
    panel_id: str,
    scale: float = 0.25,
    num_sources: int = 50,
    rng: RandomState = None,
) -> FigureResult:
    """One Figure-7 panel: averaged ``ln T(r)`` curves.

    Notes record each network's growth class and the fitted exponential
    rate λ (slope of ``ln T(r)`` in the growth region), which for the
    transit-stub pair should come out nearly equal — the paper's
    explanation for their matching Figure-6 slopes.
    """
    streams = spawn_rngs(ensure_rng(rng), len(names))
    result = FigureResult(
        figure_id=panel_id,
        title="ln T(r) vs r (reachability growth)",
        x_label="r",
        y_label="T(r)",
        log_y=True,
    )
    for name, stream in zip(names, streams):
        graph = build_topology(name, scale=scale, rng=stream)
        profile = average_profile(graph, num_sources=num_sources, rng=stream)
        t = profile.mean_cumulative
        radii = profile.radii
        result.add_series(name, radii.astype(float), t)

        grow = np.flatnonzero(t <= 0.9 * t[-1])
        growth = classify_growth(profile)
        if grow.size >= 2:
            fit = linear_fit(grow.astype(float), np.log(t[grow]))
            result.notes[f"growth[{name}]"] = (
                f"{growth}, lambda={fit.slope:.3f} (R^2={fit.r_squared:.3f})"
            )
        else:
            result.notes[f"growth[{name}]"] = growth
    return result


@register_figure("figure7")
def run_figure7(
    scale: float = 0.25,
    num_sources: int = 50,
    rng: RandomState = None,
) -> Dict[str, FigureResult]:
    """Both Figure-7 panels (generated and real topologies)."""
    streams = spawn_rngs(ensure_rng(rng), 2)
    return {
        "figure-7a": run_figure7_panel(
            GENERATED_TOPOLOGIES,
            "figure-7a",
            scale=scale,
            num_sources=num_sources,
            rng=streams[0],
        ),
        "figure-7b": run_figure7_panel(
            REAL_TOPOLOGIES,
            "figure-7b",
            scale=scale,
            num_sources=num_sources,
            rng=streams[1],
        ),
    }
