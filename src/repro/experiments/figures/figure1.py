"""Figure 1: the Chuang-Sirbu law on generated and real topologies.

The paper plots ``ln(L(m)/ū)`` against ``ln m`` for four generated
networks (panel a: r100, ts1000, ts1008, ti5000) and four real ones
(panel b: ARPA, MBone, Internet, AS), against the reference line
``m^0.8``.  "The fit … is by no means exact, but is remarkably good
considering the variety of networks considered."

This driver runs the Section-2 Monte-Carlo methodology on any subset of
the suite, appends the ``m^0.8`` reference, and records each topology's
fitted exponent in the notes — the quantitative form of "remarkably
good" (the paper-scale exponents land roughly in 0.7–0.9).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.analysis.scaling import CHUANG_SIRBU_EXPONENT, chuang_sirbu_prediction
from repro.experiments.config import MonteCarloConfig, QUICK_MONTE_CARLO, SweepConfig
from repro.experiments.figures.base import FigureResult
from repro.experiments.figures.registry import register_figure
from repro.experiments.results import SweepMeasurement
from repro.experiments.runner import measure_sweep
from repro.topology.registry import GENERATED_TOPOLOGIES, REAL_TOPOLOGIES, build_topology
from repro.utils.rng import RandomState, ensure_rng, spawn_rngs

__all__ = ["run_figure1", "run_figure1_panel"]


def run_figure1_panel(
    names: Sequence[str],
    panel_id: str,
    scale: float = 0.25,
    config: Optional[MonteCarloConfig] = None,
    sweep: Optional[SweepConfig] = None,
    max_receiver_fraction: float = 0.25,
    rng: RandomState = None,
) -> FigureResult:
    """Measure one Figure-1 panel over the topologies ``names``.

    Parameters
    ----------
    names:
        Topologies to include.
    panel_id:
        ``"figure-1a"`` or ``"figure-1b"`` (or free-form).
    scale:
        Topology size scale (1.0 = paper scale).
    config:
        Monte-Carlo settings (default: quick).
    sweep:
        Group-size grid; its maximum defaults to
        ``max_receiver_fraction`` of each network.
    max_receiver_fraction:
        Per-network cap on m as a fraction of eligible sites.
    rng:
        Base randomness.
    """
    config = config or QUICK_MONTE_CARLO
    sweep = sweep or SweepConfig(points=10)
    streams = spawn_rngs(ensure_rng(rng), len(names))

    result = FigureResult(
        figure_id=panel_id,
        title="ln(L(m)/u) vs ln m compared with the m^0.8 law",
        x_label="m",
        y_label="L(m)/u",
        log_x=True,
        log_y=True,
    )
    union_m: set = set()
    for name, stream in zip(names, streams):
        graph = build_topology(name, scale=scale, rng=stream)
        limit = max(2, int((graph.num_nodes - 1) * max_receiver_fraction))
        sizes = sweep.sizes(limit)
        measurement = measure_sweep(
            graph,
            sizes,
            mode="distinct",
            config=config,
            topology=name,
            rng=stream,
        )
        result.add_series(name, sizes, measurement.normalized_tree_size)
        union_m.update(sizes)
        if sum(1 for s in sizes if s > 1) >= 2:
            fit = measurement.fit_exponent()
            result.notes[f"exponent[{name}]"] = (
                f"{fit.slope:.3f} (r^2={fit.r_squared:.3f}, "
                f"n={graph.num_nodes})"
            )
        else:
            result.notes[f"exponent[{name}]"] = (
                f"n/a (network of {graph.num_nodes} nodes too small to fit)"
            )
    reference = sorted(union_m)
    result.add_series(
        f"m^{CHUANG_SIRBU_EXPONENT}",
        reference,
        chuang_sirbu_prediction(reference),
    )
    return result


@register_figure("figure1")
def run_figure1(
    scale: float = 0.25,
    config: Optional[MonteCarloConfig] = None,
    sweep: Optional[SweepConfig] = None,
    rng: RandomState = None,
) -> Dict[str, FigureResult]:
    """Both Figure-1 panels: generated (a) and real (b) topologies."""
    streams = spawn_rngs(ensure_rng(rng), 2)
    return {
        "figure-1a": run_figure1_panel(
            GENERATED_TOPOLOGIES,
            "figure-1a",
            scale=scale,
            config=config,
            sweep=sweep,
            rng=streams[0],
        ),
        "figure-1b": run_figure1_panel(
            REAL_TOPOLOGIES,
            "figure-1b",
            scale=scale,
            config=config,
            sweep=sweep,
            rng=streams[1],
        ),
    }
