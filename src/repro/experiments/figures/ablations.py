"""Ablations of the methodology knobs called out in DESIGN.md §5.

These are not paper figures; they probe the design choices the
reproduction had to make and quantify how much each one matters:

* **Tie-breaking** (:func:`run_tiebreak_ablation`): BFS ``"first"``
  parents vs ``"random"`` equal-cost choices.  On trees the policies are
  identical; on meshy graphs random tie-breaking can only reshuffle
  equal-length paths, so the measured ``L(m)`` difference should be a few
  percent at most — confirming the paper's results don't hinge on an
  unstated router model.
* **Distinct vs with-replacement** (:func:`run_sampling_ablation`):
  measures ``L(m)`` directly and via ``L̂(n(m))`` + Eq. 1, validating the
  paper's conversion on real generators rather than only on k-ary trees.
* **Source placement** (:func:`run_source_placement_ablation`): uniform
  random sources (the methodology) vs max-degree sources (a hub ISP) —
  the scaling exponent should be robust to this.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.analysis.scaling import draws_for_expected_distinct
from repro.experiments.config import MonteCarloConfig, QUICK_MONTE_CARLO, SweepConfig
from repro.experiments.figures.base import FigureResult
from repro.experiments.figures.registry import register_figure
from repro.experiments.runner import measure_single_source_sweep, measure_sweep
from repro.topology.registry import build_topology
from repro.utils.rng import RandomState, ensure_rng, spawn_rngs

__all__ = [
    "run_tiebreak_ablation",
    "run_sampling_ablation",
    "run_source_placement_ablation",
    "run_weighted_links_ablation",
]


def _sizes_for(graph, sweep: Optional[SweepConfig], fraction: float):
    sweep = sweep or SweepConfig(points=8)
    limit = max(2, int((graph.num_nodes - 1) * fraction))
    return sweep.sizes(limit)


@register_figure("ablation:tiebreak")
def run_tiebreak_ablation(
    topology: str = "ts1008",
    scale: float = 0.25,
    config: Optional[MonteCarloConfig] = None,
    sweep: Optional[SweepConfig] = None,
    rng: RandomState = None,
) -> FigureResult:
    """Compare ``first`` vs ``random`` shortest-path tie-breaking.

    Uses a dense topology by default — tie-breaking only matters where
    equal-cost multipaths exist.
    """
    config = config or QUICK_MONTE_CARLO
    streams = spawn_rngs(ensure_rng(rng), 3)
    graph = build_topology(topology, scale=scale, rng=streams[0])
    sizes = _sizes_for(graph, sweep, 0.25)

    result = FigureResult(
        figure_id="ablation-tiebreak",
        title=f"L(m)/u on {topology}: 'first' vs 'random' SPT tie-breaking",
        x_label="m",
        y_label="L(m)/u",
        log_x=True,
        log_y=True,
    )
    curves = {}
    for policy, stream in zip(("first", "random"), streams[1:]):
        cfg = MonteCarloConfig(
            num_sources=config.num_sources,
            num_receiver_sets=config.num_receiver_sets,
            tie_break=policy,
            seed=config.seed,
        )
        measurement = measure_sweep(
            graph, sizes, mode="distinct", config=cfg,
            topology=topology, rng=stream,
        )
        curves[policy] = measurement.normalized_tree_size
        result.add_series(f"tie={policy}", sizes, curves[policy])
        fit = measurement.fit_exponent()
        result.notes[f"exponent[{policy}]"] = f"{fit.slope:.3f}"
    gap = np.abs(curves["first"] - curves["random"]) / curves["first"]
    result.notes["max relative gap"] = f"{float(gap.max()):.4f}"
    return result


@register_figure("ablation:sampling")
def run_sampling_ablation(
    topology: str = "ts1000",
    scale: float = 0.25,
    config: Optional[MonteCarloConfig] = None,
    sweep: Optional[SweepConfig] = None,
    rng: RandomState = None,
) -> FigureResult:
    """Validate Eq. 1 on a real generator: ``L(m)`` vs ``L̂(n(m))``.

    For each m the with-replacement sweep is evaluated at
    ``n = ln(1 − m/M)/ln(1 − 1/M)`` (rounded); if the conversion is
    sound the two mean-tree-size curves coincide within Monte-Carlo
    noise.
    """
    config = config or QUICK_MONTE_CARLO
    streams = spawn_rngs(ensure_rng(rng), 3)
    graph = build_topology(topology, scale=scale, rng=streams[0])
    sizes = _sizes_for(graph, sweep, 0.5)
    population = graph.num_nodes - 1  # receivers exclude the source

    direct = measure_sweep(
        graph, sizes, mode="distinct", config=config,
        topology=topology, rng=streams[1],
    )
    n_sizes = [
        max(1, int(round(float(draws_for_expected_distinct(m, population)))))
        for m in sizes
    ]
    converted = measure_sweep(
        graph, n_sizes, mode="replacement", config=config,
        topology=topology, rng=streams[2],
    )

    result = FigureResult(
        figure_id="ablation-sampling",
        title=f"L(m) vs Lhat(n(m)) on {topology} (Eq. 1 conversion)",
        x_label="m",
        y_label="mean tree size",
        log_x=True,
    )
    result.add_series("L(m) distinct", sizes, direct.mean_tree_size)
    result.add_series("Lhat(n(m)) converted", sizes, converted.mean_tree_size)
    rel = np.abs(
        np.asarray(direct.mean_tree_size) - np.asarray(converted.mean_tree_size)
    ) / np.asarray(direct.mean_tree_size)
    result.notes["max relative error"] = f"{float(rel.max()):.4f}"
    result.notes["n(m) grid"] = str(n_sizes)
    return result


@register_figure("ablation:source")
def run_source_placement_ablation(
    topology: str = "as",
    scale: float = 0.25,
    num_receiver_sets: int = 40,
    sweep: Optional[SweepConfig] = None,
    rng: RandomState = None,
) -> FigureResult:
    """Random-source vs max-degree-source scaling curves."""
    streams = spawn_rngs(ensure_rng(rng), 3)
    graph = build_topology(topology, scale=scale, rng=streams[0])
    sizes = _sizes_for(graph, sweep, 0.25)

    random_source = int(streams[1].integers(0, graph.num_nodes))
    hub_source = int(np.argmax(graph.degrees))

    result = FigureResult(
        figure_id="ablation-source",
        title=f"L(m)/u on {topology}: random vs max-degree source",
        x_label="m",
        y_label="L(m)/u",
        log_x=True,
        log_y=True,
    )
    for label, source, stream in (
        (f"random (node {random_source})", random_source, streams[1]),
        (f"hub (node {hub_source}, deg {graph.degree(hub_source)})",
         hub_source, streams[2]),
    ):
        measurement = measure_single_source_sweep(
            graph,
            source,
            sizes,
            mode="distinct",
            num_receiver_sets=num_receiver_sets,
            rng=stream,
        )
        result.add_series(label, sizes, measurement.normalized_tree_size)
        fit = measurement.fit_exponent()
        result.notes[f"exponent[{label}]"] = f"{fit.slope:.3f}"
    return result


@register_figure("ablation:weighted")
def run_weighted_links_ablation(
    topology: str = "ts1000",
    scale: float = 0.3,
    num_sources: int = 6,
    num_receiver_sets: int = 10,
    weight_spread: float = 4.0,
    sweep: Optional[SweepConfig] = None,
    rng: RandomState = None,
) -> FigureResult:
    """Does the scaling law survive heterogeneous link costs?

    The paper explicitly counts unweighted links.  Here every link gets
    an independent uniform cost in ``[1, weight_spread]``, trees are
    built by Dijkstra, and both the link count and the *weighted* tree
    cost are swept over group sizes.  Expected: the log-log slope of the
    weighted cost stays in the same band as the unweighted exponent —
    the law is about tree *shape*, not link metrics.
    """
    from repro.graph.paths import dijkstra, uniform_arc_weights
    from repro.multicast.sampling import sample_distinct_receivers
    from repro.multicast.weighted import weighted_tree_cost
    from repro.utils.stats import power_law_fit

    streams = spawn_rngs(ensure_rng(rng), 3)
    graph = build_topology(topology, scale=scale, rng=streams[0])
    sizes = _sizes_for(graph, sweep, 0.25)

    # Symmetric random arc weights: draw per undirected edge.
    weights = uniform_arc_weights(graph)
    edge_rng = streams[1]
    for u, v in graph.edges():
        w = float(edge_rng.uniform(1.0, weight_spread))
        for a, b in ((u, v), (v, u)):
            row = graph.neighbors(a)
            pos = graph.indptr[a] + int(np.searchsorted(row, b))
            weights[pos] = w

    sample_rng = streams[2]
    mean_links = []
    mean_weighted = []
    mean_unicast_weight = []
    draws = num_sources * num_receiver_sets
    for size in sizes:
        links_total = 0.0
        weight_total = 0.0
        unicast_total = 0.0
        for _ in range(num_sources):
            source = int(sample_rng.integers(0, graph.num_nodes))
            forest = dijkstra(graph, source, weights)
            for _ in range(num_receiver_sets):
                receivers = sample_distinct_receivers(
                    graph.num_nodes, size, source=source, rng=sample_rng
                )
                cost = weighted_tree_cost(graph, forest, weights, receivers)
                links_total += cost.num_links
                weight_total += cost.total_weight
                unicast_total += cost.unicast_weight
        mean_links.append(links_total / draws)
        mean_weighted.append(weight_total / draws)
        mean_unicast_weight.append(unicast_total / draws)

    result = FigureResult(
        figure_id="ablation-weighted",
        title=f"L(m) with uniform[1, {weight_spread:g}] link costs on {topology}",
        x_label="m",
        y_label="mean tree cost",
        log_x=True,
        log_y=True,
    )
    result.add_series("tree links", sizes, mean_links)
    result.add_series("tree weight", sizes, mean_weighted)
    result.add_series("unicast weight", sizes, mean_unicast_weight)

    link_fit = power_law_fit(sizes, mean_links)
    weight_fit = power_law_fit(sizes, mean_weighted)
    result.notes["exponent[links]"] = f"{link_fit.slope:.3f}"
    result.notes["exponent[weight]"] = f"{weight_fit.slope:.3f}"
    return result
