"""Figures 3 and 5: ``L̂(n)/n`` versus ``ln(n/M)`` for k-ary trees.

Figure 3 evaluates the exact Eq. 4 (receivers at the leaves); Figure 5
the exact Eq. 21 (receivers throughout the tree).  Both are compared to
the asymptotic straight line of Eq. 16,

    L̂(n)/n = 1/ln k − ln(n/M)/ln k .

The paper's three observations, which the notes quantify:

1. the curves are reasonably linear for intermediate ``n/M``, concave
   for ``n < 5``-ish, and very slightly convex near ``n = M``;
2. the slopes of the linear portions are close to ``−1/ln k``;
3. the intercepts deviate slightly from ``1/ln k`` (an additive error
   from the stacked approximations) — and for receivers-throughout the
   constant shifts again while the slope stays put.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from repro.analysis.kary_asymptotic import lhat_per_receiver_predicted
from repro.analysis.kary_exact import lhat_leaf, lhat_throughout, num_leaf_sites
from repro.experiments.figures.base import FigureResult
from repro.experiments.figures.registry import register_figure
from repro.utils.stats import linear_fit

__all__ = [
    "run_figure3_panel",
    "run_figure3",
    "run_figure5",
    "FIGURE3_CASES",
]

#: The paper's panels: (k, depths) — Figure 3 uses D = 10, 14, 17 for
#: k = 2 and D = 5, 7, 9 for k = 4; Figure 5 the same.
FIGURE3_CASES: Tuple[Tuple[int, Tuple[int, ...]], ...] = (
    (2, (10, 14, 17)),
    (4, (5, 7, 9)),
)


def _n_grid(big_m: float, points: int) -> np.ndarray:
    """Geometric n grid from 1 to M (continuous n is fine: Eq. 4 is
    analytic in n)."""
    return np.geomspace(1.0, big_m, points)


def run_figure3_panel(
    k: int,
    depths: Sequence[int],
    receivers: str = "leaf",
    points: int = 60,
) -> FigureResult:
    """One panel of Figure 3 (``receivers="leaf"``) or 5 (``"throughout"``).

    Notes record, per depth, the OLS slope/intercept of the exact curve
    over the paper's linear regime ``5 < n < M/4`` against the predicted
    ``−1/ln k`` and ``1/ln k``.
    """
    if receivers not in ("leaf", "throughout"):
        raise ValueError(f'receivers must be "leaf" or "throughout": {receivers!r}')
    figure_no = "3" if receivers == "leaf" else "5"
    result = FigureResult(
        figure_id=f"figure-{figure_no} (k={k})",
        title=(
            f"Lhat(n)/n vs n/M for k={k}, receivers {receivers}, against "
            "1/ln k - ln(n/M)/ln k"
        ),
        x_label="n/M",
        y_label="Lhat(n)/n",
        log_x=True,
    )
    for depth in depths:
        big_m = num_leaf_sites(k, depth)
        n = _n_grid(big_m, points)
        if receivers == "leaf":
            lhat = lhat_leaf(k, depth, n)
        else:
            lhat = lhat_throughout(k, depth, n)
        ratio = n / big_m
        result.add_series(f"k={k},D={depth}", ratio, lhat / n)

        linear = (n > 5.0) & (n < big_m / 4.0)
        if np.count_nonzero(linear) >= 2:
            fit = linear_fit(np.log(ratio[linear]), (lhat / n)[linear])
            result.notes[f"fit[D={depth}]"] = (
                f"slope {fit.slope:.4f} (predicted {-1/np.log(k):.4f}), "
                f"intercept {fit.intercept:.4f} (predicted {1/np.log(k):.4f})"
            )
    # Reference line over the widest depth's range.
    big_m = num_leaf_sites(k, max(depths))
    ratio = _n_grid(big_m, points) / big_m
    result.add_series(
        "1/ln k - ln(n/M)/ln k", ratio, lhat_per_receiver_predicted(k, ratio)
    )
    return result


@register_figure("figure3")
def run_figure3(
    cases: Sequence[Tuple[int, Sequence[int]]] = FIGURE3_CASES,
    points: int = 60,
) -> Dict[str, FigureResult]:
    """Figure 3: both panels, receivers at the leaves."""
    return {
        f"figure-3{'ab'[i] if i < 2 else i}": run_figure3_panel(
            k, depths, receivers="leaf", points=points
        )
        for i, (k, depths) in enumerate(cases)
    }


@register_figure("figure5")
def run_figure5(
    cases: Sequence[Tuple[int, Sequence[int]]] = FIGURE3_CASES,
    points: int = 60,
) -> Dict[str, FigureResult]:
    """Figure 5: both panels, receivers throughout the tree."""
    return {
        f"figure-5{'ab'[i] if i < 2 else i}": run_figure3_panel(
            k, depths, receivers="throughout", points=points
        )
        for i, (k, depths) in enumerate(cases)
    }
