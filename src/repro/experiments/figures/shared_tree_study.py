"""Shared-tree vs source-tree comparison (the paper's deferred footnote).

Footnote 1 of the paper restricts the analysis to source-specific trees
and points to Wei & Estrin for the shared-tree comparison.  This driver
supplies it: for a topology and a sweep of group sizes it measures

* the source-specific tree size ``L(m)`` (the paper's quantity),
* the shared-tree delivery cost for three core-selection policies.

Expected outcome (consistent with Wei & Estrin): a well-placed core
(approximate 1-median) costs within ~10–30% of the source tree, a random
core clearly more, and the gap narrows as the group grows — large groups
force any tree to span most of the network.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.experiments.config import MonteCarloConfig, QUICK_MONTE_CARLO, SweepConfig
from repro.experiments.figures.base import FigureResult
from repro.experiments.figures.registry import register_figure
from repro.graph.paths import bfs
from repro.multicast.sampling import sample_distinct_receivers
from repro.multicast.shared_tree import select_core, shared_tree_cost
from repro.multicast.tree import MulticastTreeCounter
from repro.topology.registry import build_topology
from repro.utils.rng import RandomState, ensure_rng, spawn_rngs

__all__ = ["run_shared_tree_study"]

CORE_STRATEGIES = ("random", "max-degree", "min-distance-sample")


@register_figure("study:shared-tree")
def run_shared_tree_study(
    topology: str = "ts1000",
    scale: float = 0.3,
    config: Optional[MonteCarloConfig] = None,
    sweep: Optional[SweepConfig] = None,
    rng: RandomState = None,
) -> FigureResult:
    """Measure shared-vs-source tree cost over a group-size sweep.

    Parameters
    ----------
    topology / scale:
        The network under test.
    config:
        Sample counts: ``num_sources`` (source, receiver-set) draws per
        size per strategy.
    sweep:
        Group-size grid (capped at a quarter of the network).
    rng:
        Base randomness.
    """
    config = config or QUICK_MONTE_CARLO
    config.validate()
    sweep = sweep or SweepConfig(points=7)
    master = ensure_rng(rng)
    build_rng, sample_rng = spawn_rngs(master, 2)

    graph = build_topology(topology, scale=scale, rng=build_rng)
    sizes = sweep.sizes(max(2, (graph.num_nodes - 1) // 4))

    result = FigureResult(
        figure_id="shared-tree-study",
        title=f"source tree vs shared tree on {topology} "
        f"({graph.num_nodes} nodes)",
        x_label="m",
        y_label="mean delivery links",
        log_x=True,
    )

    # Pre-build one counter per core strategy (the core is a property of
    # the network, not of the group).
    cores = {
        strategy: select_core(graph, strategy=strategy, rng=sample_rng)
        for strategy in CORE_STRATEGIES
    }
    core_counters = {
        strategy: MulticastTreeCounter(bfs(graph, core))
        for strategy, core in cores.items()
    }

    num_draws = config.num_sources * config.num_receiver_sets
    source_means = []
    shared_means = {strategy: [] for strategy in CORE_STRATEGIES}
    for size in sizes:
        source_total = 0.0
        shared_totals = dict.fromkeys(CORE_STRATEGIES, 0.0)
        for _ in range(num_draws):
            source = int(sample_rng.integers(0, graph.num_nodes))
            receivers = sample_distinct_receivers(
                graph.num_nodes, size, source=source, rng=sample_rng
            )
            source_total += MulticastTreeCounter(
                bfs(graph, source)
            ).tree_size(receivers)
            for strategy in CORE_STRATEGIES:
                cost = shared_tree_cost(
                    graph,
                    cores[strategy],
                    source,
                    receivers,
                    counter=core_counters[strategy],
                )
                shared_totals[strategy] += cost.delivery_cost
        source_means.append(source_total / num_draws)
        for strategy in CORE_STRATEGIES:
            shared_means[strategy].append(shared_totals[strategy] / num_draws)

    result.add_series("source tree", sizes, source_means)
    for strategy in CORE_STRATEGIES:
        result.add_series(f"shared ({strategy})", sizes, shared_means[strategy])
        overhead = np.asarray(shared_means[strategy]) / np.asarray(source_means)
        result.notes[f"overhead[{strategy}]"] = (
            f"core={cores[strategy]}, shared/source from "
            f"{overhead[0]:.2f} at m={sizes[0]} to {overhead[-1]:.2f} "
            f"at m={sizes[-1]}"
        )
    return result
