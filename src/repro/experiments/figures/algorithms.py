"""Tree-algorithm figure families (ROADMAP item 3).

Two studies that put the :mod:`repro.multicast.builders` registry to
work on the paper's central question — how much of the ``m^0.8`` law is
a property of shortest-path routing versus the network itself:

* :func:`run_algorithm_ratio_study` — the efficiency ratio
  ``L_alg(m)/L_SPT(m)`` for every non-SPT builder, measured through the
  same :func:`~repro.experiments.runner.measure_sweep` engine the
  paper's figures use (so the receiver draws are identical across
  algorithms).  The fitted exponent of each algorithm's own ``L(m)``
  rides along in the notes: the law's exponent should survive the
  change of construction discipline even where the constant does not.
* :func:`run_kdisjoint_overhead_study` — the redundancy price of
  ``k`` maximally-edge-disjoint trees: total installed links relative
  to the single SPT, plus how much of the primary tree the backups
  actually protect.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.experiments.config import SweepConfig
from repro.experiments.figures.base import FigureResult
from repro.experiments.figures.registry import register_figure
from repro.topology.registry import build_topology
from repro.utils.rng import RandomState, ensure_rng, spawn_rngs
from repro.utils.stats import power_law_fit

__all__ = ["run_algorithm_ratio_study", "run_kdisjoint_overhead_study"]


@register_figure("study:algorithm-ratio")
def run_algorithm_ratio_study(
    topology: str = "ts1000",
    scale: float = 0.3,
    algorithms: Sequence[str] = ("steiner-tm", "dst-approx", "kdisjoint"),
    config=None,
    sweep: Optional[SweepConfig] = None,
    rng: RandomState = None,
) -> FigureResult:
    """``L_alg(m)/L_SPT(m)`` per registered builder, same draws each.

    Every algorithm is swept through :func:`measure_sweep` with the same
    seed, and the batched samplers draw receiver sets independently of
    the counting discipline — so each ratio compares the algorithms on
    *identical* (source, receiver-set) samples, not merely identically
    distributed ones.
    """
    from repro.experiments.runner import measure_sweep

    streams = spawn_rngs(ensure_rng(rng), 2)
    graph = build_topology(topology, scale=scale, rng=streams[0])
    sweep = sweep or SweepConfig(points=7)
    sizes = sweep.sizes(max(2, (graph.num_nodes - 1) // 4))
    # One *integer* seed shared by every sweep: a Generator would
    # advance between calls and the algorithms would see different
    # draws, which is exactly what a ratio plot must not do.
    seed = int(streams[1].integers(0, 2**31 - 1))

    result = FigureResult(
        figure_id="extension-algorithm-ratio",
        title=f"L_alg(m)/L_SPT(m) across tree builders on {topology}",
        x_label="m",
        y_label="L_alg / L_SPT",
        log_x=True,
        log_y=False,
    )
    measurements = {}
    for algorithm in ("spt",) + tuple(algorithms):
        measurements[algorithm] = measure_sweep(
            graph,
            list(sizes),
            mode="distinct",
            config=config,
            topology=topology,
            rng=seed,
            algorithm=algorithm,
        )
    spt_tree = np.asarray(measurements["spt"].mean_tree_size, dtype=float)
    spt_fit = power_law_fit(sizes, spt_tree)
    result.notes["exponent[spt]"] = f"{spt_fit.slope:.3f}"
    for algorithm in algorithms:
        tree = np.asarray(
            measurements[algorithm].mean_tree_size, dtype=float
        )
        ratio = tree / spt_tree
        result.add_series(algorithm, sizes, ratio)
        fit = power_law_fit(sizes, tree)
        result.notes[f"exponent[{algorithm}]"] = f"{fit.slope:.3f}"
        result.notes[f"ratio[{algorithm}]"] = (
            f"{float(ratio[0]):.3f} at m={sizes[0]} to "
            f"{float(ratio[-1]):.3f} at m={sizes[-1]}"
        )
    return result


@register_figure("study:kdisjoint-overhead")
def run_kdisjoint_overhead_study(
    topology: str = "ts1008",
    scale: float = 0.3,
    k_values: Sequence[int] = (2, 3),
    num_sources: int = 4,
    num_receiver_sets: int = 8,
    sweep: Optional[SweepConfig] = None,
    rng: RandomState = None,
) -> FigureResult:
    """Redundancy overhead of ``k`` edge-disjoint delivery trees.

    For each group size and each ``k``, averages the installed-link
    overhead ``total_links(k trees) / num_links(primary SPT)`` and the
    fraction of primary links the backups protect (carry on an
    edge-disjoint detour).  Where the graph cannot supply disjoint
    paths the builder falls back to primary links, which shows up here
    as protection below 1 — not as unreachable receivers.  The default
    topology is the dense multipath ts1008: on sparse transit-stub
    maps (ts1000) almost no disjoint alternatives exist, so protection
    sits near zero and the overhead is trivially ``k``.
    """
    from repro.graph.paths import bfs
    from repro.multicast.builders import build_redundant_set
    from repro.multicast.sampling import sample_distinct_receivers

    streams = spawn_rngs(ensure_rng(rng), 2)
    graph = build_topology(topology, scale=scale, rng=streams[0])
    sweep = sweep or SweepConfig(points=6)
    sizes = sweep.sizes(max(2, (graph.num_nodes - 1) // 4))
    sample_rng = streams[1]

    result = FigureResult(
        figure_id="extension-kdisjoint-overhead",
        title=f"k-disjoint tree redundancy overhead on {topology}",
        x_label="m",
        y_label="total links / primary links",
        log_x=True,
        log_y=False,
    )
    draws = num_sources * num_receiver_sets
    for k in k_values:
        overheads = []
        protections = []
        for size in sizes:
            overhead_total = 0.0
            protected_total = 0.0
            for _ in range(num_sources):
                source = int(sample_rng.integers(0, graph.num_nodes))
                forest = bfs(graph, source, tie_break="first")
                for _ in range(num_receiver_sets):
                    receivers = sample_distinct_receivers(
                        graph.num_nodes, size, source=source, rng=sample_rng
                    )
                    tree_set = build_redundant_set(
                        graph, source, receivers, k=k, forest=forest
                    )
                    primary = max(1, tree_set.trees[0].num_links)
                    overhead_total += tree_set.total_links / primary
                    protected_total += tree_set.protected_fraction
            overheads.append(overhead_total / draws)
            protections.append(protected_total / draws)
        result.add_series(f"k={k}", sizes, overheads)
        result.notes[f"protected[k={k}]"] = (
            f"{100 * protections[0]:.1f}% at m={sizes[0]}, "
            f"{100 * protections[-1]:.1f}% at m={sizes[-1]}"
        )
    return result
