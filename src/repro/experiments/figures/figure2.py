"""Figure 2: ``h(x)`` versus ``x`` for k-ary trees.

The paper evaluates ``h(x)`` (Eq. 11) from the **exact** second
difference (Eq. 6) for k = 2 (D = 11, 14, 17) and k = 4 (D = 5, 7, 9),
and overlays the prediction ``h(x) = x·k^{−1/2}`` (Eq. 12).  Expected
shape: the k = 2 curves hug the line for ``x ≳ 1/D``; the k = 4 curves
oscillate before converging (discreteness of the level sum), with the
oscillation growing for larger k.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from repro.analysis.kary_asymptotic import h_exact, h_predicted
from repro.experiments.figures.base import FigureResult
from repro.experiments.figures.registry import register_figure
from repro.utils.stats import linear_fit

__all__ = ["run_figure2_panel", "run_figure2", "FIGURE2_CASES"]

#: The paper's panels: (k, depths).
FIGURE2_CASES: Tuple[Tuple[int, Tuple[int, ...]], ...] = (
    (2, (11, 14, 17)),
    (4, (5, 7, 9)),
)


def run_figure2_panel(
    k: int,
    depths: Sequence[int],
    x_points: int = 40,
    x_min: float = 0.02,
    x_max: float = 1.0,
) -> FigureResult:
    """One Figure-2 panel: exact ``h(x)`` for several depths at fixed k.

    Notes record the OLS slope of each exact curve over the upper half of
    the x range, to compare against the predicted ``k^{−1/2}``.
    """
    x = np.linspace(x_min, x_max, x_points)
    result = FigureResult(
        figure_id=f"figure-2 (k={k})",
        title=f"h(x) vs x for k={k} trees, against h(x) = x*k^-1/2",
        x_label="x",
        y_label="h(x)",
    )
    for depth in depths:
        h = h_exact(k, depth, x)
        result.add_series(f"k={k},D={depth}", x, h)
        upper = x >= 0.5 * x_max
        fit = linear_fit(x[upper], h[upper])
        result.notes[f"slope[D={depth}]"] = (
            f"{fit.slope:.4f} (predicted {k**-0.5:.4f})"
        )
    result.add_series(f"x*k^-1/2 (k={k})", x, h_predicted(k, x))
    return result


@register_figure("figure2")
def run_figure2(
    cases: Sequence[Tuple[int, Sequence[int]]] = FIGURE2_CASES,
    x_points: int = 40,
) -> Dict[str, FigureResult]:
    """Both panels of Figure 2 (k = 2 and k = 4 by default)."""
    return {
        f"figure-2{'ab'[i] if i < 2 else i}": run_figure2_panel(
            k, depths, x_points=x_points
        )
        for i, (k, depths) in enumerate(cases)
    }
