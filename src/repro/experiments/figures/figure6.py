"""Figure 6: ``L̂(n)/(n·ū)`` versus ``ln n`` on the topology suite.

The linearity test of Section 4: networks with exponential reachability
(r100, ts1000, ts1008, Internet, AS) should produce straight lines in
``ln n``; the sub-exponential ones (ti5000, ARPA, MBone) visibly less so.
"Is a bit surprising that the two transit-stub networks … have such
similar slopes even though they have very different average degrees."

This driver measures the curves with the with-replacement Monte-Carlo
methodology and can overlay the Eq.-30 semi-analytic prediction computed
from each network's *measured* reachability profile (series suffixed
``(eq30)``), tying Sections 2 and 4 together.  Notes record each
topology's linear-fit R² (the paper's visual judgement made numeric) and
its growth class.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.analysis.general import lhat_from_rings_throughout, mean_distance_from_rings
from repro.experiments.config import MonteCarloConfig, QUICK_MONTE_CARLO, SweepConfig
from repro.experiments.figures.base import FigureResult
from repro.experiments.figures.registry import register_figure
from repro.experiments.runner import measure_sweep
from repro.graph.reachability import average_profile, classify_growth
from repro.topology.registry import GENERATED_TOPOLOGIES, REAL_TOPOLOGIES, build_topology
from repro.utils.rng import RandomState, ensure_rng, spawn_rngs
from repro.utils.stats import linear_fit

__all__ = ["run_figure6_panel", "run_figure6"]


def run_figure6_panel(
    names: Sequence[str],
    panel_id: str,
    scale: float = 0.25,
    config: Optional[MonteCarloConfig] = None,
    sweep: Optional[SweepConfig] = None,
    max_receiver_fraction: float = 2.0,
    include_eq30: bool = True,
    profile_sources: int = 20,
    rng: RandomState = None,
) -> FigureResult:
    """One Figure-6 panel over the topologies ``names``.

    Parameters
    ----------
    names / panel_id / scale / config / rng:
        As in :func:`repro.experiments.figures.figure1.run_figure1_panel`.
    sweep:
        n grid; with replacement, n may exceed the node count —
        ``max_receiver_fraction`` is relative to the network size.
    include_eq30:
        Also evaluate Eq. 30 on the measured average reachability profile
        and emit it as a second series per topology.
    profile_sources:
        Sources averaged for the Eq. 30 profile.
    """
    config = config or QUICK_MONTE_CARLO
    sweep = sweep or SweepConfig(points=10)
    streams = spawn_rngs(ensure_rng(rng), len(names))

    result = FigureResult(
        figure_id=panel_id,
        title="Lhat(n)/(n*u) vs ln n: linear for exponential S(r)",
        x_label="n",
        y_label="Lhat(n)/(n*u)",
        log_x=True,
    )
    for name, stream in zip(names, streams):
        graph = build_topology(name, scale=scale, rng=stream)
        limit = max(2, int(graph.num_nodes * max_receiver_fraction))
        sizes = sweep.sizes(limit)
        measurement = measure_sweep(
            graph,
            sizes,
            mode="replacement",
            config=config,
            topology=name,
            rng=stream,
        )
        series = measurement.per_receiver_series
        result.add_series(name, sizes, series)

        fit = linear_fit(np.log(np.asarray(sizes, dtype=float)), series)
        profile = average_profile(graph, num_sources=profile_sources, rng=stream)
        result.notes[f"linearity[{name}]"] = (
            f"R^2={fit.r_squared:.3f}, slope={fit.slope:.4f}, "
            f"growth={classify_growth(profile)}"
        )
        if include_eq30:
            rings = profile.mean_ring_sizes
            rings = rings[: int(np.max(np.flatnonzero(rings > 0))) + 1]
            lhat = lhat_from_rings_throughout(rings, np.asarray(sizes, float))
            u_bar = mean_distance_from_rings(rings)
            result.add_series(
                f"{name} (eq30)",
                sizes,
                lhat / (np.asarray(sizes, float) * u_bar),
            )
    return result


@register_figure("figure6")
def run_figure6(
    scale: float = 0.25,
    config: Optional[MonteCarloConfig] = None,
    sweep: Optional[SweepConfig] = None,
    include_eq30: bool = False,
    rng: RandomState = None,
) -> Dict[str, FigureResult]:
    """Both Figure-6 panels (generated and real topologies)."""
    streams = spawn_rngs(ensure_rng(rng), 2)
    return {
        "figure-6a": run_figure6_panel(
            GENERATED_TOPOLOGIES,
            "figure-6a",
            scale=scale,
            config=config,
            sweep=sweep,
            include_eq30=include_eq30,
            rng=streams[0],
        ),
        "figure-6b": run_figure6_panel(
            REAL_TOPOLOGIES,
            "figure-6b",
            scale=scale,
            config=config,
            sweep=sweep,
            include_eq30=include_eq30,
            rng=streams[1],
        ),
    }
