"""Markdown reproduction reports.

:class:`ReproductionReport` collects the outputs of figure drivers and
renders one self-contained Markdown document: per-artifact sections with
the driver's notes (fitted exponents, R², growth classes, ...) and data
tables, plus a run-parameters header.  The ``repro-mcast all`` command
writes this next to the per-figure text files, giving a one-file
paper-vs-measured record in the EXPERIMENTS.md format.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Union

from repro.exceptions import ExperimentError
from repro.experiments.figures.base import FigureResult

__all__ = ["ReproductionReport"]

PathLike = Union[str, Path]


@dataclass
class ReproductionReport:
    """Accumulates figure results into a Markdown document.

    Attributes
    ----------
    title:
        Document title.
    parameters:
        Run-level settings recorded in the header (scale, seeds,
        Monte-Carlo sample counts).
    """

    title: str = "Reproduction report"
    parameters: Dict[str, str] = field(default_factory=dict)
    _sections: List[str] = field(default_factory=list)
    _artifact_ids: List[str] = field(default_factory=list)

    def add_parameter(self, key: str, value) -> None:
        """Record a run-level parameter for the header."""
        self.parameters[str(key)] = str(value)

    def add_result(self, result: FigureResult, comment: str = "") -> None:
        """Append one artifact section built from a figure result."""
        lines = [f"## {result.figure_id}", "", result.title, ""]
        if comment:
            lines.extend([comment, ""])
        if result.notes:
            for key, value in result.notes.items():
                lines.append(f"- **{key}**: {value}")
            lines.append("")
        lines.append("```")
        lines.append(result.table())
        lines.append("```")
        self._sections.append("\n".join(lines))
        self._artifact_ids.append(result.figure_id)

    def add_text_section(self, heading: str, body: str) -> None:
        """Append a free-form section (e.g. the Table-1 rendering)."""
        self._sections.append(f"## {heading}\n\n```\n{body}\n```")
        self._artifact_ids.append(heading)

    @property
    def artifact_ids(self) -> List[str]:
        """Identifiers of every section added so far."""
        return list(self._artifact_ids)

    def render(self) -> str:
        """The full Markdown document."""
        if not self._sections:
            raise ExperimentError("report has no sections")
        header = [f"# {self.title}", ""]
        if self.parameters:
            header.append("| parameter | value |")
            header.append("|---|---|")
            for key, value in self.parameters.items():
                header.append(f"| {key} | {value} |")
            header.append("")
        header.append(
            f"{len(self._sections)} artifacts reproduced: "
            + ", ".join(self._artifact_ids)
        )
        header.append("")
        return "\n".join(header) + "\n" + "\n\n".join(self._sections) + "\n"

    def write(self, path: PathLike) -> None:
        """Write the rendered report to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.render())
