"""Exception hierarchy for the :mod:`repro` package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming errors (``TypeError``, ``KeyError``, ...).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class GraphError(ReproError):
    """A graph is malformed or an operation received an invalid graph."""


class NodeError(GraphError):
    """A node id is out of range or otherwise invalid for the graph."""

    def __init__(self, node: int, num_nodes: int) -> None:
        super().__init__(
            f"node {node} is not a valid node id for a graph with "
            f"{num_nodes} nodes (valid ids are 0..{num_nodes - 1})"
        )
        self.node = node
        self.num_nodes = num_nodes


class DisconnectedGraphError(GraphError):
    """An operation requiring connectivity was run on a disconnected graph."""


class TopologyError(ReproError):
    """A topology generator received inconsistent parameters."""


class SamplingError(ReproError):
    """A receiver-sampling request cannot be satisfied.

    For example: asking for more distinct receivers than there are eligible
    sites in the network.
    """


class AnalysisError(ReproError):
    """An analytical routine received parameters outside its domain."""


class ExperimentError(ReproError):
    """An experiment driver was misconfigured."""
