"""``repro.serve`` — the asyncio estimation service.

Everything the reproduction can compute on demand — closed-form k-ary
tree sizes (Eqs. 4/18/21), the distinct-site conversion (Eqs. 1–2), and
Monte-Carlo ``L(m)`` on any registered topology — behind a stdlib-only
HTTP façade:

* ``POST /v1/estimate``  — closed-form k-ary answers (exact and
  asymptotic forms, leaf and throughout receiver placements, n ↔ m
  conversion).  Pure arithmetic; never touches the simulator.
* ``POST /v1/simulate``  — Monte-Carlo ``L(m)`` served from a
  precomputed :class:`~repro.serve.tables.EstimatorTable` grid when
  possible, from the PR-1 batched engine when an exact fresh run is
  requested, and from the closed-form Chuang-Sirbu law when the
  simulator misses its deadline (``"degraded": true``).
* ``GET /healthz``       — liveness + table inventory.
* ``GET /metrics``       — Prometheus text format: request counts,
  latency histograms, response-cache hit ratio, coalesce ratio.

Layering (each module is independently testable, no sockets below
``app``):

* :mod:`repro.serve.tables`   — ``EstimatorTable``: log-spaced ``L(m)``
  grids with log-log interpolation and a documented error bound.
* :mod:`repro.serve.coalesce` — ``SingleFlight`` (identical in-flight
  requests share one backend future) and the TTL+LRU ``TTLCache``.
* :mod:`repro.serve.metrics`  — counters/histograms and the Prometheus
  text rendering.
* :mod:`repro.serve.handlers` — ``EstimationService``: request
  validation, routing, table/simulation/degradation policy.  Handlers
  are plain coroutines over bytes-in/bytes-out — unit tests drive them
  directly.
* :mod:`repro.serve.app`      — the asyncio socket server, graceful
  drain on SIGINT/SIGTERM, and the ``--selftest`` probe.

See ``docs/serving.md`` for schemas, the precompute/degradation
semantics, and the ops runbook.
"""

from repro.serve.coalesce import SingleFlight, TTLCache
from repro.serve.handlers import (
    EstimationService,
    Response,
    ServeError,
    ServiceConfig,
)
from repro.serve.metrics import ServeMetrics
from repro.serve.tables import EstimatorTable

__all__ = [
    "EstimationService",
    "EstimatorTable",
    "Response",
    "ServeError",
    "ServeMetrics",
    "ServiceConfig",
    "SingleFlight",
    "TTLCache",
]
