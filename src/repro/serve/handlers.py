"""Request handling for the estimation service (no sockets in here).

:class:`EstimationService` owns the full answer policy; the socket
layer (:mod:`repro.serve.app`) only frames HTTP around
:meth:`EstimationService.dispatch`, so every behavior below is unit
tested by calling coroutines directly.

The simulate answer ladder
--------------------------
For ``POST /v1/simulate`` the service tries, in order:

1. **Response cache** — a TTL+LRU of finished answers
   (``"source": "cache"``).  Degraded answers are never cached.
2. **Estimator table** — the per-topology ``L(m)`` grid
   (``"source": "table"``), built at startup for the configured
   topologies and lazily (coalesced, deadline-bounded) for any other
   registry name.  Covered queries never touch the simulator.
3. **Simulation** — a fresh batched Monte-Carlo run
   (``"source": "simulation"``), for ``"exact": true`` requests and
   sizes outside a table's grid.  Identical concurrent runs are
   coalesced onto one future.
4. **Degradation** — when step 2's lazy build or step 3's run exceeds
   the deadline, the caller is *not* handed a 500: it gets the best
   closed-form/interpolated answer available (``"degraded": true``,
   ``"source": "table"`` or ``"closed-form"``), while the backend
   computation keeps running and lands in the table/cache for the next
   caller.

All blocking work (topology builds, sweeps) runs on a small thread
pool via ``run_in_executor`` — handler coroutines themselves never
block, which is exactly the invariant lint rule RR007 enforces on this
package.
"""

from __future__ import annotations

import asyncio
import json
import logging
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro import faults, obs
from repro.exceptions import ReproError
from repro.faults.clock import SystemClock
from repro.serve.coalesce import SingleFlight, TTLCache
from repro.serve.metrics import ServeMetrics
from repro.serve.tables import EstimatorTable

__all__ = ["ServeError", "Response", "ServiceConfig", "EstimationService"]

logger = logging.getLogger("repro.serve")

_FP_SIMULATE = faults.point(
    "serve.backend.simulate",
    "Before a coalesced Monte-Carlo run is handed to the thread pool; a "
    "raise/timeout here fails the shared backend computation, which must "
    "degrade every waiter, never 500 them.",
)
_FP_TABLE_BUILD = faults.point(
    "serve.table.build",
    "Before a lazy or refresh estimator-table build; failures must leave "
    "previously installed tables untouched and degrade the caller.",
)
_FP_GRAPH_BUILD = faults.point(
    "serve.graph.build",
    "Before a topology build on the thread pool; a failure here must not "
    "poison the graph cache — the next request retries the build.",
)

_JSON = "application/json"
_TEXT = "text/plain; version=0.0.4; charset=utf-8"


class ServeError(ReproError):
    """A request error with an HTTP status (4xx for caller mistakes)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = int(status)


@dataclass(frozen=True)
class Response:
    """What the socket layer writes back: status, content type, body."""

    status: int
    content_type: str
    body: bytes

    @staticmethod
    def json(status: int, payload: Dict[str, Any]) -> "Response":
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        return Response(status=status, content_type=_JSON, body=body)

    @staticmethod
    def text(status: int, content: str) -> "Response":
        return Response(
            status=status, content_type=_TEXT, body=content.encode("utf-8")
        )


@dataclass(frozen=True)
class ServiceConfig:
    """Service-level knobs (the CLI flags map onto these).

    ``topologies`` are pre-warmed at startup; any other registry name is
    still servable, with its table built lazily on first demand.  The
    Monte-Carlo settings deliberately default far below the paper's
    100×100: a serving backend wants bounded latency, and the estimator
    tables do the averaging work once instead of per request.
    """

    topologies: Tuple[str, ...] = ("arpa", "r100")
    #: Tree-construction disciplines whose estimator tables are
    #: pre-warmed at startup.  Any other registered builder is still
    #: servable with a lazily built table; ``"spt"`` tables keep their
    #: historical ``(name, mode)`` keys so the single-algorithm layout
    #: is unchanged.
    algorithms: Tuple[str, ...] = ("spt",)
    scale: float = 1.0
    seed: int = 0
    num_sources: int = 20
    num_receiver_sets: int = 20
    deadline_seconds: float = 5.0
    points_per_decade: int = 16
    cache_max_entries: int = 4096
    cache_ttl_seconds: float = 300.0
    table_ttl_seconds: Optional[float] = None
    executor_threads: int = 2
    #: Load-shedding threshold: with more than this many requests being
    #: dispatched concurrently, further simulate requests are answered
    #: degraded immediately (``"shed": true``) instead of queueing past
    #: their deadline.  ``None`` (the default) disables shedding — the
    #: single-process behavior is unchanged.
    max_inflight: Optional[int] = None

    def validate(self) -> None:
        from repro.topology.registry import topology_spec

        if self.deadline_seconds <= 0:
            raise ServeError(
                500, f"deadline must be positive, got {self.deadline_seconds}"
            )
        if self.max_inflight is not None and self.max_inflight < 1:
            raise ServeError(
                500, f"max_inflight must be >= 1 when set, got {self.max_inflight}"
            )
        if self.table_ttl_seconds is not None and self.table_ttl_seconds <= 0:
            raise ServeError(
                500,
                f"table_ttl_seconds must be positive when set, got "
                f"{self.table_ttl_seconds}",
            )
        if self.executor_threads < 1:
            raise ServeError(500, "executor_threads must be >= 1")
        for name in self.topologies:
            topology_spec(name)  # raises TopologyError for unknown names
        from repro.multicast.builders import builder_spec

        for algorithm in self.algorithms:
            builder_spec(algorithm)  # raises ExperimentError for unknowns


def _number(payload: Dict, key: str, *, required: bool = False) -> Optional[float]:
    value = payload.get(key)
    if value is None:
        if required:
            raise ServeError(400, f"missing required field {key!r}")
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ServeError(400, f"field {key!r} must be a number, got {value!r}")
    return float(value)


def _choice(payload: Dict, key: str, options: Tuple[str, ...], default: str) -> str:
    value = payload.get(key, default)
    if value not in options:
        raise ServeError(
            400, f"field {key!r} must be one of {options}, got {value!r}"
        )
    return value


def _flag(payload: Dict, key: str, default: bool = False) -> bool:
    value = payload.get(key, default)
    if not isinstance(value, bool):
        raise ServeError(400, f"field {key!r} must be a boolean, got {value!r}")
    return value


def _table_key(name: str, mode: str, algorithm: str = "spt") -> Tuple[str, ...]:
    """Key for one estimator table in :attr:`EstimationService.tables`.

    SPT tables keep their historical ``(name, mode)`` 2-tuple so every
    pre-existing consumer (tests, the fleet store, healthz labels) sees
    an unchanged layout; non-SPT tables append the algorithm name.
    """
    if algorithm == "spt":
        return (name, mode)
    return (name, mode, algorithm)


def _key_label(key: Tuple[str, ...]) -> str:
    """``"name/mode"`` or ``"name/mode/algorithm"`` for healthz maps."""
    return "/".join(key)


@dataclass(frozen=True)
class _SimulateRequest:
    topology: str
    m: int
    mode: str
    exact: bool
    deadline: Optional[float]
    algorithm: str = "spt"


class EstimationService:
    """The estimation/simulation service behind the HTTP endpoints."""

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        metrics: Optional[ServeMetrics] = None,
        clock: Optional[Any] = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.config.validate()
        self.metrics = metrics or ServeMetrics()
        # Every timing decision below — TTL expiry, deadline waits,
        # table staleness, latency histograms — reads this one clock, so
        # tests swap in a VirtualClock and control time explicitly.
        self._clock = clock if clock is not None else SystemClock()
        self.tables: Dict[Tuple[str, ...], EstimatorTable] = {}
        self._table_built_at: Dict[Tuple[str, ...], float] = {}
        self._graphs: Dict[str, Any] = {}
        self._flight = SingleFlight(wait_for=self._clock.wait_for)
        self._cache = TTLCache(
            max_entries=self.config.cache_max_entries,
            ttl_seconds=self.config.cache_ttl_seconds,
            clock=self._clock,
        )
        self._executor: Optional[ThreadPoolExecutor] = None
        self._started = False
        # Requests currently inside dispatch() — the load-shedding
        # signal — and the generation of the installed table set (0 =
        # built locally, >0 = installed from a fleet shared store).
        self._inflight_requests = 0
        self.table_generation = 0

    # -- lifecycle -------------------------------------------------------

    async def startup(self) -> None:
        """Build graphs and estimator tables for the configured suite.

        Builds run concurrently on the thread pool; the service accepts
        traffic only after the pre-warm completes, so the configured
        topologies are always answered from tables.
        """
        if self._started:
            return
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.executor_threads,
            thread_name_prefix="repro-serve",
        )
        await asyncio.gather(
            *(
                self._table(name, "distinct", deadline=None, algorithm=algorithm)
                for name in self.config.topologies
                for algorithm in self.config.algorithms
            )
        )
        self._started = True

    async def shutdown(self) -> None:
        """Release the worker threads (in-flight futures still finish)."""
        self._started = False
        if self._executor is not None:
            self._executor.shutdown(wait=False)
            self._executor = None

    def install_tables(
        self,
        tables: Dict[Tuple[str, ...], EstimatorTable],
        generation: Optional[int] = None,
    ) -> None:
        """Replace the whole table set atomically (the fleet's path).

        Workers attach zero-copy tables from the supervisor's shared
        store and install them here *before* :meth:`startup`, which then
        finds every configured topology pre-populated and skips the
        in-process sweeps entirely.  On a hot reload the same call swaps
        the set under live traffic: the dict rebind is atomic from any
        handler's perspective, and the response cache is cleared so
        answers interpolated from the old generation cannot outlive it.
        """
        now = self._clock()
        self.tables = dict(tables)
        self._table_built_at = {key: now for key in self.tables}
        if generation is not None:
            self.table_generation = int(generation)
        self._cache.clear()

    # -- blocking backend (runs on the thread pool only) -----------------

    def _build_graph_sync(self, name: str):
        from repro.topology.registry import build_topology

        return build_topology(name, scale=self.config.scale, rng=self.config.seed)

    def _build_table_sync(
        self, name: str, mode: str, algorithm: str = "spt"
    ) -> EstimatorTable:
        from repro.experiments.config import MonteCarloConfig

        graph = self._graphs[name]
        return EstimatorTable.from_sweep(
            graph,
            name,
            mode=mode,
            config=MonteCarloConfig(
                num_sources=self.config.num_sources,
                num_receiver_sets=self.config.num_receiver_sets,
                seed=self.config.seed,
            ),
            rng=self.config.seed,
            points_per_decade=self.config.points_per_decade,
            algorithm=algorithm,
        )

    def _simulate_sync(
        self, name: str, m: int, mode: str, algorithm: str = "spt"
    ) -> Dict[str, float]:
        from repro.experiments.config import MonteCarloConfig
        from repro.experiments.runner import measure_sweep

        graph = self._graphs[name]
        measurement = measure_sweep(
            graph,
            [m],
            mode=mode,
            config=MonteCarloConfig(
                num_sources=self.config.num_sources,
                num_receiver_sets=self.config.num_receiver_sets,
                seed=self.config.seed,
            ),
            topology=name,
            rng=self.config.seed,
            algorithm=algorithm,
        )
        return {
            "tree_size": float(measurement.mean_tree_size[0]),
            "mean_unicast_path": float(measurement.mean_unicast_path[0]),
            "normalized_tree_size": float(measurement.normalized_tree_size[0]),
            "num_samples": int(measurement.num_samples),
        }

    # -- coalesced async access to the backend ---------------------------

    def _in_executor(self, fn, *args):
        if self._executor is None:
            raise ServeError(503, "service is shut down")
        return asyncio.get_running_loop().run_in_executor(
            self._executor, fn, *args
        )

    async def _graph(self, name: str, deadline: Optional[float]) -> Any:
        if name not in self._graphs:

            async def build() -> None:
                _FP_GRAPH_BUILD.fire(topology=name)
                self._graphs[name] = await self._in_executor(
                    self._build_graph_sync, name
                )

            await self._flight.run(("graph", name), build, timeout=deadline)
        return self._graphs[name]

    async def _build_table(
        self, name: str, mode: str, algorithm: str = "spt"
    ) -> None:
        """One coalesced leader's table (re)build, install on success."""
        _FP_TABLE_BUILD.fire(topology=name, mode=mode, algorithm=algorithm)
        await self._graph(name, deadline=None)
        key = _table_key(name, mode, algorithm)
        self.tables[key] = await self._in_executor(
            self._build_table_sync, name, mode, algorithm
        )
        self._table_built_at[key] = self._clock()

    def _refresh_table(self, name: str, mode: str, algorithm: str = "spt") -> None:
        """Kick a coalesced background rebuild of a stale table.

        The stale table keeps serving; a rebuild failure is logged and
        counted, never surfaced to the request that noticed staleness.
        """

        async def rebuild() -> None:
            try:
                await self._build_table(name, mode, algorithm)
            except asyncio.CancelledError:
                raise
            except Exception as exc:
                logger.warning(
                    "background table refresh failed for %s "
                    "(stale table keeps serving): %s",
                    _key_label(_table_key(name, mode, algorithm)), exc,
                )
                self.metrics.count_backend_failure()

        self._flight.join(
            ("table-refresh",) + _table_key(name, mode, algorithm), rebuild
        )

    async def _table(
        self,
        name: str,
        mode: str,
        deadline: Optional[float],
        algorithm: str = "spt",
    ) -> EstimatorTable:
        """The (possibly lazily built) table for ``(name, mode, algorithm)``.

        Raises :class:`asyncio.TimeoutError` when a lazy build misses
        the deadline — the caller degrades; the build itself continues
        and installs the table for later requests.  With
        ``table_ttl_seconds`` configured, a table past its TTL is still
        served while a coalesced background rebuild replaces it.
        """
        key = _table_key(name, mode, algorithm)
        table = self.tables.get(key)
        if table is not None:
            ttl = self.config.table_ttl_seconds
            if ttl is not None and self._table_age(key) >= ttl:
                self._refresh_table(name, mode, algorithm)
            return table

        async def build() -> None:
            await self._build_table(name, mode, algorithm)

        await self._flight.run(("table",) + key, build, timeout=deadline)
        return self.tables[key]

    def _table_age(self, key: Tuple[str, ...]) -> float:
        return self._clock() - self._table_built_at.get(key, 0.0)

    # -- /v1/estimate ----------------------------------------------------

    async def handle_estimate(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Closed-form k-ary answers: Eqs. 4/14/18/21 plus Eqs. 1–2.

        Exactly one of ``n`` (draws with replacement) and ``m``
        (distinct sites) must be given; the other is reported through
        the paper's conversion.  Pure arithmetic — this endpoint never
        touches the simulator, whatever the load.

        With a non-SPT ``"algorithm"`` the closed form (an SPT
        quantity) is rescaled by the measured ``L_alg(m)/L_SPT(m)``
        ratio of the named ``"topology"``'s estimator tables; when the
        tables cannot supply the ratio in time the SPT answer is
        returned with ``algorithm_ratio: null`` and ``degraded: true``.
        """
        from repro.analysis.kary_asymptotic import (
            lhat_asymptotic,
            lm_asymptotic,
            lm_exact_via_conversion,
        )
        from repro.analysis.kary_exact import (
            lhat_leaf,
            lhat_throughout,
            num_interior_sites,
            num_leaf_sites,
        )
        from repro.analysis.scaling import (
            draws_for_expected_distinct,
            expected_distinct,
        )

        algorithm = self._parse_algorithm(payload)
        k = _number(payload, "k", required=True)
        depth_f = _number(payload, "depth", required=True)
        if depth_f != int(depth_f):
            raise ServeError(400, f"depth must be an integer, got {depth_f}")
        depth = int(depth_f)
        receivers = _choice(payload, "receivers", ("leaf", "throughout"), "leaf")
        form = _choice(payload, "form", ("exact", "asymptotic"), "exact")
        n = _number(payload, "n")
        m = _number(payload, "m")
        if (n is None) == (m is None):
            raise ServeError(400, "provide exactly one of 'n' and 'm'")

        if receivers == "leaf":
            population = num_leaf_sites(k, depth)
        else:
            population = num_interior_sites(k, depth)

        if m is not None:
            n_value = float(draws_for_expected_distinct(m, population))
            m_value = float(m)
        else:
            n_value = float(n)
            m_value = float(expected_distinct(n, population))

        if form == "exact":
            if receivers == "leaf":
                if m is not None:
                    tree = float(lm_exact_via_conversion(k, depth, m))
                else:
                    tree = float(lhat_leaf(k, depth, n_value))
            else:
                tree = float(lhat_throughout(k, depth, n_value))
        else:
            if receivers != "leaf":
                raise ServeError(
                    400,
                    "the asymptotic forms (Eqs. 14/18) are derived for "
                    "leaf receivers only",
                )
            if m is not None:
                tree = float(lm_asymptotic(k, depth, m))
            else:
                tree = float(lhat_asymptotic(k, depth, n_value))

        answer = {
            "k": k,
            "depth": depth,
            "receivers": receivers,
            "form": form,
            "population": float(population),
            "n": n_value,
            "m": m_value,
            "tree_size": tree,
            "per_receiver": tree / n_value if n_value > 0 else None,
        }
        if algorithm == "spt":
            return answer

        from repro.topology.registry import topology_spec

        name = payload.get("topology")
        if not isinstance(name, str):
            raise ServeError(
                400,
                "non-SPT estimates need a 'topology' whose estimator "
                "tables supply the L_alg/L_SPT ratio",
            )
        try:
            topology_spec(name)
        except ReproError as exc:
            raise ServeError(400, str(exc))
        name = name.lower()
        ratio = await self._algorithm_ratio(name, "distinct", algorithm, m_value)
        answer["algorithm"] = algorithm
        answer["topology"] = name
        answer["tree_size_spt"] = tree
        answer["algorithm_ratio"] = ratio
        if ratio is None:
            answer["degraded"] = True
        else:
            answer["tree_size"] = tree * ratio
            answer["per_receiver"] = (
                answer["tree_size"] / n_value if n_value > 0 else None
            )
        return answer

    def _parse_algorithm(self, payload: Dict[str, Any]) -> str:
        from repro.multicast.builders import builder_spec

        algorithm = payload.get("algorithm", "spt")
        if not isinstance(algorithm, str):
            raise ServeError(
                400, f"field 'algorithm' must be a string, got {algorithm!r}"
            )
        try:
            builder_spec(algorithm)
        except ReproError as exc:
            raise ServeError(400, str(exc))
        return algorithm

    async def _algorithm_ratio(
        self, name: str, mode: str, algorithm: str, m: float
    ) -> Optional[float]:
        """``L_alg(m)/L_SPT(m)`` from the topology's tables, else None.

        ``None`` means the ratio could not be produced within the
        configured deadline (builds keep running for later callers) or
        ``m`` lies outside a table's grid — the caller degrades.
        """
        deadline = self.config.deadline_seconds
        try:
            alg_table = await self._table(name, mode, deadline, algorithm)
            spt_table = await self._table(name, mode, deadline)
        except asyncio.TimeoutError:
            return None
        except asyncio.CancelledError:
            raise
        except ReproError:
            raise  # caller mistakes keep their 4xx mapping
        except Exception as exc:
            logger.warning(
                "algorithm-ratio tables failed for %s/%s/%s: %s",
                name, mode, algorithm, exc,
            )
            self.metrics.count_backend_failure()
            return None
        if not (alg_table.covers(m) and spt_table.covers(m)):
            return None
        alg_tree, _ = alg_table.lookup(m)
        spt_tree, _ = spt_table.lookup(m)
        if spt_tree <= 0:
            return None
        return float(alg_tree / spt_tree)

    # -- /v1/simulate ----------------------------------------------------

    def _parse_simulate(self, payload: Dict[str, Any]) -> _SimulateRequest:
        from repro.topology.registry import topology_spec

        name = payload.get("topology")
        if not isinstance(name, str):
            raise ServeError(400, "field 'topology' must be a string name")
        try:
            topology_spec(name)
        except ReproError as exc:
            raise ServeError(400, str(exc))
        m = _number(payload, "m", required=True)
        if m < 1 or m != int(m):
            raise ServeError(400, f"m must be a positive integer, got {m}")
        mode = _choice(payload, "mode", ("distinct", "replacement"), "distinct")
        deadline_ms = _number(payload, "deadline_ms")
        if deadline_ms is not None and deadline_ms <= 0:
            raise ServeError(400, "deadline_ms must be positive")
        return _SimulateRequest(
            topology=name.lower(),
            m=int(m),
            mode=mode,
            exact=_flag(payload, "exact", False),
            deadline=(
                deadline_ms / 1000.0
                if deadline_ms is not None
                else self.config.deadline_seconds
            ),
            algorithm=self._parse_algorithm(payload),
        )

    def _answer(
        self,
        req: _SimulateRequest,
        source: str,
        tree: Optional[float],
        path: Optional[float],
        degraded: bool,
        **extra: Any,
    ) -> Dict[str, Any]:
        self.metrics.count_answer(source)
        if degraded:
            self.metrics.count_degraded()
        payload: Dict[str, Any] = {
            "topology": req.topology,
            "m": req.m,
            "mode": req.mode,
            "source": source,
            "degraded": degraded,
            "tree_size": tree,
            "mean_unicast_path": path,
            "normalized_tree_size": (
                tree / path if tree is not None and path else None
            ),
        }
        # SPT answers keep the exact pre-algorithm payload shape (the
        # byte-identity contract); only non-SPT requests grow the key.
        if req.algorithm != "spt":
            payload["algorithm"] = req.algorithm
        payload.update(extra)
        return payload

    def _degraded_answer(self, req: _SimulateRequest) -> Dict[str, Any]:
        """Best non-blocking answer once the deadline has passed.

        Interpolate from a finished table when one covers the query;
        otherwise fall back to the Chuang-Sirbu law itself —
        ``L(m)/ū = m^0.8`` — which is normalized-only (the law carries
        no absolute scale without ``ū``).
        """
        from repro.analysis.scaling import chuang_sirbu_prediction

        table = self.tables.get(_table_key(req.topology, req.mode, req.algorithm))
        if table is not None and table.covers(req.m):
            tree, path = table.lookup(req.m)
            extra: Dict[str, Any] = {"rel_error_bound": table.rel_error_bound}
            if req.algorithm != "spt":
                extra["table_algorithm"] = table.algorithm
            return self._answer(req, "table", tree, path, degraded=True, **extra)
        normalized = float(chuang_sirbu_prediction(req.m))
        answer = self._answer(req, "closed-form", None, None, degraded=True)
        answer["normalized_tree_size"] = normalized
        return answer

    async def handle_simulate(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Monte-Carlo ``L(m)`` via the cache → table → simulate ladder."""
        req = self._parse_simulate(payload)
        cache_key = (req.topology, req.mode, req.m, req.exact, req.algorithm)
        cached = self._cache.get(cache_key)
        if cached is not None:
            answer = dict(cached)
            answer["source"] = "cache"
            self.metrics.count_answer("cache")
            return answer

        # Load shedding: past the configured inflight capacity, answer
        # degraded *now* rather than queueing behind the backlog past
        # the deadline.  Cache hits above stay served (they cost
        # nothing), estimate/healthz/metrics are never shed, and shed
        # answers are never cached.
        limit = self.config.max_inflight
        if limit is not None and self._inflight_requests > limit:
            self.metrics.count_shed()
            answer = self._degraded_answer(req)
            answer["shed"] = True
            return answer

        if not req.exact:
            try:
                table = await self._table(
                    req.topology, req.mode, req.deadline, req.algorithm
                )
            except asyncio.TimeoutError:
                return self._degraded_answer(req)
            except asyncio.CancelledError:
                raise
            except ReproError:
                raise  # caller mistakes keep their 4xx mapping
            except Exception as exc:
                logger.warning(
                    "table build failed for %s; degrading: %s",
                    _key_label(
                        _table_key(req.topology, req.mode, req.algorithm)
                    ),
                    exc,
                )
                self.metrics.count_backend_failure()
                return self._degraded_answer(req)
            if table.covers(req.m):
                tree, path = table.lookup(req.m)
                extra: Dict[str, Any] = {
                    "rel_error_bound": table.rel_error_bound
                }
                if req.algorithm != "spt":
                    extra["table_algorithm"] = table.algorithm
                answer = self._answer(
                    req, "table", tree, path, degraded=False, **extra
                )
                self._cache.put(cache_key, answer)
                return answer
            # Size outside the grid: fall through to a real run.

        async def simulate() -> Dict[str, float]:
            _FP_SIMULATE.fire(topology=req.topology, m=req.m, mode=req.mode)
            await self._graph(req.topology, deadline=None)
            return await self._in_executor(
                self._simulate_sync, req.topology, req.m, req.mode,
                req.algorithm,
            )

        flight_key = (
            "simulate", req.topology, req.mode, req.m, req.algorithm
        )
        try:
            result = await self._flight.run(flight_key, simulate, req.deadline)
        except asyncio.TimeoutError:
            return self._degraded_answer(req)
        except asyncio.CancelledError:
            raise
        except ReproError:
            raise  # caller mistakes keep their 4xx mapping
        except Exception as exc:
            logger.warning(
                "backend simulation failed for %s m=%d; degrading: %s",
                req.topology, req.m, exc,
            )
            self.metrics.count_backend_failure()
            return self._degraded_answer(req)
        answer = self._answer(
            req,
            "simulation",
            result["tree_size"],
            result["mean_unicast_path"],
            degraded=False,
            num_samples=result["num_samples"],
        )
        # measure_sweep averages ratios per sample rather than dividing
        # the averages, so report its normalized value, not tree/path.
        answer["normalized_tree_size"] = result["normalized_tree_size"]
        self._cache.put(cache_key, answer)
        return answer

    # -- /healthz and /metrics -------------------------------------------

    def handle_healthz(self) -> Dict[str, Any]:
        plan = faults.active_plan()
        return {
            "status": "ok" if self._started else "starting",
            "topologies": list(self.config.topologies),
            "algorithms": list(self.config.algorithms),
            "tables": [
                table.to_dict()
                for _key, table in sorted(self.tables.items())
            ],
            "table_ages_seconds": {
                _key_label(key): self._table_age(key)
                for key in sorted(self.tables)
            },
            "table_ttl_seconds": self.config.table_ttl_seconds,
            "table_generation": self.table_generation,
            "inflight": len(self._flight),
            "inflight_requests": self._inflight_requests,
            "max_inflight": self.config.max_inflight,
            "response_cache_entries": len(self._cache),
            "fault_plan": None if plan is None else plan.name,
        }

    def handle_metrics(self) -> str:
        self.metrics.record_cache(self._cache.hits, self._cache.misses)
        self.metrics.record_flight(self._flight.started, self._flight.coalesced)
        # The service's own document first (its series names are pinned),
        # then the process-wide observability registry: forest-cache,
        # runner, sampling, and figure series ride the same scrape.
        return self.metrics.render() + obs.render_default()

    # -- routing ---------------------------------------------------------

    async def dispatch(self, method: str, path: str, body: bytes) -> Response:
        """Route one request; never raises (errors become responses)."""
        endpoint = {
            "/v1/estimate": "estimate",
            "/v1/simulate": "simulate",
            "/healthz": "healthz",
            "/metrics": "metrics",
        }.get(path, "unknown")
        start = self._clock()
        self._inflight_requests += 1
        try:
            response = await self._route(method, path, endpoint, body)
        except ServeError as exc:
            response = Response.json(exc.status, {"error": str(exc)})
        except ReproError as exc:
            # Estimation/experiment-layer rejections are caller errors.
            response = Response.json(400, {"error": str(exc)})
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            logger.exception("unhandled error serving %s %s", method, path)
            response = Response.json(500, {"error": f"internal error: {exc}"})
        finally:
            self._inflight_requests -= 1
        self.metrics.observe_request(
            endpoint, response.status, self._clock() - start
        )
        return response

    async def _route(
        self, method: str, path: str, endpoint: str, body: bytes
    ) -> Response:
        if endpoint == "unknown":
            return Response.json(404, {"error": f"no such endpoint: {path}"})
        if endpoint in ("estimate", "simulate"):
            if method != "POST":
                return Response.json(405, {"error": f"{path} expects POST"})
            try:
                payload = json.loads(body.decode("utf-8")) if body else {}
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                return Response.json(400, {"error": f"invalid JSON body: {exc}"})
            if not isinstance(payload, dict):
                return Response.json(400, {"error": "body must be a JSON object"})
            if endpoint == "estimate":
                return Response.json(200, await self.handle_estimate(payload))
            return Response.json(200, await self.handle_simulate(payload))
        if method != "GET":
            return Response.json(405, {"error": f"{path} expects GET"})
        if endpoint == "healthz":
            return Response.json(200, self.handle_healthz())
        return Response.text(200, self.handle_metrics())
