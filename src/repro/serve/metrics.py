"""Service counters, latency histograms, and Prometheus text rendering.

One :class:`ServeMetrics` instance per service.  Since the
observability layer landed, this module owns no primitives: the
counter/gauge/histogram instruments and the text exposition live in
:mod:`repro.obs.registry` (they started here and were promoted), and
:class:`ServeMetrics` is a thin composition over a private
:class:`~repro.obs.registry.MetricsRegistry` — private so multiple
service instances in one process never cross-count.  The classes are
re-exported here for compatibility.  ``GET /metrics`` additionally
appends the process-wide :func:`repro.obs.default_registry` document
(forest-cache, runner, sampling, figure series); see
:meth:`repro.serve.handlers.EstimationService.handle_metrics`.

Series (names are pinned — the obs smoke gate checks them name-for-name)
-----------------------------------------------------------------------
* ``repro_serve_requests_total{endpoint,status}`` — counter.
* ``repro_serve_request_latency_seconds`` — histogram per endpoint
  (cumulative ``_bucket{le=...}``, ``_sum``, ``_count``).
* ``repro_serve_answers_total{source}`` — where simulate answers came
  from: ``cache`` / ``table`` / ``simulation`` / ``closed-form``.
* ``repro_serve_degraded_total`` — deadline-degraded responses.
* ``repro_serve_shed_total`` — responses answered degraded-immediately
  because the worker was over its inflight capacity (load shedding).
* ``repro_serve_backend_failures_total`` — backend computations that
  failed outright (fault-injected or real, non-timeout).
* ``repro_serve_coalesced_total`` / ``repro_serve_backend_runs_total``
  — joins versus actual backend computations.
* ``repro_serve_response_cache_hit_ratio`` and
  ``repro_serve_coalesce_ratio`` — derived gauges, recomputed at render
  time so they never drift from the counters they summarize.
"""

from __future__ import annotations

from typing import Sequence

from repro.obs.registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)

__all__ = [
    "ServeMetrics",
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

_PREFIX = "repro_serve"


class ServeMetrics:
    """Mutable counter state behind ``GET /metrics``."""

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        registry = MetricsRegistry()
        # Registration order is the pinned render order.
        self._requests = registry.counter(
            f"{_PREFIX}_requests_total",
            "HTTP requests by endpoint and status.",
            labelnames=("endpoint", "status"),
        )
        self._latency = registry.histogram(
            f"{_PREFIX}_request_latency_seconds",
            "Request handling latency by endpoint.",
            buckets=buckets,
            labelnames=("endpoint",),
        )
        self._answers = registry.counter(
            f"{_PREFIX}_answers_total",
            "Simulate answers by source.",
            labelnames=("source",),
        )
        self._degraded = registry.counter(
            f"{_PREFIX}_degraded_total", "Deadline-degraded responses."
        )
        self._shed = registry.counter(
            f"{_PREFIX}_shed_total",
            "Requests answered degraded-immediately because the worker "
            "was over its inflight capacity (load shedding).",
        )
        self._backend_failures = registry.counter(
            f"{_PREFIX}_backend_failures_total",
            "Backend computations that failed outright (non-timeout).",
        )
        self._backend_runs = registry.counter(
            f"{_PREFIX}_backend_runs_total", "Backend computations started."
        )
        self._coalesced = registry.counter(
            f"{_PREFIX}_coalesced_total",
            "Requests that joined an identical in-flight computation.",
        )
        self._cache_ratio = registry.gauge(
            f"{_PREFIX}_response_cache_hit_ratio",
            "TTL+LRU response cache hit fraction.",
        )
        self._coalesce_ratio = registry.gauge(
            f"{_PREFIX}_coalesce_ratio",
            "Fraction of backend demand absorbed by coalescing.",
        )
        self._registry = registry
        self.cache_hits = 0
        self.cache_misses = 0

    # -- recording -------------------------------------------------------

    def observe_request(self, endpoint, status, seconds=None) -> None:
        self._requests.inc(endpoint=endpoint, status=int(status))
        if seconds is not None:
            self._latency.observe(float(seconds), endpoint=endpoint)

    def count_answer(self, source: str) -> None:
        self._answers.inc(source=source)

    def count_degraded(self) -> None:
        self._degraded.inc()

    def count_shed(self) -> None:
        """A request was answered degraded without queueing: the worker
        was already at its configured inflight capacity."""
        self._shed.inc()

    def count_backend_failure(self) -> None:
        """A backend computation failed (not a timeout): the service
        degraded or, for background refreshes, kept the stale table."""
        self._backend_failures.inc()

    def record_cache(self, hits: int, misses: int) -> None:
        """Absolute hit/miss counts copied from the response cache."""
        self.cache_hits = int(hits)
        self.cache_misses = int(misses)

    def record_flight(self, started: int, coalesced: int) -> None:
        """Absolute leader/follower counts copied from the SingleFlight."""
        self._backend_runs.set_total(int(started))
        self._coalesced.set_total(int(coalesced))

    # -- totals & derived ratios ----------------------------------------

    @property
    def degraded_total(self) -> int:
        return int(self._degraded.value())

    @property
    def shed_total(self) -> int:
        return int(self._shed.value())

    @property
    def backend_failures_total(self) -> int:
        return int(self._backend_failures.value())

    @property
    def backend_runs_total(self) -> int:
        return int(self._backend_runs.value())

    @property
    def coalesced_total(self) -> int:
        return int(self._coalesced.value())

    @property
    def cache_hit_ratio(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def coalesce_ratio(self) -> float:
        """Fraction of backend demands absorbed by an in-flight twin."""
        total = self.backend_runs_total + self.coalesced_total
        return self.coalesced_total / total if total else 0.0

    # -- exposition ------------------------------------------------------

    def render(self) -> str:
        """The Prometheus text-format document (trailing newline)."""
        self._cache_ratio.set(self.cache_hit_ratio)
        self._coalesce_ratio.set(self.coalesce_ratio)
        return self._registry.render()

    def to_dict(self) -> dict:
        """Version-1 registry snapshot (counters add, gauges last-write).

        This is the fleet's cross-process hand-back: each worker ships
        its snapshot over the control pipe and the supervisor folds them
        with :meth:`~repro.obs.registry.MetricsRegistry.merge` into one
        fleet-wide ``/metrics`` document.
        """
        self._cache_ratio.set(self.cache_hit_ratio)
        self._coalesce_ratio.set(self.coalesce_ratio)
        return self._registry.to_dict()
