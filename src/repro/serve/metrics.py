"""Service counters, latency histograms, and Prometheus text rendering.

One :class:`ServeMetrics` instance per service.  The exposition format
is the Prometheus text format, version 0.0.4 — the thing every scraper
and ``curl`` understands — rendered on demand by :meth:`render`; there
is no background collector thread.

Series
------
* ``repro_serve_requests_total{endpoint,status}`` — counter.
* ``repro_serve_request_latency_seconds`` — histogram per endpoint
  (cumulative ``_bucket{le=...}``, ``_sum``, ``_count``).
* ``repro_serve_answers_total{source}`` — where simulate answers came
  from: ``cache`` / ``table`` / ``simulation`` / ``closed-form``.
* ``repro_serve_degraded_total`` — deadline-degraded responses.
* ``repro_serve_backend_failures_total`` — backend computations that
  failed outright (fault-injected or real, non-timeout).
* ``repro_serve_coalesced_total`` / ``repro_serve_backend_runs_total``
  — joins versus actual backend computations.
* ``repro_serve_response_cache_hit_ratio`` and
  ``repro_serve_coalesce_ratio`` — derived gauges, recomputed at render
  time so they never drift from the counters they summarize.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["ServeMetrics", "DEFAULT_BUCKETS"]

#: Histogram upper bounds (seconds).  Table lookups land in the first
#: few buckets, fresh Monte-Carlo runs in the last few — the spread is
#: the point of serving from tables.
DEFAULT_BUCKETS = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

_PREFIX = "repro_serve"


def _fmt(value: float) -> str:
    """Prometheus-friendly number rendering (no exponent surprises)."""
    if value == int(value):
        return str(int(value))
    return repr(float(value))


class ServeMetrics:
    """Mutable counter state behind ``GET /metrics``."""

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        if not buckets or list(buckets) != sorted(set(buckets)):
            raise ValueError("buckets must be a sorted, deduplicated sequence")
        self._buckets: Tuple[float, ...] = tuple(float(b) for b in buckets)
        self._requests: Dict[Tuple[str, int], int] = {}
        # endpoint -> (per-bucket counts + overflow slot, sum, count)
        self._latency: Dict[str, List] = {}
        self._answers: Dict[str, int] = {}
        self.degraded_total = 0
        self.backend_failures_total = 0
        self.coalesced_total = 0
        self.backend_runs_total = 0
        self.cache_hits = 0
        self.cache_misses = 0

    # -- recording -------------------------------------------------------

    def observe_request(
        self, endpoint: str, status: int, seconds: Optional[float] = None
    ) -> None:
        key = (endpoint, int(status))
        self._requests[key] = self._requests.get(key, 0) + 1
        if seconds is None:
            return
        hist = self._latency.get(endpoint)
        if hist is None:
            hist = [[0] * (len(self._buckets) + 1), 0.0, 0]
            self._latency[endpoint] = hist
        hist[0][bisect.bisect_left(self._buckets, seconds)] += 1
        hist[1] += float(seconds)
        hist[2] += 1

    def count_answer(self, source: str) -> None:
        self._answers[source] = self._answers.get(source, 0) + 1

    def count_degraded(self) -> None:
        self.degraded_total += 1

    def count_backend_failure(self) -> None:
        """A backend computation failed (not a timeout): the service
        degraded or, for background refreshes, kept the stale table."""
        self.backend_failures_total += 1

    def record_cache(self, hits: int, misses: int) -> None:
        """Absolute hit/miss counts copied from the response cache."""
        self.cache_hits = int(hits)
        self.cache_misses = int(misses)

    def record_flight(self, started: int, coalesced: int) -> None:
        """Absolute leader/follower counts copied from the SingleFlight."""
        self.backend_runs_total = int(started)
        self.coalesced_total = int(coalesced)

    # -- derived ratios --------------------------------------------------

    @property
    def cache_hit_ratio(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def coalesce_ratio(self) -> float:
        """Fraction of backend demands absorbed by an in-flight twin."""
        total = self.backend_runs_total + self.coalesced_total
        return self.coalesced_total / total if total else 0.0

    # -- exposition ------------------------------------------------------

    def render(self) -> str:
        """The Prometheus text-format document (trailing newline)."""
        lines: List[str] = []

        def header(name: str, kind: str, help_text: str) -> None:
            lines.append(f"# HELP {_PREFIX}_{name} {help_text}")
            lines.append(f"# TYPE {_PREFIX}_{name} {kind}")

        header("requests_total", "counter", "HTTP requests by endpoint and status.")
        for (endpoint, status), count in sorted(self._requests.items()):
            lines.append(
                f'{_PREFIX}_requests_total{{endpoint="{endpoint}",'
                f'status="{status}"}} {count}'
            )

        header(
            "request_latency_seconds",
            "histogram",
            "Request handling latency by endpoint.",
        )
        for endpoint in sorted(self._latency):
            counts, total, n = self._latency[endpoint]
            running = 0
            for bound, bucket in zip(self._buckets, counts):
                running += bucket
                lines.append(
                    f'{_PREFIX}_request_latency_seconds_bucket{{'
                    f'endpoint="{endpoint}",le="{_fmt(bound)}"}} {running}'
                )
            lines.append(
                f'{_PREFIX}_request_latency_seconds_bucket{{'
                f'endpoint="{endpoint}",le="+Inf"}} {n}'
            )
            lines.append(
                f'{_PREFIX}_request_latency_seconds_sum{{'
                f'endpoint="{endpoint}"}} {repr(total)}'
            )
            lines.append(
                f'{_PREFIX}_request_latency_seconds_count{{'
                f'endpoint="{endpoint}"}} {n}'
            )

        header("answers_total", "counter", "Simulate answers by source.")
        for source, count in sorted(self._answers.items()):
            lines.append(
                f'{_PREFIX}_answers_total{{source="{source}"}} {count}'
            )

        header("degraded_total", "counter", "Deadline-degraded responses.")
        lines.append(f"{_PREFIX}_degraded_total {self.degraded_total}")

        header(
            "backend_failures_total",
            "counter",
            "Backend computations that failed outright (non-timeout).",
        )
        lines.append(
            f"{_PREFIX}_backend_failures_total {self.backend_failures_total}"
        )

        header(
            "backend_runs_total", "counter", "Backend computations started."
        )
        lines.append(f"{_PREFIX}_backend_runs_total {self.backend_runs_total}")

        header(
            "coalesced_total",
            "counter",
            "Requests that joined an identical in-flight computation.",
        )
        lines.append(f"{_PREFIX}_coalesced_total {self.coalesced_total}")

        header(
            "response_cache_hit_ratio",
            "gauge",
            "TTL+LRU response cache hit fraction.",
        )
        lines.append(
            f"{_PREFIX}_response_cache_hit_ratio {repr(self.cache_hit_ratio)}"
        )

        header(
            "coalesce_ratio",
            "gauge",
            "Fraction of backend demand absorbed by coalescing.",
        )
        lines.append(f"{_PREFIX}_coalesce_ratio {repr(self.coalesce_ratio)}")
        return "\n".join(lines) + "\n"
