"""One fleet worker process: a ``ServerApp`` plus a control pipe.

:func:`fleet_worker_main` is the spawn entry point the supervisor hands
to ``multiprocessing.Process``.  Everything a worker needs crosses the
boundary in three picklable arguments:

* a :class:`FleetWorkerSpec` — worker id, :class:`ServiceConfig`, bind
  parameters, the shared table-store descriptor, and (for chaos runs)
  a fault-plan dict activated in-process;
* optionally a *listening socket* — the REUSEPORT-less fallback, where
  every worker accepts on one supervisor-created listener (the kernel
  wakes one accept waiter per connection; asyncio absorbs the
  occasional lost race as ``BlockingIOError``);
* one end of a ``multiprocessing.Pipe`` — the control channel.

With no inherited socket the worker binds ``(host, port)`` itself with
``SO_REUSEPORT`` (the primary path: the kernel load-balances new
connections across sibling binds).

Control protocol — ``(kind, payload)`` tuples, one reply per request:
``ping`` → ``pong`` (healthz snapshot), ``metrics`` → serve + obs
registry snapshots for the supervisor's fleet-wide merge, ``reload``
(descriptor) → attach-and-swap to a new table generation, ``stop`` →
graceful drain and exit.  The pipe is watched with ``loop.add_reader``
so the event loop never blocks on it; supervisor death reads as EOF and
the worker exits rather than serve unsupervised.
"""

from __future__ import annotations

import asyncio
import contextlib
import logging
import os
from dataclasses import dataclass
from typing import Any, Optional, Tuple

from repro import faults, obs
from repro.serve.app import ServerApp
from repro.serve.fleet.store import TableStoreDescriptor, attach_tables
from repro.serve.handlers import EstimationService, ServiceConfig

__all__ = ["FleetWorkerSpec", "fleet_worker_main", "CRASH_EXIT_CODE"]

logger = logging.getLogger("repro.serve.fleet.worker")

#: Exit code of a worker killed by a scripted ``crash`` fault — distinct
#: from signal deaths so the chaos suite can tell the two apart.
CRASH_EXIT_CODE = 73

_FP_ACCEPT = faults.point(
    "fleet.socket.accept",
    "On accepting a connection in a fleet worker; 'reset' drops the "
    "connection before any request is read (the client retries onto a "
    "sibling), 'crash' kills the worker process abruptly — the "
    "supervisor's restart path is the behavior under test.",
)
_FP_SWAP = faults.point(
    "fleet.table.swap",
    "Before a worker attaches and installs a new table-store generation; "
    "a raise here must leave the previous generation serving (the "
    "supervisor recycles the worker to converge), 'crash' kills the "
    "worker mid-reload.",
)


@dataclass(frozen=True)
class FleetWorkerSpec:
    """Everything one worker needs, picklable across a spawn boundary.

    Note what is *not* here: no service object, no app, no tables (lint
    rule RR015 exists to keep it that way).  The worker constructs its
    own :class:`EstimationService` from the config and attaches tables
    from the shared store named by ``store``.
    """

    worker_id: int
    config: ServiceConfig
    host: str = "127.0.0.1"
    port: int = 0
    store: Optional[TableStoreDescriptor] = None
    fault_plan: Optional[dict] = None
    drain_seconds: float = 5.0


class _FleetWorkerApp(ServerApp):
    """A ``ServerApp`` with the fleet's accept-time fault seam."""

    def __init__(self, service: EstimationService, worker_id: int) -> None:
        super().__init__(service)
        self._worker_id = worker_id

    async def _serve_connection(self, reader, writer) -> None:
        try:
            _FP_ACCEPT.fire(worker_id=self._worker_id)
        except faults.WorkerCrash:
            # Scripted abrupt death: no drain, no cleanup — exactly what
            # the supervisor must survive.
            os._exit(CRASH_EXIT_CODE)
        except faults.FaultInjected:
            writer.close()
            return
        await super()._serve_connection(reader, writer)


def _pump_control(conn, queue: "asyncio.Queue", loop) -> None:
    """Sync ``add_reader`` callback: one message off the pipe, enqueued."""
    try:
        message = conn.recv()
    except (EOFError, OSError):
        loop.remove_reader(conn.fileno())
        queue.put_nowait(("_eof", None))
        return
    queue.put_nowait(message)


async def _worker_async(spec: FleetWorkerSpec, listen_sock, conn) -> None:
    service = EstimationService(spec.config)
    if spec.store is not None:
        try:
            service.install_tables(
                attach_tables(spec.store), generation=spec.store.generation
            )
        except FileNotFoundError:
            # The spec's generation was reloaded away while we spawned.
            # Start anyway — table builds are seed-deterministic, so a
            # self-built table answers identically — and report
            # generation 0 in the ready handshake; the supervisor
            # responds with a reload to the current generation.
            logger.warning(
                "worker %d: store generation %d unlinked before attach; "
                "starting with self-built tables",
                spec.worker_id,
                spec.store.generation,
            )
    app = _FleetWorkerApp(service, worker_id=spec.worker_id)
    if listen_sock is not None:
        await app.start(sock=listen_sock)
    else:
        await app.start(host=spec.host, port=spec.port, reuse_port=True)

    loop = asyncio.get_running_loop()
    queue: "asyncio.Queue[Tuple[str, Any]]" = asyncio.Queue()
    loop.add_reader(conn.fileno(), _pump_control, conn, queue, loop)
    conn.send(
        (
            "ready",
            {
                "worker_id": spec.worker_id,
                "pid": os.getpid(),
                "port": app.port,
                "generation": service.table_generation,
            },
        )
    )
    try:
        while True:
            kind, payload = await queue.get()
            if kind == "_eof":
                break  # supervisor is gone; do not serve unsupervised
            if kind == "ping":
                health = service.handle_healthz()
                health["worker_id"] = spec.worker_id
                health["pid"] = os.getpid()
                conn.send(("pong", health))
            elif kind == "metrics":
                conn.send(
                    (
                        "metrics",
                        {
                            "worker_id": spec.worker_id,
                            "generation": service.table_generation,
                            "serve": service.metrics.to_dict(),
                            "obs": obs.default_registry().to_dict(),
                        },
                    )
                )
            elif kind == "reload":
                descriptor = payload
                try:
                    _FP_SWAP.fire(
                        worker_id=spec.worker_id,
                        generation=descriptor.generation,
                    )
                    tables = attach_tables(descriptor)
                except faults.WorkerCrash:
                    os._exit(CRASH_EXIT_CODE)
                except Exception as exc:
                    # The previous generation keeps serving; the
                    # supervisor decides whether to recycle us.
                    logger.warning(
                        "worker %d: table swap to generation %s failed: %s",
                        spec.worker_id,
                        descriptor.generation,
                        exc,
                    )
                    conn.send(
                        ("reload-failed", {"error": str(exc),
                                           "generation": service.table_generation})
                    )
                else:
                    service.install_tables(
                        tables, generation=descriptor.generation
                    )
                    conn.send(
                        ("reloaded", {"generation": service.table_generation})
                    )
            elif kind == "stop":
                conn.send(("stopping", {"worker_id": spec.worker_id}))
                break
            else:
                conn.send(("error", {"unknown": kind}))
    finally:
        loop.remove_reader(conn.fileno())
        await app.stop(drain_seconds=spec.drain_seconds)
        with contextlib.suppress(OSError, BrokenPipeError):
            conn.send(("stopped", {"worker_id": spec.worker_id}))
        conn.close()


def fleet_worker_main(spec: FleetWorkerSpec, listen_sock=None, conn=None) -> None:
    """Spawn entry point: run one worker until stopped or orphaned."""
    activation = contextlib.nullcontext()
    if spec.fault_plan is not None:
        activation = faults.FaultPlan.from_dict(spec.fault_plan).activate()
    try:
        with activation:
            asyncio.run(_worker_async(spec, listen_sock, conn))
    finally:
        if listen_sock is not None:
            listen_sock.close()
