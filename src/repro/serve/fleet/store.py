"""Read-only shared-memory store for estimator tables.

The fleet's workers all serve the same :class:`EstimatorTable` grids,
and those grids are by far the most expensive thing a serving process
builds (a full Monte-Carlo sweep per topology).  The supervisor
therefore builds each table set exactly once, serializes the grids into
one ``multiprocessing.shared_memory`` segment with
:func:`publish_tables`, and every worker attaches zero-copy views with
:func:`attach_tables` — the same publish/attach protocol
:meth:`repro.graph.core.Graph.to_shared` uses for CSR arrays, on the
same :mod:`repro.utils.shm` lifecycle helpers.

Segment layout (all offsets 8-byte aligned)::

    [u64 header_len][header JSON, utf-8][pad]
    per table, in sorted key order:
        sizes      int64[knots]
        tree_size  float64[knots]
        mean_path  float64[knots]

The header JSON carries the store generation plus everything scalar
about each table (key, name, mode, source, error bound, knot count), so
a descriptor — segment name, generation, byte size — is all a worker
needs to reconstruct the full table dict.

Zero-downtime reload rides on POSIX unlink semantics: the supervisor
publishes generation ``g+1`` as a *new* segment, tells workers to
attach-and-swap, and only then unlinks generation ``g``.  Workers still
holding views over the old segment keep a valid mapping until their
last view dies; new attachments can only land on the new generation.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.serve.tables import EstimatorTable
from repro.utils.shm import attach_segment, create_segment

__all__ = [
    "TableStoreDescriptor",
    "TableStoreHandle",
    "attach_tables",
    "publish_tables",
]

_HEADER_LEN = struct.Struct("<Q")


def _align8(n: int) -> int:
    return (n + 7) & ~7


@dataclass(frozen=True)
class TableStoreDescriptor:
    """A picklable token naming one published table-store generation.

    Like :class:`~repro.graph.core.SharedGraphDescriptor`, this is what
    crosses the process boundary — a few dozen bytes however many knots
    the grids hold; never the tables themselves.
    """

    name: str
    generation: int
    nbytes: int


class TableStoreHandle:
    """Creator-side ownership of one published table-store segment.

    The supervisor must :meth:`release` each generation exactly once
    when it retires (after every live worker has acked the swap to the
    next one); attached workers never unlink.
    """

    __slots__ = ("_shm", "descriptor", "_unlinked")

    def __init__(self, shm, descriptor: TableStoreDescriptor) -> None:
        self._shm = shm
        self.descriptor = descriptor
        self._unlinked = False

    def unlink(self) -> None:
        """Free the segment system-wide (idempotent)."""
        if not self._unlinked:
            self._unlinked = True
            self._shm.unlink()

    def release(self) -> None:
        """Unlink and drop this process's mapping, tolerating repeats."""
        try:
            self.unlink()
        except FileNotFoundError:  # pragma: no cover - external unlink
            pass
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - a live view pins the map
            pass

    def __repr__(self) -> str:
        return (
            f"TableStoreHandle(name={self.descriptor.name!r}, "
            f"generation={self.descriptor.generation}, "
            f"nbytes={self.descriptor.nbytes}, unlinked={self._unlinked})"
        )


def publish_tables(
    tables: Dict[Tuple[str, ...], EstimatorTable], generation: int
) -> TableStoreHandle:
    """Serialize a table set into one shared segment (one copy total).

    Keys are the service's table keys verbatim — ``(name, mode)`` for
    SPT tables, ``(name, mode, algorithm)`` for non-SPT ones — so the
    worker's attached dict mirrors the supervisor's exactly.
    """
    entries = []
    arrays = []
    for key, table in sorted(tables.items()):
        entries.append(
            {
                "key": list(key),
                "name": table.name,
                "mode": table.mode,
                "source": table.source,
                "rel_error_bound": table.rel_error_bound,
                "algorithm": table.algorithm,
                "knots": int(table.sizes.size),
            }
        )
        arrays.append(np.ascontiguousarray(table.sizes, dtype=np.int64))
        arrays.append(np.ascontiguousarray(table.tree_size, dtype=np.float64))
        arrays.append(np.ascontiguousarray(table.mean_path, dtype=np.float64))
    header = json.dumps(
        {"generation": int(generation), "tables": entries}, sort_keys=True
    ).encode("utf-8")
    offset = _align8(_HEADER_LEN.size + len(header))
    total = offset + sum(arr.nbytes for arr in arrays)
    shm = create_segment(total)
    _HEADER_LEN.pack_into(shm.buf, 0, len(header))
    shm.buf[_HEADER_LEN.size : _HEADER_LEN.size + len(header)] = header
    for arr in arrays:
        np.frombuffer(shm.buf, dtype=arr.dtype, count=arr.size, offset=offset)[
            :
        ] = arr
        offset += arr.nbytes
    descriptor = TableStoreDescriptor(
        name=shm.name, generation=int(generation), nbytes=total
    )
    return TableStoreHandle(shm, descriptor)


def attach_tables(
    descriptor: TableStoreDescriptor,
) -> Dict[Tuple[str, ...], EstimatorTable]:
    """Reconstruct the table dict as zero-copy, read-only views.

    Each returned table pins the segment mapping for its own lifetime
    (the ``SharedMemory`` object rides on the instance, the way an
    attached ``Graph`` keeps ``graph._shm``), so the dict can be handed
    to :meth:`EstimationService.install_tables` and forgotten — the
    mapping survives the supervisor's unlink until the tables do.
    """
    shm = attach_segment(descriptor.name)
    (header_len,) = _HEADER_LEN.unpack_from(shm.buf, 0)
    header = json.loads(
        bytes(shm.buf[_HEADER_LEN.size : _HEADER_LEN.size + header_len]).decode(
            "utf-8"
        )
    )
    if int(header["generation"]) != int(descriptor.generation):
        raise ValueError(
            f"segment {descriptor.name!r} holds generation "
            f"{header['generation']}, descriptor says {descriptor.generation}"
        )
    offset = _align8(_HEADER_LEN.size + header_len)
    tables: Dict[Tuple[str, ...], EstimatorTable] = {}
    for entry in header["tables"]:
        knots = int(entry["knots"])
        views = []
        for dtype in (np.int64, np.float64, np.float64):
            view = np.frombuffer(shm.buf, dtype=dtype, count=knots, offset=offset)
            view.flags.writeable = False
            views.append(view)
            offset += view.nbytes
        sizes, tree, path = views
        table = EstimatorTable(
            name=entry["name"],
            mode=entry["mode"],
            sizes=sizes,
            tree_size=tree,
            mean_path=path,
            source=entry["source"],
            rel_error_bound=float(entry["rel_error_bound"]),
            algorithm=str(entry.get("algorithm", "spt")),
        )
        # Pin the mapping to the table (frozen dataclass: go around).
        object.__setattr__(table, "_store_shm", shm)
        tables[tuple(entry["key"])] = table
    return tables
