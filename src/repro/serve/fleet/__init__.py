"""Multi-process serving fleet: supervisor, workers, shared table store.

One :class:`FleetSupervisor` spawns N single-process ``ServerApp``
workers that all answer on one port (``SO_REUSEPORT``, with a
shared-listener fallback), attach the estimator tables zero-copy from
one shared-memory store, shed load explicitly instead of queueing past
deadlines, and are restarted with seeded rate-limited backoff when they
die.  See ``docs/fleet.md`` for the architecture and protocols.
"""

from repro.serve.fleet.store import (
    TableStoreDescriptor,
    TableStoreHandle,
    attach_tables,
    publish_tables,
)
from repro.serve.fleet.supervisor import (
    FleetAdminService,
    FleetConfig,
    FleetSupervisor,
)
from repro.serve.fleet.worker import (
    CRASH_EXIT_CODE,
    FleetWorkerSpec,
    fleet_worker_main,
)

__all__ = [
    "CRASH_EXIT_CODE",
    "FleetAdminService",
    "FleetConfig",
    "FleetSupervisor",
    "FleetWorkerSpec",
    "TableStoreDescriptor",
    "TableStoreHandle",
    "attach_tables",
    "fleet_worker_main",
    "publish_tables",
]
