"""The fleet supervisor: spawn, watch, restart, reload, aggregate.

``FleetSupervisor`` owns everything the workers share:

* **The port.**  Primary mode binds every worker to one ``(host,
  port)`` with ``SO_REUSEPORT`` — the kernel load-balances new
  connections across the sibling binds.  The supervisor holds a bound
  (never listening) *reservation socket* so the port survives worker
  restarts.  Where ``SO_REUSEPORT`` is unavailable (or ``reuse_port``
  is forced off) the fallback creates one listening socket here and
  ships it to every worker through spawn pickling: all workers accept
  on the shared listener and the kernel wakes one waiter per
  connection.
* **The tables.**  Built exactly once through a throwaway
  :class:`EstimationService` — the *same* startup code path a
  single-process server runs, so worker answers are byte-identical to
  the single-process ones — then published to shared memory
  (:func:`~repro.serve.fleet.store.publish_tables`) and attached
  zero-copy by every worker.  :meth:`reload_tables` publishes the next
  generation, tells live workers to attach-and-swap, and only then
  unlinks the old segment (laggard mappings stay valid until their
  views die — that is the zero-downtime contract).
* **The restarts.**  Worker death (crash fault, SIGKILL, anything)
  fires the process sentinel; the supervisor restarts the worker with
  seeded backoff jitter, rate-limited to ``restart_limit`` restarts per
  ``restart_window_seconds`` before the slot is marked failed.
* **The fleet view.**  ``/metrics`` on the admin port folds every
  worker's serve + obs registry snapshot through
  :meth:`~repro.obs.registry.MetricsRegistry.merge`; ``/healthz``
  reports per-worker liveness, restart counts, and table generation;
  ``POST /v1/fleet/reload`` triggers a hot table reload.
"""

from __future__ import annotations

import asyncio
import contextlib
import logging
import multiprocessing
import signal
import socket
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro import faults
from repro.faults.clock import SystemClock
from repro.obs.registry import MetricsRegistry
from repro.serve.app import ServerApp
from repro.serve.fleet.store import TableStoreHandle, publish_tables
from repro.serve.fleet.worker import FleetWorkerSpec, fleet_worker_main
from repro.serve.handlers import EstimationService, Response, ServiceConfig
from repro.utils.rng import ensure_rng

__all__ = ["FleetConfig", "FleetSupervisor", "FleetAdminService"]

logger = logging.getLogger("repro.serve.fleet")

_FP_SPAWN = faults.point(
    "fleet.worker.spawn",
    "Before the supervisor spawns (or respawns) a worker process; a "
    "raise here is a failed spawn — it consumes one restart-budget slot "
    "and the supervisor retries with backoff until the budget is spent.",
)


def _reuseport_available() -> bool:
    return hasattr(socket, "SO_REUSEPORT")


def _make_reservation_socket(host: str, port: int) -> socket.socket:
    """Bind (never listen) with SO_REUSEPORT to pin the fleet's port.

    A bound-not-listening socket reserves the address — the kernel only
    routes connections to *listening* REUSEPORT binds — so the port
    survives every worker being down at once (mass restart) without a
    connection ever landing on the supervisor.
    """
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
    sock.bind((host, port))
    return sock


def _make_shared_listener(host: str, port: int) -> socket.socket:
    """One listening socket for the no-REUSEPORT fallback fan-out."""
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    sock.bind((host, port))
    sock.listen(128)
    return sock


@dataclass(frozen=True)
class FleetConfig:
    """Fleet-level knobs (the CLI's ``--fleet-*`` flags map onto these)."""

    workers: int = 2
    host: str = "127.0.0.1"
    port: int = 0
    admin_port: int = 0
    service: ServiceConfig = field(default_factory=ServiceConfig)
    #: ``None`` auto-detects ``SO_REUSEPORT``; ``False`` forces the
    #: shared-listener fallback (tests exercise both modes).
    reuse_port: Optional[bool] = None
    drain_seconds: float = 5.0
    ready_timeout_seconds: float = 120.0
    control_timeout_seconds: float = 30.0
    restart_backoff_seconds: float = 0.05
    restart_limit: int = 5
    restart_window_seconds: float = 30.0
    seed: int = 0
    #: Fault-plan dict shipped to (and activated inside) every worker —
    #: the chaos suite's way of scripting worker-side failures.
    worker_fault_plan: Optional[dict] = None

    def validate(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.restart_limit < 1:
            raise ValueError(
                f"restart_limit must be >= 1, got {self.restart_limit}"
            )
        if self.restart_window_seconds <= 0:
            raise ValueError("restart_window_seconds must be positive")
        if self.drain_seconds <= 0:
            raise ValueError("drain_seconds must be positive")
        self.service.validate()


class _WorkerHandle:
    """Supervisor-side state for one worker slot."""

    __slots__ = (
        "worker_id", "process", "conn", "lock", "restarts",
        "restart_times", "failed", "port", "watched", "restart_task",
        "ready",
    )

    def __init__(self, worker_id: int) -> None:
        self.worker_id = worker_id
        self.process = None
        self.conn = None
        self.lock = asyncio.Lock()
        self.restarts = 0
        self.restart_times: List[float] = []
        self.failed = False
        self.port: Optional[int] = None
        self.watched = False
        self.restart_task: Optional[asyncio.Task] = None
        self.ready = False

    def alive(self) -> bool:
        # ``ready`` gates the control pipe, not just the process: until
        # the "ready" handshake is consumed, a roundtrip on a freshly
        # respawned worker would read that handshake as its own reply.
        return (
            not self.failed
            and self.ready
            and self.process is not None
            and self.process.is_alive()
        )


class FleetAdminService:
    """Duck-typed service behind the supervisor's admin ``ServerApp``."""

    def __init__(self, supervisor: "FleetSupervisor") -> None:
        self.supervisor = supervisor

    async def startup(self) -> None:
        return None

    async def shutdown(self) -> None:
        return None

    async def dispatch(self, method: str, path: str, body: bytes) -> Response:
        try:
            if path == "/healthz":
                if method != "GET":
                    return Response.json(405, {"error": "/healthz expects GET"})
                return Response.json(200, await self.supervisor.healthz())
            if path == "/metrics":
                if method != "GET":
                    return Response.json(405, {"error": "/metrics expects GET"})
                return Response.text(
                    200, await self.supervisor.fleet_metrics_text()
                )
            if path == "/v1/fleet/reload":
                if method != "POST":
                    return Response.json(
                        405, {"error": "/v1/fleet/reload expects POST"}
                    )
                return Response.json(200, await self.supervisor.reload_tables())
            return Response.json(404, {"error": f"no such endpoint: {path}"})
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            logger.exception("fleet admin error serving %s %s", method, path)
            return Response.json(500, {"error": f"internal error: {exc}"})


class FleetSupervisor:
    """Spawn and supervise N ``ServerApp`` workers on one port."""

    def __init__(
        self, config: Optional[FleetConfig] = None, clock: Optional[Any] = None
    ) -> None:
        self.config = config or FleetConfig()
        self.config.validate()
        self._clock = clock if clock is not None else SystemClock()
        self._rng = ensure_rng(self.config.seed)
        self._ctx = multiprocessing.get_context("spawn")
        self._workers: Dict[int, _WorkerHandle] = {}
        self._store_handle: Optional[TableStoreHandle] = None
        self._generation = 0
        self._reserve_sock: Optional[socket.socket] = None
        self._listen_sock: Optional[socket.socket] = None
        self._port: Optional[int] = None
        self._admin_app: Optional[ServerApp] = None
        self._stopping = False
        self._reload_lock = asyncio.Lock()
        self._reuse_mode = False
        registry = MetricsRegistry()
        self._g_workers = registry.gauge(
            "repro_fleet_workers", "Configured fleet size."
        )
        self._g_alive = registry.gauge(
            "repro_fleet_workers_alive", "Workers currently alive."
        )
        self._c_restarts = registry.counter(
            "repro_fleet_restarts_total",
            "Worker restarts performed by the supervisor.",
        )
        self._g_generation = registry.gauge(
            "repro_fleet_table_generation", "Current table-store generation."
        )
        self._registry = registry

    # -- public state ----------------------------------------------------

    @property
    def port(self) -> Optional[int]:
        """The serving port every worker answers on."""
        return self._port

    @property
    def admin_port(self) -> Optional[int]:
        return None if self._admin_app is None else self._admin_app.port

    @property
    def generation(self) -> int:
        return self._generation

    @property
    def reuse_port_mode(self) -> bool:
        """True on the REUSEPORT path, False on the shared-listener one."""
        return self._reuse_mode

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        """Build tables, claim the port, spawn workers, start the admin."""
        loop = asyncio.get_running_loop()
        tables = await self._build_tables()
        self._generation = 1
        self._store_handle = publish_tables(tables, generation=1)

        want_reuse = self.config.reuse_port
        self._reuse_mode = (
            _reuseport_available() if want_reuse is None else bool(want_reuse)
        )
        if self._reuse_mode and not _reuseport_available():
            raise RuntimeError("SO_REUSEPORT requested but unavailable")
        if self._reuse_mode:
            self._reserve_sock = await loop.run_in_executor(
                None, _make_reservation_socket, self.config.host, self.config.port
            )
            self._port = self._reserve_sock.getsockname()[1]
        else:
            self._listen_sock = await loop.run_in_executor(
                None, _make_shared_listener, self.config.host, self.config.port
            )
            self._port = self._listen_sock.getsockname()[1]

        for worker_id in range(self.config.workers):
            handle = _WorkerHandle(worker_id)
            self._workers[worker_id] = handle
            self._spawn(handle)
        await asyncio.gather(
            *(self._await_ready(h) for h in self._workers.values())
        )
        for handle in self._workers.values():
            self._watch(handle)

        self._admin_app = ServerApp(FleetAdminService(self))
        await self._admin_app.start(
            host=self.config.host, port=self.config.admin_port
        )

    async def stop(self) -> None:
        """Drain workers, reap processes, release every shared resource."""
        self._stopping = True
        for handle in self._workers.values():
            self._unwatch(handle)
            if handle.restart_task is not None:
                handle.restart_task.cancel()
        if self._admin_app is not None:
            await self._admin_app.stop(drain_seconds=1.0)
            self._admin_app = None
        for handle in self._workers.values():
            if handle.conn is not None and handle.alive():
                with contextlib.suppress(OSError, BrokenPipeError):
                    handle.conn.send(("stop", None))
        budget = self.config.drain_seconds + 5.0
        for handle in self._workers.values():
            if handle.process is None:
                continue
            if not await self._wait_exit(handle.process, budget):
                logger.warning(
                    "fleet worker %d did not stop in time; terminating",
                    handle.worker_id,
                )
                handle.process.terminate()
                if not await self._wait_exit(handle.process, 2.0):
                    handle.process.kill()
                    await self._wait_exit(handle.process, 2.0)
            handle.process.join()
            if handle.conn is not None:
                handle.conn.close()
                handle.conn = None
        if self._store_handle is not None:
            self._store_handle.release()
            self._store_handle = None
        if self._reserve_sock is not None:
            self._reserve_sock.close()
            self._reserve_sock = None
        if self._listen_sock is not None:
            self._listen_sock.close()
            self._listen_sock = None

    async def serve_forever(self) -> None:
        """Run until SIGINT/SIGTERM, then stop the whole fleet."""
        await self.start()
        stop_requested = asyncio.Event()
        loop = asyncio.get_running_loop()
        registered = []
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop_requested.set)
                registered.append(signum)
            except (NotImplementedError, RuntimeError):
                pass  # platform without loop signal support
        mode = "SO_REUSEPORT" if self._reuse_mode else "shared listener"
        print(
            f"repro.serve fleet: {self.config.workers} workers on "
            f"http://{self.config.host}:{self.port} ({mode}), admin on "
            f"http://{self.config.host}:{self.admin_port}"
        )
        try:
            await stop_requested.wait()
        finally:
            for signum in registered:
                loop.remove_signal_handler(signum)
            print("repro.serve fleet stopping...")
            await self.stop()
            print("repro.serve fleet stopped")

    # -- table build & reload --------------------------------------------

    async def _build_tables(self):
        """One table set via the exact single-process startup code path.

        Determinism does the heavy lifting here: ``from_sweep`` with a
        fixed seed is bit-reproducible, so the grids the workers attach
        are the grids a single-process server would have built — which
        is what makes fleet answers byte-identical to single-process
        ones.
        """
        builder = EstimationService(self.config.service, clock=self._clock)
        await builder.startup()
        tables = dict(builder.tables)
        await builder.shutdown()
        return tables

    async def reload_tables(self) -> Dict[str, Any]:
        """Zero-downtime reload: build → publish g+1 → swap → unlink g."""
        async with self._reload_lock:
            tables = await self._build_tables()
            new_generation = self._generation + 1
            new_handle = publish_tables(tables, generation=new_generation)
            old_handle = self._store_handle
            # Swap the supervisor's view first: any restart from here on
            # attaches the new generation.
            self._store_handle = new_handle
            self._generation = new_generation
            results: Dict[str, str] = {}
            for handle in list(self._workers.values()):
                if not handle.alive():
                    results[str(handle.worker_id)] = "dead"
                    continue
                try:
                    kind, payload = await self._roundtrip(
                        handle, ("reload", new_handle.descriptor)
                    )
                except (asyncio.TimeoutError, TimeoutError, EOFError, OSError) as exc:
                    # The worker is wedged or died mid-swap: recycle it;
                    # the restart attaches the new generation.
                    results[str(handle.worker_id)] = f"recycled ({type(exc).__name__})"
                    self._recycle(handle)
                    continue
                if kind == "reloaded":
                    results[str(handle.worker_id)] = "reloaded"
                else:
                    results[str(handle.worker_id)] = (
                        f"failed: {payload.get('error', kind)}"
                    )
                    self._recycle(handle)
            if old_handle is not None:
                # Workers that acked hold the new mapping; any laggard's
                # old mapping stays valid until its views die.  New
                # attachments can only land on the new generation.
                old_handle.release()
            return {"generation": new_generation, "workers": results}

    # -- spawning & supervision ------------------------------------------

    def _spec(self, worker_id: int) -> FleetWorkerSpec:
        assert self._store_handle is not None
        return FleetWorkerSpec(
            worker_id=worker_id,
            config=self.config.service,
            host=self.config.host,
            port=self._port or 0,
            store=self._store_handle.descriptor,
            fault_plan=self.config.worker_fault_plan,
            drain_seconds=self.config.drain_seconds,
        )

    def _spawn(self, handle: _WorkerHandle) -> None:
        """Start one worker process (fires the spawn fault seam)."""
        _FP_SPAWN.fire(worker_id=handle.worker_id, restarts=handle.restarts)
        handle.ready = False
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=fleet_worker_main,
            args=(self._spec(handle.worker_id), self._listen_sock, child_conn),
            daemon=True,
            name=f"repro-fleet-worker-{handle.worker_id}",
        )
        process.start()
        child_conn.close()
        handle.process = process
        handle.conn = parent_conn

    async def _await_ready(self, handle: _WorkerHandle) -> None:
        kind, payload = await self._recv(
            handle, timeout=self.config.ready_timeout_seconds
        )
        if kind != "ready":
            raise RuntimeError(
                f"fleet worker {handle.worker_id} sent {kind!r} before ready"
            )
        handle.port = payload.get("port")
        handle.ready = True
        if (
            self._store_handle is not None
            and payload.get("generation") != self._generation
        ):
            await self._sync_generation(handle)

    async def _sync_generation(self, handle: _WorkerHandle) -> None:
        """Reload a worker that came up behind the current generation.

        A respawn races :meth:`reload_tables`: the spec's descriptor can
        be unlinked between spawn and the child's attach, in which case
        the worker starts on self-built tables (generation 0) rather
        than die.  Catch it up here; a bounded retry absorbs reloads
        landing mid-sync.
        """
        for _ in range(3):
            store = self._store_handle
            if store is None:
                return
            try:
                kind, payload = await self._roundtrip(
                    handle, ("reload", store.descriptor)
                )
            except (asyncio.TimeoutError, TimeoutError, EOFError, OSError):
                return  # died again; the sentinel path owns it now
            if kind == "reloaded" and payload.get("generation") == self._generation:
                return
        logger.warning(
            "fleet worker %d is still behind table generation %d",
            handle.worker_id, self._generation,
        )

    def _watch(self, handle: _WorkerHandle) -> None:
        if handle.watched or handle.process is None:
            return
        loop = asyncio.get_running_loop()
        loop.add_reader(
            handle.process.sentinel, self._on_worker_exit, handle
        )
        handle.watched = True

    def _unwatch(self, handle: _WorkerHandle) -> None:
        if not handle.watched or handle.process is None:
            return
        loop = asyncio.get_running_loop()
        with contextlib.suppress(ValueError, OSError):
            loop.remove_reader(handle.process.sentinel)
        handle.watched = False

    def _on_worker_exit(self, handle: _WorkerHandle) -> None:
        """Sentinel-readable callback: the worker process died."""
        self._unwatch(handle)
        if self._stopping or handle.failed:
            return
        handle.restart_task = asyncio.get_running_loop().create_task(
            self._restart(handle)
        )

    def _recycle(self, handle: _WorkerHandle) -> None:
        """Force a worker through the death-and-restart path."""
        if handle.process is not None and handle.process.is_alive():
            handle.process.terminate()
        # The sentinel watcher picks the death up and restarts.

    async def _restart(self, handle: _WorkerHandle) -> None:
        """Seeded, rate-limited restart of a dead worker slot."""
        exitcode = None
        if handle.process is not None:
            handle.process.join()
            exitcode = handle.process.exitcode
        if handle.conn is not None:
            handle.conn.close()
            handle.conn = None
        logger.warning(
            "fleet worker %d died (exitcode %s)", handle.worker_id, exitcode
        )
        while not self._stopping and not handle.failed:
            now = self._clock()
            window = self.config.restart_window_seconds
            handle.restart_times = [
                t for t in handle.restart_times if now - t <= window
            ]
            if len(handle.restart_times) >= self.config.restart_limit:
                handle.failed = True
                logger.error(
                    "fleet worker %d exceeded %d restarts in %.1fs; "
                    "marking the slot failed",
                    handle.worker_id, self.config.restart_limit, window,
                )
                return
            handle.restart_times.append(now)
            handle.restarts += 1
            self._c_restarts.inc()
            # Seeded jitter keeps chaos runs replayable and staggers a
            # mass restart instead of thundering onto the CPU at once.
            backoff = self.config.restart_backoff_seconds * (
                1.0 + float(self._rng.random())
            )
            await self._clock.sleep(backoff)
            if self._stopping:
                return
            try:
                self._spawn(handle)
                await self._await_ready(handle)
            except asyncio.CancelledError:
                raise
            except Exception as exc:
                logger.warning(
                    "fleet worker %d restart attempt failed: %s",
                    handle.worker_id, exc,
                )
                if handle.process is not None and handle.process.is_alive():
                    handle.process.kill()
                    handle.process.join()
                if handle.conn is not None:
                    handle.conn.close()
                    handle.conn = None
                continue
            self._watch(handle)
            logger.info(
                "fleet worker %d restarted (pid %s, restart #%d)",
                handle.worker_id, handle.process.pid, handle.restarts,
            )
            return

    # -- control-pipe plumbing -------------------------------------------

    async def _recv(
        self, handle: _WorkerHandle, timeout: Optional[float]
    ) -> Tuple[str, Any]:
        """One message off a worker's control pipe, without blocking."""
        conn = handle.conn
        if conn is None:
            raise EOFError(f"worker {handle.worker_id} has no control pipe")
        loop = asyncio.get_running_loop()
        fd = conn.fileno()
        readable = loop.create_future()

        def on_readable() -> None:
            loop.remove_reader(fd)
            if not readable.done():
                readable.set_result(None)

        loop.add_reader(fd, on_readable)
        try:
            await self._clock.wait_for(readable, timeout)
        finally:
            with contextlib.suppress(ValueError, OSError):
                loop.remove_reader(fd)
        # The frame is on the pipe (or the peer hung up, which recv()
        # reports as EOFError); either way this returns immediately.
        return conn.recv()

    async def _roundtrip(
        self,
        handle: _WorkerHandle,
        message: Tuple[str, Any],
        timeout: Optional[float] = None,
    ) -> Tuple[str, Any]:
        if timeout is None:
            timeout = self.config.control_timeout_seconds
        async with handle.lock:
            if handle.conn is None:
                raise EOFError(f"worker {handle.worker_id} has no control pipe")
            handle.conn.send(message)
            return await self._recv(handle, timeout)

    # -- fleet-wide views ------------------------------------------------

    async def healthz(self) -> Dict[str, Any]:
        """Per-worker liveness, restart counts, and table generation."""
        workers = []
        alive = 0
        for worker_id in sorted(self._workers):
            handle = self._workers[worker_id]
            entry: Dict[str, Any] = {
                "worker_id": worker_id,
                "pid": None if handle.process is None else handle.process.pid,
                "alive": handle.alive(),
                "failed": handle.failed,
                "restarts": handle.restarts,
            }
            if handle.alive():
                alive += 1
                try:
                    kind, payload = await self._roundtrip(handle, ("ping", None))
                except (asyncio.TimeoutError, TimeoutError, EOFError, OSError):
                    entry["alive"] = False
                    entry["error"] = "control ping failed"
                else:
                    if kind == "pong":
                        entry["generation"] = payload.get("table_generation")
                        entry["inflight_requests"] = payload.get(
                            "inflight_requests"
                        )
                        entry["status"] = payload.get("status")
            workers.append(entry)
        return {
            "status": "ok" if alive > 0 else "down",
            "workers": workers,
            "fleet": {
                "configured_workers": self.config.workers,
                "alive_workers": alive,
                "port": self._port,
                "reuse_port": self._reuse_mode,
                "table_generation": self._generation,
                "total_restarts": sum(
                    h.restarts for h in self._workers.values()
                ),
            },
        }

    async def fleet_metrics_text(self) -> str:
        """The aggregated Prometheus document behind admin ``/metrics``.

        Supervisor gauges first, then every live worker's serve
        registry folded into one (counters and histograms add), then
        the workers' obs registries likewise.
        """
        serve_merged = MetricsRegistry()
        obs_merged = MetricsRegistry()
        alive = 0
        for handle in list(self._workers.values()):
            if not handle.alive():
                continue
            try:
                kind, payload = await self._roundtrip(handle, ("metrics", None))
            except (asyncio.TimeoutError, TimeoutError, EOFError, OSError):
                continue
            if kind != "metrics":
                continue
            alive += 1
            serve_merged.merge(payload["serve"])
            obs_merged.merge(payload["obs"])
        self._g_workers.set(float(self.config.workers))
        self._g_alive.set(float(alive))
        self._g_generation.set(float(self._generation))
        return (
            self._registry.render()
            + serve_merged.render()
            + obs_merged.render()
        )

    # -- internals -------------------------------------------------------

    async def _wait_exit(self, process, timeout: float) -> bool:
        """Await a process's sentinel; True iff it exited in time."""
        if not process.is_alive():
            return True
        loop = asyncio.get_running_loop()
        exited = loop.create_future()

        def on_exit() -> None:
            with contextlib.suppress(ValueError, OSError):
                loop.remove_reader(process.sentinel)
            if not exited.done():
                exited.set_result(True)

        try:
            loop.add_reader(process.sentinel, on_exit)
        except (ValueError, OSError):
            return not process.is_alive()
        try:
            await self._clock.wait_for(exited, timeout)
            return True
        except (asyncio.TimeoutError, TimeoutError):
            return False
        finally:
            with contextlib.suppress(ValueError, OSError):
                loop.remove_reader(process.sentinel)
