"""Precomputed ``L(m)`` estimator tables with log-log interpolation.

The serving hot path must never wait on the Monte-Carlo engine.  An
:class:`EstimatorTable` is the layer that makes that possible: for one
``(topology, mode)`` pair it holds the expected tree size ``L`` and mean
unicast path ``ū`` on a **log-spaced grid** of group sizes, built once
(at service startup, or lazily on the first miss), after which every
covered query is answered by interpolation in microseconds.

Interpolation and its error bound
---------------------------------
Between grid knots the table interpolates **linearly in (ln m, ln L)**
— equivalent to fitting a local power law ``L ∝ m^α`` through the two
bracketing knots, which is the natural model here: the whole paper is
about how close ``L(m)`` is to ``m^0.8``.  For a function whose log-log
curvature is bounded by ``C = max |d²(ln L)/d(ln m)²|``, linear
interpolation over a knot spacing of ``h`` in ``ln m`` has log-error at
most ``C·h²/8``, i.e. relative error ``≤ exp(C·h²/8) − 1 ≈ C·h²/8``.

For the paper's k-ary trees the measured curvature of Eq. 4 stays below
``C ≈ 0.6`` over the whole admissible range (the curve bends once, from
slope 1 toward saturation), so at the default
:data:`DEFAULT_POINTS_PER_DECADE` = 16 — ``h = ln 10 / 16 ≈ 0.144`` —
the bound is about ``0.6 · 0.144² / 8 ≈ 1.6e-3``.  The documented
contract is the looser :data:`INTERP_REL_ERROR_BOUND` = 5e-3, and
``tests/test_serve_tables.py`` verifies it against exact Eq. 4 values
on a dense off-knot grid.  Monte-Carlo-built tables add the engine's
sampling noise on top; the interpolation contribution is the same.

Grids are integer group sizes (duplicates from rounding are dropped),
always including both endpoints, so the table covers ``m`` in
``[grid[0], grid[-1]]`` exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.exceptions import ExperimentError

__all__ = [
    "EstimatorTable",
    "log_spaced_sizes",
    "DEFAULT_POINTS_PER_DECADE",
    "INTERP_REL_ERROR_BOUND",
]

#: Default grid density; see the module docstring for the error budget.
DEFAULT_POINTS_PER_DECADE = 16

#: Documented relative interpolation error bound at the default density
#: (checked against exact Eq. 4 values by the serving test suite).
INTERP_REL_ERROR_BOUND = 5e-3


def log_spaced_sizes(
    lo: int, hi: int, points_per_decade: int = DEFAULT_POINTS_PER_DECADE
) -> np.ndarray:
    """Unique integer sizes, log-spaced from ``lo`` to ``hi`` inclusive.

    Small sizes are denser than requested (every integer below the
    requested spacing survives the rounding), which only tightens the
    interpolation bound there.
    """
    if lo < 1 or hi < lo:
        raise ExperimentError(
            f"need 1 <= lo <= hi, got lo={lo}, hi={hi}"
        )
    if points_per_decade < 1:
        raise ExperimentError(
            f"points_per_decade must be >= 1, got {points_per_decade}"
        )
    decades = np.log10(hi / lo) if hi > lo else 0.0
    count = max(2, int(np.ceil(decades * points_per_decade)) + 1)
    raw = np.logspace(np.log10(lo), np.log10(hi), count)
    sizes = np.unique(np.rint(raw).astype(np.int64))
    sizes[0] = lo
    sizes[-1] = hi
    return np.unique(sizes)


@dataclass(frozen=True)
class EstimatorTable:
    """An ``L(m)`` grid for one topology and receiver convention.

    Attributes
    ----------
    name:
        Topology name (registry key, or ``kary(k,D)`` for closed-form
        tables).
    mode:
        ``"distinct"`` or ``"replacement"`` — which receiver convention
        the grid's sizes count.
    sizes:
        Increasing integer group sizes (the interpolation knots).
    tree_size:
        ``E[L]`` at each knot.
    mean_path:
        Mean unicast path ``ū`` at each knot (used for the normalized
        ``L/ū`` the figures plot).
    source:
        ``"closed-form"`` (exact Eq. 4 values via the Eq. 1 conversion)
        or ``"simulation"`` (the batched Monte-Carlo engine).
    rel_error_bound:
        The interpolation error contract this table was built to.
    algorithm:
        The tree-construction discipline the grid measured (a
        :mod:`repro.multicast.builders` registry key; ``"spt"`` for
        every pre-existing table).
    """

    name: str
    mode: str
    sizes: np.ndarray
    tree_size: np.ndarray
    mean_path: np.ndarray
    source: str
    rel_error_bound: float = INTERP_REL_ERROR_BOUND
    algorithm: str = "spt"
    _log_sizes: np.ndarray = field(init=False, repr=False, compare=False)
    _log_tree: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        sizes = np.asarray(self.sizes, dtype=np.int64)
        tree = np.asarray(self.tree_size, dtype=float)
        path = np.asarray(self.mean_path, dtype=float)
        if sizes.ndim != 1 or sizes.size < 2:
            raise ExperimentError("a table needs at least two grid knots")
        if np.any(np.diff(sizes) <= 0):
            raise ExperimentError("table sizes must be strictly increasing")
        if tree.shape != sizes.shape or path.shape != sizes.shape:
            raise ExperimentError(
                "tree_size and mean_path must match the size grid"
            )
        if np.any(tree <= 0):
            raise ExperimentError(
                "tree sizes must be positive (L(m) >= 1 for m >= 1)"
            )
        object.__setattr__(self, "sizes", sizes)
        object.__setattr__(self, "tree_size", tree)
        object.__setattr__(self, "mean_path", path)
        object.__setattr__(self, "_log_sizes", np.log(sizes.astype(float)))
        object.__setattr__(self, "_log_tree", np.log(tree))

    # -- queries ---------------------------------------------------------

    @property
    def m_min(self) -> int:
        return int(self.sizes[0])

    @property
    def m_max(self) -> int:
        return int(self.sizes[-1])

    def covers(self, m: float) -> bool:
        """Whether ``m`` lies inside the grid (no extrapolation ever)."""
        return self.m_min <= m <= self.m_max

    def lookup(self, m: float) -> Tuple[float, float]:
        """``(tree_size, mean_path)`` at ``m`` by log-log interpolation.

        Knot queries return the stored values exactly; off-knot queries
        carry the documented ``rel_error_bound``.  Raises for ``m``
        outside the grid — the service falls back to the simulator (or
        the closed form) rather than extrapolate.
        """
        if not self.covers(m):
            raise ExperimentError(
                f"m={m} outside table range [{self.m_min}, {self.m_max}] "
                f"for {self.name}/{self.mode}"
            )
        log_m = float(np.log(m))
        tree = float(np.exp(np.interp(log_m, self._log_sizes, self._log_tree)))
        path = float(np.interp(log_m, self._log_sizes, self.mean_path))
        return tree, path

    def to_dict(self) -> dict:
        """JSON-serializable summary (what ``/healthz`` reports)."""
        return {
            "name": self.name,
            "mode": self.mode,
            "source": self.source,
            "rel_error_bound": self.rel_error_bound,
            "algorithm": self.algorithm,
            "m_min": self.m_min,
            "m_max": self.m_max,
            "knots": int(self.sizes.size),
        }

    # -- builders --------------------------------------------------------

    @staticmethod
    def from_closed_form(
        k: float,
        depth: int,
        points_per_decade: int = DEFAULT_POINTS_PER_DECADE,
        m_max: Optional[int] = None,
    ) -> "EstimatorTable":
        """Exact-Eq.-4 table for a k-ary leaf-receiver tree.

        Knot values are ``L(m) = L̂(n(m))`` (Eq. 4 through the Eq. 1
        conversion), so the only table error is interpolation.  The mean
        unicast path of a leaf receiver is exactly ``D``.  The grid tops
        out just below ``M`` (Eq. 1 has no finite ``n`` at ``m = M``).
        """
        from repro.analysis.kary_asymptotic import lm_exact_via_conversion
        from repro.analysis.kary_exact import num_leaf_sites

        big_m = num_leaf_sites(k, depth)
        ceiling = int(np.floor(big_m)) - 1
        if ceiling < 2:
            raise ExperimentError(
                f"kary({k}, {depth}) has too few leaves for a table"
            )
        hi = ceiling if m_max is None else min(int(m_max), ceiling)
        sizes = log_spaced_sizes(1, hi, points_per_decade)
        tree = lm_exact_via_conversion(k, depth, sizes.astype(float))
        path = np.full(sizes.shape, float(depth))
        return EstimatorTable(
            name=f"kary({k},{depth})",
            mode="distinct",
            sizes=sizes,
            tree_size=tree,
            mean_path=path,
            source="closed-form",
        )

    @staticmethod
    def from_sweep(
        graph,
        name: str,
        mode: str = "distinct",
        config=None,
        rng=None,
        points_per_decade: int = DEFAULT_POINTS_PER_DECADE,
        distance_store=None,
        algorithm: str = "spt",
    ) -> "EstimatorTable":
        """Monte-Carlo table over a whole topology's admissible range.

        One :func:`~repro.experiments.runner.measure_sweep` call covers
        every knot (the batched engine counts a source's entire sweep in
        one vectorized walk), so building a table costs roughly the same
        as simulating a single dense sweep — the startup price that buys
        interpolation-speed queries forever after.

        Pass a :class:`~repro.graph.distance_store.DistanceStore` (or
        its descriptor) to serve source forests from precomputed mmap
        rows instead of per-source BFS — how million-node grids become
        buildable; a *complete* store leaves the table bit-identical to
        the storeless build.

        ``algorithm`` selects the tree builder the grid measures (a
        :mod:`repro.multicast.builders` registry key); ``"spt"`` keeps
        the batched counting path and every pre-existing table byte.
        """
        from repro.experiments.runner import measure_sweep

        hi = graph.num_nodes - 1 if mode == "distinct" else 4 * graph.num_nodes
        if hi < 2:
            raise ExperimentError(
                f"topology {name!r} is too small for an estimator table"
            )
        sizes = log_spaced_sizes(1, hi, points_per_decade)
        measurement = measure_sweep(
            graph,
            sizes.tolist(),
            mode=mode,
            config=config,
            topology=name,
            rng=rng,
            distance_store=distance_store,
            algorithm=algorithm,
        )
        return EstimatorTable(
            name=name,
            mode=mode,
            sizes=sizes,
            tree_size=np.asarray(measurement.mean_tree_size, dtype=float),
            mean_path=np.asarray(measurement.mean_unicast_path, dtype=float),
            source="simulation",
            algorithm=algorithm,
        )
