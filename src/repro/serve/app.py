"""The asyncio socket front end: HTTP framing, drain, selftest.

Stdlib only — :func:`asyncio.start_server` plus a minimal HTTP/1.1
reader (request line, headers, ``Content-Length`` bodies, keep-alive).
Everything interesting happens one layer down in
:meth:`~repro.serve.handlers.EstimationService.dispatch`; this module's
job is framing and lifecycle:

* **Graceful shutdown** — SIGINT/SIGTERM stops the listener first,
  then waits (bounded) for in-flight connections to drain before the
  process exits; a second signal abandons the drain.
* **Selftest** — ``run_selftest`` boots a real server on an ephemeral
  port, issues one request per endpoint over actual sockets, checks the
  estimate answer against the closed forms and the simulate answer
  against the service's own table, and returns nonzero on any mismatch
  (the CLI's ``--selftest`` and ``make serve-smoke`` use it).
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import signal
import socket
from typing import Dict, Optional, Set, Tuple

from repro import faults
from repro.serve.handlers import EstimationService, Response, ServiceConfig

__all__ = ["ServerApp", "run_selftest", "http_request"]

_FP_APP_READ = faults.point(
    "serve.app.read",
    "Before reading the next request off a connection; 'reset' simulates "
    "the client vanishing mid-keep-alive — the connection is dropped, the "
    "service itself is untouched.",
)
_FP_APP_WRITE = faults.point(
    "serve.app.write",
    "Before draining a response to the socket; 'reset' simulates the "
    "client disappearing under a written response, 'delay' a slow reader.",
)

_MAX_HEADER_BYTES = 64 * 1024
_MAX_BODY_BYTES = 4 * 1024 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


def _render_response(response: Response, keep_alive: bool) -> bytes:
    reason = _REASONS.get(response.status, "Unknown")
    head = (
        f"HTTP/1.1 {response.status} {reason}\r\n"
        f"Content-Type: {response.content_type}\r\n"
        f"Content-Length: {len(response.body)}\r\n"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        "\r\n"
    )
    return head.encode("ascii") + response.body


async def _read_request(
    reader: asyncio.StreamReader,
) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
    """One ``(method, path, headers, body)``; None on clean EOF."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ValueError("connection closed mid-request")
    except asyncio.LimitOverrunError:
        raise ValueError("request head too large")
    if len(head) > _MAX_HEADER_BYTES:
        raise ValueError("request head too large")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3:
        raise ValueError(f"malformed request line: {lines[0]!r}")
    method, target, _version = parts
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, _sep, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    if length < 0 or length > _MAX_BODY_BYTES:
        raise ValueError(f"unacceptable content-length {length}")
    body = await reader.readexactly(length) if length else b""
    path = target.split("?", 1)[0]
    return method.upper(), path, headers, body


class ServerApp:
    """Bind an :class:`EstimationService` to a listening socket."""

    def __init__(self, service: EstimationService) -> None:
        self.service = service
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: Set[asyncio.Task] = set()
        self._stopping = asyncio.Event()

    @property
    def port(self) -> Optional[int]:
        if self._server is None or not self._server.sockets:
            return None
        return self._server.sockets[0].getsockname()[1]

    async def start(
        self,
        host: str = "127.0.0.1",
        port: int = 8321,
        *,
        sock: Optional[socket.socket] = None,
        reuse_port: bool = False,
    ) -> None:
        """Start listening.

        ``sock`` hands over an already-bound (listening or not) socket —
        the fleet's fallback path where one listener is shared across
        worker processes.  ``reuse_port`` sets ``SO_REUSEPORT`` on a
        fresh bind so sibling processes can bind the same ``(host,
        port)`` and let the kernel spread accepted connections across
        them (the fleet's primary path).  The two are mutually
        exclusive; with neither, behavior is the classic single-process
        bind.
        """
        await self.service.startup()
        if sock is not None:
            self._server = await asyncio.start_server(
                self._serve_connection, sock=sock
            )
        elif reuse_port:
            self._server = await asyncio.start_server(
                self._serve_connection, host=host, port=port, reuse_port=True
            )
        else:
            self._server = await asyncio.start_server(
                self._serve_connection, host=host, port=port
            )

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        # Race each read against the stop event: a keep-alive connection
        # sitting idle between requests must not hold the drain hostage
        # (it exits the moment stop() fires), while a request already on
        # the wire when stop() lands is still read and answered — that
        # is the drain's whole contract.
        stop_wait = asyncio.ensure_future(self._stopping.wait())
        try:
            while not self._stopping.is_set():
                _FP_APP_READ.fire()
                read = asyncio.ensure_future(_read_request(reader))
                await asyncio.wait(
                    {read, stop_wait}, return_when=asyncio.FIRST_COMPLETED
                )
                if not read.done():
                    # Stopping while idle: abandon the read, close now.
                    read.cancel()
                    with contextlib.suppress(asyncio.CancelledError):
                        await read
                    break
                try:
                    request = read.result()
                except (ValueError, asyncio.IncompleteReadError) as exc:
                    writer.write(
                        _render_response(
                            Response.json(400, {"error": str(exc)}),
                            keep_alive=False,
                        )
                    )
                    break
                if request is None:
                    break
                method, path, headers, body = request
                response = await self.service.dispatch(method, path, body)
                keep_alive = (
                    headers.get("connection", "keep-alive").lower() != "close"
                    and not self._stopping.is_set()
                )
                _FP_APP_WRITE.fire()
                writer.write(_render_response(response, keep_alive))
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away; nothing to clean up but the socket
        finally:
            stop_wait.cancel()
            writer.close()

    async def stop(self, drain_seconds: float = 10.0) -> None:
        """Stop listening, then wait for in-flight connections to drain.

        Idle keep-alive connections close immediately (their read loop
        races the stop event); only connections with a request actually
        in flight consume the drain budget.  Stragglers past the budget
        are cancelled and awaited so their cleanup finishes before the
        service shuts down.
        """
        self._stopping.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        pending = {t for t in self._connections if not t.done()}
        if pending:
            _done, stragglers = await asyncio.wait(pending, timeout=drain_seconds)
            for task in stragglers:
                task.cancel()
            if stragglers:
                await asyncio.wait(stragglers, timeout=1.0)
        await self.service.shutdown()

    async def serve_forever(self, host: str, port: int) -> None:
        """Run until SIGINT/SIGTERM, then drain and return."""
        await self.start(host=host, port=port)
        stop_requested = asyncio.Event()
        loop = asyncio.get_running_loop()

        def request_stop() -> None:
            if stop_requested.is_set():
                # Second signal: abandon the drain immediately.
                for connection in self._connections:
                    connection.cancel()
            stop_requested.set()

        registered = []
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, request_stop)
                registered.append(signum)
            except (NotImplementedError, RuntimeError):
                pass  # platform without loop signal support; rely on KeyboardInterrupt
        print(f"repro.serve listening on http://{host}:{self.port}")
        try:
            await stop_requested.wait()
        finally:
            for signum in registered:
                loop.remove_signal_handler(signum)
            print("repro.serve draining in-flight requests...")
            await self.stop()
            print("repro.serve stopped")


async def http_request(
    host: str,
    port: int,
    method: str,
    path: str,
    payload: Optional[dict] = None,
) -> Tuple[int, bytes]:
    """Minimal stdlib HTTP client (the selftest's probe)."""
    body = json.dumps(payload).encode("utf-8") if payload is not None else b""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {host}:{port}\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n"
            "\r\n"
        )
        writer.write(head.encode("ascii") + body)
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
    header_end = raw.find(b"\r\n\r\n")
    if header_end < 0:
        raise ConnectionResetError("connection closed before a full response")
    status = int(raw[:header_end].split(b"\r\n")[0].split(b" ")[1])
    return status, raw[header_end + 4 :]


async def run_selftest(
    config: Optional[ServiceConfig] = None,
    plan: Optional["faults.FaultPlan"] = None,
) -> int:
    """One request per endpoint over real sockets; 0 iff all pass.

    With a ``plan`` (the CLI's ``--fault-plan``), the schedule is active
    while the probes run: the selftest then accepts *degraded* simulate
    answers (that is the behavior under test) but still fails on any
    non-200, on a degraded answer from a non-fallback source, and on a
    degraded answer appearing with no plan active.
    """
    from repro.analysis.kary_exact import lhat_leaf

    config = config or ServiceConfig(
        topologies=("arpa",), num_sources=4, num_receiver_sets=8
    )
    service = EstimationService(config)
    app = ServerApp(service)
    await app.start(host="127.0.0.1", port=0)
    failures = []
    activation = plan.activate() if plan is not None else contextlib.nullcontext()
    try:
        port = app.port
        assert port is not None
        with activation:
            status, body = await http_request(
                "127.0.0.1", port, "POST", "/v1/estimate",
                {"k": 4, "depth": 7, "n": 100},
            )
            estimate = json.loads(body)
            expected = float(lhat_leaf(4.0, 7, 100.0))
            if status != 200:
                failures.append(f"estimate returned {status}: {estimate}")
            elif abs(estimate["tree_size"] - expected) > 1e-9 * expected:
                failures.append(
                    f"estimate mismatch: {estimate['tree_size']} vs {expected}"
                )

            topology = config.topologies[0]
            status, body = await http_request(
                "127.0.0.1", port, "POST", "/v1/simulate",
                {"topology": topology, "m": 5},
            )
            simulate = json.loads(body)
            table = service.tables.get((topology, "distinct"))
            if status != 200 or table is None:
                failures.append(f"simulate returned {status}: {simulate}")
            elif simulate.get("degraded"):
                if plan is None:
                    failures.append(
                        f"simulate degraded without a fault plan: {simulate}"
                    )
                elif simulate["source"] not in ("table", "closed-form"):
                    failures.append(
                        "degraded simulate from non-fallback source "
                        f"{simulate['source']!r}"
                    )
            else:
                tree, _path = table.lookup(5)
                if simulate["source"] not in ("table", "cache"):
                    failures.append(
                        f"simulate not table-served: {simulate['source']}"
                    )
                elif abs(simulate["tree_size"] - tree) > 1e-12 * tree:
                    failures.append(
                        f"simulate mismatch: {simulate['tree_size']} vs {tree}"
                    )

            status, body = await http_request(
                "127.0.0.1", port, "GET", "/healthz"
            )
            health = json.loads(body)
            if status != 200 or health.get("status") != "ok":
                failures.append(f"healthz returned {status}: {health}")

            status, body = await http_request(
                "127.0.0.1", port, "GET", "/metrics"
            )
            metrics_text = body.decode("utf-8")
            if status != 200 or "repro_serve_requests_total" not in metrics_text:
                failures.append(f"metrics returned {status}")
    finally:
        await app.stop(drain_seconds=2.0)
    for failure in failures:
        print(f"selftest FAIL: {failure}")
    if not failures:
        suffix = f" (fault plan {plan.name!r} active)" if plan is not None else ""
        print(f"selftest OK: estimate, simulate, healthz, metrics{suffix}")
    return 1 if failures else 0
