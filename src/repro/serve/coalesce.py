"""Request coalescing and the TTL+LRU response cache.

Two small primitives the serving layer composes on its simulate path:

* :class:`SingleFlight` — at most one in-flight backend computation per
  key.  While a computation runs, every arriving request for the same
  key awaits the *same* future instead of spawning its own; the service
  counts those joins as "coalesced" (``/metrics`` exposes the ratio).
  The shared future is handed back shielded, so one impatient caller's
  deadline cannot cancel the computation out from under the others.

* :class:`TTLCache` — a bounded LRU of finished responses with a
  time-to-live.  Responses are deterministic for a fixed service seed,
  so the TTL is about bounding staleness of *table rebuilds*, not
  correctness; the LRU bound is about memory.

Neither primitive knows anything about HTTP or the estimators — they
are reusable and separately tested.
"""

from __future__ import annotations

import asyncio
import time
from collections import OrderedDict
from typing import Any, Awaitable, Callable, Dict, Hashable, Optional, Tuple

__all__ = ["SingleFlight", "TTLCache"]


class SingleFlight:
    """Deduplicate concurrent identical computations onto one future.

    ``join(key, factory)`` returns ``(future, leader)``: the first
    caller for a key becomes the leader (its ``factory()`` coroutine is
    scheduled as a task), every concurrent follower gets the same
    underlying future.  The returned awaitable is wrapped in
    :func:`asyncio.shield` so a caller applying ``wait_for`` (the
    service's deadline) abandons only its own wait — the computation
    keeps running and still resolves for the other joiners and the
    response cache.

    Counters: ``started`` leaders, ``coalesced`` followers.

    ``wait_for`` injects the timeout strategy used by :meth:`run` —
    production passes nothing (``asyncio.wait_for``); services on a
    :class:`~repro.faults.clock.VirtualClock` pass ``clock.wait_for`` so
    deadlines fire on virtual time.
    """

    def __init__(
        self,
        wait_for: Optional[
            Callable[[Awaitable[Any], Optional[float]], Awaitable[Any]]
        ] = None,
    ) -> None:
        self._inflight: Dict[Hashable, "asyncio.Future[Any]"] = {}
        self._wait_for = wait_for if wait_for is not None else asyncio.wait_for
        self.started = 0
        self.coalesced = 0

    def __len__(self) -> int:
        return len(self._inflight)

    def join(
        self,
        key: Hashable,
        factory: Callable[[], Awaitable[Any]],
    ) -> Tuple["Awaitable[Any]", bool]:
        """The shared (shielded) awaitable for ``key``, and leadership."""
        task: "Optional[asyncio.Future[Any]]" = self._inflight.get(key)
        if task is not None and not task.done():
            self.coalesced += 1
            return asyncio.shield(task), False
        try:
            task = asyncio.ensure_future(factory())
        except Exception as exc:  # repro-lint: disable=RR004 (re-raised via the stored future)
            # The leader failed synchronously (before a coroutine even
            # existed).  Surface the failure through the same resolved-
            # future path as any other leader error so the caller sees
            # the exception on await and the done-callback below still
            # clears the entry — no leaked in-flight key, no hung
            # waiters; later joiners simply elect a fresh leader.
            task = asyncio.get_running_loop().create_future()
            task.set_exception(exc)
        self._inflight[key] = task
        self.started += 1
        task.add_done_callback(lambda _t: self._forget(key, _t))
        return asyncio.shield(task), True

    def _forget(self, key: Hashable, task: "asyncio.Future[Any]") -> None:
        if self._inflight.get(key) is task:
            del self._inflight[key]

    async def run(
        self,
        key: Hashable,
        factory: Callable[[], Awaitable[Any]],
        timeout: Optional[float] = None,
    ) -> Any:
        """Await the shared computation, optionally bounded by ``timeout``.

        Raises :class:`asyncio.TimeoutError` for this caller only; the
        underlying computation is never cancelled by a timeout.
        """
        shared, _leader = self.join(key, factory)
        if timeout is None:
            return await shared
        return await self._wait_for(shared, timeout)


class TTLCache:
    """Bounded LRU mapping with per-entry expiry.

    ``get`` returns ``default`` for absent *and* expired keys (expired
    entries are dropped on observation); ``put`` refreshes both the
    value and the clock.  ``hits``/``misses`` feed the ``/metrics`` hit
    ratio.  The ``clock`` injection point keeps the TTL tests
    deterministic.
    """

    def __init__(
        self,
        max_entries: int = 1024,
        ttl_seconds: float = 300.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        if ttl_seconds <= 0:
            raise ValueError(f"ttl_seconds must be > 0, got {ttl_seconds}")
        self._entries: "OrderedDict[Hashable, Tuple[float, Any]]" = OrderedDict()
        self._max_entries = int(max_entries)
        self._ttl = float(ttl_seconds)
        self._clock = clock
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def max_entries(self) -> int:
        return self._max_entries

    @property
    def ttl_seconds(self) -> float:
        return self._ttl

    def get(self, key: Hashable, default: Any = None) -> Any:
        entry = self._entries.get(key)
        if entry is not None:
            expires, value = entry
            if self._clock() < expires:
                self._entries.move_to_end(key)
                self.hits += 1
                return value
            del self._entries[key]
        self.misses += 1
        return default

    def put(self, key: Hashable, value: Any) -> None:
        self._entries[key] = (self._clock() + self._ttl, value)
        self._entries.move_to_end(key)
        while len(self._entries) > self._max_entries:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0
