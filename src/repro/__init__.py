"""repro — reproduction of *Scaling of Multicast Trees: Comments on the
Chuang-Sirbu Scaling Law* (Phillips, Shenker & Tangmunarunkit, SIGCOMM 1999).

The package answers one question, many ways: **how many links does a
shortest-path multicast tree need to reach m random receivers?**

Layered public API:

* :mod:`repro.graph` — CSR graphs, BFS shortest paths, reachability
  functions ``S(r)``/``T(r)``.
* :mod:`repro.topology` — the paper's eight-network suite (Table 1) plus
  k-ary trees and the underlying model families (Waxman, GT-ITM,
  TIERS, preferential attachment, geometric).
* :mod:`repro.multicast` — delivery-tree construction/counting, unicast
  baseline, receiver sampling, and the affinity model of Section 5.
* :mod:`repro.analysis` — the paper's mathematics: exact k-ary sums
  (Eqs. 4/21), asymptotics (Eqs. 9–18), the general ``S(r)`` predictor
  (Eqs. 23/30), synthetic reachability families, extreme-affinity closed
  forms (Eqs. 33–38), and the Chuang-Sirbu law itself (Eqs. 1–2).
* :mod:`repro.experiments` — the Monte-Carlo methodology of Section 2
  and one driver per paper table/figure.

Quickstart::

    from repro import build_topology, measure_sweep

    graph = build_topology("ts1000", rng=0)
    sweep = measure_sweep(graph, sizes=[1, 4, 16, 64], mode="distinct")
    print(sweep.fit_exponent().slope)   # ~0.8: the Chuang-Sirbu law
"""

from repro.analysis import (
    CHUANG_SIRBU_EXPONENT,
    chuang_sirbu_prediction,
    draws_for_expected_distinct,
    expected_distinct,
    fit_scaling_exponent,
    lhat_from_rings_leaf,
    lhat_from_rings_throughout,
    lhat_leaf,
    lhat_throughout,
)
from repro.exceptions import (
    AnalysisError,
    DisconnectedGraphError,
    ExperimentError,
    GraphError,
    NodeError,
    ReproError,
    SamplingError,
    TopologyError,
)
from repro.experiments import (
    MonteCarloConfig,
    SweepConfig,
    SweepMeasurement,
    measure_sweep,
)
from repro.graph import Graph, GraphBuilder, bfs, graph_stats
from repro.multicast import (
    MulticastTreeCounter,
    build_delivery_tree,
    sample_distinct_receivers,
)
from repro.topology import TOPOLOGY_NAMES, build_topology, kary_tree

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # law + conversions
    "CHUANG_SIRBU_EXPONENT",
    "chuang_sirbu_prediction",
    "expected_distinct",
    "draws_for_expected_distinct",
    "fit_scaling_exponent",
    # theory
    "lhat_leaf",
    "lhat_throughout",
    "lhat_from_rings_leaf",
    "lhat_from_rings_throughout",
    # graph
    "Graph",
    "GraphBuilder",
    "bfs",
    "graph_stats",
    # topology
    "TOPOLOGY_NAMES",
    "build_topology",
    "kary_tree",
    # multicast
    "MulticastTreeCounter",
    "build_delivery_tree",
    "sample_distinct_receivers",
    # experiments
    "MonteCarloConfig",
    "SweepConfig",
    "SweepMeasurement",
    "measure_sweep",
    # errors
    "ReproError",
    "GraphError",
    "NodeError",
    "DisconnectedGraphError",
    "TopologyError",
    "SamplingError",
    "AnalysisError",
    "ExperimentError",
]
