"""Small statistics helpers used by the analysis and experiment layers.

The paper's headline quantitative claims are all about slopes on log-log or
lin-log plots (the Chuang-Sirbu exponent is the log-log slope of
``L(m)/u(m)`` against ``m``), so ordinary-least-squares fitting in
transformed coordinates is the central primitive here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple

import numpy as np

from repro.exceptions import AnalysisError


@dataclass(frozen=True)
class LinearFit:
    """Result of an ordinary-least-squares straight-line fit ``y = a·x + b``.

    Attributes
    ----------
    slope:
        Fitted slope ``a``.
    intercept:
        Fitted intercept ``b``.
    r_squared:
        Coefficient of determination of the fit.
    stderr_slope:
        Standard error of the slope estimate (0 when the fit is exact or
        there are only two points).
    """

    slope: float
    intercept: float
    r_squared: float
    stderr_slope: float

    def predict(self, x: Sequence[float]) -> np.ndarray:
        """Evaluate the fitted line at the points ``x``."""
        return self.slope * np.asarray(x, dtype=float) + self.intercept


@dataclass(frozen=True)
class ConfidenceInterval:
    """A mean with a symmetric normal-approximation confidence interval."""

    mean: float
    halfwidth: float
    level: float

    @property
    def low(self) -> float:
        return self.mean - self.halfwidth

    @property
    def high(self) -> float:
        return self.mean + self.halfwidth

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the interval (inclusive)."""
        return self.low <= value <= self.high


def linear_fit(x: Sequence[float], y: Sequence[float]) -> LinearFit:
    """Ordinary least squares fit of ``y`` against ``x``.

    Raises
    ------
    AnalysisError
        If fewer than two points are supplied or ``x`` is degenerate.
    """
    xs = np.asarray(x, dtype=float)
    ys = np.asarray(y, dtype=float)
    if xs.shape != ys.shape:
        raise AnalysisError(
            f"x and y must have the same shape, got {xs.shape} vs {ys.shape}"
        )
    if xs.size < 2:
        raise AnalysisError(f"need at least 2 points to fit a line, got {xs.size}")
    x_var = float(np.var(xs))
    if x_var == 0.0:
        raise AnalysisError("cannot fit a line: all x values are identical")

    x_mean = float(np.mean(xs))
    y_mean = float(np.mean(ys))
    slope = float(np.mean((xs - x_mean) * (ys - y_mean)) / x_var)
    intercept = y_mean - slope * x_mean

    residuals = ys - (slope * xs + intercept)
    ss_res = float(np.sum(residuals**2))
    ss_tot = float(np.sum((ys - y_mean) ** 2))
    r_squared = 1.0 if ss_tot == 0.0 else 1.0 - ss_res / ss_tot

    if xs.size > 2:
        mse = ss_res / (xs.size - 2)
        stderr_slope = math.sqrt(mse / (xs.size * x_var))
    else:
        stderr_slope = 0.0
    return LinearFit(slope, intercept, r_squared, stderr_slope)


def power_law_fit(x: Sequence[float], y: Sequence[float]) -> LinearFit:
    """Fit ``y ≈ C · x^a`` by least squares in log-log coordinates.

    Returns a :class:`LinearFit` whose ``slope`` is the exponent ``a`` and
    whose ``intercept`` is ``ln C``.  Non-positive points are rejected since
    they have no logarithm.
    """
    xs = np.asarray(x, dtype=float)
    ys = np.asarray(y, dtype=float)
    if np.any(xs <= 0) or np.any(ys <= 0):
        raise AnalysisError("power_law_fit requires strictly positive x and y")
    return linear_fit(np.log(xs), np.log(ys))


def log_log_slope(x: Sequence[float], y: Sequence[float]) -> float:
    """The log-log OLS slope of ``y`` against ``x`` (the power-law exponent)."""
    return power_law_fit(x, y).slope


def mean_confidence_interval(
    samples: Iterable[float], level: float = 0.95
) -> ConfidenceInterval:
    """Normal-approximation confidence interval for the mean of ``samples``.

    Uses the z quantile rather than Student's t: every caller in this
    package averages dozens-to-thousands of Monte-Carlo samples, where the
    two are indistinguishable.
    """
    values = np.asarray(list(samples), dtype=float)
    if values.size == 0:
        raise AnalysisError("cannot compute a confidence interval of no samples")
    if not 0.0 < level < 1.0:
        raise AnalysisError(f"confidence level must be in (0, 1), got {level}")
    mean = float(np.mean(values))
    if values.size == 1:
        return ConfidenceInterval(mean, math.inf, level)
    stderr = float(np.std(values, ddof=1)) / math.sqrt(values.size)
    z = _normal_quantile(0.5 + level / 2.0)
    return ConfidenceInterval(mean, z * stderr, level)


def geometric_spaced(low: int, high: int, count: int) -> np.ndarray:
    """Distinct integers roughly geometrically spaced over ``[low, high]``.

    This is how every m- or n-sweep in the experiments is laid out: the
    paper's figures all use logarithmic x axes, so sample points should be
    even in log space.  Duplicates arising from rounding are removed, so the
    result may contain fewer than ``count`` values.

    Examples
    --------
    >>> geometric_spaced(1, 1000, 4).tolist()
    [1, 10, 100, 1000]
    """
    if low < 1:
        raise AnalysisError(f"low must be >= 1 for geometric spacing, got {low}")
    if high < low:
        raise AnalysisError(f"high ({high}) must be >= low ({low})")
    if count < 1:
        raise AnalysisError(f"count must be >= 1, got {count}")
    if count == 1 or high == low:
        return np.unique(np.asarray([low, high], dtype=np.int64))[:count]
    points = np.geomspace(low, high, count)
    return np.unique(np.rint(points).astype(np.int64))


def _normal_quantile(p: float) -> float:
    """Inverse standard-normal CDF via the Acklam rational approximation.

    Accurate to ~1e-9 over (0, 1); avoids a scipy dependency in the core
    library (scipy is only required for the test extras).
    """
    if not 0.0 < p < 1.0:
        raise AnalysisError(f"quantile probability must be in (0, 1), got {p}")
    # Coefficients from Peter Acklam's algorithm.
    a = (-3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
         1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00)
    b = (-5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
         6.680131188771972e01, -1.328068155288572e01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
         -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
         3.754408661907416e00)
    p_low, p_high = 0.02425, 1.0 - 0.02425
    if p < p_low:
        q = math.sqrt(-2.0 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
        )
    if p > p_high:
        q = math.sqrt(-2.0 * math.log(1.0 - p))
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
        )
    q = p - 0.5
    r = q * q
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / (
        ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0
    )


def pairwise_mean_distance(distance_rows: np.ndarray) -> float:
    """Mean pairwise distance given a (k, k) matrix of distances.

    The diagonal is ignored.  Used by the affinity model, where ``d̂(α)`` is
    the mean inter-receiver distance of a configuration.
    """
    matrix = np.asarray(distance_rows, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise AnalysisError(
            f"expected a square distance matrix, got shape {matrix.shape}"
        )
    k = matrix.shape[0]
    if k < 2:
        return 0.0
    total = float(np.sum(matrix)) - float(np.trace(matrix))
    return total / (k * (k - 1))


def running_mean(values: Sequence[float]) -> np.ndarray:
    """Cumulative running mean of ``values`` (used for MCMC diagnostics)."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return arr
    return np.cumsum(arr) / np.arange(1, arr.size + 1)


def relative_error(measured: float, expected: float) -> float:
    """``|measured − expected| / |expected|`` with a 0/0 → 0 convention."""
    if expected == 0.0:
        return 0.0 if measured == 0.0 else math.inf
    return abs(measured - expected) / abs(expected)


def describe(values: Sequence[float]) -> Tuple[float, float, float, float]:
    """Return ``(min, mean, max, std)`` of ``values`` as floats."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise AnalysisError("cannot describe an empty sequence")
    return (
        float(arr.min()),
        float(arr.mean()),
        float(arr.max()),
        float(arr.std(ddof=0)),
    )
