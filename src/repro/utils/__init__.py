"""Shared utilities: RNG discipline, statistics helpers, text tables."""

from repro.utils.rng import RandomState, ensure_rng, spawn_rngs
from repro.utils.stats import (
    ConfidenceInterval,
    LinearFit,
    geometric_spaced,
    linear_fit,
    log_log_slope,
    mean_confidence_interval,
    power_law_fit,
)
from repro.utils.tables import format_table

__all__ = [
    "RandomState",
    "ensure_rng",
    "spawn_rngs",
    "ConfidenceInterval",
    "LinearFit",
    "geometric_spaced",
    "linear_fit",
    "log_log_slope",
    "mean_confidence_interval",
    "power_law_fit",
    "format_table",
]
