"""Shared-memory segment lifecycle helpers.

Every zero-copy publication in this package — CSR graphs
(:meth:`repro.graph.core.Graph.to_shared`) and estimator-table stores
(:mod:`repro.serve.fleet.store`) — follows the same POSIX shm protocol:
the creator owns the segment and must eventually ``unlink()`` it;
attachers map it read-only and their mapping dies with their last numpy
view.  Two CPython sharp edges make that protocol fiddly enough to
centralize here:

* **Resource-tracker over-registration** (Python < 3.13): attaching to
  a segment registers it with the :mod:`multiprocessing` resource
  tracker *as if the attacher owned it*, so an attacher exiting with
  its own tracker unlinks the creator's live segment.
  :func:`untrack_attachment` undoes that registration — but only when
  this process owns its tracker and is not the creator (spawn children
  inherit the parent's tracker fd, where the attach registration
  deduplicated against the creator's own).
* **BufferError at interpreter shutdown**: attached numpy views can
  outlive the ``SharedMemory`` object, whose ``__del__`` then raises
  trying to unmap under them.  :func:`disarm_shm_close` drops the
  mmap handles — the OS reclaims the mapping at exit anyway.

Use :func:`create_segment` / :func:`attach_segment` and both edges are
handled; the raw helpers stay exported for callers (like
``Graph.from_shared``) that need the steps separately.
"""

from __future__ import annotations

import atexit
from multiprocessing import shared_memory
from typing import Set

__all__ = [
    "attach_segment",
    "create_segment",
    "created_segments",
    "disarm_shm_close",
    "untrack_attachment",
]

#: Segment names created by *this* process.  A same-process attachment
#: must keep the tracker registration the creation made (the tracker's
#: cache is a set, so the attach register deduplicated into it) —
#: unregistering would orphan the segment on abnormal exit and make the
#: eventual unlink() a double-unregister.
_CREATED_SEGMENTS: Set[str] = set()


def created_segments() -> Set[str]:
    """Names of segments this process created (live view, do not mutate)."""
    return _CREATED_SEGMENTS


def untrack_attachment(shm: shared_memory.SharedMemory) -> None:
    """Undo the resource tracker's attachment-as-ownership registration.

    No-op when this process created the segment (the registration is the
    legitimate crash-cleanup one) or when the tracker was inherited from
    a parent process (the registration belongs to the parent).
    """
    # Compare via the public ``.name`` (no leading slash) — ``_name``
    # keeps the slash on POSIX and would never match the created set,
    # turning a same-process attach into a spurious unregister (and the
    # eventual unlink into a tracker double-unregister).
    if shm.name in _CREATED_SEGMENTS:
        return
    try:
        from multiprocessing import resource_tracker

        if resource_tracker._resource_tracker._pid is None:
            return  # inherited tracker: the registration is the parent's
        resource_tracker.unregister(shm._name, "shared_memory")
    except (ImportError, AttributeError):  # pragma: no cover - non-POSIX
        pass


def disarm_shm_close(shm: shared_memory.SharedMemory) -> None:
    """Drop the mmap handles so shutdown-time ``__del__`` cannot raise.

    Registered via :mod:`atexit` for attachments whose numpy views may
    still be reachable when the interpreter tears down; the OS reclaims
    the mapping when the process exits.
    """
    shm._buf = None
    shm._mmap = None


def create_segment(size: int) -> shared_memory.SharedMemory:
    """Create an owned segment of at least ``size`` bytes and note it.

    The caller owns the result: ship its ``.name`` to attachers and
    ``unlink()`` it exactly once when the payload retires.
    """
    shm = shared_memory.SharedMemory(create=True, size=max(1, int(size)))
    _CREATED_SEGMENTS.add(shm.name)
    return shm


def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment with both CPython edges disarmed.

    The returned object must stay referenced for as long as any view
    over its buffer is in use (ride it on the attaching object, the way
    ``Graph.from_shared`` keeps it on ``graph._shm``).
    """
    shm = shared_memory.SharedMemory(name=name)
    untrack_attachment(shm)
    atexit.register(disarm_shm_close, shm)
    return shm
