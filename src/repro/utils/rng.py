"""Random-number-generator discipline.

All stochastic code in the library takes an explicit ``rng`` argument.  This
module provides the single conversion point from the loosely-typed values a
caller may pass (``None``, an integer seed, or an existing generator) to a
:class:`numpy.random.Generator`.

Reproducibility rules used throughout the package:

* A function that consumes randomness accepts ``rng: RandomState = None``.
* The first thing it does is ``rng = ensure_rng(rng)``.
* Parallel or repeated sub-experiments derive independent child generators
  with :func:`spawn_rngs` so that per-sample results do not depend on the
  order in which samples are drawn.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

#: Anything acceptable as a source of randomness.
RandomState = Union[None, int, np.random.Generator, np.random.SeedSequence]


def ensure_rng(rng: RandomState = None) -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    rng:
        ``None`` for nondeterministic entropy, an ``int`` seed, a
        :class:`numpy.random.SeedSequence`, or an existing generator
        (returned unchanged).

    Returns
    -------
    numpy.random.Generator
        A PCG64-backed generator.

    Examples
    --------
    >>> g1 = ensure_rng(7)
    >>> g2 = ensure_rng(7)
    >>> int(g1.integers(1000)) == int(g2.integers(1000))
    True
    """
    if isinstance(rng, np.random.Generator):
        return rng
    if rng is None or isinstance(rng, (int, np.integer)):
        return np.random.default_rng(rng)
    if isinstance(rng, np.random.SeedSequence):
        return np.random.default_rng(rng)
    raise TypeError(
        f"cannot build a random generator from {type(rng).__name__}; "
        "pass None, an int seed, a SeedSequence, or a numpy Generator"
    )


def spawn_rngs(rng: RandomState, count: int) -> List[np.random.Generator]:
    """Derive ``count`` statistically independent child generators.

    The children are produced by spawning the parent's bit-generator seed
    sequence, so each child stream is independent of the others and of the
    parent's subsequent output.

    Parameters
    ----------
    rng:
        Parent randomness (any :data:`RandomState`).
    count:
        Number of children to create; must be non-negative.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    parent = ensure_rng(rng)
    seed_seq = parent.bit_generator.seed_seq  # type: ignore[attr-defined]
    if seed_seq is None:  # pragma: no cover - legacy bit generators
        seed_seq = np.random.SeedSequence(parent.integers(2**63))
    return [np.random.default_rng(child) for child in seed_seq.spawn(count)]


def sample_distinct(
    rng: RandomState,
    population: int,
    size: int,
    exclude: Optional[Sequence[int]] = None,
) -> np.ndarray:
    """Sample ``size`` distinct integers from ``range(population)``.

    Parameters
    ----------
    rng:
        Randomness source.
    population:
        Size of the population to draw from.
    size:
        Number of distinct values wanted.
    exclude:
        Optional values that must not appear in the sample.

    Returns
    -------
    numpy.ndarray
        ``size`` distinct int64 values, in random order.

    Raises
    ------
    ValueError
        If the request cannot be satisfied.
    """
    generator = ensure_rng(rng)
    if exclude:
        excluded = np.unique(np.asarray(list(exclude), dtype=np.int64))
        eligible = np.setdiff1d(
            np.arange(population, dtype=np.int64), excluded, assume_unique=True
        )
        if size > eligible.size:
            raise ValueError(
                f"cannot draw {size} distinct values from a population of "
                f"{population} with {excluded.size} exclusions"
            )
        return generator.choice(eligible, size=size, replace=False)
    if size > population:
        raise ValueError(
            f"cannot draw {size} distinct values from a population of {population}"
        )
    return generator.choice(population, size=size, replace=False)
