"""Plain-text table rendering.

Benchmarks and the CLI print their outputs as aligned text tables — the
reproduction equivalents of the paper's Table 1 and per-figure data series.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

Cell = Union[str, int, float, None]


def _render_cell(value: Cell, float_format: str) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return format(value, float_format)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    float_format: str = ".4g",
    title: Optional[str] = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned text table.

    Parameters
    ----------
    headers:
        Column names.
    rows:
        Iterable of rows; each row must have ``len(headers)`` cells.
        ``None`` cells render as ``-``; floats use ``float_format``.
    float_format:
        Format spec applied to float cells.
    title:
        Optional title line printed above the table.

    Returns
    -------
    str
        The table, ending without a trailing newline.
    """
    rendered: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        cells = list(row)
        if len(cells) != len(headers):
            raise ValueError(
                f"row has {len(cells)} cells but table has {len(headers)} columns"
            )
        rendered.append([_render_cell(cell, float_format) for cell in cells])

    widths = [max(len(r[i]) for r in rendered) for i in range(len(headers))]
    separator = "-+-".join("-" * w for w in widths)

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(" | ".join(cell.ljust(w) for cell, w in zip(rendered[0], widths)))
    lines.append(separator)
    for row_cells in rendered[1:]:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row_cells, widths)))
    return "\n".join(lines)
