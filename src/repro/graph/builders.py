"""Mutable graph construction and interop with :mod:`networkx`.

Topology generators accumulate edges incrementally; :class:`GraphBuilder`
gives them an O(1)-amortized mutable adjacency structure and a single
conversion point into the immutable CSR :class:`~repro.graph.core.Graph`.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set, Tuple

import numpy as np

from repro.exceptions import GraphError, NodeError
from repro.graph.core import Graph

__all__ = ["GraphBuilder", "from_networkx", "to_networkx"]


class GraphBuilder:
    """Incrementally build an undirected simple graph.

    Duplicate edge insertions and self-loops are ignored or rejected
    according to the ``strict`` flag: generators that legitimately produce
    duplicates (e.g. the TIERS model) build with ``strict=False`` and let
    the builder deduplicate silently, mirroring the paper's "cleaning"
    step.

    Parameters
    ----------
    num_nodes:
        Initial number of nodes (more can be added with :meth:`add_node`).
    strict:
        When True (default), adding a duplicate edge or a self-loop raises
        :class:`GraphError`.  When False, duplicates and self-loops are
        silently dropped and counted in :attr:`dropped_edges`.
    """

    def __init__(self, num_nodes: int = 0, strict: bool = True) -> None:
        if num_nodes < 0:
            raise GraphError(f"num_nodes must be non-negative, got {num_nodes}")
        self._adjacency: List[Set[int]] = [set() for _ in range(num_nodes)]
        self._strict = bool(strict)
        self._num_edges = 0
        self.dropped_edges = 0

    @property
    def num_nodes(self) -> int:
        """Current number of nodes."""
        return len(self._adjacency)

    @property
    def num_edges(self) -> int:
        """Current number of undirected edges."""
        return self._num_edges

    def add_node(self) -> int:
        """Append a new isolated node; returns its id."""
        self._adjacency.append(set())
        return len(self._adjacency) - 1

    def add_nodes(self, count: int) -> range:
        """Append ``count`` new isolated nodes; returns their id range."""
        if count < 0:
            raise GraphError(f"count must be non-negative, got {count}")
        start = len(self._adjacency)
        self._adjacency.extend(set() for _ in range(count))
        return range(start, start + count)

    def _check(self, node: int) -> int:
        node = int(node)
        if not 0 <= node < len(self._adjacency):
            raise NodeError(node, len(self._adjacency))
        return node

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge ``(u, v)`` is already present."""
        u = self._check(u)
        v = self._check(v)
        return v in self._adjacency[u]

    def add_edge(self, u: int, v: int) -> bool:
        """Add the undirected edge ``(u, v)``.

        Returns
        -------
        bool
            True if the edge was newly added; False if it was dropped as a
            duplicate/self-loop under ``strict=False``.
        """
        u = self._check(u)
        v = self._check(v)
        if u == v:
            if self._strict:
                raise GraphError(f"self-loop at node {u} is not allowed")
            self.dropped_edges += 1
            return False
        if v in self._adjacency[u]:
            if self._strict:
                raise GraphError(f"duplicate edge ({u}, {v})")
            self.dropped_edges += 1
            return False
        self._adjacency[u].add(v)
        self._adjacency[v].add(u)
        self._num_edges += 1
        return True

    def add_edges(self, edges: Iterable[Tuple[int, int]]) -> int:
        """Add many edges; returns how many were newly added."""
        added = 0
        for u, v in edges:
            if self.add_edge(u, v):
                added += 1
        return added

    def add_path(self, nodes: Iterable[int]) -> int:
        """Add edges forming a path through ``nodes`` in order."""
        node_list = [self._check(n) for n in nodes]
        return self.add_edges(zip(node_list, node_list[1:]))

    def add_cycle(self, nodes: Iterable[int]) -> int:
        """Add edges forming a cycle through ``nodes`` in order."""
        node_list = [self._check(n) for n in nodes]
        if len(node_list) < 3:
            raise GraphError(f"a cycle needs at least 3 nodes, got {len(node_list)}")
        return self.add_edges(
            zip(node_list, node_list[1:] + node_list[:1])
        )

    def degree(self, node: int) -> int:
        """Current degree of ``node``."""
        return len(self._adjacency[self._check(node)])

    def neighbors(self, node: int) -> Set[int]:
        """A copy of the neighbour set of ``node``."""
        return set(self._adjacency[self._check(node)])

    def edges(self) -> Iterable[Tuple[int, int]]:
        """Iterate over edges as ``(u, v)`` with ``u < v``."""
        for u, adj in enumerate(self._adjacency):
            for v in adj:
                if u < v:
                    yield (u, v)

    def to_graph(self) -> Graph:
        """Freeze the builder into an immutable CSR :class:`Graph`."""
        n = len(self._adjacency)
        degrees = np.fromiter(
            (len(adj) for adj in self._adjacency), count=n, dtype=np.int64
        )
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(degrees, out=indptr[1:])
        indices = np.empty(int(indptr[-1]), dtype=np.int32)
        for u, adj in enumerate(self._adjacency):
            row = np.fromiter(adj, count=len(adj), dtype=np.int32)
            row.sort()
            indices[indptr[u] : indptr[u + 1]] = row
        return Graph(n, indptr, indices, check=False)


def from_networkx(nx_graph) -> Tuple[Graph, List]:
    """Convert a networkx graph to a :class:`Graph`.

    Node labels are mapped to dense ids in sorted order when sortable,
    insertion order otherwise.  Self-loops and parallel edges are dropped.

    Returns
    -------
    (Graph, list)
        The converted graph and the list mapping dense id → original label.
    """
    import networkx as nx

    if nx_graph.is_directed():
        nx_graph = nx_graph.to_undirected()
    labels = list(nx_graph.nodes())
    try:
        labels.sort()
    except TypeError:
        pass  # unsortable mixed labels: keep insertion order
    label_to_id = {label: i for i, label in enumerate(labels)}
    builder = GraphBuilder(len(labels), strict=False)
    for u, v in nx_graph.edges():
        builder.add_edge(label_to_id[u], label_to_id[v])
    return builder.to_graph(), labels


def to_networkx(graph: Graph):
    """Convert a :class:`Graph` to a :class:`networkx.Graph`."""
    import networkx as nx

    nx_graph = nx.Graph()
    nx_graph.add_nodes_from(range(graph.num_nodes))
    nx_graph.add_edges_from(graph.edges())
    return nx_graph
