"""Graph substrate: CSR graphs, shortest paths, reachability, I/O."""

from repro.graph.builders import GraphBuilder, from_networkx, to_networkx
from repro.graph.core import Graph
from repro.graph.distance_store import (
    DistanceStore,
    DistanceStoreDescriptor,
    attach_distance_store,
    build_distance_store,
)
from repro.graph.forest_cache import (
    ForestCache,
    default_forest_cache,
    graph_fingerprint,
)
from repro.graph.io import (
    read_edge_list,
    read_json_graph,
    write_edge_list,
    write_json_graph,
)
from repro.graph.metrics import (
    TopologyMetrics,
    clustering_coefficient,
    degree_assortativity,
    degree_histogram,
    degree_tail_fit,
    topology_metrics,
)
from repro.graph.ops import (
    GraphStats,
    clean_edges,
    connected_components,
    diameter,
    graph_stats,
    is_connected,
    largest_connected_component,
    require_connected,
)
from repro.graph.paths import (
    ShortestPathForest,
    WeightedForest,
    bfs,
    bfs_from_many,
    dijkstra,
    distance_matrix,
    distances_from,
    distances_from_many,
    uniform_arc_weights,
)
from repro.graph.reachability import (
    AveragedReachability,
    ReachabilityProfile,
    average_path_length,
    average_profile,
    classify_growth,
    reachability_profile,
)

__all__ = [
    "Graph",
    "GraphBuilder",
    "DistanceStore",
    "DistanceStoreDescriptor",
    "attach_distance_store",
    "build_distance_store",
    "ForestCache",
    "default_forest_cache",
    "graph_fingerprint",
    "from_networkx",
    "to_networkx",
    "read_edge_list",
    "write_edge_list",
    "read_json_graph",
    "write_json_graph",
    "TopologyMetrics",
    "clustering_coefficient",
    "degree_assortativity",
    "degree_histogram",
    "degree_tail_fit",
    "topology_metrics",
    "GraphStats",
    "clean_edges",
    "connected_components",
    "diameter",
    "graph_stats",
    "is_connected",
    "largest_connected_component",
    "require_connected",
    "ShortestPathForest",
    "WeightedForest",
    "bfs",
    "bfs_from_many",
    "dijkstra",
    "distance_matrix",
    "distances_from",
    "distances_from_many",
    "uniform_arc_weights",
    "AveragedReachability",
    "ReachabilityProfile",
    "average_path_length",
    "average_profile",
    "classify_growth",
    "reachability_profile",
]
