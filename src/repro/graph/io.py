"""Reading and writing graphs as plain files.

Two formats are supported:

* **Edge list** (``.edges``): one ``u v`` pair per line, ``#`` comments.
  This is the lingua franca of topology datasets (the NLANR AS lists the
  paper used are distributed this way).
* **JSON** (``.json``): ``{"num_nodes": N, "edges": [[u, v], ...]}`` with
  optional metadata, used to persist generated topologies alongside
  experiment results.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.exceptions import GraphError
from repro.graph.core import Graph
from repro.graph.ops import clean_edges

__all__ = [
    "read_edge_list",
    "write_edge_list",
    "read_json_graph",
    "write_json_graph",
]

PathLike = Union[str, Path]


def read_edge_list(path: PathLike, clean: bool = True) -> Graph:
    """Read a graph from a whitespace-separated edge-list file.

    Node ids may be arbitrary non-negative integers; they are compacted to
    dense ids ``0..N-1`` in sorted order.  Lines starting with ``#`` and
    blank lines are skipped.

    Parameters
    ----------
    path:
        File to read.
    clean:
        Deduplicate edges and drop self-loops (the paper's cleaning step).
        When False, duplicates raise :class:`GraphError`.
    """
    raw_edges: List[Tuple[int, int]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            text = line.split("#", 1)[0].strip()
            if not text:
                continue
            parts = text.split()
            if len(parts) < 2:
                raise GraphError(
                    f"{path}:{line_no}: expected 'u v', got {line.rstrip()!r}"
                )
            try:
                u, v = int(parts[0]), int(parts[1])
            except ValueError as exc:
                raise GraphError(
                    f"{path}:{line_no}: non-integer node id in {line.rstrip()!r}"
                ) from exc
            if u < 0 or v < 0:
                raise GraphError(f"{path}:{line_no}: negative node id")
            raw_edges.append((u, v))

    labels = sorted({node for edge in raw_edges for node in edge})
    relabel = {label: i for i, label in enumerate(labels)}
    edges = [(relabel[u], relabel[v]) for u, v in raw_edges]
    if clean:
        edges, _ = clean_edges(edges)
    return Graph.from_edges(len(labels), edges)


def write_edge_list(graph: Graph, path: PathLike, header: Optional[str] = None) -> None:
    """Write ``graph`` as an edge-list file (one ``u v`` per line)."""
    with open(path, "w", encoding="utf-8") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        handle.write(f"# nodes={graph.num_nodes} edges={graph.num_edges}\n")
        for u, v in graph.edges():
            handle.write(f"{u} {v}\n")


def write_json_graph(
    graph: Graph, path: PathLike, metadata: Optional[Dict] = None
) -> None:
    """Persist ``graph`` (plus optional metadata) as JSON."""
    payload = {
        "num_nodes": graph.num_nodes,
        "edges": [[int(u), int(v)] for u, v in graph.edges()],
    }
    if metadata:
        payload["metadata"] = metadata
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)


def read_json_graph(path: PathLike) -> Tuple[Graph, Dict]:
    """Load a graph written by :func:`write_json_graph`.

    Returns
    -------
    (Graph, dict)
        The graph and its metadata dict (empty when absent).
    """
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    try:
        num_nodes = int(payload["num_nodes"])
        edges = [(int(u), int(v)) for u, v in payload["edges"]]
    except (KeyError, TypeError, ValueError) as exc:
        raise GraphError(f"{path}: malformed JSON graph payload") from exc
    graph = Graph.from_edges(num_nodes, edges)
    metadata = payload.get("metadata", {})
    if not isinstance(metadata, dict):
        raise GraphError(f"{path}: metadata must be a JSON object")
    return graph, metadata
