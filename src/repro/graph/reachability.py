"""Reachability functions ``S(r)`` and ``T(r)``.

Section 4 of the paper rests on the *reachability function* ``S(r)`` — the
number of distinct sites exactly ``r`` hops from a chosen source — and its
cumulative ``T(r) = Σ_{j<=r} S(j)``.  Networks whose ``S(r)`` grows
exponentially obey the k-ary-tree asymptotics for the multicast tree size;
sub- and super-exponential networks do not.  Figure 7 plots ``ln T(r)``
versus ``r`` averaged over random sources, which is exactly what
:func:`average_profile` computes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.exceptions import AnalysisError, GraphError
from repro.graph.core import Graph
from repro.graph.ops import require_connected
from repro.graph.paths import distances_from
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.stats import linear_fit

__all__ = [
    "ReachabilityProfile",
    "reachability_profile",
    "AveragedReachability",
    "average_profile",
    "average_path_length",
    "classify_growth",
]


@dataclass(frozen=True)
class ReachabilityProfile:
    """``S(r)`` and ``T(r)`` from a single source.

    Attributes
    ----------
    source:
        The source node.
    ring_sizes:
        ``ring_sizes[r]`` is ``S(r)``, the number of nodes at distance
        exactly ``r``; index 0 is the source itself (``S(0) = 1``).
    """

    source: int
    ring_sizes: np.ndarray

    def __post_init__(self) -> None:
        self.ring_sizes.setflags(write=False)

    @property
    def eccentricity(self) -> int:
        """Largest distance with a nonempty ring."""
        return self.ring_sizes.shape[0] - 1

    @property
    def num_reachable(self) -> int:
        """Total reachable nodes, ``T(eccentricity)``."""
        return int(self.ring_sizes.sum())

    def s(self, r: int) -> int:
        """``S(r)``: the number of nodes exactly ``r`` hops away."""
        if r < 0:
            raise AnalysisError(f"radius must be non-negative, got {r}")
        if r >= self.ring_sizes.shape[0]:
            return 0
        return int(self.ring_sizes[r])

    def t(self, r: int) -> int:
        """``T(r)``: the number of nodes at most ``r`` hops away."""
        if r < 0:
            raise AnalysisError(f"radius must be non-negative, got {r}")
        r = min(r, self.ring_sizes.shape[0] - 1)
        return int(self.ring_sizes[: r + 1].sum())

    @property
    def cumulative(self) -> np.ndarray:
        """``T(r)`` for r = 0..eccentricity as an array."""
        return np.cumsum(self.ring_sizes)

    @property
    def mean_distance(self) -> float:
        """Mean distance from the source to the *other* reachable nodes.

        This is the source's contribution to the network's average unicast
        path length ``ū``.
        """
        others = self.num_reachable - 1
        if others <= 0:
            return 0.0
        radii = np.arange(self.ring_sizes.shape[0])
        return float(np.dot(radii, self.ring_sizes)) / others


def reachability_profile(graph: Graph, source: int) -> ReachabilityProfile:
    """Compute ``S(r)`` from ``source`` by a single BFS."""
    dist = distances_from(graph, source)
    reachable = dist[dist >= 0]
    rings = np.bincount(reachable.astype(np.int64))
    return ReachabilityProfile(source=int(source), ring_sizes=rings)


@dataclass(frozen=True)
class AveragedReachability:
    """``S(r)`` / ``T(r)`` averaged over several sources (Figure 7 data).

    Attributes
    ----------
    sources:
        The sources averaged over.
    mean_ring_sizes:
        Mean ``S(r)`` per radius, zero-padded to the largest eccentricity.
    """

    sources: np.ndarray
    mean_ring_sizes: np.ndarray

    def __post_init__(self) -> None:
        self.sources.setflags(write=False)
        self.mean_ring_sizes.setflags(write=False)

    @property
    def mean_cumulative(self) -> np.ndarray:
        """Mean ``T(r)`` per radius."""
        return np.cumsum(self.mean_ring_sizes)

    @property
    def radii(self) -> np.ndarray:
        """The radius axis 0..max eccentricity."""
        return np.arange(self.mean_ring_sizes.shape[0])

    def log_cumulative_series(self) -> "tuple[np.ndarray, np.ndarray]":
        """``(r, ln T(r))`` — the exact series plotted in Figure 7."""
        t = self.mean_cumulative
        return self.radii, np.log(t)


def average_profile(
    graph: Graph,
    num_sources: int = 100,
    rng: RandomState = None,
    sources: Optional[Sequence[int]] = None,
) -> AveragedReachability:
    """Average the reachability profile over random sources.

    Parameters
    ----------
    graph:
        A connected graph.
    num_sources:
        Number of random sources drawn **with replacement** (the paper's
        ``Nsource`` methodology).  Ignored when ``sources`` is given.
    rng:
        Randomness for source selection.
    sources:
        Explicit source list overriding random selection.
    """
    require_connected(graph, "average_profile")
    if sources is None:
        generator = ensure_rng(rng)
        chosen = generator.integers(0, graph.num_nodes, size=num_sources)
    else:
        chosen = np.asarray([graph.check_node(s) for s in sources], dtype=np.int64)
        if chosen.size == 0:
            raise AnalysisError("sources must be non-empty")
    profiles = [reachability_profile(graph, int(s)) for s in chosen]
    width = max(p.ring_sizes.shape[0] for p in profiles)
    stacked = np.zeros((len(profiles), width))
    for i, profile in enumerate(profiles):
        stacked[i, : profile.ring_sizes.shape[0]] = profile.ring_sizes
    return AveragedReachability(
        sources=chosen, mean_ring_sizes=stacked.mean(axis=0)
    )


def average_path_length(
    graph: Graph,
    num_sources: int = 32,
    rng: RandomState = None,
    sources: Optional[Sequence[int]] = None,
) -> float:
    """The network's average unicast path length ``ū``.

    Averaged over BFS sweeps from random (or given) sources; for graphs
    with at most ``num_sources`` nodes, all sources are used exactly.
    """
    require_connected(graph, "average_path_length")
    if sources is None:
        if graph.num_nodes <= num_sources:
            chosen: Sequence[int] = range(graph.num_nodes)
        else:
            generator = ensure_rng(rng)
            chosen = generator.choice(
                graph.num_nodes, size=num_sources, replace=False
            ).tolist()
    else:
        chosen = [graph.check_node(s) for s in sources]
    means = [reachability_profile(graph, int(s)).mean_distance for s in chosen]
    if not means:
        raise AnalysisError("no sources to average over")
    return float(np.mean(means))


def classify_growth(
    profile: AveragedReachability,
    saturation_fraction: float = 0.9,
    linearity_threshold: float = 0.95,
) -> str:
    """Classify ``T(r)`` growth as exponential or sub-exponential.

    Section 4 divides the studied networks into those whose ``T(r)`` grows
    exponentially before saturation (r100, ts1000, ts1008, Internet, AS)
    and those with visible concavity (ARPA, MBone, ti5000).  The test here
    is the paper's visual one made numeric: fit ``ln T(r)`` against ``r``
    over the pre-saturation region and call the growth exponential when
    the fit is close to linear (R² above ``linearity_threshold``) and
    concave otherwise.  The default threshold 0.95 cleanly separates the
    paper's two classes on our suite: internet/as/ts1008/ts1000/r100
    score 0.96-0.99 while ti5000/arpa/mbone score 0.93 and below.

    Returns
    -------
    str
        ``"exponential"`` or ``"sub-exponential"``.
    """
    t = profile.mean_cumulative
    total = t[-1]
    grow = np.flatnonzero(t <= saturation_fraction * total)
    if grow.size < 3:
        # Saturates almost immediately: indistinguishable from exponential.
        return "exponential"
    radii = grow.astype(float)
    fit = linear_fit(radii, np.log(t[grow]))
    return "exponential" if fit.r_squared >= linearity_threshold else "sub-exponential"
