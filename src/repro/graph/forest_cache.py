"""An LRU cache of BFS forests keyed by graph content.

The Monte-Carlo drivers repeatedly rebuild structurally identical
topologies (each figure driver constructs its own :class:`Graph` from the
same seed) and then BFS from the same sources.  Because :class:`Graph` is
immutable, a shortest-path forest is a pure function of
``(graph content, source, tie-break policy, tie-break seed)`` — so those
four values key a process-wide cache and the recomputation disappears.

Keying
------
Graphs are identified by :func:`graph_fingerprint`: a SHA-1 over the node
count and the raw CSR arrays.  Two independently built but structurally
identical graphs therefore share cache entries (this is what makes the
cache effective across figure drivers, benches, and the CLI ``all`` run).
The fingerprint is memoized per graph *object*, so the O(E) hash is paid
once per built graph, not once per lookup.

``tie_break="first"`` forests are deterministic and cached under
``seed=None``.  ``tie_break="random"`` forests are only cacheable when the
caller names the randomness: pass an integer ``seed`` and the cached entry
is the forest produced by ``bfs(..., rng=seed)``.  Passing a live
generator is rejected — its state is not a stable key.

Invalidation
------------
Entries never go stale (graphs are immutable; the fingerprint is the
content), so the only eviction is LRU once ``max_entries`` is exceeded.
``clear()`` empties a cache explicitly — tests that count BFS invocations
and long-lived services that churn through many topologies use it.

Write protection
----------------
Cached forests are *shared* — one entry may serve every figure driver in
a process — so :meth:`ForestCache.forest` re-asserts
``writeable=False`` on the ``dist``/``parent`` arrays each time it hands
an entry out.  In-place writes raise ``ValueError`` at the write site
(the runtime backstop for the static rule RR002 in ``repro.lint``);
callers that genuinely need a writable forest take an independent copy
from :meth:`ForestCache.borrow_mutable`.

A module-level default cache (:func:`default_forest_cache`) serves
``distance_matrix``, the experiment runner, and anything else that does
not manage its own; it holds at most :data:`DEFAULT_MAX_ENTRIES` forests
(two int32 arrays each, so ~8 MB per thousand cached 10k-node forests).
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Dict, Optional, Tuple

from repro import faults, obs
from repro.exceptions import GraphError
from repro.graph.core import Graph
from repro.graph.paths import ShortestPathForest, bfs

__all__ = [
    "ForestCache",
    "graph_fingerprint",
    "prime_fingerprint",
    "default_forest_cache",
    "DEFAULT_MAX_ENTRIES",
]

#: Default capacity of a :class:`ForestCache`, in forests.
DEFAULT_MAX_ENTRIES = 512

_FP_COMPUTE = faults.point(
    "forest_cache.compute",
    "In the single-flight leader, before the BFS runs; a failure here "
    "must wake every waiter and leave them free to retry — never an "
    "inherited exception or a hang.",
)
_FP_EVICT_RACE = faults.point(
    "forest_cache.evict_race",
    "In a waiter, right after the leader's completion event fires and "
    "before the cache is re-checked; a 'call' action here scripts an "
    "eviction into the race window the retry loop exists for.",
)

# Process-wide mirrors of every cache instance's counters, incremented
# at the same sites (inside the instance lock) so the obs exposition
# and the per-instance stats can never disagree about an event.
_OBS_HITS = obs.counter(
    "repro_forest_cache_hits_total", "Forest cache lookups served from memory."
)
_OBS_MISSES = obs.counter(
    "repro_forest_cache_misses_total", "Forest cache lookups that ran a BFS."
)
_OBS_EVICTIONS = obs.counter(
    "repro_forest_cache_evictions_total", "Cached forests dropped by LRU."
)
_OBS_COALESCED = obs.counter(
    "repro_forest_cache_coalesced_total",
    "Lookups that waited on another thread's in-flight BFS.",
)

# fingerprint memo: id(graph) -> (graph, hex digest).  Holding the graph
# keeps the id stable; the dict is bounded to avoid pinning unbounded
# numbers of dead topologies in memory.
_FINGERPRINT_MEMO: "OrderedDict[int, Tuple[Graph, str]]" = OrderedDict()
_FINGERPRINT_MEMO_MAX = 64
_FINGERPRINT_LOCK = threading.Lock()


def graph_fingerprint(graph: Graph) -> str:
    """Stable content fingerprint of ``graph`` (SHA-1 hex digest).

    Identical CSR content yields identical fingerprints across processes
    and sessions, which is what lets worker processes and repeated driver
    runs share cache keys.
    """
    with _FINGERPRINT_LOCK:
        memo = _FINGERPRINT_MEMO.get(id(graph))
        if memo is not None and memo[0] is graph:
            _FINGERPRINT_MEMO.move_to_end(id(graph))
            return memo[1]
    digest = hashlib.sha1()
    digest.update(int(graph.num_nodes).to_bytes(8, "little"))
    digest.update(graph.indptr.tobytes())
    digest.update(graph.indices.tobytes())
    fingerprint = digest.hexdigest()
    with _FINGERPRINT_LOCK:
        _FINGERPRINT_MEMO[id(graph)] = (graph, fingerprint)
        while len(_FINGERPRINT_MEMO) > _FINGERPRINT_MEMO_MAX:
            _FINGERPRINT_MEMO.popitem(last=False)
    return fingerprint


def prime_fingerprint(graph: Graph, fingerprint: str) -> None:
    """Seed the memo with a fingerprint computed elsewhere.

    Shared-memory attachments (:meth:`repro.graph.core.Graph.from_shared`)
    learn their content fingerprint from the descriptor, so the O(E)
    hash need not be re-paid per worker attachment; priming the memo
    makes the attached graph hit the same :class:`ForestCache` keys as
    the graph it mirrors.  The caller vouches that ``fingerprint`` is
    the digest :func:`graph_fingerprint` would compute.
    """
    with _FINGERPRINT_LOCK:
        _FINGERPRINT_MEMO[id(graph)] = (graph, str(fingerprint))
        _FINGERPRINT_MEMO.move_to_end(id(graph))
        while len(_FINGERPRINT_MEMO) > _FINGERPRINT_MEMO_MAX:
            _FINGERPRINT_MEMO.popitem(last=False)


class ForestCache:
    """LRU cache of :class:`ShortestPathForest` results.

    Parameters
    ----------
    max_entries:
        Number of forests retained; least-recently-used entries are
        evicted beyond it.

    Thread safety: lookups and inserts hold an internal lock, so one
    cache may serve multiple threads (worker *processes* each have their
    own).  Misses are additionally **single-flight** per key: when many
    threads ask for the same uncached forest at once — the serving
    layer's concurrent simulate handlers do exactly this — one thread
    runs the BFS while the rest wait on its completion event, so the
    O(V+E) work is paid once, not once per caller, and an eviction
    racing the insert simply sends a late waiter back around the
    lookup/compute loop.
    """

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES) -> None:
        if max_entries < 1:
            raise GraphError(
                f"max_entries must be >= 1, got {max_entries}"
            )
        self._max_entries = int(max_entries)
        self._entries: "OrderedDict[Tuple[str, int, str, Optional[int]], ShortestPathForest]" = (
            OrderedDict()
        )
        self._lock = threading.Lock()
        # key -> Event for the in-flight BFS computing that key.
        self._pending: Dict[
            Tuple[str, int, str, Optional[int]], threading.Event
        ] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.coalesced = 0

    @property
    def max_entries(self) -> int:
        """Capacity in forests."""
        return self._max_entries

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Drop every entry and reset the instance counters.

        The process-wide obs mirrors are cumulative and are *not* reset;
        they describe the process, not one instance's lifetime.
        """
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0
            self.coalesced = 0

    def stats(self) -> Dict[str, int]:
        """A consistent snapshot of the counters, taken under the lock.

        Reading ``cache.hits`` and ``cache.misses`` as two attribute
        loads can interleave with a concurrent lookup and report a pair
        that never existed; this is the torn-read-free way to observe
        the cache (and what ``__repr__`` uses).
        """
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "coalesced": self.coalesced,
            }

    @staticmethod
    def _key(
        graph: Graph, source: int, tie_break: str, seed: Optional[int]
    ) -> Tuple[str, int, str, Optional[int]]:
        if tie_break == "random":
            if seed is None:
                raise GraphError(
                    "caching a random-tie-break forest requires an integer "
                    "seed; live generator state is not a stable cache key"
                )
            seed = int(seed)
        elif seed is not None:
            raise GraphError(
                'seed is only meaningful with tie_break="random"'
            )
        return (graph_fingerprint(graph), int(source), tie_break, seed)

    @staticmethod
    def _freeze(forest: ShortestPathForest) -> ShortestPathForest:
        # Re-assert writeable=False on every hand-out, not just at
        # construction: a caller that thawed the arrays via setflags
        # must not leak a writable view to the *next* caller.  Clearing
        # the flag is always legal, so this is a few ns per hit.
        forest.dist.setflags(write=False)
        forest.parent.setflags(write=False)
        return forest

    def forest(
        self,
        graph: Graph,
        source: int,
        tie_break: str = "first",
        seed: Optional[int] = None,
    ) -> ShortestPathForest:
        """The BFS forest for ``(graph, source, tie_break, seed)``.

        Computes and stores the forest on a miss.  Concurrent misses on
        the same key coalesce: the first caller computes, the others
        block on its completion event and then take the cache hit (if
        the entry was evicted before a waiter woke, that waiter loops
        and becomes the new computing thread — a rare, small cache
        pathology, never an error).  Should the computing thread fail,
        waiters retry rather than inherit its exception.

        The returned object is shared between every caller that asks
        for the same key, and its ``dist``/``parent`` arrays are handed
        out with ``writeable=False`` — in-place mutation raises
        ``ValueError`` (numpy's read-only error) instead of silently
        corrupting the forest for all other users.  Callers that
        legitimately need to write use :meth:`borrow_mutable`.
        """
        key = self._key(graph, source, tie_break, seed)
        while True:
            with self._lock:
                cached = self._entries.get(key)
                if cached is not None:
                    self._entries.move_to_end(key)
                    self.hits += 1
                    _OBS_HITS.inc()
                    return self._freeze(cached)
                pending = self._pending.get(key)
                if pending is None:
                    pending = threading.Event()
                    self._pending[key] = pending
                    self.misses += 1
                    _OBS_MISSES.inc()
                    break
                # Someone else is computing this key: we will block on
                # their event.  Counted under the same lock as the
                # hit/miss bookkeeping so snapshots stay consistent.
                self.coalesced += 1
                _OBS_COALESCED.inc()
            pending.wait()
            _FP_EVICT_RACE.fire(key=key)
        try:
            _FP_COMPUTE.fire(key=key)
            forest = bfs(graph, source, tie_break=tie_break, rng=seed)
            with self._lock:
                self._entries[key] = forest
                self._entries.move_to_end(key)
                while len(self._entries) > self._max_entries:
                    self._entries.popitem(last=False)
                    self.evictions += 1
                    _OBS_EVICTIONS.inc()
        finally:
            # Wake waiters even on failure; they re-check and recompute.
            with self._lock:
                self._pending.pop(key, None)
            pending.set()
        return self._freeze(forest)

    #: Alias; ``cache.get(...)`` reads naturally at call sites that
    #: treat the cache as a mapping.
    get = forest

    def borrow_mutable(
        self,
        graph: Graph,
        source: int,
        tie_break: str = "first",
        seed: Optional[int] = None,
    ) -> ShortestPathForest:
        """A privately-owned, writable copy of a cached forest.

        The escape hatch for callers that want to edit ``dist`` or
        ``parent`` (what-if rewiring, damage studies): the returned
        forest's arrays are independent copies with ``writeable=True``,
        so mutations can never reach the shared cache entry.  Costs one
        O(num_nodes) copy per call; the cache entry itself is reused.
        """
        cached = self.forest(graph, source, tie_break=tie_break, seed=seed)
        copy = ShortestPathForest(
            source=cached.source,
            dist=cached.dist.copy(),
            parent=cached.parent.copy(),
        )
        # The copies own their buffers, so re-enabling writes is legal
        # and affects nobody else.
        copy.dist.setflags(write=True)
        copy.parent.setflags(write=True)
        return copy

    def __repr__(self) -> str:
        stats = self.stats()
        return (
            f"ForestCache(entries={stats['entries']}/{self._max_entries}, "
            f"hits={stats['hits']}, misses={stats['misses']}, "
            f"evictions={stats['evictions']}, coalesced={stats['coalesced']})"
        )


_DEFAULT_CACHE = ForestCache()


def default_forest_cache() -> ForestCache:
    """The process-wide cache used when callers do not supply their own."""
    return _DEFAULT_CACHE
