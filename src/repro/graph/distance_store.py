"""Memory-mapped per-source distance (and parent) rows.

Million-node sweeps spend almost all their time re-running BFS: every
(source, receiver-set) cell of a Monte-Carlo grid needs the source's
full shortest-path forest, and at ``n = 10^6`` a single forest is ~8 MB
of int32 — too big to keep hundreds of in the
:class:`~repro.graph.forest_cache.ForestCache`, too slow to recompute
per sweep.  A :class:`DistanceStore` precomputes the rows **once** into
a flat file and lets every consumer — samplers, estimator-table builds,
fleet workers — map them zero-copy:

* **Build once.**  :func:`build_distance_store` runs the batched
  multi-source BFS (:func:`repro.graph.paths.bfs_from_many`) over
  chunks of sources and writes each ``(dist, parent)`` row pair
  straight into the mapped file.  With ``num_workers > 1`` the chunks
  fan out over the persistent worker pool from
  :mod:`repro.experiments.pool`; the graph crosses the process boundary
  as a :class:`~repro.graph.core.SharedGraphDescriptor` (never pickled
  — lint rule RR010) and each worker writes its own disjoint row slice.
* **Attach zero-copy.**  :func:`attach_distance_store` maps the file
  read-only; ``store.distances`` / ``store.parents`` are views over the
  page cache, so forty attached processes cost one copy of the rows.
* **Same lifecycle as the fleet table store.**  The file header carries
  a ``generation``; attaching through a stale descriptor raises, and
  reload rides on POSIX unlink semantics — attached stores keep a valid
  mapping after the creator unlinks, new attachments can only land on
  the new generation's file.

File layout (all offsets 8-byte aligned)::

    [u64 header_len][header JSON, utf-8][pad]
    sources  int32[num_sources]
    dist     int32[num_sources, num_nodes]
    parent   int32[num_sources, num_nodes]     (when has_parents)

Because rows store *parents* too, a consumer gets the full
:class:`~repro.graph.paths.ShortestPathForest` back (tie-break
``"first"``, bit-identical to :func:`repro.graph.paths.bfs`) — enough
to run the whole multicast-tree counting pipeline without ever touching
the graph again.
"""

from __future__ import annotations

import json
import mmap
import os
import struct
import warnings
from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

from repro.exceptions import GraphError
from repro.graph.core import Graph
from repro.graph.forest_cache import graph_fingerprint
from repro.graph.paths import ShortestPathForest, bfs_from_many
from repro.utils.rng import RandomState, ensure_rng

__all__ = [
    "DistanceStore",
    "DistanceStoreDescriptor",
    "attach_distance_store",
    "build_distance_store",
]

_MAGIC = "repro-distance-store"
_VERSION = 1
_HEADER_LEN = struct.Struct("<Q")

#: Sources per BFS batch during a build — bounds the writer's transient
#: working set at ``2 * chunk * num_nodes`` int32 regardless of how
#: many rows the store holds.
_BUILD_CHUNK_SOURCES = 8


def _align8(n: int) -> int:
    return (n + 7) & ~7


@dataclass(frozen=True)
class DistanceStoreDescriptor:
    """A picklable token naming one distance-store generation.

    This is what crosses process boundaries (a hundred bytes, never the
    rows): workers re-attach from it, and attaching through a stale
    generation raises — the same protocol as
    :class:`repro.serve.fleet.store.TableStoreDescriptor`.
    """

    path: str
    generation: int
    num_nodes: int
    num_sources: int
    has_parents: bool
    fingerprint: str
    nbytes: int


class DistanceStore:
    """An attached, read-only view over a distance-store file.

    Keep the instance referenced while any row view escapes; `close()`
    drops the mapping (best-effort while views are live).
    """

    def __init__(
        self,
        path: str,
        header: dict,
        mapping: mmap.mmap,
        sources: np.ndarray,
        dist: np.ndarray,
        parent: Optional[np.ndarray],
    ) -> None:
        self._path = path
        self._header = header
        self._mm: Optional[mmap.mmap] = mapping
        self._sources = sources
        self._dist = dist
        self._parent = parent
        self._row_of = {int(s): i for i, s in enumerate(sources)}
        self._complete = int(header["num_sources"]) == int(
            header["num_nodes"]
        ) and bool(
            np.array_equal(
                sources,
                np.arange(int(header["num_nodes"]), dtype=np.int32),
            )
        )

    # -- identity -----------------------------------------------------
    @property
    def path(self) -> str:
        """The backing file's path."""
        return self._path

    @property
    def generation(self) -> int:
        """Store generation, as written by the builder."""
        return int(self._header["generation"])

    @property
    def num_nodes(self) -> int:
        """Columns per row (the graph's node count)."""
        return int(self._header["num_nodes"])

    @property
    def num_sources(self) -> int:
        """Rows in the store."""
        return int(self._header["num_sources"])

    @property
    def fingerprint(self) -> str:
        """Content fingerprint of the graph the rows were built from."""
        return str(self._header["fingerprint"])

    @property
    def has_parents(self) -> bool:
        """Whether parent rows were built alongside distances."""
        return bool(self._header["has_parents"])

    @property
    def descriptor(self) -> DistanceStoreDescriptor:
        """The picklable token a worker re-attaches from."""
        return DistanceStoreDescriptor(
            path=self._path,
            generation=self.generation,
            num_nodes=self.num_nodes,
            num_sources=self.num_sources,
            has_parents=self.has_parents,
            fingerprint=self.fingerprint,
            nbytes=int(self._header["nbytes"]),
        )

    # -- rows ---------------------------------------------------------
    @property
    def sources(self) -> np.ndarray:
        """The source node of each row, in row order."""
        return self._sources

    @property
    def distances(self) -> np.ndarray:
        """The ``(num_sources, num_nodes)`` int32 distance rows."""
        return self._dist

    @property
    def parents(self) -> Optional[np.ndarray]:
        """Parent rows, or ``None`` for a distance-only store."""
        return self._parent

    @property
    def is_complete(self) -> bool:
        """True when the store holds row ``s`` for *every* node ``s``.

        A complete store lets samplers draw sources from the exact same
        stream as the storeless path — see :meth:`pick_source`.
        """
        return self._complete

    def row_index(self, source: int) -> int:
        """The row holding ``source``, or raise :class:`GraphError`."""
        try:
            return self._row_of[int(source)]
        except KeyError:
            raise GraphError(
                f"source {source} has no row in distance store "
                f"{self._path!r} ({self.num_sources} rows)"
            ) from None

    def distance_row(self, source: int) -> np.ndarray:
        """The distance row for ``source`` (zero-copy, read-only)."""
        return self._dist[self.row_index(source)]

    def forest(self, source: int) -> ShortestPathForest:
        """The stored BFS forest for ``source``.

        Bit-identical to ``bfs(graph, source, tie_break="first")`` on
        the graph the store was built from; the arrays are zero-copy
        views pinned to this store's mapping.
        """
        if self._parent is None:
            raise GraphError(
                f"distance store {self._path!r} was built without parent "
                "rows; rebuild with include_parents=True"
            )
        i = self.row_index(source)
        return ShortestPathForest(
            source=int(source), dist=self._dist[i], parent=self._parent[i]
        )

    def pick_source(self, rng: RandomState) -> int:
        """Draw a stored source uniformly.

        On a complete store this is ``rng.integers(0, num_nodes)`` —
        the *same* stream consumption as the storeless sampling path,
        so sweeps against a complete store are bit-identical to sweeps
        without one.  On a partial store it draws a row index instead
        (a different, documented stream).
        """
        generator = ensure_rng(rng)
        if self._complete:
            return int(generator.integers(0, self.num_nodes))
        return int(self._sources[int(generator.integers(0, self.num_sources))])

    # -- lifecycle ----------------------------------------------------
    def check_graph(self, graph: Graph) -> None:
        """Raise unless ``graph`` is the graph the rows were built from."""
        if graph.num_nodes != self.num_nodes:
            raise GraphError(
                f"distance store {self._path!r} was built for "
                f"{self.num_nodes} nodes, graph has {graph.num_nodes}"
            )
        actual = graph_fingerprint(graph)
        if actual != self.fingerprint:
            raise GraphError(
                f"distance store {self._path!r} was built for graph "
                f"{self.fingerprint[:12]}…, got {actual[:12]}…"
            )

    def close(self) -> None:
        """Drop this process's mapping (idempotent, best-effort).

        Row views handed out earlier keep the underlying buffer alive —
        the mapping itself then survives until their last reference
        dies, exactly like a detached shared-memory view.
        """
        self._dist = None
        self._parent = None
        self._sources = np.array(self._sources, dtype=np.int32)
        self._row_of = {}
        if self._mm is not None:
            mapping, self._mm = self._mm, None
            try:
                mapping.close()
            except BufferError:  # pragma: no cover - escaped views pin it
                pass

    def unlink(self) -> None:
        """Delete the backing file (idempotent).

        Attached stores — this one included — keep reading through
        their existing mappings; only *new* attachments fail.
        """
        try:
            os.unlink(self._path)
        except FileNotFoundError:
            pass

    def __repr__(self) -> str:
        return (
            f"DistanceStore(path={self._path!r}, "
            f"generation={self.generation}, rows={self.num_sources}, "
            f"num_nodes={self.num_nodes}, parents={self.has_parents})"
        )


def _layout(header_len: int, num_sources: int, num_nodes: int, has_parents: bool):
    """Byte offsets of (sources, dist, parent) and the total file size."""
    off_sources = _align8(_HEADER_LEN.size + header_len)
    off_dist = _align8(off_sources + 4 * num_sources)
    row_bytes = 4 * num_sources * num_nodes
    off_parent = _align8(off_dist + row_bytes)
    total = off_parent + (row_bytes if has_parents else 0)
    return off_sources, off_dist, off_parent, total


# Worker-side attachment cache: shared-segment name -> Graph view.  One
# entry per distinct published topology this worker has built rows for.
_WORKER_GRAPHS: dict = {}


def _attached_build_graph(descriptor) -> Graph:
    graph = _WORKER_GRAPHS.get(descriptor.name)
    if graph is None:
        graph = Graph.from_shared(descriptor)
        _WORKER_GRAPHS[descriptor.name] = graph
    return graph


def _build_rows_task(
    graph_descriptor,
    path: str,
    num_nodes: int,
    off_dist: int,
    off_parent: int,
    include_parents: bool,
    row_lo: int,
    sources_chunk: Sequence[int],
) -> int:
    """Worker entry: BFS a chunk of sources and write its row slice."""
    graph = _attached_build_graph(graph_descriptor)
    return _write_rows(
        graph,
        path,
        num_nodes,
        off_dist,
        off_parent,
        include_parents,
        row_lo,
        sources_chunk,
    )


def _write_rows(
    graph: Graph,
    path: str,
    num_nodes: int,
    off_dist: int,
    off_parent: int,
    include_parents: bool,
    row_lo: int,
    sources_chunk: Sequence[int],
) -> int:
    rows = len(sources_chunk)
    dist, parent = bfs_from_many(
        graph, sources_chunk, packed=num_nodes >= 1 << 16
    )
    out = np.memmap(
        path,
        dtype=np.int32,
        mode="r+",
        offset=off_dist + 4 * row_lo * num_nodes,
        shape=(rows, num_nodes),
    )
    out[:] = dist
    out.flush()
    del out
    if include_parents:
        out = np.memmap(
            path,
            dtype=np.int32,
            mode="r+",
            offset=off_parent + 4 * row_lo * num_nodes,
            shape=(rows, num_nodes),
        )
        out[:] = parent
        out.flush()
        del out
    return rows


def build_distance_store(
    graph: Graph,
    path: str,
    sources: Optional[Sequence[int]] = None,
    *,
    generation: int = 1,
    include_parents: bool = True,
    num_workers: int = 1,
    chunk_sources: int = _BUILD_CHUNK_SOURCES,
) -> DistanceStore:
    """Precompute per-source BFS rows into a memory-mapped file.

    Parameters
    ----------
    graph:
        The graph to BFS.
    path:
        File to create (overwritten if present).
    sources:
        Row sources, unique, in row order.  Defaults to *all* nodes —
        only sensible for small graphs; million-node stores should pass
        the subset a sweep will actually draw from.
    generation:
        Version stamp checked at attach time; bump it when republishing
        rows for a changed graph.
    include_parents:
        Also store parent rows, making :meth:`DistanceStore.forest`
        (and hence full tree counting) available from the store.
    num_workers:
        ``> 1`` fans source chunks out over the persistent worker pool
        (the graph ships as a shared-memory descriptor); 1 builds
        inline.
    chunk_sources:
        Sources per BFS batch — bounds the builder's working set.

    Returns
    -------
    DistanceStore
        Already attached read-only; the caller owns the file and should
        eventually :meth:`~DistanceStore.unlink` it.
    """
    if sources is None:
        src = np.arange(graph.num_nodes, dtype=np.int32)
    else:
        src = np.asarray(
            [graph.check_node(s) for s in sources], dtype=np.int32
        )
    if src.size == 0:
        raise GraphError("a distance store needs at least one source row")
    if np.unique(src).size != src.size:
        raise GraphError("distance-store sources must be unique")
    if chunk_sources < 1:
        raise GraphError(f"chunk_sources must be >= 1, got {chunk_sources}")

    header = {
        "magic": _MAGIC,
        "version": _VERSION,
        "generation": int(generation),
        "num_nodes": int(graph.num_nodes),
        "num_sources": int(src.size),
        "has_parents": bool(include_parents),
        "fingerprint": graph_fingerprint(graph),
    }
    header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
    off_sources, off_dist, off_parent, total = _layout(
        len(header_bytes), src.size, graph.num_nodes, include_parents
    )
    header["nbytes"] = total

    with open(path, "wb") as fh:
        fh.write(_HEADER_LEN.pack(len(header_bytes)))
        fh.write(header_bytes)
        fh.seek(off_sources)
        fh.write(src.tobytes())
        fh.truncate(total)

    chunks = [
        (lo, src[lo : lo + chunk_sources].tolist())
        for lo in range(0, src.size, chunk_sources)
    ]
    write_args = (
        path,
        graph.num_nodes,
        off_dist,
        off_parent,
        include_parents,
    )
    if num_workers > 1 and len(chunks) > 1:
        # Imported here: pool lives above the graph layer (it already
        # imports repro.graph.core), so the build-time fan-out reaches
        # up lazily instead of creating an import cycle.
        from repro.experiments.pool import get_pool, shared_graphs

        executor = get_pool().ensure(num_workers)
        shared_csr = shared_graphs().descriptor(graph)
        futures = [
            (
                lo,
                chunk,
                executor.submit(
                    _build_rows_task, shared_csr, *write_args, lo, chunk
                ),
            )
            for lo, chunk in chunks
        ]
        for lo, chunk, future in futures:
            try:
                future.result()
            except Exception as exc:
                # A crashed worker costs its chunk, never the build —
                # rows are a pure function of (graph, sources), so the
                # inline recompute is bit-identical.
                warnings.warn(
                    f"distance-store worker failed on rows "
                    f"[{lo}, {lo + len(chunk)}) ({exc!r}); recomputing "
                    "inline",
                    RuntimeWarning,
                    stacklevel=2,
                )
                _write_rows(graph, *write_args, lo, chunk)
    else:
        for lo, chunk in chunks:
            _write_rows(graph, *write_args, lo, chunk)

    return attach_distance_store(path, expected_generation=int(generation))


def attach_distance_store(
    target: Union[str, DistanceStoreDescriptor],
    *,
    expected_generation: Optional[int] = None,
    graph: Optional[Graph] = None,
) -> DistanceStore:
    """Map an existing store file read-only.

    Parameters
    ----------
    target:
        The file path, or a :class:`DistanceStoreDescriptor` (in which
        case the descriptor's generation is enforced).
    expected_generation:
        When given, raise :class:`ValueError` unless the file header
        matches — the stale-generation guard for path-based attaches.
    graph:
        When given, verify node count and content fingerprint against
        the graph the rows were built from.
    """
    if isinstance(target, DistanceStoreDescriptor):
        path = target.path
        if expected_generation is None:
            expected_generation = target.generation
    else:
        path = str(target)

    with open(path, "rb") as fh:
        mapping = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
    try:
        try:
            (header_len,) = _HEADER_LEN.unpack_from(mapping, 0)
            header = json.loads(
                mapping[
                    _HEADER_LEN.size : _HEADER_LEN.size + header_len
                ].decode("utf-8")
            )
        except (struct.error, UnicodeDecodeError, json.JSONDecodeError):
            header = None
        if (
            not isinstance(header, dict)
            or header.get("magic") != _MAGIC
            or int(header.get("version", -1)) != _VERSION
        ):
            raise ValueError(
                f"{path!r} is not a version-{_VERSION} distance store"
            )
        if (
            expected_generation is not None
            and int(header["generation"]) != int(expected_generation)
        ):
            raise ValueError(
                f"distance store {path!r} holds generation "
                f"{header['generation']}, expected {expected_generation}"
            )
        num_sources = int(header["num_sources"])
        num_nodes = int(header["num_nodes"])
        has_parents = bool(header["has_parents"])
        off_sources, off_dist, off_parent, total = _layout(
            header_len, num_sources, num_nodes, has_parents
        )
        header["nbytes"] = total
        if mapping.size() != total:
            raise ValueError(
                f"distance store {path!r} is {mapping.size()} bytes, "
                f"layout says {total}"
            )
        src = np.frombuffer(
            mapping, dtype=np.int32, count=num_sources, offset=off_sources
        )
        dist = np.frombuffer(
            mapping,
            dtype=np.int32,
            count=num_sources * num_nodes,
            offset=off_dist,
        ).reshape(num_sources, num_nodes)
        parent = None
        if has_parents:
            parent = np.frombuffer(
                mapping,
                dtype=np.int32,
                count=num_sources * num_nodes,
                offset=off_parent,
            ).reshape(num_sources, num_nodes)
    except Exception:
        mapping.close()
        raise

    store = DistanceStore(path, header, mapping, src, dist, parent)
    if graph is not None:
        store.check_graph(graph)
    return store
