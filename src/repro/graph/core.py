"""Core graph data structure.

The whole reproduction runs on one graph representation: an immutable,
undirected graph stored in *compressed sparse row* (CSR) form.  CSR keeps
the adjacency of all nodes in two flat numpy arrays, which makes the hot
operations of this package — breadth-first searches and neighbourhood
gathers over tens of thousands of nodes — cheap and vectorizable, while
remaining trivially hashable into a stable structural signature for tests.

Mutability lives in :class:`repro.graph.builders.GraphBuilder`; once built,
a :class:`Graph` never changes, so shortest-path results and reachability
profiles computed from it can be cached safely by callers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import GraphError, NodeError

__all__ = ["Graph", "SharedGraphDescriptor", "SharedGraphHandle"]


@dataclass(frozen=True)
class SharedGraphDescriptor:
    """A picklable token naming a graph published via :meth:`Graph.to_shared`.

    Carries everything a worker process needs to reconstruct zero-copy
    views over the creator's CSR arrays: the shared-memory segment name,
    the array lengths, and the content fingerprint — so attachments can
    prime the :mod:`repro.graph.forest_cache` key without re-paying the
    O(E) hash.  A descriptor is a few dozen bytes however large the
    graph is; *this* is what crosses a ``submit()`` boundary, never the
    graph itself (lint rule RR010).
    """

    name: str
    num_nodes: int
    num_indices: int
    fingerprint: str

    @property
    def nbytes(self) -> int:
        """Size of the segment payload (int64 indptr + int32 indices)."""
        return 8 * (self.num_nodes + 1) + 4 * self.num_indices


class SharedGraphHandle:
    """Creator-side ownership of one shared CSR segment.

    Lifetime is explicit: the creating process must eventually call
    :meth:`unlink` (or :meth:`release`) exactly once or the segment
    outlives every process that mapped it.  Attached processes never
    unlink; their mapping dies with their last view (see
    :meth:`Graph.from_shared`).
    """

    __slots__ = ("_shm", "descriptor", "_unlinked")

    def __init__(self, shm, descriptor: SharedGraphDescriptor) -> None:
        self._shm = shm
        self.descriptor = descriptor
        self._unlinked = False

    def unlink(self) -> None:
        """Free the segment system-wide (idempotent)."""
        if not self._unlinked:
            self._unlinked = True
            self._shm.unlink()

    def release(self) -> None:
        """Unlink and drop this process's mapping, tolerating repeats."""
        try:
            self.unlink()
        except FileNotFoundError:  # pragma: no cover - external unlink
            pass
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - a live view pins the map
            pass

    def __repr__(self) -> str:
        return (
            f"SharedGraphHandle(name={self.descriptor.name!r}, "
            f"nbytes={self.descriptor.nbytes}, unlinked={self._unlinked})"
        )




class Graph:
    """An immutable undirected graph over nodes ``0 .. num_nodes-1``.

    Parameters
    ----------
    num_nodes:
        Number of nodes.  Nodes are dense integer ids starting at zero.
    indptr:
        CSR row-pointer array of length ``num_nodes + 1``.
    indices:
        CSR column-index array of length ``2 * num_edges``; the neighbours
        of node ``u`` are ``indices[indptr[u]:indptr[u+1]]``.  Each
        undirected edge appears twice, once in each endpoint's row.
    check:
        Validate the CSR invariants (symmetry, sortedness, no self-loops,
        no duplicates).  Generators that construct CSR directly may disable
        this once their own tests establish correctness.

    Notes
    -----
    The adjacency list of every node is kept **sorted**.  This gives
    deterministic iteration order (and hence deterministic shortest-path
    tie-breaking under the ``"first"`` policy) and allows ``has_edge`` to
    run in ``O(log degree)``.
    """

    __slots__ = ("_num_nodes", "_indptr", "_indices", "_shm")

    def __init__(
        self,
        num_nodes: int,
        indptr: np.ndarray,
        indices: np.ndarray,
        check: bool = True,
    ) -> None:
        self._num_nodes = int(num_nodes)
        self._indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self._indices = np.ascontiguousarray(indices, dtype=np.int32)
        self._indptr.setflags(write=False)
        self._indices.setflags(write=False)
        # Set only by from_shared(): keeps an attached segment mapped for
        # exactly as long as the views over it are reachable.
        self._shm = None
        if check:
            self._validate()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_edges(
        cls, num_nodes: int, edges: Iterable[Tuple[int, int]]
    ) -> "Graph":
        """Build a graph from an iterable of undirected edges.

        Self-loops and duplicate edges (in either orientation) are
        rejected with :class:`GraphError`; use
        :func:`repro.graph.ops.clean_edges` first when reading data that
        may contain them (the paper's TIERS topologies famously do).
        """
        edge_list = list(edges)
        if num_nodes < 0:
            raise GraphError(f"num_nodes must be non-negative, got {num_nodes}")
        if not edge_list:
            indptr = np.zeros(num_nodes + 1, dtype=np.int64)
            return cls(num_nodes, indptr, np.empty(0, dtype=np.int32), check=False)

        arr = np.asarray(edge_list, dtype=np.int64)
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise GraphError("edges must be (u, v) pairs")
        if arr.min() < 0 or arr.max() >= num_nodes:
            bad = int(arr.min()) if arr.min() < 0 else int(arr.max())
            raise NodeError(bad, num_nodes)
        if np.any(arr[:, 0] == arr[:, 1]):
            loop_at = int(arr[arr[:, 0] == arr[:, 1]][0, 0])
            raise GraphError(f"self-loop at node {loop_at} is not allowed")

        lo = np.minimum(arr[:, 0], arr[:, 1])
        hi = np.maximum(arr[:, 0], arr[:, 1])
        keys = lo * num_nodes + hi
        if np.unique(keys).size != keys.size:
            raise GraphError(
                "duplicate edges present; clean the edge list first "
                "(repro.graph.ops.clean_edges)"
            )

        # Symmetrize and sort into CSR.
        heads = np.concatenate([arr[:, 0], arr[:, 1]])
        tails = np.concatenate([arr[:, 1], arr[:, 0]])
        order = np.lexsort((tails, heads))
        heads = heads[order]
        tails = tails[order]
        counts = np.bincount(heads, minlength=num_nodes)
        indptr = np.zeros(num_nodes + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(num_nodes, indptr, tails.astype(np.int32), check=False)

    def _validate(self) -> None:
        n = self._num_nodes
        if self._indptr.shape != (n + 1,):
            raise GraphError(
                f"indptr must have length num_nodes+1 = {n + 1}, "
                f"got {self._indptr.shape[0]}"
            )
        if n >= 0 and self._indptr[0] != 0:
            raise GraphError("indptr must start at 0")
        if np.any(np.diff(self._indptr) < 0):
            raise GraphError("indptr must be non-decreasing")
        if self._indptr[-1] != self._indices.shape[0]:
            raise GraphError(
                f"indptr[-1] ({int(self._indptr[-1])}) must equal "
                f"len(indices) ({self._indices.shape[0]})"
            )
        if self._indices.size:
            if self._indices.min() < 0 or self._indices.max() >= n:
                raise GraphError("indices contain out-of-range node ids")
        for u in range(n):
            row = self._indices[self._indptr[u] : self._indptr[u + 1]]
            if np.any(np.diff(row) <= 0):
                raise GraphError(f"adjacency of node {u} is not strictly sorted")
            if np.any(row == u):
                raise GraphError(f"self-loop at node {u}")
        # Symmetry: the multiset of (u, v) arcs must equal that of (v, u).
        heads = np.repeat(np.arange(n, dtype=np.int64), np.diff(self._indptr))
        fwd = heads * n + self._indices
        bwd = self._indices.astype(np.int64) * n + heads
        if not np.array_equal(np.sort(fwd), np.sort(bwd)):
            raise GraphError("adjacency is not symmetric (graph must be undirected)")

    # ------------------------------------------------------------------
    # Shared-memory publication (zero-copy cross-process views)
    # ------------------------------------------------------------------

    def to_shared(self) -> SharedGraphHandle:
        """Publish the CSR arrays into a shared-memory segment (one copy).

        Layout: ``indptr`` (int64) at offset 0, ``indices`` (int32)
        immediately after — the same flat arrays this object holds, so
        :meth:`from_shared` reconstructs byte-identical adjacency.  The
        returned handle owns the segment: ship ``handle.descriptor`` to
        workers and call ``handle.unlink()`` when the topology retires
        (segments outlive processes otherwise).  Sweeps should go
        through :class:`repro.experiments.pool.SharedGraphRegistry`,
        which deduplicates publication by content fingerprint.
        """
        from repro.graph.forest_cache import graph_fingerprint
        from repro.utils.shm import create_segment

        split = self._indptr.nbytes
        total = split + self._indices.nbytes
        shm = create_segment(total)
        np.frombuffer(shm.buf, dtype=np.int64, count=self._num_nodes + 1)[
            :
        ] = self._indptr
        np.frombuffer(
            shm.buf,
            dtype=np.int32,
            count=self._indices.shape[0],
            offset=split,
        )[:] = self._indices
        descriptor = SharedGraphDescriptor(
            name=shm.name,
            num_nodes=self._num_nodes,
            num_indices=int(self._indices.shape[0]),
            fingerprint=graph_fingerprint(self),
        )
        return SharedGraphHandle(shm, descriptor)

    @classmethod
    def from_shared(cls, descriptor: SharedGraphDescriptor) -> "Graph":
        """Attach zero-copy, read-only views over a published segment.

        The attached graph keeps the mapping alive for its own lifetime
        (the ``SharedMemory`` object rides on the instance), skips CSR
        validation (the creator's graph already passed it), and primes
        the fingerprint memo from the descriptor so forest-cache keys
        match the creator's without re-hashing.  Views are write-
        protected like every graph's; the segment itself stays writable
        only through the creator's handle.
        """
        from repro.graph.forest_cache import prime_fingerprint
        from repro.utils.shm import attach_segment

        shm = attach_segment(descriptor.name)
        indptr = np.frombuffer(
            shm.buf, dtype=np.int64, count=descriptor.num_nodes + 1
        )
        indices = np.frombuffer(
            shm.buf,
            dtype=np.int32,
            count=descriptor.num_indices,
            offset=indptr.nbytes,
        )
        graph = cls(descriptor.num_nodes, indptr, indices, check=False)
        graph._shm = shm
        prime_fingerprint(graph, descriptor.fingerprint)
        return graph

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return self._num_nodes

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return self._indices.shape[0] // 2

    @property
    def indptr(self) -> np.ndarray:
        """CSR row-pointer array (read-only view)."""
        return self._indptr

    @property
    def indices(self) -> np.ndarray:
        """CSR column-index array (read-only view)."""
        return self._indices

    def check_node(self, node: int) -> int:
        """Validate ``node`` and return it as a plain int."""
        node = int(node)
        if not 0 <= node < self._num_nodes:
            raise NodeError(node, self._num_nodes)
        return node

    def neighbors(self, node: int) -> np.ndarray:
        """Sorted neighbours of ``node`` (read-only array view)."""
        node = self.check_node(node)
        return self._indices[self._indptr[node] : self._indptr[node + 1]]

    def degree(self, node: int) -> int:
        """Degree of ``node``."""
        node = self.check_node(node)
        return int(self._indptr[node + 1] - self._indptr[node])

    @property
    def degrees(self) -> np.ndarray:
        """Array of all node degrees."""
        return np.diff(self._indptr)

    @property
    def average_degree(self) -> float:
        """Mean node degree, ``2·E / N`` (0.0 for the empty graph)."""
        if self._num_nodes == 0:
            return 0.0
        return 2.0 * self.num_edges / self._num_nodes

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge ``(u, v)`` exists."""
        u = self.check_node(u)
        v = self.check_node(v)
        row = self.neighbors(u)
        pos = int(np.searchsorted(row, v))
        return pos < row.size and int(row[pos]) == v

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate over undirected edges as ``(u, v)`` with ``u < v``."""
        for u in range(self._num_nodes):
            for v in self.neighbors(u):
                if u < v:
                    yield (u, int(v))

    def edge_array(self) -> np.ndarray:
        """All undirected edges as an ``(E, 2)`` array with ``u < v`` rows."""
        heads = np.repeat(
            np.arange(self._num_nodes, dtype=np.int32), np.diff(self._indptr)
        )
        mask = heads < self._indices
        return np.column_stack([heads[mask], self._indices[mask]])

    # ------------------------------------------------------------------
    # Dunder methods
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._num_nodes

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return (
            self._num_nodes == other._num_nodes
            and np.array_equal(self._indptr, other._indptr)
            and np.array_equal(self._indices, other._indices)
        )

    def __hash__(self) -> int:
        return hash(
            (self._num_nodes, self._indptr.tobytes(), self._indices.tobytes())
        )

    def __repr__(self) -> str:
        return (
            f"Graph(num_nodes={self._num_nodes}, num_edges={self.num_edges}, "
            f"avg_degree={self.average_degree:.2f})"
        )

    # ------------------------------------------------------------------
    # Structural convenience
    # ------------------------------------------------------------------

    def subgraph(self, nodes: Sequence[int]) -> Tuple["Graph", np.ndarray]:
        """Induced subgraph on ``nodes``.

        Returns
        -------
        (Graph, numpy.ndarray)
            The subgraph (with nodes relabelled ``0..len(nodes)-1`` in the
            order given) and the array mapping new ids back to old ids.
        """
        keep = np.asarray(list(nodes), dtype=np.int64)
        if keep.size != np.unique(keep).size:
            raise GraphError("subgraph node list contains duplicates")
        for node in keep:
            self.check_node(int(node))
        old_to_new = -np.ones(self._num_nodes, dtype=np.int64)
        old_to_new[keep] = np.arange(keep.size, dtype=np.int64)
        edges: List[Tuple[int, int]] = []
        for new_u, old_u in enumerate(keep):
            for old_v in self.neighbors(int(old_u)):
                new_v = old_to_new[old_v]
                if new_v >= 0 and new_u < new_v:
                    edges.append((new_u, int(new_v)))
        return Graph.from_edges(keep.size, edges), keep

    def with_extra_edges(self, extra: Iterable[Tuple[int, int]]) -> "Graph":
        """A new graph with ``extra`` undirected edges added.

        Edges already present are rejected (consistent with
        :meth:`from_edges`).
        """
        combined = [(int(u), int(v)) for u, v in self.edges()]
        combined.extend((int(u), int(v)) for u, v in extra)
        return Graph.from_edges(self._num_nodes, combined)
