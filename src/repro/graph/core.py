"""Core graph data structure.

The whole reproduction runs on one graph representation: an immutable,
undirected graph stored in *compressed sparse row* (CSR) form.  CSR keeps
the adjacency of all nodes in two flat numpy arrays, which makes the hot
operations of this package — breadth-first searches and neighbourhood
gathers over tens of thousands of nodes — cheap and vectorizable, while
remaining trivially hashable into a stable structural signature for tests.

Mutability lives in :class:`repro.graph.builders.GraphBuilder`; once built,
a :class:`Graph` never changes, so shortest-path results and reachability
profiles computed from it can be cached safely by callers.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import GraphError, NodeError

__all__ = ["Graph"]


class Graph:
    """An immutable undirected graph over nodes ``0 .. num_nodes-1``.

    Parameters
    ----------
    num_nodes:
        Number of nodes.  Nodes are dense integer ids starting at zero.
    indptr:
        CSR row-pointer array of length ``num_nodes + 1``.
    indices:
        CSR column-index array of length ``2 * num_edges``; the neighbours
        of node ``u`` are ``indices[indptr[u]:indptr[u+1]]``.  Each
        undirected edge appears twice, once in each endpoint's row.
    check:
        Validate the CSR invariants (symmetry, sortedness, no self-loops,
        no duplicates).  Generators that construct CSR directly may disable
        this once their own tests establish correctness.

    Notes
    -----
    The adjacency list of every node is kept **sorted**.  This gives
    deterministic iteration order (and hence deterministic shortest-path
    tie-breaking under the ``"first"`` policy) and allows ``has_edge`` to
    run in ``O(log degree)``.
    """

    __slots__ = ("_num_nodes", "_indptr", "_indices")

    def __init__(
        self,
        num_nodes: int,
        indptr: np.ndarray,
        indices: np.ndarray,
        check: bool = True,
    ) -> None:
        self._num_nodes = int(num_nodes)
        self._indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self._indices = np.ascontiguousarray(indices, dtype=np.int32)
        self._indptr.setflags(write=False)
        self._indices.setflags(write=False)
        if check:
            self._validate()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_edges(
        cls, num_nodes: int, edges: Iterable[Tuple[int, int]]
    ) -> "Graph":
        """Build a graph from an iterable of undirected edges.

        Self-loops and duplicate edges (in either orientation) are
        rejected with :class:`GraphError`; use
        :func:`repro.graph.ops.clean_edges` first when reading data that
        may contain them (the paper's TIERS topologies famously do).
        """
        edge_list = list(edges)
        if num_nodes < 0:
            raise GraphError(f"num_nodes must be non-negative, got {num_nodes}")
        if not edge_list:
            indptr = np.zeros(num_nodes + 1, dtype=np.int64)
            return cls(num_nodes, indptr, np.empty(0, dtype=np.int32), check=False)

        arr = np.asarray(edge_list, dtype=np.int64)
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise GraphError("edges must be (u, v) pairs")
        if arr.min() < 0 or arr.max() >= num_nodes:
            bad = int(arr.min()) if arr.min() < 0 else int(arr.max())
            raise NodeError(bad, num_nodes)
        if np.any(arr[:, 0] == arr[:, 1]):
            loop_at = int(arr[arr[:, 0] == arr[:, 1]][0, 0])
            raise GraphError(f"self-loop at node {loop_at} is not allowed")

        lo = np.minimum(arr[:, 0], arr[:, 1])
        hi = np.maximum(arr[:, 0], arr[:, 1])
        keys = lo * num_nodes + hi
        if np.unique(keys).size != keys.size:
            raise GraphError(
                "duplicate edges present; clean the edge list first "
                "(repro.graph.ops.clean_edges)"
            )

        # Symmetrize and sort into CSR.
        heads = np.concatenate([arr[:, 0], arr[:, 1]])
        tails = np.concatenate([arr[:, 1], arr[:, 0]])
        order = np.lexsort((tails, heads))
        heads = heads[order]
        tails = tails[order]
        counts = np.bincount(heads, minlength=num_nodes)
        indptr = np.zeros(num_nodes + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(num_nodes, indptr, tails.astype(np.int32), check=False)

    def _validate(self) -> None:
        n = self._num_nodes
        if self._indptr.shape != (n + 1,):
            raise GraphError(
                f"indptr must have length num_nodes+1 = {n + 1}, "
                f"got {self._indptr.shape[0]}"
            )
        if n >= 0 and self._indptr[0] != 0:
            raise GraphError("indptr must start at 0")
        if np.any(np.diff(self._indptr) < 0):
            raise GraphError("indptr must be non-decreasing")
        if self._indptr[-1] != self._indices.shape[0]:
            raise GraphError(
                f"indptr[-1] ({int(self._indptr[-1])}) must equal "
                f"len(indices) ({self._indices.shape[0]})"
            )
        if self._indices.size:
            if self._indices.min() < 0 or self._indices.max() >= n:
                raise GraphError("indices contain out-of-range node ids")
        for u in range(n):
            row = self._indices[self._indptr[u] : self._indptr[u + 1]]
            if np.any(np.diff(row) <= 0):
                raise GraphError(f"adjacency of node {u} is not strictly sorted")
            if np.any(row == u):
                raise GraphError(f"self-loop at node {u}")
        # Symmetry: the multiset of (u, v) arcs must equal that of (v, u).
        heads = np.repeat(np.arange(n, dtype=np.int64), np.diff(self._indptr))
        fwd = heads * n + self._indices
        bwd = self._indices.astype(np.int64) * n + heads
        if not np.array_equal(np.sort(fwd), np.sort(bwd)):
            raise GraphError("adjacency is not symmetric (graph must be undirected)")

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return self._num_nodes

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return self._indices.shape[0] // 2

    @property
    def indptr(self) -> np.ndarray:
        """CSR row-pointer array (read-only view)."""
        return self._indptr

    @property
    def indices(self) -> np.ndarray:
        """CSR column-index array (read-only view)."""
        return self._indices

    def check_node(self, node: int) -> int:
        """Validate ``node`` and return it as a plain int."""
        node = int(node)
        if not 0 <= node < self._num_nodes:
            raise NodeError(node, self._num_nodes)
        return node

    def neighbors(self, node: int) -> np.ndarray:
        """Sorted neighbours of ``node`` (read-only array view)."""
        node = self.check_node(node)
        return self._indices[self._indptr[node] : self._indptr[node + 1]]

    def degree(self, node: int) -> int:
        """Degree of ``node``."""
        node = self.check_node(node)
        return int(self._indptr[node + 1] - self._indptr[node])

    @property
    def degrees(self) -> np.ndarray:
        """Array of all node degrees."""
        return np.diff(self._indptr)

    @property
    def average_degree(self) -> float:
        """Mean node degree, ``2·E / N`` (0.0 for the empty graph)."""
        if self._num_nodes == 0:
            return 0.0
        return 2.0 * self.num_edges / self._num_nodes

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge ``(u, v)`` exists."""
        u = self.check_node(u)
        v = self.check_node(v)
        row = self.neighbors(u)
        pos = int(np.searchsorted(row, v))
        return pos < row.size and int(row[pos]) == v

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate over undirected edges as ``(u, v)`` with ``u < v``."""
        for u in range(self._num_nodes):
            for v in self.neighbors(u):
                if u < v:
                    yield (u, int(v))

    def edge_array(self) -> np.ndarray:
        """All undirected edges as an ``(E, 2)`` array with ``u < v`` rows."""
        heads = np.repeat(
            np.arange(self._num_nodes, dtype=np.int32), np.diff(self._indptr)
        )
        mask = heads < self._indices
        return np.column_stack([heads[mask], self._indices[mask]])

    # ------------------------------------------------------------------
    # Dunder methods
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._num_nodes

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return (
            self._num_nodes == other._num_nodes
            and np.array_equal(self._indptr, other._indptr)
            and np.array_equal(self._indices, other._indices)
        )

    def __hash__(self) -> int:
        return hash(
            (self._num_nodes, self._indptr.tobytes(), self._indices.tobytes())
        )

    def __repr__(self) -> str:
        return (
            f"Graph(num_nodes={self._num_nodes}, num_edges={self.num_edges}, "
            f"avg_degree={self.average_degree:.2f})"
        )

    # ------------------------------------------------------------------
    # Structural convenience
    # ------------------------------------------------------------------

    def subgraph(self, nodes: Sequence[int]) -> Tuple["Graph", np.ndarray]:
        """Induced subgraph on ``nodes``.

        Returns
        -------
        (Graph, numpy.ndarray)
            The subgraph (with nodes relabelled ``0..len(nodes)-1`` in the
            order given) and the array mapping new ids back to old ids.
        """
        keep = np.asarray(list(nodes), dtype=np.int64)
        if keep.size != np.unique(keep).size:
            raise GraphError("subgraph node list contains duplicates")
        for node in keep:
            self.check_node(int(node))
        old_to_new = -np.ones(self._num_nodes, dtype=np.int64)
        old_to_new[keep] = np.arange(keep.size, dtype=np.int64)
        edges: List[Tuple[int, int]] = []
        for new_u, old_u in enumerate(keep):
            for old_v in self.neighbors(int(old_u)):
                new_v = old_to_new[old_v]
                if new_v >= 0 and new_u < new_v:
                    edges.append((new_u, int(new_v)))
        return Graph.from_edges(keep.size, edges), keep

    def with_extra_edges(self, extra: Iterable[Tuple[int, int]]) -> "Graph":
        """A new graph with ``extra`` undirected edges added.

        Edges already present are rejected (consistent with
        :meth:`from_edges`).
        """
        combined = [(int(u), int(v)) for u, v in self.edges()]
        combined.extend((int(u), int(v)) for u, v in extra)
        return Graph.from_edges(self._num_nodes, combined)
