"""Graph cleaning and structural statistics.

The paper says all topologies "were cleaned by removing duplicate edges
(most often found in the TIERS topologies) and all remaining edges were
then assumed to be bi-directional" — :func:`clean_edges` +
:func:`largest_connected_component` implement exactly that pipeline, and
:func:`graph_stats` computes the columns of Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import DisconnectedGraphError, GraphError
from repro.graph.core import Graph
from repro.graph.paths import distances_from
from repro.utils.rng import RandomState, ensure_rng

__all__ = [
    "clean_edges",
    "connected_components",
    "largest_connected_component",
    "is_connected",
    "require_connected",
    "diameter",
    "GraphStats",
    "graph_stats",
]


def clean_edges(
    edges: Iterable[Tuple[int, int]]
) -> Tuple[List[Tuple[int, int]], int]:
    """Deduplicate an undirected edge list and drop self-loops.

    Edges are treated as unordered pairs: ``(u, v)`` and ``(v, u)`` are the
    same edge.  The first occurrence's orientation is preserved.

    Returns
    -------
    (list, int)
        The cleaned edge list and the number of dropped entries.
    """
    seen = set()
    cleaned: List[Tuple[int, int]] = []
    dropped = 0
    for u, v in edges:
        u, v = int(u), int(v)
        if u == v:
            dropped += 1
            continue
        key = (u, v) if u < v else (v, u)
        if key in seen:
            dropped += 1
            continue
        seen.add(key)
        cleaned.append((u, v))
    return cleaned, dropped


def connected_components(graph: Graph) -> List[np.ndarray]:
    """Connected components, largest first; each is a sorted node array."""
    n = graph.num_nodes
    label = np.full(n, -1, dtype=np.int64)
    components: List[np.ndarray] = []
    for start in range(n):
        if label[start] >= 0:
            continue
        dist = distances_from(graph, start)
        members = np.flatnonzero(dist >= 0)
        label[members] = len(components)
        components.append(members)
    components.sort(key=len, reverse=True)
    return components


def largest_connected_component(graph: Graph) -> Tuple[Graph, np.ndarray]:
    """Restrict ``graph`` to its largest connected component.

    Returns
    -------
    (Graph, numpy.ndarray)
        The component subgraph (nodes relabelled densely) and the mapping
        from new ids to the original ids.
    """
    if graph.num_nodes == 0:
        raise GraphError("the empty graph has no connected component")
    components = connected_components(graph)
    return graph.subgraph(components[0].tolist())


def is_connected(graph: Graph) -> bool:
    """Whether the graph is connected (the empty graph is not)."""
    if graph.num_nodes == 0:
        return False
    return int(np.count_nonzero(distances_from(graph, 0) >= 0)) == graph.num_nodes


def require_connected(graph: Graph, context: str = "operation") -> None:
    """Raise :class:`DisconnectedGraphError` unless ``graph`` is connected."""
    if not is_connected(graph):
        raise DisconnectedGraphError(
            f"{context} requires a connected graph; run "
            "largest_connected_component() first"
        )


def diameter(
    graph: Graph,
    exact: bool = False,
    num_probes: int = 16,
    rng: RandomState = None,
) -> int:
    """Graph diameter (longest shortest path).

    Parameters
    ----------
    graph:
        A connected graph.
    exact:
        When True, run BFS from every node — O(N·E).  When False (default)
        use the double-sweep lower bound: BFS from ``num_probes`` random
        seeds, re-sweep from the farthest node found by each.  On the
        sparse, roughly tree-like topologies used here the double sweep is
        almost always exact, and it is what the benchmarks use for the
        large Internet-like maps.
    num_probes:
        Number of double-sweep seeds when ``exact`` is False.
    rng:
        Randomness for probe selection.

    Returns
    -------
    int
        The diameter (exact) or a lower bound that is usually tight.
    """
    require_connected(graph, "diameter")
    if exact or graph.num_nodes <= num_probes:
        best = 0
        for node in range(graph.num_nodes):
            best = max(best, int(distances_from(graph, node).max()))
        return best
    generator = ensure_rng(rng)
    seeds = generator.choice(graph.num_nodes, size=num_probes, replace=False)
    best = 0
    for seed in seeds:
        dist = distances_from(graph, int(seed))
        far = int(np.argmax(dist))
        best = max(best, int(distances_from(graph, far).max()))
    return best


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics of a topology — the columns of Table 1.

    Attributes
    ----------
    name:
        Human-readable topology name.
    num_nodes / num_edges:
        Order and size of the graph.
    average_degree:
        ``2·E/N``.
    max_degree / min_degree:
        Degree extremes.
    diameter:
        Diameter (or the double-sweep bound; see :func:`diameter`).
    average_path_length:
        Mean hop distance over sampled source-destination pairs.
    """

    name: str
    num_nodes: int
    num_edges: int
    average_degree: float
    max_degree: int
    min_degree: int
    diameter: int
    average_path_length: float

    def as_row(self) -> Tuple:
        """The stats as a table row (see Table 1 benchmarks)."""
        return (
            self.name,
            self.num_nodes,
            self.num_edges,
            self.average_degree,
            self.max_degree,
            self.diameter,
            self.average_path_length,
        )

    ROW_HEADERS = (
        "network",
        "nodes",
        "links",
        "avg degree",
        "max degree",
        "diameter",
        "avg path len",
    )


def graph_stats(
    graph: Graph,
    name: str = "graph",
    path_samples: int = 32,
    exact_diameter: Optional[bool] = None,
    rng: RandomState = None,
) -> GraphStats:
    """Compute :class:`GraphStats` for a connected graph.

    ``average_path_length`` is estimated from BFS sweeps out of
    ``path_samples`` random sources (all sources when the graph is small);
    the diameter is exact for graphs up to 512 nodes unless overridden.
    """
    require_connected(graph, "graph_stats")
    generator = ensure_rng(rng)
    degrees = graph.degrees

    if exact_diameter is None:
        exact_diameter = graph.num_nodes <= 512
    diam = diameter(graph, exact=exact_diameter, rng=generator)

    if graph.num_nodes <= path_samples:
        sources = np.arange(graph.num_nodes)
    else:
        sources = generator.choice(graph.num_nodes, size=path_samples, replace=False)
    total = 0.0
    count = 0
    for source in sources:
        dist = distances_from(graph, int(source))
        total += float(dist.sum())  # source contributes 0
        count += graph.num_nodes - 1
    avg_path = total / count if count else 0.0

    return GraphStats(
        name=name,
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        average_degree=graph.average_degree,
        max_degree=int(degrees.max()),
        min_degree=int(degrees.min()),
        diameter=diam,
        average_path_length=avg_path,
    )
