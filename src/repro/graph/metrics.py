"""Topology metrics beyond Table 1's basics.

The paper characterizes networks by order, size, degree, and — crucially
— the reachability function.  These supplementary metrics (degree
histogram and power-law tail fit, clustering coefficient, degree
assortativity) let users check that generated stand-ins fall in the same
structural regime as the maps they replace: e.g. the AS stand-in should
show a power-law degree tail (Faloutsos³, the paper's reference [8]) and
near-zero clustering, while the TIERS stand-in is strongly geometric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.exceptions import AnalysisError, GraphError
from repro.graph.core import Graph
from repro.utils.stats import LinearFit, power_law_fit

__all__ = [
    "degree_histogram",
    "degree_tail_fit",
    "clustering_coefficient",
    "degree_assortativity",
    "TopologyMetrics",
    "topology_metrics",
]


def degree_histogram(graph: Graph) -> np.ndarray:
    """``hist[d]`` = number of nodes with degree ``d``."""
    if graph.num_nodes == 0:
        return np.zeros(1, dtype=np.int64)
    return np.bincount(graph.degrees)


def degree_tail_fit(graph: Graph, min_degree: int = 2) -> LinearFit:
    """Log-log fit of the degree CCDF tail.

    Returns the fit of ``ln P(D >= d)`` against ``ln d`` for
    ``d >= min_degree``; a slope near −1 to −2 with high R² is the
    power-law signature of AS/router maps.
    """
    degrees = graph.degrees
    if degrees.size == 0:
        raise GraphError("cannot fit the degree tail of an empty graph")
    max_degree = int(degrees.max())
    if max_degree < min_degree + 3:
        raise AnalysisError(
            f"need a degree tail spanning at least [{min_degree}, "
            f"{min_degree + 3}] to fit meaningfully; max degree is "
            f"{max_degree}"
        )
    values = np.arange(min_degree, max_degree + 1)
    ccdf = np.array(
        [np.count_nonzero(degrees >= d) / degrees.size for d in values]
    )
    keep = ccdf > 0
    return power_law_fit(values[keep], ccdf[keep])


def clustering_coefficient(graph: Graph) -> float:
    """Global clustering coefficient: 3 × triangles / connected triples.

    0 on trees and bipartite-ish meshes; high on geometric graphs where
    neighbours of a node are themselves close.
    """
    triangles = 0
    triples = 0
    for node in range(graph.num_nodes):
        neighbours = graph.neighbors(node)
        degree = neighbours.shape[0]
        if degree < 2:
            continue
        triples += degree * (degree - 1) // 2
        neighbour_set = set(int(v) for v in neighbours)
        for i, u in enumerate(neighbours):
            u_adj = graph.neighbors(int(u))
            for v in u_adj[u_adj > u]:
                if int(v) in neighbour_set:
                    triangles += 1
    if triples == 0:
        return 0.0
    # Each triangle is seen once per corner = 3 times total.
    return triangles / triples


def degree_assortativity(graph: Graph) -> float:
    """Pearson correlation of endpoint degrees over all edges.

    Negative on hub-and-spoke topologies (hubs link to leaves), positive
    on meshes of similar nodes, undefined (returned as 0) when all
    degrees are equal.
    """
    edges = graph.edge_array()
    if edges.shape[0] == 0:
        raise GraphError("assortativity needs at least one edge")
    degrees = graph.degrees
    x = degrees[edges[:, 0]].astype(float)
    y = degrees[edges[:, 1]].astype(float)
    # Symmetrize: each edge contributes both orientations.
    xs = np.concatenate([x, y])
    ys = np.concatenate([y, x])
    sx = xs.std()
    if sx == 0:
        return 0.0
    return float(np.corrcoef(xs, ys)[0, 1])


@dataclass(frozen=True)
class TopologyMetrics:
    """Structural-regime metrics for one topology."""

    name: str
    clustering: float
    assortativity: float
    max_degree: int
    degree_tail_slope: Optional[float]
    degree_tail_r2: Optional[float]

    def looks_power_law(self, r2_threshold: float = 0.9) -> bool:
        """Whether the degree CCDF tail fits a power law well."""
        return (
            self.degree_tail_r2 is not None
            and self.degree_tail_r2 >= r2_threshold
            and self.degree_tail_slope is not None
            and self.degree_tail_slope < -0.5
        )


def topology_metrics(graph: Graph, name: str = "graph") -> TopologyMetrics:
    """Compute :class:`TopologyMetrics` for ``graph``.

    The tail fit is skipped (None fields) on graphs whose degree range
    is too narrow to fit.
    """
    try:
        tail = degree_tail_fit(graph)
        slope: Optional[float] = tail.slope
        r2: Optional[float] = tail.r_squared
    except AnalysisError:
        slope = None
        r2 = None
    return TopologyMetrics(
        name=name,
        clustering=clustering_coefficient(graph),
        assortativity=degree_assortativity(graph),
        max_degree=int(graph.degrees.max()) if graph.num_nodes else 0,
        degree_tail_slope=slope,
        degree_tail_r2=r2,
    )
