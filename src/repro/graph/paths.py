"""Shortest-path machinery: BFS forests, distance matrices, Dijkstra.

Everything the paper measures — multicast tree sizes ``L(m)``, unicast path
lengths ``ū``, reachability profiles ``S(r)`` — derives from single-source
shortest paths on unweighted graphs, so the level-synchronous vectorized
BFS in :func:`bfs` is the hottest code path in the repository.

Shortest-path *trees* are not unique on graphs with equal-cost multipaths.
The ``tie_break`` policy selects among them:

* ``"first"`` (default): deterministic — among equal-distance parents the
  one reached earliest in (frontier-order, adjacency-order) wins.  This is
  the conventional BFS-parent choice.
* ``"random"``: each node picks uniformly among its candidate parents at
  its BFS level, which is the natural model of routers hashing among
  equal-cost routes.  Requires an ``rng``.

The effect of this choice on tree size is one of the ablations indexed in
DESIGN.md.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.exceptions import GraphError, NodeError
from repro.graph.core import Graph
from repro.utils.rng import RandomState, ensure_rng

__all__ = [
    "ShortestPathForest",
    "bfs",
    "bfs_from_many",
    "multi_source_bfs",
    "distances_from",
    "distances_from_many",
    "distance_matrix",
    "dijkstra",
    "uniform_arc_weights",
]

_TIE_BREAKS = ("first", "random")


@dataclass(frozen=True)
class ShortestPathForest:
    """The result of a single-source shortest-path computation.

    Attributes
    ----------
    source:
        The source node.
    dist:
        Distance from the source to every node; ``-1`` marks unreachable
        nodes.  Integer hop counts for BFS, float costs for Dijkstra are
        rounded into this array only when integral — Dijkstra returns its
        own float array alongside.
    parent:
        Shortest-path-tree parent of every node; ``-1`` for the source and
        for unreachable nodes.  Following ``parent`` pointers from any
        reachable node terminates at the source.
    """

    source: int
    dist: np.ndarray
    parent: np.ndarray

    def __post_init__(self) -> None:
        self.dist.setflags(write=False)
        self.parent.setflags(write=False)

    @property
    def num_nodes(self) -> int:
        """Number of nodes in the underlying graph."""
        return self.dist.shape[0]

    @property
    def reachable_mask(self) -> np.ndarray:
        """Boolean mask of nodes reachable from the source."""
        return self.dist >= 0

    @property
    def num_reachable(self) -> int:
        """Count of reachable nodes, including the source itself."""
        return int(np.count_nonzero(self.dist >= 0))

    @property
    def eccentricity(self) -> int:
        """Greatest finite distance from the source."""
        return int(self.dist.max(initial=0))

    def path_to(self, node: int) -> List[int]:
        """The shortest path from the source to ``node``, inclusive.

        Raises
        ------
        GraphError
            If ``node`` is unreachable from the source.
        """
        node = int(node)
        if not 0 <= node < self.num_nodes:
            raise NodeError(node, self.num_nodes)
        if self.dist[node] < 0:
            raise GraphError(
                f"node {node} is not reachable from source {self.source}"
            )
        path = [node]
        while path[-1] != self.source:
            path.append(int(self.parent[path[-1]]))
        path.reverse()
        return path


def _gather_frontier_arcs(
    indptr: np.ndarray, indices: np.ndarray, frontier: np.ndarray
):
    """All (neighbour, frontier-parent) arc pairs leaving ``frontier``."""
    starts = indptr[frontier]
    counts = indptr[frontier + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return (
            np.empty(0, dtype=indices.dtype),
            np.empty(0, dtype=frontier.dtype),
        )
    cum = np.cumsum(counts)
    flat = np.arange(total, dtype=np.int64) - np.repeat(cum - counts, counts)
    flat += np.repeat(starts, counts)
    return indices[flat], np.repeat(frontier, counts)


def bfs(
    graph: Graph,
    source: int,
    tie_break: str = "first",
    rng: RandomState = None,
) -> ShortestPathForest:
    """Breadth-first search from ``source``.

    Parameters
    ----------
    graph:
        The graph to search.
    source:
        Source node id.
    tie_break:
        ``"first"`` or ``"random"`` parent selection (see module docs).
    rng:
        Randomness for ``tie_break="random"``; ignored otherwise.

    Returns
    -------
    ShortestPathForest
        Hop distances and shortest-path-tree parents.
    """
    if tie_break not in _TIE_BREAKS:
        raise ValueError(
            f"tie_break must be one of {_TIE_BREAKS}, got {tie_break!r}"
        )
    source = graph.check_node(source)
    generator = ensure_rng(rng) if tie_break == "random" else None

    n = graph.num_nodes
    dist = np.full(n, -1, dtype=np.int32)
    parent = np.full(n, -1, dtype=np.int32)
    dist[source] = 0
    frontier = np.asarray([source], dtype=np.int32)
    indptr, indices = graph.indptr, graph.indices

    level = 0
    while frontier.size:
        level += 1
        neighbours, parents = _gather_frontier_arcs(indptr, indices, frontier)
        if neighbours.size == 0:
            break
        fresh = dist[neighbours] < 0
        neighbours = neighbours[fresh]
        parents = parents[fresh]
        if neighbours.size == 0:
            break
        if generator is not None:
            order = generator.permutation(neighbours.size)
            neighbours = neighbours[order]
            parents = parents[order]
        uniq, first_index = np.unique(neighbours, return_index=True)
        dist[uniq] = level
        parent[uniq] = parents[first_index]
        frontier = uniq.astype(np.int32)
    return ShortestPathForest(source=source, dist=dist, parent=parent)


#: Per-bit masks for the packed visited representation.
_BIT_MASKS = np.left_shift(
    np.ones(8, dtype=np.uint8), np.arange(8, dtype=np.uint8)
)


def _gather_many_arcs(
    indptr: np.ndarray,
    indices: np.ndarray,
    fsrc: np.ndarray,
    fnode: np.ndarray,
):
    """All (neighbour, frontier-parent, source-row) arc triples leaving a
    concatenated multi-source frontier."""
    starts = indptr[fnode]
    counts = indptr[fnode + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return (
            np.empty(0, dtype=indices.dtype),
            np.empty(0, dtype=fnode.dtype),
            np.empty(0, dtype=np.int64),
        )
    cum = np.cumsum(counts)
    flat = np.arange(total, dtype=np.int64) - np.repeat(cum - counts, counts)
    flat += np.repeat(starts, counts)
    return indices[flat], np.repeat(fnode, counts), np.repeat(fsrc, counts)


def _many_bfs(
    graph: Graph,
    sources: Sequence[int],
    want_parents: bool,
    packed: bool,
    source_groups: Optional[Sequence[np.ndarray]] = None,
):
    """Level-synchronous BFS from many sources at once.

    The frontier is the concatenation of every source's frontier in
    source-major order, deduplicated on the flattened key
    ``source_row * num_nodes + node`` — so within each row the visit
    order (frontier-order, adjacency-order) and therefore the distances
    *and* the ``tie_break="first"`` parent choices are bit-identical to
    running :func:`bfs` on that source alone.

    When ``source_groups`` is given, each entry seeds one row with a
    whole *set* of level-0 nodes (``sources`` is then ignored): the row
    behaves like a BFS from a virtual super-source attached to every
    seed.  A singleton group is bit-identical to the plain per-source
    row — the seeding arrays are the same — which is how
    :func:`multi_source_bfs` rides on this machinery.  Groups must be
    validated (sorted unique in-range node ids) by the caller.

    With ``packed=True`` the visited test reads a bit-packed
    ``uint8 (S, ceil(n/8))`` mask instead of the int32 distance matrix —
    an 8th of the memory traffic per test on million-node rows — without
    changing any output byte.
    """
    n = graph.num_nodes
    if source_groups is None:
        seed_nodes = np.asarray(
            [graph.check_node(s) for s in sources], dtype=np.int32
        )
        num_rows = seed_nodes.shape[0]
        seed_rows = np.arange(num_rows, dtype=np.int64)
    else:
        num_rows = len(source_groups)
        seed_nodes = (
            np.concatenate([
                np.asarray(group, dtype=np.int32) for group in source_groups
            ])
            if num_rows
            else np.empty(0, dtype=np.int32)
        )
        seed_rows = (
            np.repeat(
                np.arange(num_rows, dtype=np.int64),
                [len(group) for group in source_groups],
            )
            if num_rows
            else np.empty(0, dtype=np.int64)
        )
    dist = np.full((num_rows, n), -1, dtype=np.int32)
    parent = (
        np.full((num_rows, n), -1, dtype=np.int32) if want_parents else None
    )
    if num_rows == 0:
        return dist, parent
    dist[seed_rows, seed_nodes] = 0
    dist_flat = dist.reshape(-1)
    parent_flat = parent.reshape(-1) if want_parents else None

    row_bytes = (n + 7) >> 3
    bits_flat = None
    if packed:
        bits_flat = np.zeros(num_rows * row_bytes, dtype=np.uint8)
        np.bitwise_or.at(
            bits_flat,
            seed_rows * row_bytes + (seed_nodes >> 3),
            _BIT_MASKS[seed_nodes & 7],
        )

    fsrc = seed_rows
    fnode = seed_nodes
    indptr, indices = graph.indptr, graph.indices
    level = 0
    while fnode.size:
        level += 1
        neighbours, parents, nsrc = _gather_many_arcs(
            indptr, indices, fsrc, fnode
        )
        if neighbours.size == 0:
            break
        if packed:
            fresh = (
                bits_flat[nsrc * row_bytes + (neighbours >> 3)]
                & _BIT_MASKS[neighbours & 7]
            ) == 0
        else:
            fresh = dist_flat[nsrc * n + neighbours] < 0
        neighbours = neighbours[fresh]
        nsrc = nsrc[fresh]
        if want_parents:
            parents = parents[fresh]
        if neighbours.size == 0:
            break
        uniq, first_index = np.unique(
            nsrc * n + neighbours, return_index=True
        )
        dist_flat[uniq] = level
        if want_parents:
            parent_flat[uniq] = parents[first_index]
        fsrc = uniq // n
        fnode = (uniq % n).astype(np.int32)
        if packed:
            np.bitwise_or.at(
                bits_flat,
                fsrc * row_bytes + (fnode >> 3),
                _BIT_MASKS[fnode & 7],
            )
    return dist, parent


def distances_from_many(
    graph: Graph,
    sources: Sequence[int],
    *,
    packed: bool = False,
) -> np.ndarray:
    """Hop distances from many sources in one batched frontier sweep.

    Returns shape ``(len(sources), num_nodes)`` int32; row ``i`` is
    bit-identical to ``distances_from(graph, sources[i])`` (``-1`` rows
    for unreachable nodes, including on disconnected graphs).  With
    ``packed=True`` the visited test runs over bit-packed masks — same
    output, lower memory traffic on million-node graphs.
    """
    dist, _ = _many_bfs(graph, sources, want_parents=False, packed=packed)
    return dist


def bfs_from_many(
    graph: Graph,
    sources: Sequence[int],
    *,
    packed: bool = False,
):
    """Batched BFS forests: ``(dist, parent)`` matrices, one row per source.

    Each row is bit-identical to ``bfs(graph, s, tie_break="first")`` —
    among equal-distance parents, the earliest in (frontier-order,
    adjacency-order) wins, exactly as in the single-source code.  This
    is what :class:`repro.graph.distance_store.DistanceStore` builds
    its mmap rows from.
    """
    return _many_bfs(graph, sources, want_parents=True, packed=packed)


def multi_source_bfs(graph: Graph, seeds: Sequence[int]):
    """BFS from a *set* of seed nodes simultaneously.

    Returns 1-D ``(dist, parent)`` arrays: ``dist[v]`` is the hop
    distance from ``v`` to the nearest seed, and following ``parent``
    pointers from any reachable node terminates at some seed (whose
    parent is ``-1``).  This is :func:`bfs_from_many`'s frontier
    machinery seeded with one multi-node row, so the visit order —
    and hence every parent choice — matches a level-synchronous BFS
    whose level 0 is the sorted unique seed set.
    """
    seed = np.unique(np.asarray(list(seeds), dtype=np.int64))
    if seed.size == 0:
        raise GraphError("multi-source BFS needs at least one seed")
    for node in seed:
        graph.check_node(int(node))
    dist, parent = _many_bfs(
        graph, (), want_parents=True, packed=False, source_groups=[seed]
    )
    return dist[0], parent[0]


def distances_from(graph: Graph, source: int) -> np.ndarray:
    """Hop distances from ``source`` only (skips parent bookkeeping)."""
    source = graph.check_node(source)
    n = graph.num_nodes
    dist = np.full(n, -1, dtype=np.int32)
    dist[source] = 0
    frontier = np.asarray([source], dtype=np.int32)
    indptr, indices = graph.indptr, graph.indices
    level = 0
    while frontier.size:
        level += 1
        neighbours, _ = _gather_frontier_arcs(indptr, indices, frontier)
        if neighbours.size == 0:
            break
        fresh = np.unique(neighbours[dist[neighbours] < 0])
        if fresh.size == 0:
            break
        dist[fresh] = level
        frontier = fresh.astype(np.int32)
    return dist


def distance_matrix(
    graph: Graph,
    nodes: Optional[Sequence[int]] = None,
    use_cache: bool = True,
) -> np.ndarray:
    """All-pairs (or some-pairs) hop-distance matrix.

    Parameters
    ----------
    graph:
        The graph.
    nodes:
        Optional row subset; when given, returns distances from each of
        these nodes to *all* nodes (shape ``(len(nodes), num_nodes)``).
        Defaults to all nodes.
    use_cache:
        Serve rows from the process-wide
        :class:`repro.graph.forest_cache.ForestCache` (the default).
        Only engaged while the row count fits the cache capacity — a full
        all-pairs sweep on a large graph would churn the whole cache for
        nothing, so it falls back to direct BFS.

    Notes
    -----
    Memory is ``O(rows × num_nodes)`` int32 — fine for the ≤ ~10k-node
    graphs on which callers (affinity sampling, diameter checks) use it.
    """
    row_nodes = (
        np.arange(graph.num_nodes, dtype=np.int64)
        if nodes is None
        else np.asarray([graph.check_node(v) for v in nodes], dtype=np.int64)
    )
    cache = None
    if use_cache:
        # Imported here: forest_cache depends on this module's bfs().
        from repro.graph.forest_cache import default_forest_cache

        candidate = default_forest_cache()
        if row_nodes.size <= candidate.max_entries:
            cache = candidate
    out = np.empty((row_nodes.size, graph.num_nodes), dtype=np.int32)
    for i, node in enumerate(row_nodes):
        if cache is not None:
            out[i] = cache.forest(graph, int(node), tie_break="first").dist
        else:
            out[i] = distances_from(graph, int(node))
    return out


def uniform_arc_weights(graph: Graph, weight: float = 1.0) -> np.ndarray:
    """Per-arc weight array (aligned with ``graph.indices``), all equal."""
    if weight <= 0:
        raise GraphError(f"arc weights must be positive, got {weight}")
    return np.full(graph.indices.shape[0], float(weight))


def dijkstra(
    graph: Graph,
    source: int,
    arc_weights: Optional[np.ndarray] = None,
) -> "WeightedForest":
    """Dijkstra's algorithm for positively-weighted graphs.

    The paper counts unweighted hops, but link-weighted variants of the
    ``L(m)`` question (weight links by length or cost) drop out of the same
    API by passing ``arc_weights``; this is used by the weighted ablation.

    Parameters
    ----------
    graph:
        The graph.
    source:
        Source node id.
    arc_weights:
        Weight per directed arc, aligned with ``graph.indices``.  Defaults
        to all-ones (which reproduces BFS distances).

    Returns
    -------
    WeightedForest
        Float distances (``inf`` for unreachable) and tree parents.
    """
    source = graph.check_node(source)
    if arc_weights is None:
        arc_weights = uniform_arc_weights(graph)
    weights = np.asarray(arc_weights, dtype=float)
    if weights.shape != graph.indices.shape:
        raise GraphError(
            f"arc_weights must have shape {graph.indices.shape}, "
            f"got {weights.shape}"
        )
    if weights.size and weights.min() <= 0:
        raise GraphError("Dijkstra requires strictly positive arc weights")

    n = graph.num_nodes
    dist = np.full(n, np.inf)
    parent = np.full(n, -1, dtype=np.int32)
    done = np.zeros(n, dtype=bool)
    dist[source] = 0.0
    heap: List = [(0.0, source)]
    indptr, indices = graph.indptr, graph.indices
    while heap:
        d, u = heapq.heappop(heap)
        if done[u]:
            continue
        done[u] = True
        lo, hi = indptr[u], indptr[u + 1]
        for pos in range(lo, hi):
            v = int(indices[pos])
            nd = d + float(weights[pos])
            if nd < dist[v]:
                dist[v] = nd
                parent[v] = u
                heapq.heappush(heap, (nd, v))
    return WeightedForest(source=source, cost=dist, parent=parent)


@dataclass(frozen=True)
class WeightedForest:
    """Dijkstra result: float path costs and shortest-path-tree parents."""

    source: int
    cost: np.ndarray
    parent: np.ndarray

    def __post_init__(self) -> None:
        self.cost.setflags(write=False)
        self.parent.setflags(write=False)

    @property
    def reachable_mask(self) -> np.ndarray:
        """Boolean mask of nodes with finite cost."""
        return np.isfinite(self.cost)

    def path_to(self, node: int) -> List[int]:
        """The minimum-cost path from the source to ``node``, inclusive."""
        node = int(node)
        if not 0 <= node < self.cost.shape[0]:
            raise NodeError(node, self.cost.shape[0])
        if not np.isfinite(self.cost[node]):
            raise GraphError(
                f"node {node} is not reachable from source {self.source}"
            )
        path = [node]
        while path[-1] != self.source:
            path.append(int(self.parent[path[-1]]))
        path.reverse()
        return path
