#!/usr/bin/env python
"""A live multicast session: joins, leaves, and the tree that follows.

The paper studies static snapshots; real sessions (the MBone seminars it
cites) churn continuously.  This example drives the incremental
graft/prune engine through a session's life cycle on a transit-stub
network:

1. a flash-crowd ramp-up (everyone joins),
2. a steady phase with churn around a stable audience,
3. the drain at the end of the session,

printing the tree size and per-event graft/prune costs along the way,
and verifying at each phase boundary that the incremental tree equals a
from-scratch recount.

Run:  python examples/session_dynamics.py
"""

from __future__ import annotations

import sys

import numpy as np

from repro.graph.paths import bfs
from repro.graph.reachability import reachability_profile
from repro.multicast.dynamics import DynamicGroup
from repro.topology.registry import build_topology
from repro.utils.rng import ensure_rng
from repro.utils.tables import format_table


def main() -> int:
    rng = ensure_rng(7)
    graph = build_topology("ts1000", scale=0.5, rng=0)
    source = int(rng.integers(0, graph.num_nodes))
    forest = bfs(graph, source)
    group = DynamicGroup(forest)
    audience = 120

    print(
        f"Session on a {graph.num_nodes}-node transit-stub network, "
        f"source at node {source}.\n"
    )

    # Phase 1: ramp-up.
    graft_costs = []
    sites = rng.choice(
        [v for v in range(graph.num_nodes) if v != source],
        size=audience, replace=False,
    )
    checkpoints = {1, 10, 30, 60, audience}
    rows = []
    for i, site in enumerate(sites, start=1):
        graft_costs.append(group.join(int(site)))
        if i in checkpoints:
            rows.append(
                (i, group.tree_links,
                 group.tree_links / i,
                 float(np.mean(graft_costs)))
            )
    assert group.tree_links == group.recount()
    print(
        format_table(
            ["members", "tree links", "links/member", "mean graft cost"],
            rows,
            float_format=".3g",
            title="Phase 1 - flash-crowd ramp-up",
        )
    )
    print(
        "  (links/member falls as the tree fills in: each newcomer "
        "reuses more of the tree)\n"
    )

    # Phase 2: steady churn.
    stats = group.simulate_churn(
        target_members=audience, events=3000, rng=rng
    )
    assert group.tree_links == group.recount()
    print("Phase 2 - steady churn (3000 events):")
    print(f"  mean audience    : {stats.mean_members:.1f}")
    print(f"  mean tree size   : {stats.mean_tree_links:.1f} links")
    print(
        f"  graft/prune cost : {stats.mean_graft_cost:.2f} / "
        f"{stats.mean_prune_cost:.2f} links per event (balanced in "
        "steady state)\n"
    )

    # Phase 3: drain.
    prune_costs = []
    while group.num_members > 0:
        members = list(group.members())
        prune_costs.append(group.leave(members[int(rng.integers(0, len(members)))]))
    assert group.tree_links == 0
    tail = float(np.mean(prune_costs[-10:]))
    print("Phase 3 - drain:")
    print(
        f"  {len(prune_costs)} departures; early leavers free "
        f"{np.mean(prune_costs[:10]):.2f} links each, the last ten free "
        f"{tail:.2f} each\n  (the final member releases their whole "
        f"{int(prune_costs[-1])}-hop path)."
    )

    u_bar = reachability_profile(graph, source).mean_distance
    print(
        f"\nSteady-state efficiency: {stats.mean_tree_links:.0f} tree links "
        f"vs {stats.mean_members * u_bar:.0f} unicast link-hops -> "
        f"{100 * (1 - stats.mean_tree_links / (stats.mean_members * u_bar)):.0f}% "
        "bandwidth saved, continuously, while the group churns."
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
