#!/usr/bin/env python
"""Capacity planning from the reachability function alone.

Section 4's practical payoff: a provider who knows only its network's
reachability profile ``S(r)`` — one BFS per vantage point, no group
simulation — can predict the expected multicast tree size for any group
size with Eq. 30, and therefore the bandwidth needed for a flash-crowd
event (product launch, live sports stream).

This example measures ``S(r)`` on an Internet-like router map, predicts
``L̂(n)`` for event sizes from 10 to 50,000 viewers, validates the
prediction against direct simulation at the sizes where simulation is
cheap, and reports the provisioning numbers vs a unicast CDN.

Run:  python examples/capacity_planning.py
"""

from __future__ import annotations

import sys

import numpy as np

from repro import MonteCarloConfig, build_topology, measure_sweep
from repro.analysis.general import (
    lhat_from_rings_throughout,
    mean_distance_from_rings,
)
from repro.graph.reachability import average_profile, classify_growth
from repro.utils.tables import format_table

STREAM_MBPS = 5.0  # per-viewer stream rate


def main() -> int:
    graph = build_topology("internet", scale=0.5, rng=3)
    print(
        f"Router map: {graph.num_nodes} nodes, {graph.num_edges} links "
        "(Internet-like preferential attachment)\n"
    )

    print("Measuring the reachability profile S(r) from 25 vantage points ...")
    profile = average_profile(graph, num_sources=25, rng=3)
    rings = profile.mean_ring_sizes
    rings = rings[: int(np.max(np.flatnonzero(rings > 0))) + 1]
    growth = classify_growth(profile)
    u_bar = mean_distance_from_rings(rings)
    print(
        f"  horizon D = {len(rings) - 1} hops, mean path = {u_bar:.2f}, "
        f"growth = {growth}"
    )
    if growth != "exponential":
        print(
            "  warning: Eq. 30 is only trustworthy for exponential S(r) "
            "(Section 4.3)"
        )

    event_sizes = np.array([10, 100, 1_000, 10_000, 50_000], dtype=float)
    predicted_links = lhat_from_rings_throughout(rings, event_sizes)
    unicast_links = event_sizes * u_bar

    rows = [
        (
            int(n),
            links,
            links * STREAM_MBPS / 1000.0,
            uni * STREAM_MBPS / 1000.0,
            100.0 * (1.0 - links / uni),
        )
        for n, links, uni in zip(event_sizes, predicted_links, unicast_links)
    ]
    print()
    print(
        format_table(
            [
                "viewers (n)",
                "predicted tree links",
                "multicast Gbps",
                "unicast Gbps",
                "bandwidth saved %",
            ],
            rows,
            float_format=".4g",
            title=f"Flash-crowd provisioning at {STREAM_MBPS:g} Mbps/stream "
            "(Eq. 30 prediction)",
        )
    )

    # Validate the predictor where simulation is affordable.
    check_sizes = [10, 100, 1000]
    config = MonteCarloConfig(num_sources=10, num_receiver_sets=10, seed=3)
    sweep = measure_sweep(graph, check_sizes, mode="replacement",
                          config=config, topology="internet")
    predicted = lhat_from_rings_throughout(
        rings, np.asarray(check_sizes, dtype=float)
    )
    print("\nValidation against direct simulation:")
    for n, sim, pred in zip(check_sizes, sweep.mean_tree_size, predicted):
        err = 100.0 * abs(pred - sim) / sim
        print(
            f"  n={n:5d}: simulated {sim:8.1f} links, "
            f"predicted {pred:8.1f} links ({err:.1f}% off)"
        )
    print(
        "\nOne reachability sweep prices every event size — no per-group "
        "simulation needed.\n(Eq. 30 treats link usages as independent, "
        "which over-counts on hub-heavy maps;\nthe ~25-35% conservative "
        "bias above is that assumption, and it is the safe direction\n"
        "for provisioning.)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
