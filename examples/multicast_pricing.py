#!/usr/bin/env python
"""Multicast pricing — the application that motivated the scaling law.

Chuang & Sirbu proposed charging a multicast group in proportion to its
predicted tree cost, ``price(m) = u · m^0.8``, so a provider can tariff a
group by its *size* without measuring its *tree*.  This example plays
provider: it builds an AS-like network, tariffs groups of many sizes with
the law, then audits the tariff against the true (simulated) tree cost
and against two alternatives — unicast pricing (price ∝ m) and the
paper's own refinement (Eq. 18, the exact asymptotic form for
exponential-growth networks).

The punchline matches the paper's: the 0.8 law is imperfect but
"certainly sufficiently accurate for the practical purpose for which it
was originally intended."

Run:  python examples/multicast_pricing.py
"""

from __future__ import annotations

import sys

import numpy as np

from repro import MonteCarloConfig, SweepConfig, build_topology, measure_sweep
from repro.analysis.scaling import chuang_sirbu_prediction
from repro.graph.reachability import average_path_length
from repro.utils.tables import format_table


def main() -> int:
    graph = build_topology("as", scale=0.4, rng=7)
    u_bar = average_path_length(graph, rng=7)
    print(
        f"Provider network: AS-like, {graph.num_nodes} nodes, "
        f"avg unicast path {u_bar:.2f} hops\n"
    )

    config = MonteCarloConfig(num_sources=15, num_receiver_sets=15, seed=7)
    sizes = SweepConfig(points=9).sizes(max(2, (graph.num_nodes - 1) // 3))
    sweep = measure_sweep(graph, sizes, config=config, topology="as")

    true_cost = np.asarray(sweep.mean_tree_size)
    law_price = u_bar * chuang_sirbu_prediction(sizes)
    unicast_price = u_bar * np.asarray(sizes, dtype=float)

    rows = []
    for i, m in enumerate(sizes):
        rows.append(
            (
                m,
                true_cost[i],
                law_price[i],
                100.0 * (law_price[i] - true_cost[i]) / true_cost[i],
                unicast_price[i],
                100.0 * (unicast_price[i] - true_cost[i]) / true_cost[i],
            )
        )
    print(
        format_table(
            [
                "m",
                "true tree cost",
                "m^0.8 tariff",
                "tariff err %",
                "unicast tariff",
                "unicast err %",
            ],
            rows,
            float_format=".4g",
            title="Tariff audit (costs in link-hops per packet)",
        )
    )

    law_err = np.abs(law_price - true_cost) / true_cost
    uni_err = np.abs(unicast_price - true_cost) / true_cost
    print(
        f"\nworst-case tariff error: m^0.8 law {100 * law_err.max():.0f}%  "
        f"vs unicast pricing {100 * uni_err.max():.0f}%"
    )
    print(
        "The m^0.8 tariff tracks real tree costs across two orders of "
        "magnitude of group size;\nunicast pricing overcharges large "
        "groups by the full multicast efficiency gain."
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
