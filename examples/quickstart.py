#!/usr/bin/env python
"""Quickstart: measure the Chuang-Sirbu scaling law on one topology.

Builds a GT-ITM transit-stub network, runs the paper's Section-2
Monte-Carlo methodology over a sweep of multicast group sizes, fits the
scaling exponent, and prints the series against the ``m^0.8`` law.

Run:  python examples/quickstart.py [topology] [scale]
"""

from __future__ import annotations

import sys

from repro import (
    CHUANG_SIRBU_EXPONENT,
    MonteCarloConfig,
    SweepConfig,
    build_topology,
    chuang_sirbu_prediction,
    graph_stats,
    measure_sweep,
)
from repro.utils.tables import format_table


def main() -> int:
    topology = sys.argv[1] if len(sys.argv) > 1 else "ts1000"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.5

    print(f"Building {topology!r} at scale {scale} ...")
    graph = build_topology(topology, scale=scale, rng=0)
    stats = graph_stats(graph, name=topology, rng=0)
    print(
        f"  {stats.num_nodes} nodes, {stats.num_edges} links, "
        f"avg degree {stats.average_degree:.2f}, "
        f"avg path length {stats.average_path_length:.2f}\n"
    )

    config = MonteCarloConfig(num_sources=20, num_receiver_sets=20, seed=0)
    sizes = SweepConfig(points=10).sizes(max(2, (graph.num_nodes - 1) // 4))
    print(
        f"Measuring L(m) for m in {list(sizes)} "
        f"({config.num_sources} sources x {config.num_receiver_sets} "
        "receiver sets each) ...\n"
    )
    sweep = measure_sweep(graph, sizes, mode="distinct", config=config,
                          topology=topology)

    law = chuang_sirbu_prediction(sizes)
    rows = [
        (m, tree, ratio, predicted, ratio / predicted)
        for m, tree, ratio, predicted in zip(
            sweep.sizes, sweep.mean_tree_size, sweep.normalized_tree_size, law
        )
    ]
    print(
        format_table(
            ["m", "L(m)", "L(m)/u", "m^0.8", "ratio vs law"],
            rows,
            float_format=".4g",
        )
    )

    fit = sweep.fit_exponent()
    print(
        f"\nFitted exponent : {fit.slope:.3f} "
        f"(Chuang-Sirbu: {CHUANG_SIRBU_EXPONENT}, r^2 = {fit.r_squared:.3f})"
    )
    print(
        "Multicast saves "
        f"{100 * (1 - sweep.per_receiver_series[-1]):.0f}% of unicast "
        f"bandwidth at m = {sweep.sizes[-1]}."
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
