#!/usr/bin/env python
"""Receiver clustering: teleconference vs sensor-field multicast.

Section 5 of the paper models how receiver *affinity* (clustering, like a
teleconference between a few campuses) and *disaffinity* (spreading, like
evenly-deployed sensors) change the delivery-tree cost.  This example
runs the full machinery on a binary tree:

1. the Metropolis sampler at several β values (the paper's Figure 9),
2. the closed-form β = ±∞ extremes (Eqs. 36/38),
3. a cost interpretation: how much a provider mis-provisions if it
   assumes uniform receivers when the workload actually clusters.

Run:  python examples/affinity_study.py
"""

from __future__ import annotations

import sys

import numpy as np

from repro.analysis.affinity_theory import (
    affinity_tree_size,
    disaffinity_tree_size,
)
from repro.graph.paths import bfs
from repro.multicast.affinity import (
    KaryDistanceOracle,
    sample_weighted_tree_size,
)
from repro.multicast.tree import MulticastTreeCounter
from repro.topology.kary import kary_tree
from repro.utils.tables import format_table

DEPTH = 9
GROUP_SIZE = 48
BETAS = (-10.0, -1.0, 0.0, 1.0, 10.0)


def main() -> int:
    tree = kary_tree(2, DEPTH)
    forest = bfs(tree.graph, tree.root)
    counter = MulticastTreeCounter(forest)
    oracle = KaryDistanceOracle(tree)
    pool = tree.non_root_nodes()

    print(
        f"Binary tree, depth {DEPTH} ({tree.num_nodes} nodes); "
        f"multicast group of n = {GROUP_SIZE} receivers.\n"
    )

    rows = []
    uniform_cost = None
    for beta in BETAS:
        estimate = sample_weighted_tree_size(
            counter, oracle, pool, n=GROUP_SIZE, beta=beta,
            num_samples=60, burn_in_sweeps=25, thin_sweeps=2, rng=1,
        )
        if beta == 0.0:
            uniform_cost = estimate.mean_tree_size
        regime = (
            "strong clustering" if beta >= 10 else
            "mild clustering" if beta > 0 else
            "uniform (paper baseline)" if beta == 0 else
            "mild spreading" if beta > -10 else
            "strong spreading"
        )
        rows.append(
            (
                beta,
                regime,
                estimate.mean_tree_size,
                estimate.mean_pair_distance,
                estimate.acceptance_rate,
            )
        )
    print(
        format_table(
            ["beta", "regime", "E[tree links]", "mean d^", "MCMC accept"],
            rows,
            float_format=".3f",
            title="Sampled tree cost vs affinity strength (Figure 9 machinery)",
        )
    )

    packed = int(affinity_tree_size(2, DEPTH, GROUP_SIZE))
    spread = int(disaffinity_tree_size(2, DEPTH, GROUP_SIZE))
    print(
        f"\nclosed-form extremes at m = {GROUP_SIZE} distinct leaf sites: "
        f"beta=+inf -> {packed} links, beta=-inf -> {spread} links"
    )

    clustered = [r[2] for r in rows if r[0] == 10.0][0]
    spread_cost = [r[2] for r in rows if r[0] == -10.0][0]
    print(
        f"\nProvisioning for uniform receivers ({uniform_cost:.0f} links) "
        f"over-serves a teleconference\nworkload by "
        f"{100 * (uniform_cost - clustered) / clustered:.0f}% and "
        f"under-serves a sensor field by "
        f"{100 * (spread_cost - uniform_cost) / uniform_cost:.0f}%."
    )
    print(
        "As the paper conjectures, the effect shrinks as n grows at fixed "
        "n/M — rerun with\nlarger GROUP_SIZE to watch the curves converge."
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
