#!/usr/bin/env python
"""A guided tour of the paper's approximation chain, with live errors.

Walks the full derivation on one binary tree (D = 12) and prints, at
each stage, what was approximated and how much accuracy it cost:

  Eq. 4  exact L̂(n)                 (sum over levels)
  Eq. 9  asymptotic Δ²L̂            (integral + large-n limit)
  Eq. 12 h(x) = x·k^(−1/2)          (the degree-free form)
  Eq. 16 L̂(n)/n = (1 − ln(n/M))/ln k (integrate back up)
  Eq. 1  n(m) conversion            (with-replacement → distinct)
  Eq. 18 L(m) closed form           (the paper's alternative law)
  vs      m^0.8                     (Chuang & Sirbu's law)

plus the two moments the paper never computed: the exact distinct-m
expectation (hypergeometric) and the exact variance.

Run:  python examples/theory_tour.py
"""

from __future__ import annotations

import sys

import numpy as np

from repro.analysis.kary_asymptotic import (
    delta2_asymptotic,
    h_exact,
    h_predicted,
    lhat_per_receiver_predicted,
    lm_asymptotic,
    lm_exact_via_conversion,
)
from repro.analysis.kary_distinct import conversion_error, lm_leaf_distinct_exact
from repro.analysis.kary_exact import delta2_lhat, lhat_leaf, num_leaf_sites
from repro.analysis.kary_variance import coefficient_of_variation
from repro.analysis.scaling import chuang_sirbu_prediction
from repro.utils.tables import format_table

K, D = 2, 12


def stage(title: str) -> None:
    print(f"\n--- {title} " + "-" * max(1, 60 - len(title)))


def main() -> int:
    big_m = num_leaf_sites(K, D)
    print(f"Binary tree, depth {D}: M = {big_m:.0f} leaf receiver sites.")

    stage("Eq. 4: the exact expected tree size")
    n_show = np.array([1.0, 16.0, 256.0, 4096.0])
    rows = [(int(n), float(lhat_leaf(K, D, n))) for n in n_show]
    print(format_table(["n", "Lhat(n)"], rows, float_format=".5g"))

    stage("Eq. 9: integral approximation of the second difference")
    n_mid = np.array([0.05, 0.2, 0.5]) * big_m
    rows = []
    for n in n_mid:
        exact = float(delta2_lhat(K, D, n))
        approx = float(delta2_asymptotic(K, D, n))
        rows.append((f"{n/big_m:.2f}", exact, approx,
                     100 * abs(approx - exact) / abs(exact)))
    print(format_table(["n/M", "exact", "Eq. 9", "err %"], rows,
                       float_format=".4g"))

    stage("Eq. 12: h(x) loses the tree degree")
    x = np.array([0.2, 0.5, 0.9])
    rows = [
        (f"{xi:.1f}", float(h_exact(K, D, xi)), float(h_predicted(K, xi)))
        for xi in x
    ]
    print(format_table(["x", "h exact", "x*k^-1/2"], rows, float_format=".4f"))
    print("(k only rescales the line - the paper's universality candidate)")

    stage("Eq. 16: linear-with-log-correction per-receiver cost")
    n_lin = np.geomspace(8, big_m / 8, 5)
    rows = []
    for n in n_lin:
        exact = float(lhat_leaf(K, D, n)) / n
        line = float(lhat_per_receiver_predicted(K, n / big_m))
        rows.append((int(n), exact, line, abs(line - exact)))
    print(format_table(["n", "Lhat/n exact", "Eq. 16 line", "|gap|"], rows,
                       float_format=".4g"))
    print("(constant offset, as the paper notes; the slope is the content)")

    stage("Eq. 1: converting with-replacement n to distinct m")
    m_vals = np.array([4, 64, 1024], dtype=int)
    err = conversion_error(K, D, m_vals)
    rows = [
        (int(m), float(lm_leaf_distinct_exact(K, D, int(m))),
         float(lm_exact_via_conversion(K, D, float(m))),
         f"{100 * e:.4f}%")
        for m, e in zip(m_vals, err)
    ]
    print(format_table(
        ["m", "exact distinct L(m)", "converted Lhat(n(m))", "rel err"],
        rows, float_format=".5g",
    ))

    stage("Eq. 18 vs the Chuang-Sirbu law")
    m_sweep = np.geomspace(1, big_m * 0.5, 6)
    rows = []
    for m in m_sweep:
        ours = float(lm_asymptotic(K, D, m)) / D
        law = float(chuang_sirbu_prediction(m))
        rows.append((f"{m:.0f}", ours, law, ours / law))
    print(format_table(
        ["m", "Eq. 18 / u", "m^0.8", "ratio"], rows, float_format=".4g"
    ))
    print('("most decidedly not of the form m^0.8", yet within a small factor)')

    stage("Beyond the paper: concentration")
    rows = [
        (depth, 2**depth,
         float(coefficient_of_variation(2, depth, 0.1 * 2**depth)))
        for depth in (8, 10, 12, 14)
    ]
    print(format_table(["D", "M", "sigma/mean at x=0.1"], rows,
                       float_format=".4f"))
    print(
        "(the tree size concentrates like M^-1/2 - this is why one sample\n"
        " per receiver set suffices at Internet scale, and why Eq. 1's\n"
        " 'tightly centered' hand-wave is safe)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
