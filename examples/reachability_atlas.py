#!/usr/bin/env python
"""A reachability atlas of the Table-1 topology suite.

Walks every network in the paper's evaluation suite, measures its
``S(r)``/``T(r)`` profile, classifies the growth (the exponential vs
sub-exponential dichotomy on which Section 4's whole analysis turns),
and draws the ``ln T(r)`` curves — a terminal rendition of Figure 7 with
the classification that the paper makes by eye turned into numbers.

Run:  python examples/reachability_atlas.py [scale]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.experiments.ascii_plot import AsciiPlot
from repro.graph.reachability import average_profile, classify_growth
from repro.topology.registry import TOPOLOGY_NAMES, build_topology, topology_spec
from repro.utils.rng import spawn_rngs
from repro.utils.stats import linear_fit
from repro.utils.tables import format_table


def main() -> int:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.5
    streams = spawn_rngs(0, len(TOPOLOGY_NAMES))

    rows = []
    plot = AsciiPlot(
        width=68, height=18, log_y=True,
        title=f"ln T(r) vs r for the Table-1 suite (scale={scale:g})",
        x_label="r (hops)", y_label="T(r)",
    )
    for name, stream in zip(TOPOLOGY_NAMES, streams):
        spec = topology_spec(name)
        graph = build_topology(name, scale=scale, rng=stream)
        profile = average_profile(graph, num_sources=30, rng=stream)
        t = profile.mean_cumulative
        growth = classify_growth(profile)

        grow_region = np.flatnonzero(t <= 0.9 * t[-1])
        if grow_region.size >= 2:
            fit = linear_fit(grow_region.astype(float), np.log(t[grow_region]))
            lam, r2 = fit.slope, fit.r_squared
        else:
            lam, r2 = float("nan"), float("nan")

        rows.append(
            (name, spec.kind, graph.num_nodes, len(t) - 1, growth, lam, r2)
        )
        plot.add(name, profile.radii.astype(float), t)

    print(
        format_table(
            ["network", "kind", "nodes", "horizon D",
             "T(r) growth", "lambda", "lnT fit r^2"],
            rows,
            float_format=".3f",
            title="Reachability atlas",
        )
    )
    print()
    print(plot.render())
    print(
        "\nThe exponential networks are the ones whose multicast trees obey "
        "the paper's\nL(n) ~ n(c - ln(n/M)/lambda) form; the sub-exponential "
        "ones (ARPA, MBone, ti5000)\nare exactly the ones Section 4 reports "
        "as deviating."
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
