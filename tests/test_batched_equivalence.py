"""Batched ≡ scalar equivalence: the fast engine must be a pure speedup.

The vectorized Monte-Carlo machinery promises bit-identical results to
the per-sample reference path at three independent layers — tree
counting, receiver sampling, and the full sweep engine.  Each layer is
pinned separately (property tests over random graphs and seeds for the
first two, end-to-end measurement equality for the third) so a
regression is localized by the failing layer rather than showing up as
an unexplained figure-level drift.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.experiments.config import MonteCarloConfig
from repro.experiments.runner import measure_single_source_sweep, measure_sweep
from repro.graph.core import Graph
from repro.graph.paths import bfs
from repro.multicast.sampling import (
    sample_distinct_receivers,
    sample_distinct_receivers_batch,
    sample_distinct_receivers_sweep,
    sample_receivers_with_replacement,
    sample_receivers_with_replacement_batch,
    sample_receivers_with_replacement_sweep,
)
from repro.multicast.tree import MulticastTreeCounter
from repro.topology.registry import build_topology

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------


@st.composite
def connected_graphs(draw, max_nodes: int = 20):
    """A connected graph: random tree skeleton + random extra edges."""
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    edges = set()
    for child in range(1, n):
        parent = draw(st.integers(min_value=0, max_value=child - 1))
        edges.add((parent, child))
    extra = draw(st.integers(min_value=0, max_value=n))
    for _ in range(extra):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u != v:
            edges.add((min(u, v), max(u, v)))
    return Graph.from_edges(n, sorted(edges))


@st.composite
def counting_cases(draw):
    """A counter plus a receiver matrix (duplicates deliberately allowed)."""
    graph = draw(connected_graphs())
    source = draw(st.integers(min_value=0, max_value=graph.num_nodes - 1))
    tie_break = draw(st.sampled_from(["first", "random"]))
    forest = bfs(
        graph,
        source,
        tie_break=tie_break,
        rng=draw(st.integers(0, 3)) if tie_break == "random" else None,
    )
    num_sets = draw(st.integers(min_value=1, max_value=5))
    size = draw(st.integers(min_value=1, max_value=graph.num_nodes))
    matrix = np.asarray(
        draw(
            st.lists(
                st.lists(
                    st.integers(0, graph.num_nodes - 1),
                    min_size=size,
                    max_size=size,
                ),
                min_size=num_sets,
                max_size=num_sets,
            )
        ),
        dtype=np.int64,
    )
    return MulticastTreeCounter(forest), matrix


# ---------------------------------------------------------------------------
# Layer 1: vectorized tree counting
# ---------------------------------------------------------------------------


class TestBatchedCounting:
    @given(case=counting_cases())
    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_tree_sizes_batch_matches_scalar_loop(self, case):
        counter, matrix = case
        batched = counter.tree_sizes_batch(matrix)
        scalar = [counter.tree_size(row) for row in matrix]
        assert batched.tolist() == scalar

    @given(case=counting_cases())
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_unicast_totals_batch_matches_scalar_loop(self, case):
        counter, matrix = case
        batched = counter.unicast_totals_batch(matrix)
        scalar = [counter.unicast_total(row) for row in matrix]
        assert batched.tolist() == scalar

    @given(case=counting_cases())
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_fused_count_matches_separate_batches(self, case):
        counter, matrix = case
        # Split into two blocks to exercise the multi-block walk.
        cut = matrix.shape[0] // 2
        blocks = [b for b in (matrix[:cut], matrix[cut:]) if b.shape[0]]
        links, totals = counter.count_trees_and_unicast(blocks)
        assert len(links) == len(blocks) == len(totals)
        for block, block_links, block_totals in zip(blocks, links, totals):
            assert block_links.tolist() == counter.tree_sizes_batch(
                block
            ).tolist()
            assert block_totals.tolist() == counter.unicast_totals_batch(
                block
            ).tolist()

    def test_chunked_walk_matches_unchunked(self):
        """Forcing tiny walk chunks must not change any count."""
        graph = build_topology("internet", scale=0.05, rng=0)
        forest = bfs(graph, 0)
        counter = MulticastTreeCounter(forest)
        rng = np.random.default_rng(7)
        matrix = rng.integers(0, graph.num_nodes, size=(64, 17))
        expected = counter.tree_sizes_batch(matrix)
        tiny = MulticastTreeCounter(forest)
        tiny._WALK_SCRATCH_BYTES = 4 * tiny._key_span  # one row per chunk
        assert tiny.tree_sizes_batch(matrix).tolist() == expected.tolist()


# ---------------------------------------------------------------------------
# Layer 2: batched / sweep sampling streams
# ---------------------------------------------------------------------------

seeds = st.integers(min_value=0, max_value=2**32 - 1)


class TestBatchedSampling:
    @given(
        seed=seeds,
        num_nodes=st.integers(3, 40),
        m=st.integers(1, 10),
        num_sets=st.integers(1, 6),
        exclude=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_distinct_batch_equals_sequential_scalar(
        self, seed, num_nodes, m, num_sets, exclude
    ):
        m = min(m, num_nodes - 1)
        source = 0 if exclude else None
        batch = sample_distinct_receivers_batch(
            num_nodes, m, num_sets, source=source,
            rng=np.random.default_rng(seed),
        )
        scalar_rng = np.random.default_rng(seed)
        for row in batch:
            expected = sample_distinct_receivers(
                num_nodes, m, source=source, rng=scalar_rng
            )
            assert row.tolist() == expected.tolist()
            assert len(set(row.tolist())) == m
            if exclude:
                assert 0 not in row

    @given(
        seed=seeds,
        num_nodes=st.integers(3, 40),
        n=st.integers(1, 12),
        num_sets=st.integers(1, 6),
    )
    @settings(max_examples=60, deadline=None)
    def test_replacement_batch_equals_sequential_scalar(
        self, seed, num_nodes, n, num_sets
    ):
        batch = sample_receivers_with_replacement_batch(
            num_nodes, n, num_sets, source=0,
            rng=np.random.default_rng(seed),
        )
        scalar_rng = np.random.default_rng(seed)
        for row in batch:
            expected = sample_receivers_with_replacement(
                num_nodes, n, source=0, rng=scalar_rng
            )
            assert row.tolist() == expected.tolist()

    @given(
        seed=seeds,
        num_nodes=st.integers(4, 40),
        num_sets=st.integers(1, 6),
        sizes=st.lists(st.integers(1, 12), min_size=1, max_size=5),
    )
    @settings(max_examples=60, deadline=None)
    def test_distinct_sweep_equals_per_size_batches(
        self, seed, num_nodes, num_sets, sizes
    ):
        sizes = [min(m, num_nodes - 1) for m in sizes]
        swept = sample_distinct_receivers_sweep(
            num_nodes, sizes, num_sets, source=0,
            rng=np.random.default_rng(seed),
        )
        batch_rng = np.random.default_rng(seed)
        for m, matrix in zip(sizes, swept):
            expected = sample_distinct_receivers_batch(
                num_nodes, m, num_sets, source=0, rng=batch_rng
            )
            assert matrix.tolist() == expected.tolist()

    @given(
        seed=seeds,
        num_nodes=st.integers(3, 40),
        num_sets=st.integers(1, 6),
        sizes=st.lists(st.integers(1, 12), min_size=1, max_size=5),
    )
    @settings(max_examples=60, deadline=None)
    def test_replacement_sweep_equals_per_size_batches(
        self, seed, num_nodes, num_sets, sizes
    ):
        swept = sample_receivers_with_replacement_sweep(
            num_nodes, sizes, num_sets, source=0,
            rng=np.random.default_rng(seed),
        )
        batch_rng = np.random.default_rng(seed)
        for n, matrix in zip(sizes, swept):
            expected = sample_receivers_with_replacement_batch(
                num_nodes, n, num_sets, source=0, rng=batch_rng
            )
            assert matrix.tolist() == expected.tolist()


# ---------------------------------------------------------------------------
# Layer 3: the full engine (ARPANET guard, worker bit-identity)
# ---------------------------------------------------------------------------


class TestEngineEquivalence:
    @pytest.fixture(scope="class")
    def arpa(self):
        return build_topology("arpa", scale=1.0, rng=0)

    @pytest.mark.parametrize("mode", ["distinct", "replacement"])
    @pytest.mark.parametrize("tie_break", ["first", "random"])
    def test_arpanet_batched_equals_scalar(self, arpa, mode, tie_break):
        config = MonteCarloConfig(
            num_sources=4, num_receiver_sets=6, seed=3, tie_break=tie_break
        )
        sizes = [1, 3, 7, 12]
        kwargs = dict(mode=mode, config=config, topology="arpa")
        batched = measure_sweep(arpa, sizes, engine="batched", **kwargs)
        scalar = measure_sweep(arpa, sizes, engine="scalar", **kwargs)
        assert batched == scalar

    def test_workers_bit_identical(self, arpa):
        sizes = [1, 4, 9]
        measurements = [
            measure_sweep(
                arpa,
                sizes,
                config=MonteCarloConfig(
                    num_sources=6, num_receiver_sets=5, seed=1,
                    num_workers=k,
                ),
                topology="arpa",
            )
            for k in (1, 4)
        ]
        assert measurements[0] == measurements[1]

    def test_source_site_inclusion_both_engines(self, arpa):
        # exclude_source_site=False lets receivers land on the source
        # (empty paths) — the corner the averaging fix covers; both
        # engines must agree there too.
        config = MonteCarloConfig(num_sources=3, num_receiver_sets=8, seed=2)
        kwargs = dict(
            mode="replacement", config=config, exclude_source_site=False
        )
        batched = measure_sweep(arpa, [1, 5], engine="batched", **kwargs)
        scalar = measure_sweep(arpa, [1, 5], engine="scalar", **kwargs)
        assert batched == scalar

    def test_path_graph_exact_averages(self):
        # Hand-computable case: on the path 0-1-2 with source 0, the only
        # distinct 2-set is {1, 2}: tree links L = 2, mean unicast path
        # u = (1 + 2) / 2 = 1.5, so L/u = 4/3 exactly.  Every sample is
        # identical, so the averages are exact whatever the sample count.
        path = Graph.from_edges(3, [(0, 1), (1, 2)])
        m = measure_single_source_sweep(
            path, 0, [2], mode="distinct", num_receiver_sets=7, rng=0
        )
        assert m.mean_tree_size[0] == pytest.approx(2.0)
        assert m.mean_unicast_path[0] == pytest.approx(1.5)
        assert m.mean_ratio[0] == pytest.approx(2.0 / 1.5)
