"""Every example script must run clean — they are the living quickstart.

Each is executed in a subprocess with the repository's interpreter; a
non-zero exit or a traceback fails the suite.  This is what keeps the
examples from rotting as the API evolves.
"""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_populated():
    assert len(SCRIPTS) >= 6


@pytest.mark.parametrize("script", SCRIPTS, ids=lambda p: p.stem)
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, (
        f"{script.name} failed\nstdout:\n{result.stdout[-2000:]}\n"
        f"stderr:\n{result.stderr[-2000:]}"
    )
    assert "Traceback" not in result.stderr
    assert result.stdout.strip(), f"{script.name} produced no output"
