"""Tests for the cross-file analysis layer (repro.lint.project).

The seeded-bug classes below are the whole point of the project layer:
each tmp tree injects a defect that spans a module boundary, asserts
the per-file engine (``project=False`` — the pre-RR011 rule set's view)
misses it, and asserts the project rules catch it.  Separate classes
cover the incremental cache's skip/invalidate behavior and the
byte-identity contract of parallel lint.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.lint import lint_paths, render_json, render_text
from repro.lint.cache import LintCache
from repro.lint.engine import ruleset_signature
from repro.lint.project import ModuleSummary, module_name_for_path

FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"


def _write_tree(root: Path, files: dict) -> Path:
    for rel, source in files.items():
        target = root / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
    return root


def _rule_ids(findings):
    return sorted({f.rule_id for f in findings})


class TestSeededBugs:
    """Each defect spans files; the per-file engine must miss it."""

    def test_rr011_blocking_chain_across_modules(self, tmp_path):
        _write_tree(tmp_path, {
            "repro/core/tables.py": (
                "import time\n"
                "def settle():\n"
                "    time.sleep(0.5)\n"
                "def rebuild():\n"
                "    return settle()\n"
            ),
            "repro/serve/app.py": (
                "from repro.core.tables import rebuild\n"
                "async def refresh_handler():\n"
                "    rebuild()\n"
                "    return 'ok'\n"
            ),
        })
        assert _rule_ids(lint_paths([tmp_path], project=False)) == []
        findings = lint_paths([tmp_path])
        assert _rule_ids(findings) == ["RR011"]
        (finding,) = findings
        assert finding.path.endswith("repro/serve/app.py")
        assert finding.line == 3
        assert "time.sleep" in finding.message
        assert "rebuild" in finding.message

    def test_rr012_use_after_unlink_through_wrapper(self, tmp_path):
        _write_tree(tmp_path, {
            "repro/experiments/maker.py": (
                "def make_shared(graph):\n"
                "    return graph.to_shared()\n"
            ),
            "repro/experiments/sweep.py": (
                "from repro.experiments.maker import make_shared\n"
                "def broken(graph):\n"
                "    handle = make_shared(graph)\n"
                "    handle.unlink()\n"
                "    return handle.descriptor\n"
            ),
        })
        assert _rule_ids(lint_paths([tmp_path], project=False)) == []
        findings = lint_paths([tmp_path])
        assert _rule_ids(findings) == ["RR012"]
        assert any(
            f.line == 5 and "used after unlink" in f.message for f in findings
        )

    def test_rr013_conflicting_declarations_across_modules(self, tmp_path):
        _write_tree(tmp_path, {
            "repro/runner.py": (
                "from repro import obs\n"
                "CHUNKS = obs.counter('demo_chunks_total', 'chunks', ('path',))\n"
            ),
            "repro/pool.py": (
                "from repro import obs\n"
                "CHUNKS = obs.counter('demo_chunks_total', 'chunks', ('path', 'worker'))\n"
            ),
        })
        assert _rule_ids(lint_paths([tmp_path], project=False)) == []
        findings = lint_paths([tmp_path])
        assert _rule_ids(findings) == ["RR013"]
        (finding,) = findings
        assert "demo_chunks_total" in finding.message
        assert "first declared at" in finding.message

    def test_rr014_spec_for_seam_declared_nowhere(self, tmp_path):
        _write_tree(tmp_path, {
            "repro/seams.py": (
                "from repro import faults\n"
                "_FP = faults.point('demo.compute', 'compute seam')\n"
                "def compute():\n"
                "    _FP.fire()\n"
            ),
            "repro/plans.py": (
                "from repro.faults import FaultSpec\n"
                "GOOD = FaultSpec('demo.compute')\n"
                "TYPO = FaultSpec('demo.comptue')\n"
            ),
        })
        assert _rule_ids(lint_paths([tmp_path], project=False)) == []
        findings = lint_paths([tmp_path])
        assert _rule_ids(findings) == ["RR014"]
        (finding,) = findings
        assert finding.path.endswith("plans.py")
        assert "demo.comptue" in finding.message

    def test_rr014_orphaned_seam_after_fire_site_removed(self, tmp_path):
        _write_tree(tmp_path, {
            "repro/seams.py": (
                "from repro import faults\n"
                "_FP_LIVE = faults.point('demo.live', 'still fired')\n"
                "_FP_DEAD = faults.point('demo.dead', 'fire site refactored away')\n"
                "def work():\n"
                "    _FP_LIVE.fire()\n"
            ),
        })
        findings = lint_paths([tmp_path])
        assert _rule_ids(findings) == ["RR014"]
        (finding,) = findings
        assert finding.line == 3
        assert "demo.dead" in finding.message

    def test_partial_tree_without_seam_decls_stays_silent(self, tmp_path):
        # Linting just the plan file (make lint-changed style) must not
        # produce unknown-seam noise: the index has no declarations.
        _write_tree(tmp_path, {
            "repro/plans.py": (
                "from repro.faults import FaultSpec\n"
                "SPEC = FaultSpec('serve.backend.simulate')\n"
            ),
        })
        assert lint_paths([tmp_path]) == []

    def test_suppression_pragma_applies_to_project_findings(self, tmp_path):
        _write_tree(tmp_path, {
            "repro/seams.py": (
                "from repro import faults\n"
                "_FP = faults.point('demo.quiet', 'known orphan')  # repro-lint: disable=RR014\n"
            ),
        })
        assert lint_paths([tmp_path]) == []


class TestIncrementalCache:
    def _tree(self, tmp_path):
        return _write_tree(tmp_path / "tree", {
            "repro/alpha.py": "import numpy as np\nX = np.random.random()\n",
            "repro/beta.py": "VALUE = 3\n",
        })

    def test_warm_run_skips_analysis_entirely(self, tmp_path, monkeypatch):
        tree = self._tree(tmp_path)
        cache = tmp_path / "cache.json"
        cold = lint_paths([tree], cache=cache)
        assert _rule_ids(cold) == ["RR001"]

        import repro.lint.engine as engine

        def exploding_analyze(source, path):
            raise AssertionError(f"re-analyzed {path} on a warm cache")

        monkeypatch.setattr(engine, "_analyze_source", exploding_analyze)
        warm = lint_paths([tree], cache=cache)
        assert warm == cold

    def test_edited_file_is_the_only_one_reanalyzed(self, tmp_path, monkeypatch):
        tree = self._tree(tmp_path)
        cache = tmp_path / "cache.json"
        lint_paths([tree], cache=cache)

        import repro.lint.engine as engine

        analyzed = []
        real = engine._analyze_source

        def counting_analyze(source, path):
            analyzed.append(path)
            return real(source, path)

        monkeypatch.setattr(engine, "_analyze_source", counting_analyze)
        (tree / "repro/beta.py").write_text("VALUE = 4\n")
        lint_paths([tree], cache=cache)
        assert [Path(p).name for p in analyzed] == ["beta.py"]

    def test_cache_survives_roundtrip_and_keys_on_content(self, tmp_path):
        tree = self._tree(tmp_path)
        cache = tmp_path / "cache.json"
        cold = lint_paths([tree], cache=cache)
        document = json.loads(cache.read_text())
        assert document["signature"] == ruleset_signature()
        assert len(document["files"]) == 2
        for entry in document["files"].values():
            assert entry["digest"]
            if entry["summary"] is not None:
                ModuleSummary.from_dict(entry["summary"])
        # Content moves back -> digests match again, findings replay.
        assert lint_paths([tree], cache=cache) == cold

    def test_stale_signature_drops_the_document(self, tmp_path):
        tree = self._tree(tmp_path)
        cache = tmp_path / "cache.json"
        lint_paths([tree], cache=cache)
        document = json.loads(cache.read_text())
        document["signature"] = "0" * 16
        cache.write_text(json.dumps(document))
        assert LintCache.load(cache)._files == {}

    def test_corrupt_cache_is_treated_as_cold(self, tmp_path):
        tree = self._tree(tmp_path)
        cache = tmp_path / "cache.json"
        cache.write_text("{not json")
        findings = lint_paths([tree], cache=cache)
        assert _rule_ids(findings) == ["RR001"]


class TestParallelDeterminism:
    @pytest.mark.slow
    def test_reports_byte_identical_for_jobs_1_2_4(self):
        reports = {}
        for jobs in (1, 2, 4):
            findings = lint_paths([FIXTURES], jobs=jobs)
            reports[jobs] = (render_text(findings), render_json(findings))
        assert reports[1] == reports[2] == reports[4]
        # Sanity: the fixture tree is not trivially empty.
        assert "RR001" in reports[1][0]


class TestIndexerInternals:
    def test_module_name_derivation(self):
        assert module_name_for_path("src/repro/serve/app.py") == "repro.serve.app"
        assert module_name_for_path("src/repro/lint/__init__.py") == "repro.lint"
        assert (
            module_name_for_path("tests/lint_fixtures/repro/serve/x.py")
            == "repro.serve.x"
        )
        assert module_name_for_path("benchmarks/lint_smoke.py") == "lint_smoke"
        assert module_name_for_path("README.md") is None

    def test_summaries_are_json_roundtrippable(self, tmp_path):
        tree = _write_tree(tmp_path, {
            "repro/sample.py": (
                "import time\n"
                "from repro import faults, obs\n"
                "_FP = faults.point('sample.seam', 'seam')\n"
                "HITS = obs.counter('sample_hits_total', 'hits')\n"
                "def helper(graph):\n"
                "    _FP.fire()\n"
                "    handle = graph.to_shared()\n"
                "    try:\n"
                "        return len(handle.descriptor)\n"
                "    finally:\n"
                "        handle.unlink()\n"
            ),
        })
        import ast

        from repro.lint.engine import parse_suppressions
        from repro.lint.project import build_summary

        path = "repro/sample.py"
        source = (tree / path).read_text()
        summary = build_summary(path, ast.parse(source), parse_suppressions(source))
        restored = ModuleSummary.from_dict(
            json.loads(json.dumps(summary.to_dict()))
        )
        assert restored.to_dict() == summary.to_dict()
        assert restored.seams[0].name == "sample.seam"
        assert restored.seam_fires == ["repro.sample._FP"]
        assert restored.metrics[0].name == "sample_hits_total"
        (fn,) = restored.functions
        kinds = [event[0] for event in fn.handle_events]
        assert kinds == ["create", "use", "kill"]
        assert fn.handle_events[-1][4] is True  # unlink inside finally
