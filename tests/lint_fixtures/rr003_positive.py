"""RR003 positive cases: dtype mixing near declared-int32 scratch."""

import numpy as np


class Walker:
    def __init__(self, n):
        self._stamp = np.zeros(n, dtype=np.int32)

    def step(self, keys):
        order = np.arange(keys.size)  # expect: RR003
        self._stamp[keys] = 1.0  # expect: RR003
        return order


def overflow(n):
    claim = np.empty(n, dtype="int32")
    claim[0] = 3_000_000_000  # expect: RR003
    return claim


def default_dtype_store(n):
    scratch = np.zeros(n, dtype=np.int32)
    scratch[:] = np.zeros(n)  # expect: RR003
    return scratch
