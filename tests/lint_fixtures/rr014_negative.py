"""RR014 negative fixture: every seam fires, every spec names a seam."""

from repro import faults
from repro.faults import FaultSpec

_FP_COMPUTE = faults.point("rr014.fixture.compute", "compute seam")
_FP_FLUSH = faults.point("rr014.fixture.flush", "flush seam")


def compute(batch):
    _FP_COMPUTE.fire(batch=len(batch))
    return sorted(batch)


def flush(sink):
    # Bound-method aliases count as firing the seam.
    fire = _FP_FLUSH.fire
    fire(sink=sink)


COMPUTE_SPEC = FaultSpec("rr014.fixture.compute")
FLUSH_SPEC = FaultSpec(point="rr014.fixture.flush")


def dynamic_spec(name):
    # Non-literal seam names are invisible to the rule by design.
    return FaultSpec(name)
