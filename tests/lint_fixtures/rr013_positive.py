"""RR013 positive fixture: one metric name, conflicting declarations."""

from repro import obs

HITS = obs.counter("rr013_fixture_hits_total", "cache hits", ("path",))
HITS_DRIFTED = obs.counter("rr013_fixture_hits_total", "cache hits", ("path", "kind"))  # expect: RR013

DEPTH = obs.gauge("rr013_fixture_depth", "queue depth")
DEPTH_RETYPED = obs.counter("rr013_fixture_depth", "queue depth")  # expect: RR013

LATENCY = obs.histogram("rr013_fixture_latency", "seconds", (), (0.1, 1.0))
LATENCY_REBUCKETED = obs.histogram("rr013_fixture_latency", "seconds", (), (0.5, 5.0))  # expect: RR013
