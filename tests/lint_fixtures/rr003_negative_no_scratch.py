"""RR003 gating: no int32 scratch in the module, bare arange is fine."""

import numpy as np


def plain_range(n):
    return np.arange(n)
