"""RR001 positive cases: unseeded / global randomness."""

import random

import numpy as np


def global_numpy_draw():
    return np.random.random(4)  # expect: RR001


def global_numpy_seed():
    np.random.seed(0)  # expect: RR001


def stdlib_random(items):
    random.shuffle(items)  # expect: RR001
    return items


def bare_default_rng():
    rng = np.random.default_rng()  # expect: RR001
    return rng
