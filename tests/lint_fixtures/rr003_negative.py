"""RR003 negative cases: explicit dtypes; per-scope name reuse."""

import numpy as np


def int32_walk(n):
    stamp = np.zeros(n, dtype=np.int32)
    order = np.arange(n, dtype=np.int32)
    stamp[order] = 1
    return stamp


def float_elsewhere(n):
    # Another function may reuse the name for a float array (Dijkstra
    # vs BFS in graph/paths.py) without poisoning this scope.
    stamp = np.full(n, np.inf)
    stamp[0] = 0.0
    return stamp
