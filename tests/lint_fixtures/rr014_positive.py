"""RR014 positive fixture: an orphaned seam and an unknown FaultSpec ref."""

from repro import faults
from repro.faults import FaultSpec

_FP_ACTIVE = faults.point("rr014.fixture.active", "fired below")
_FP_ORPHAN = faults.point("rr014.fixture.orphan", "declared, never fired")  # expect: RR014


def poke(payload):
    _FP_ACTIVE.fire(payload=payload)
    return payload


GOOD_SPEC = FaultSpec("rr014.fixture.active")
BAD_SPEC = FaultSpec("rr014.fixture.mistyped")  # expect: RR014
