"""RR004 negative cases: narrow catches, re-raises, logged handlers."""

import logging

logger = logging.getLogger(__name__)


def narrow(task):
    try:
        return task()
    except ValueError:
        return None


def reraise(task):
    try:
        return task()
    except Exception as exc:
        raise RuntimeError("wrapped") from exc


def logged(task):
    try:
        return task()
    except Exception:
        logger.warning("task failed, using fallback")
        return None
