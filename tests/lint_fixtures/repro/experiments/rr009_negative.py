"""RR009 negative fixture: timing through the repro.obs span seam."""

import time

from repro import obs


def timed_sweep(run):
    with obs.span("runner.sweep", topology="arpa") as sp:
        result = run()
        sp.set(samples=128)
    # span.duration is the collector clock's reading; no second clock.
    return result, sp.duration


class Collector:
    def __init__(self, clock=time.perf_counter):
        # A bare reference as a default clock callable is fine; only
        # calls are flagged.
        self._clock = clock

    def now(self):
        return self._clock()


def wall_label():
    return time.strftime("%H:%M:%S")
