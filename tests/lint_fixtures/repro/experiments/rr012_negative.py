"""RR012 negative fixture: disciplined shared-memory handle lifetimes."""


def exception_safe_scope(graph, receivers):
    handle = graph.to_shared()
    try:
        return measure(handle, receivers)
    finally:
        handle.unlink()


def hands_ownership_to_registry(graph, registry):
    handle = graph.to_shared()
    registry.append(handle)
    return handle.descriptor


def ships_descriptor_not_handle(graph, executor, work):
    handle = graph.to_shared()
    try:
        descriptor = handle.descriptor
        return executor.submit(work, descriptor)
    finally:
        handle.unlink()


def returns_handle_to_caller(graph):
    return graph.to_shared()


def immediate_release(graph):
    handle = graph.to_shared()
    handle.unlink()
    return None


def measure(handle, receivers):
    return [len(receivers)]
