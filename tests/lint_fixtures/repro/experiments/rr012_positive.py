"""RR012 positive fixture: shared-memory handle lifetime violations."""


def use_after_unlink(graph):
    handle = graph.to_shared()
    handle.unlink()
    return handle.descriptor  # expect: RR012


def leaks_segment(graph, receivers):
    handle = graph.to_shared()  # expect: RR012
    return len(receivers)


def ships_handle_to_worker(graph, executor, work):
    handle = graph.to_shared()
    future = executor.submit(work, handle)  # expect: RR012
    handle.unlink()
    return future


def unlink_not_exception_safe(graph, receivers):
    handle = graph.to_shared()
    sizes = count_trees(handle, receivers)
    handle.unlink()  # expect: RR012
    return sizes


def count_trees(handle, receivers):
    return [len(receivers)]
