"""RR016 positive fixture: tree construction bypassing the registry."""

from repro.graph.paths import bfs
from repro.multicast.steiner import takahashi_matsuyama_tree
from repro.multicast.tree import build_delivery_tree


def steiner_series(graph, source, receiver_sets):
    totals = []
    for receivers in receiver_sets:
        tree = takahashi_matsuyama_tree(graph, source, receivers)  # expect: RR016
        totals.append(tree.num_links)
    return totals


def one_spt_tree(graph, source, receivers):
    forest = bfs(graph, source, tie_break="first")
    return build_delivery_tree(forest, receivers)  # expect: RR016


def aliased_module_call(graph, source, receivers):
    import repro.multicast.steiner as steiner

    return steiner.takahashi_matsuyama_tree(graph, source, receivers)  # expect: RR016
