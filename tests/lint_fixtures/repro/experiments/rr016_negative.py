"""RR016 negative fixture: tree construction through the registry."""

from repro.graph.paths import bfs
from repro.multicast.builders import build_redundant_set, build_tree, count_tree_links


def steiner_series(graph, source, receiver_sets):
    totals = []
    for receivers in receiver_sets:
        tree = build_tree("steiner-tm", graph, source, receivers)
        totals.append(tree.num_links)
    return totals


def one_spt_tree(graph, source, receivers):
    forest = bfs(graph, source, tie_break="first")
    return build_tree("spt", graph, source, receivers, forest=forest)


def batch_counts(graph, source, matrix, forest):
    return count_tree_links("dst-approx", graph, source, matrix, forest=forest)


def redundant(graph, source, receivers):
    return build_redundant_set(graph, source, receivers, k=2)
