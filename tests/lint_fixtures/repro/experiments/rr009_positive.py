"""RR009 positive fixture: raw clock reads in an instrumented module."""

import time
import time as wall
from time import perf_counter, monotonic as mono


def time_a_sweep():
    start = time.perf_counter()  # expect: RR009
    stamp = time.time()  # expect: RR009
    return start, stamp


def chunk_timings():
    begin = perf_counter()  # expect: RR009
    tick = mono()  # expect: RR009
    nanos = wall.perf_counter_ns()  # expect: RR009
    return begin, tick, nanos
