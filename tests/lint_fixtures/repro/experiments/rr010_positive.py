"""RR010 positive fixture: ad-hoc process fan-out on the hot path."""

from concurrent.futures import ProcessPoolExecutor


def fan_out(graph, chunks, task_args):
    with ProcessPoolExecutor(max_workers=2) as pool:  # expect: RR010
        futures = [
            pool.submit(_task, graph, chunk, task_args)  # expect: RR010
            for chunk in chunks
        ]
        return [future.result() for future in futures]


def _task(graph, chunk, task_args):
    return len(chunk)
