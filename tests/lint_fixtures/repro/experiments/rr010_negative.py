"""RR010 negative fixture: fan-out through the persistent pool."""

from repro.experiments.pool import get_pool, shared_graphs


def fan_out(graph, chunks, task_args):
    descriptor = shared_graphs().descriptor(graph)
    executor = get_pool().ensure(len(chunks))
    futures = [
        executor.submit(_task, descriptor, chunk, task_args)
        for chunk in chunks
    ]
    return [future.result() for future in futures]


def _task(descriptor, chunk, task_args):
    return len(chunk)
