"""RR007 positive fixture: blocking calls inside serve-layer coroutines."""

import socket
import subprocess
import time
import urllib.request
from subprocess import run as launch
from time import sleep


async def sleepy_handler():
    time.sleep(0.5)  # expect: RR007
    sleep(0.1)  # expect: RR007


async def shelling_handler(cmd):
    subprocess.run(cmd)  # expect: RR007
    launch(cmd)  # expect: RR007
    subprocess.check_output(cmd)  # expect: RR007


async def io_handler(host):
    socket.create_connection((host, 80))  # expect: RR007
    urllib.request.urlopen("http://example.invalid")  # expect: RR007
    with open("data.json") as handle:  # expect: RR007
        return handle.read()


async def outer():
    async def inner():
        time.sleep(1.0)  # expect: RR007

    return inner
