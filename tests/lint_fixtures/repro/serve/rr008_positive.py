"""RR008 positive fixture: raw clock reads in the serving layer."""

import time
import time as walltime
from time import monotonic, perf_counter as pc


def observe_latency():
    start = time.perf_counter()  # expect: RR008
    begin = time.monotonic()  # expect: RR008
    wall = time.time()  # expect: RR008
    return start, begin, wall


async def deadline_handler():
    begin = monotonic()  # expect: RR008
    tick = pc()  # expect: RR008
    alias = walltime.monotonic_ns()  # expect: RR008
    return begin, tick, alias
