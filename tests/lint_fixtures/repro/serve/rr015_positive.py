"""RR015 positive fixture: serving state shipped across spawn boundaries."""

from multiprocessing import Process

from repro.serve.app import ServerApp
from repro.serve.handlers import EstimationService


def _probe(payload):
    return payload


def ship_tracked_service_via_submit(pool, config):
    service = EstimationService(config)
    return pool.submit(_probe, service)  # expect: RR015


def ship_fresh_service_via_submit(pool, config):
    return pool.submit(_probe, EstimationService(config))  # expect: RR015


def ship_app_in_process_args(config):
    app = ServerApp(EstimationService(config))
    worker = Process(target=_probe, args=(app,))  # expect: RR015
    worker.start()
    return worker


def ship_bound_method_target(config):
    service = EstimationService(config)
    worker = Process(target=service.handle_metrics)  # expect: RR015
    worker.start()
    return worker


def ship_service_named_argument(pool, estimation_service):
    return pool.submit(_probe, estimation_service)  # expect: RR015
