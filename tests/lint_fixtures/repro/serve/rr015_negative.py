"""RR015 negative fixture: only picklable recipes cross the boundary."""

from multiprocessing import Process

from repro.serve.fleet.worker import FleetWorkerSpec, fleet_worker_main
from repro.serve.handlers import EstimationService


def _probe(payload):
    return payload


def build_and_use_service_locally(config, request):
    # Constructing and using a service in-process is the whole point;
    # only crossing a spawn boundary is the hazard.
    service = EstimationService(config)
    return service.dispatch(request)


def spawn_from_a_spec(config, conn):
    # The fleet pattern: a frozen picklable spec crosses, the worker
    # rebuilds its own EstimationService from it.
    spec = FleetWorkerSpec(worker_id=0, config=config)
    worker = Process(target=fleet_worker_main, args=(spec, None, conn))
    worker.start()
    return worker


def submit_plain_payloads(pool, descriptor, config):
    # Descriptors and configs are exactly what should cross.
    return pool.submit(_probe, descriptor), pool.submit(_probe, config)


def rebinding_clears_the_taint(pool, config):
    candidate = EstimationService(config)
    candidate.shutdown()
    candidate = {"config": config}
    return pool.submit(_probe, candidate)
