"""RR007 negative fixture: non-blocking patterns in serve-layer coroutines."""

import asyncio
import time


async def patient_handler():
    await asyncio.sleep(0.01)
    # Non-blocking time formatting is fine (clock *reads* belong to the
    # injected clock — that is RR008's, not RR007's, concern).
    return time.strftime("%H:%M:%S")


async def offloaded_handler(loop, path):
    def read_blob():
        # Blocking work inside a nested *sync* def is the executor
        # pattern, not an event-loop stall.
        with open(path) as handle:
            return handle.read()

    return await loop.run_in_executor(None, read_blob)


def synchronous_helper():
    # Plain functions may block; only coroutine bodies are constrained.
    time.sleep(0.0)
    with open("scratch.txt") as handle:
        return handle.read()
