"""RR011 negative fixture: sync helpers under coroutines that never block.

Pure computation below an await site is fine; so is blocking work that
only runs behind ``run_in_executor`` (the helper is passed by
reference, so no call edge exists from the coroutine).
"""

import asyncio
import time


def _score(samples):
    return sum(samples) / max(len(samples), 1)


def _summarize(samples):
    return {"mean": _score(samples), "count": len(samples)}


def _cold_read(path):
    # Blocking, but only ever offloaded — never called from a coroutine.
    with open(path) as handle:
        return handle.read()


async def summary_handler(samples):
    await asyncio.sleep(0)
    return _summarize(samples)


async def offload_handler(loop, path):
    return await loop.run_in_executor(None, _cold_read, path)
