"""RR008 negative fixture: injected-clock discipline in the serving layer."""

import time
from time import monotonic


class Service:
    def __init__(self, clock=time.monotonic):
        # A bare reference as a default is fine; only calls are flagged.
        self._clock = clock

    def observe(self):
        return self._clock()


async def handler(service):
    started = service._clock()
    stamp = time.strftime("%H:%M:%S")
    return started, stamp


FALLBACK_CLOCK = monotonic
