"""RR011 positive fixture: blocking primitives reached through sync helpers.

RR007 stays silent here on purpose — no coroutine body touches a
blocking call directly.  The stalls are two and three resolved hops
down the call graph, which only the project indexer can see.
"""

import subprocess
import time


def _settle(seconds):
    time.sleep(seconds)


def _rebuild_route_table(seconds):
    return _settle(seconds)


def _run_probe(cmd):
    return subprocess.run(cmd, check=True)


async def refresh_handler(seconds):
    _rebuild_route_table(seconds)  # expect: RR011
    return "refreshed"


async def probe_handler(cmd):
    return _run_probe(cmd)  # expect: RR011
