"""RR013 negative fixture: consistent re-declarations and distinct names.

Re-declaring a metric with the *same* spec is the supported
get-or-create pattern (the runner and the worker pool share
``repro_runner_chunks_total`` exactly this way).
"""

from repro import obs

CHUNKS = obs.counter("rr013_fixture_chunks_total", "chunks", ("path",))
CHUNKS_AGAIN = obs.counter("rr013_fixture_chunks_total", "chunks", ("path",))

ROUNDS = obs.counter("rr013_fixture_rounds_total", "rounds")
ROUND_DEPTH = obs.gauge("rr013_fixture_round_depth", "depth", ("stage",))

WAIT = obs.histogram("rr013_fixture_wait", "seconds", (), (0.1, 1.0))
WAIT_AGAIN = obs.histogram("rr013_fixture_wait", "seconds", (), (0.1, 1.0))


def dynamic_name(registry, suffix):
    # Non-literal names are invisible to the rule by design.
    return registry.counter("rr013_fixture_" + suffix, "dynamic")
