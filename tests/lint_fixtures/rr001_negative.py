"""RR001 negative cases: the seeded-stream discipline."""

import numpy as np

from repro.utils.rng import ensure_rng, spawn_rngs


def seeded(rng=None):
    generator = ensure_rng(rng)
    return generator.integers(10)


def spawned(rng: np.random.Generator):
    children = spawn_rngs(rng, 3)
    # SeedSequence is a deterministic seed container, not a draw source.
    seq = np.random.SeedSequence(7)
    return children, seq
