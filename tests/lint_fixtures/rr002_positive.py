"""RR002 positive cases: mutating or leaking cached forest arrays."""

from repro.graph.forest_cache import default_forest_cache


def clobber_dist(graph):
    forest = default_forest_cache().forest(graph, 0)
    forest.dist[0] = 5  # expect: RR002
    return None


def augment_view(cache, graph):
    forest = cache.forest(graph, 1)
    dist = forest.dist
    dist += 1  # expect: RR002
    return None


def sort_in_place(cache, graph):
    parent = cache.forest(graph, 2).parent
    parent.sort()  # expect: RR002


def thaw(cache, graph):
    forest = cache.get(graph, 3)
    forest.parent.setflags(write=True)  # expect: RR002


def leak_view(cache, graph):
    forest = cache.forest(graph, 4)
    return forest.dist  # expect: RR002
