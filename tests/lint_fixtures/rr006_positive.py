"""RR006 positive cases: mutable default arguments."""


def append_to(item, bucket=[]):  # expect: RR006
    bucket.append(item)
    return bucket


def merge(extra={}):  # expect: RR006
    return dict(extra)


def tags(*, seen=set()):  # expect: RR006
    return seen


def build(factory=list()):  # expect: RR006
    return factory
