"""RR006 negative cases: immutable defaults and default_factory."""

from dataclasses import dataclass, field
from typing import Sequence, Tuple


def append_to(item, bucket=None):
    bucket = [] if bucket is None else bucket
    bucket.append(item)
    return bucket


def windowed(sizes: Sequence[int] = (), pair: Tuple[int, int] = (0, 1)):
    return list(sizes), pair


@dataclass
class Config:
    names: list = field(default_factory=list)
