"""RR005 positive case: a figure module with an unregistered driver."""


def run_fixture_figure(scale=1.0):  # expect: RR005
    return scale
