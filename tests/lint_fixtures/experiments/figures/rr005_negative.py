"""RR005 negative case: the driver registers with the figure registry.

Never imported by the tests — registration here would otherwise pollute
the real registry.
"""

from repro.experiments.figures.registry import register_figure


@register_figure("fixture:rr005")
def run_fixture_figure(scale=1.0):
    return scale
