"""RR004 positive cases: swallowed exceptions."""


def swallow_bare(task):
    try:
        task()
    except:  # expect: RR004
        pass


def swallow_exception(task):
    try:
        return task()
    except Exception:  # expect: RR004
        return None


def swallow_tuple(task):
    try:
        return task()
    except (ValueError, BaseException):  # expect: RR004
        return 0
