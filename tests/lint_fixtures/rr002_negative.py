"""RR002 negative cases: reads, copies, the escape hatch, private views."""

from repro.graph.forest_cache import default_forest_cache


def read_only(cache, graph, out):
    forest = cache.forest(graph, 0)
    out[0] = forest.dist[3]
    return int(forest.dist.sum())


def copy_then_write(cache, graph):
    dist = cache.forest(graph, 1).dist.copy()
    dist[0] = 5
    return dist


def borrowed(cache, graph):
    forest = cache.borrow_mutable(graph, 2)
    forest.dist[0] = 9
    return forest


def _private_view(cache, graph):
    forest = cache.forest(graph, 3)
    return forest.dist


def refreeze(cache, graph):
    forest = cache.forest(graph, 4)
    forest.dist.setflags(write=False)
