"""Suppression path: violations silenced with repro-lint comments."""

import numpy as np


def seeded_elsewhere():
    return np.random.random()  # repro-lint: disable=RR001


def grab_bag(bucket=[]):  # repro-lint: disable
    try:
        return bucket.pop()
    except Exception:  # repro-lint: disable=RR004,RR001
        return None
