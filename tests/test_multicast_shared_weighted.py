"""Tests for :mod:`repro.multicast.shared_tree` and ``weighted``."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ExperimentError, GraphError
from repro.graph.core import Graph
from repro.graph.paths import bfs, dijkstra, uniform_arc_weights
from repro.multicast.shared_tree import SharedTreeCost, select_core, shared_tree_cost
from repro.multicast.tree import MulticastTreeCounter
from repro.multicast.weighted import weighted_tree_cost
from repro.topology.gtitm import pure_random_graph
from repro.topology.kary import kary_tree


class TestSelectCore:
    def test_max_degree_core(self, small_mesh):
        core = select_core(small_mesh, strategy="max-degree")
        assert small_mesh.degree(core) == int(small_mesh.degrees.max())

    def test_min_distance_core_on_path(self, path_graph):
        # The 1-median of a path is its middle.
        core = select_core(
            path_graph, strategy="min-distance-sample", candidates=5, rng=0
        )
        assert core == 2

    def test_random_core_in_range(self, small_mesh, rng):
        core = select_core(small_mesh, strategy="random", rng=rng)
        assert 0 <= core < 16

    def test_unknown_strategy(self, small_mesh):
        with pytest.raises(ExperimentError, match="strategy"):
            select_core(small_mesh, strategy="astrology")

    def test_min_distance_beats_random_on_average(self):
        from repro.graph.paths import distances_from

        g = pure_random_graph(150, average_degree=3.0, rng=0)
        best = select_core(g, strategy="min-distance-sample",
                           candidates=30, rng=1)
        best_total = float(distances_from(g, best).sum())
        rng = np.random.default_rng(2)
        random_totals = [
            float(distances_from(g, int(rng.integers(0, 150))).sum())
            for _ in range(20)
        ]
        assert best_total <= np.median(random_totals)


class TestSharedTreeCost:
    def test_core_at_source_equals_source_tree(self, binary_tree_d4):
        g = binary_tree_d4.graph
        receivers = binary_tree_d4.leaves()[:4].tolist()
        source_tree = MulticastTreeCounter(bfs(g, 0)).tree_size(receivers)
        shared = shared_tree_cost(g, core=0, source=0, receivers=receivers)
        assert shared.tree_links == source_tree
        assert shared.source_to_core_hops == 0

    def test_remote_core_adds_overhead(self, path_graph):
        # Source 0, single receiver 1, core at the far end 4.
        shared = shared_tree_cost(path_graph, core=4, source=0, receivers=[1])
        direct = MulticastTreeCounter(bfs(path_graph, 0)).tree_size([1])
        assert shared.tree_links > direct
        assert shared.source_to_core_hops == 4

    def test_counter_reuse(self, small_mesh):
        core = 5
        counter = MulticastTreeCounter(bfs(small_mesh, core))
        a = shared_tree_cost(small_mesh, core, 0, [15], counter=counter)
        b = shared_tree_cost(small_mesh, core, 0, [15])
        assert a == b

    def test_counter_core_mismatch(self, small_mesh):
        counter = MulticastTreeCounter(bfs(small_mesh, 3))
        with pytest.raises(GraphError, match="rooted"):
            shared_tree_cost(small_mesh, 5, 0, [15], counter=counter)

    def test_shared_tree_never_below_core_tree(self, small_mesh, rng):
        core = select_core(small_mesh, strategy="min-distance-sample", rng=0)
        counter = MulticastTreeCounter(bfs(small_mesh, core))
        for _ in range(10):
            receivers = rng.choice(16, size=4, replace=False)
            cost = shared_tree_cost(
                small_mesh, core, int(rng.integers(0, 16)), receivers,
                counter=counter,
            )
            only_receivers = counter.tree_size(receivers)
            assert cost.tree_links >= only_receivers

    def test_delivery_cost_property(self):
        cost = SharedTreeCost(core=3, tree_links=17, source_to_core_hops=2)
        assert cost.delivery_cost == 17


class TestWeightedTreeCost:
    def test_unit_weights_match_unweighted_counter(self, small_mesh, rng):
        weights = uniform_arc_weights(small_mesh)
        forest = dijkstra(small_mesh, 0, weights)
        bfs_counter = MulticastTreeCounter(bfs(small_mesh, 0))
        for _ in range(10):
            receivers = rng.choice(16, size=5, replace=True)
            cost = weighted_tree_cost(small_mesh, forest, weights, receivers)
            # Equal-cost path sets may differ between Dijkstra and BFS
            # tie-breaking, but unit-weight totals equal the link counts.
            assert cost.total_weight == pytest.approx(float(cost.num_links))
            assert cost.unicast_weight == float(
                bfs_counter.unicast_total(receivers)
            )

    def test_weighted_tree_at_most_unicast(self, rng):
        g = pure_random_graph(60, average_degree=4.0, rng=3)
        weights = uniform_arc_weights(g)
        # Random symmetric weights.
        for u, v in g.edges():
            w = float(rng.uniform(0.5, 3.0))
            for a, b in ((u, v), (v, u)):
                row = g.neighbors(a)
                pos = g.indptr[a] + int(np.searchsorted(row, b))
                weights[pos] = w
        forest = dijkstra(g, 0, weights)
        for _ in range(10):
            receivers = rng.choice(60, size=8, replace=True)
            cost = weighted_tree_cost(g, forest, weights, receivers)
            assert cost.total_weight <= cost.unicast_weight + 1e-9
            assert 0.0 < cost.efficiency <= 1.0

    def test_duplicate_receivers_free(self, small_mesh):
        weights = uniform_arc_weights(small_mesh)
        forest = dijkstra(small_mesh, 0, weights)
        once = weighted_tree_cost(small_mesh, forest, weights, [15])
        thrice = weighted_tree_cost(small_mesh, forest, weights, [15, 15, 15])
        assert once.num_links == thrice.num_links
        assert once.total_weight == thrice.total_weight

    def test_unreachable_receiver(self, disconnected_graph):
        weights = uniform_arc_weights(disconnected_graph)
        forest = dijkstra(disconnected_graph, 0, weights)
        with pytest.raises(GraphError, match="unreachable"):
            weighted_tree_cost(disconnected_graph, forest, weights, [4])

    def test_misshaped_weights(self, path_graph):
        forest = dijkstra(path_graph, 0)
        with pytest.raises(GraphError, match="shape"):
            weighted_tree_cost(path_graph, forest, np.ones(3), [2])

    def test_expensive_link_avoided(self):
        # Square 0-1-3, 0-2-3 with one expensive side: the tree to both
        # 1 and 3 must route 3 through the cheap side.
        g = Graph.from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
        weights = uniform_arc_weights(g)
        # Make 0-1 and 1-3 cost 1; 0-2 and 2-3 cost 10.
        for (a, b), w in [((0, 2), 10.0), ((2, 3), 10.0)]:
            for x, y in ((a, b), (b, a)):
                row = g.neighbors(x)
                pos = g.indptr[x] + int(np.searchsorted(row, y))
                weights[pos] = w
        forest = dijkstra(g, 0, weights)
        cost = weighted_tree_cost(g, forest, weights, [1, 3])
        assert cost.num_links == 2
        assert cost.total_weight == pytest.approx(2.0)
